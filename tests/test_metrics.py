"""Unit tests for repro.metrics: registry, sink, auditor, exposition."""

import json

import pytest

from repro.core.exploration import explore_subnet
from repro.core.positioning import position_subnet
from repro.events import (
    CollectingSink,
    EventBus,
    OverheadViolation,
    ProbeSent,
    SubnetGrown,
)
from repro.metrics import (
    MetricsRegistry,
    MetricsSink,
    ProbeEconomyAuditor,
    instrument,
    registry_from_events,
    render_prometheus,
)
from repro.netsim import Engine, TopologyBuilder
from repro.probing import Prober
from repro.runner import SurveyRunner
from repro.topogen import geant, internet2
from repro.transport import (
    FaultInjectingTransport,
    SimulatorTransport,
    collect_backend_metrics,
)


# -- registry primitives ------------------------------------------------------


class TestRegistry:
    def test_counter_counts_and_rejects_decrease(self):
        registry = MetricsRegistry()
        registry.inc("x_total")
        registry.inc("x_total", 4)
        assert registry.value("x_total") == 5
        with pytest.raises(ValueError, match="cannot decrease"):
            registry.inc("x_total", -1)

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("g", 3)
        registry.set_gauge("g", 1)
        assert registry.value("g") == 1

    def test_labels_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.inc("hits_total", phase="a")
        registry.inc("hits_total", phase="b")
        registry.inc("hits_total", phase="a")
        assert registry.value("hits_total", phase="a") == 2
        assert registry.value("hits_total", phase="b") == 1
        assert registry.value("hits_total", phase="c", default=None) is None

    def test_kind_clash_raises(self):
        registry = MetricsRegistry()
        registry.inc("x")
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.set_gauge("x", 1)
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.observe("x", 1, buckets=(1, 2))

    def test_histogram_needs_buckets_on_first_use(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="must name its buckets"):
            registry.observe("h", 1)
        registry.observe("h", 1, buckets=(1, 2))
        registry.observe("h", 2)  # subsequent uses reuse the bounds
        assert registry.histogram("h").count == 2

    def test_histogram_bucket_boundaries(self):
        # Inclusive upper bounds: a value equal to a bound lands in that
        # bucket; anything past the last bound goes to the +Inf overflow.
        registry = MetricsRegistry()
        h = registry.histogram("h", buckets=(1, 4, 8))
        for value in (0, 1):
            h.observe(value)
        for value in (2, 4):
            h.observe(value)
        for value in (5, 8):
            h.observe(value)
        for value in (9, 1000):
            h.observe(value)
        assert h.counts == [2, 2, 2, 2]
        assert h.overflow == 2
        assert h.sum == 0 + 1 + 2 + 4 + 5 + 8 + 9 + 1000
        assert h.count == 8
        assert h.bucket_index(4) == 1
        assert h.bucket_index(4.0001) == 2
        assert h.bucket_index(8.5) == 3

    def test_histogram_rejects_unsorted_bounds(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="strictly increase"):
            registry.histogram("h", buckets=(4, 1))
        with pytest.raises(ValueError, match="strictly increase"):
            registry.histogram("h2", buckets=(1, 1, 2))

    def test_snapshot_is_deterministically_ordered(self):
        registry = MetricsRegistry()
        registry.inc("z_total")
        registry.inc("a_total")
        registry.inc("m_total", phase="b")
        registry.inc("m_total", phase="a")
        snap = registry.snapshot()
        assert list(snap["counters"]) == [
            "a_total", 'm_total{phase="a"}', 'm_total{phase="b"}', "z_total"]

    def test_roundtrip_to_from_dict(self):
        registry = MetricsRegistry()
        registry.inc("c_total", 3)
        registry.inc("by_rule_total", 2, rule="H2")
        registry.set_gauge("g", 7)
        registry.observe("h", 5, buckets=(2, 4, 8))
        registry.backend.set_gauge("engine_probes_sent", 11)
        with registry.time("span"):
            pass
        clone = MetricsRegistry.from_dict(
            json.loads(json.dumps(registry.to_dict())))
        assert clone.snapshot() == registry.snapshot()
        assert clone.backend.snapshot() == registry.backend.snapshot()
        assert clone.timings["span"]["count"] == 1

    def test_merge_sums_counters_gauges_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c_total", 2)
        b.inc("c_total", 3)
        b.inc("only_b_total", 1)
        a.set_gauge("g", 10)
        b.set_gauge("g", 5)
        a.observe("h", 1, buckets=(2, 4))
        b.observe("h", 3, buckets=(2, 4))
        b.observe("h", 99, buckets=(2, 4))
        a.backend.set_gauge("engine_probes_sent", 6)
        b.backend.set_gauge("engine_probes_sent", 4)
        a.merge(b)
        assert a.value("c_total") == 5
        assert a.value("only_b_total") == 1
        assert a.value("g") == 15  # shard totals add
        h = a.histogram("h")
        assert h.counts == [1, 1, 1]
        assert h.count == 3
        assert a.backend.value("engine_probes_sent") == 10

    def test_merge_rejects_bucket_mismatch(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("h", 1, buckets=(2, 4))
        b.observe("h", 1, buckets=(2, 8))
        with pytest.raises(ValueError, match="bucket mismatch"):
            a.merge(b)


# -- Prometheus exposition ----------------------------------------------------


class TestPrometheus:
    def test_exposition_format(self):
        registry = MetricsRegistry()
        registry.describe("probes_sent_total", "Wire probes sent")
        registry.inc("probes_sent_total", 9)
        registry.inc("by_phase_total", 2, phase="trace-collection")
        registry.set_gauge("survey_targets", 4)
        registry.observe("probe_ttl", 3, buckets=(2, 4))
        registry.observe("probe_ttl", 9, buckets=(2, 4))
        registry.backend.set_gauge("engine_probes_sent", 9)
        text = render_prometheus(registry)
        assert "# HELP tracenet_probes_sent_total Wire probes sent" in text
        assert "# TYPE tracenet_probes_sent_total counter" in text
        assert "tracenet_probes_sent_total 9" in text
        assert ('tracenet_by_phase_total{phase="trace-collection"} 2'
                in text)
        assert "# TYPE tracenet_survey_targets gauge" in text
        # Cumulative le buckets, +Inf last, sum and count series.
        assert 'tracenet_probe_ttl_bucket{le="2"} 0' in text
        assert 'tracenet_probe_ttl_bucket{le="4"} 1' in text
        assert 'tracenet_probe_ttl_bucket{le="+Inf"} 2' in text
        assert "tracenet_probe_ttl_sum 12" in text
        assert "tracenet_probe_ttl_count 2" in text
        assert "tracenet_backend_engine_probes_sent 9" in text

    def test_every_line_is_wellformed(self):
        registry = MetricsRegistry()
        registry.inc("a_total", rule="H2")
        registry.observe("h", 1, buckets=(1,))
        for line in render_prometheus(registry).splitlines():
            assert line.startswith("#") or " " in line


# -- the event sink -----------------------------------------------------------


class TestMetricsSink:
    def test_probe_events_feed_counters(self):
        bus = EventBus()
        registry = MetricsRegistry()
        bus.subscribe(MetricsSink(registry))
        bus.emit(ProbeSent(dst=1, ttl=3, protocol="icmp", flow_id=0,
                           phase="trace-collection", answered=True,
                           response_kind="ttl-exceeded", response_source=5))
        bus.emit(ProbeSent(dst=1, ttl=9, protocol="icmp", flow_id=0,
                           phase="subnet-exploration", answered=False,
                           response_kind=None, response_source=None))
        assert registry.value("probes_sent_total") == 2
        assert registry.value("probe_responses_total") == 1
        assert registry.value("probe_silent_total") == 1
        assert registry.value("probe_phase_total",
                              phase="subnet-exploration") == 1
        assert registry.histogram("probe_ttl").count == 2

    def test_subnet_grown_attributes_phases(self):
        registry = registry_from_events([
            SubnetGrown(pivot=1, prefix="10.0.0.0/30", size=2,
                        stop_reason="prefix-floor", probes_used=12,
                        phase_probes={"subnet-exploration": 9,
                                      "subnet-positioning": 3}),
        ])
        assert registry.value("subnets_grown_total") == 1
        assert registry.value("overhead_checks_total") == 1
        assert registry.value("subnet_phase_probes_total",
                              phase="subnet-exploration") == 9
        assert registry.value("subnet_phase_probes_total",
                              phase="subnet-positioning") == 3


# -- the probe-economy auditor ------------------------------------------------


def _grown(size: int, probes_used: int) -> SubnetGrown:
    return SubnetGrown(pivot=1, prefix="10.0.0.0/29", size=size,
                       stop_reason="prefix-floor", probes_used=probes_used)


class TestAuditor:
    def test_within_bound_is_quiet(self):
        bus = EventBus()
        inst = instrument(bus)
        bus.emit(_grown(size=4, probes_used=20))  # bound 35, slack 43.75
        assert inst.auditor.checked == 1
        assert inst.auditor.violations == 0
        assert inst.registry.value("overhead_checks_total") == 1
        assert inst.registry.value("overhead_violations_total") == 0

    def test_violation_emits_event_and_counter(self):
        bus = EventBus()
        inst = instrument(bus)
        seen = CollectingSink()
        bus.subscribe(seen)
        bus.emit(_grown(size=2, probes_used=40))  # bound 21 * 1.25 = 26.25
        violations = [e for e in seen.events
                      if isinstance(e, OverheadViolation)]
        assert len(violations) == 1
        assert violations[0].probes_used == 40
        assert violations[0].upper_bound == 21
        assert violations[0].slack == 1.25
        assert inst.registry.value("overhead_violations_total") == 1
        assert inst.registry.value("overhead_violation_probes_total") == 40

    def test_custom_slack(self):
        bus = EventBus()
        inst = instrument(bus, slack=1.0)
        bus.emit(_grown(size=2, probes_used=22))  # bound 21, no slack
        assert inst.registry.value("overhead_violations_total") == 1

    def test_slack_must_be_positive(self):
        with pytest.raises(ValueError, match="slack"):
            ProbeEconomyAuditor(EventBus(), slack=0)

    def test_forced_violation_on_hostile_lan(self):
        # A sparse /27 LAN (two real members, silence everywhere else)
        # probed by an aggressive-retry vantage: every silent candidate
        # burns 1 + retries probes, pushing the subnet past the worst case
        # over even the candidates it touched.  This is exactly the
        # silently-degraded probe economy the live auditor exists to flag.
        builder = TopologyBuilder("hostile")
        builder.link("R1", "R2")
        lan = builder.lan(["R2", "M0"], length=27)
        builder.edge_host("v", "R1")
        topology = builder.build()
        prober = Prober(Engine(topology), "v", retries=12)
        inst = instrument(prober.events)
        seen = CollectingSink()
        prober.events.subscribe(seen)
        pivot = topology.routers["R2"].interface_on(lan.subnet_id).address
        entry = [i.address for i in topology.routers["R2"].interfaces
                 if i.subnet_id != lan.subnet_id][0]
        position = position_subnet(prober, entry, pivot, 3)
        subnet = explore_subnet(prober, position)
        grown = [e for e in seen.events if isinstance(e, SubnetGrown)][0]
        scope = max(subnet.size, grown.candidates_tested)
        assert subnet.probes_used > (7 * scope + 7) * 1.25
        assert inst.registry.value("overhead_violations_total") == 1
        assert (inst.registry.value("overhead_violation_probes_total")
                == subnet.probes_used)
        violation = [e for e in seen.events
                     if isinstance(e, OverheadViolation)][0]
        assert violation.probes_used == subnet.probes_used
        assert violation.phase_probes == grown.phase_probes

    @pytest.mark.parametrize("module", [internet2, geant])
    def test_reference_surveys_stay_within_bounds(self, module):
        # The paper's own scenarios respect the Section 3.6 model: a full
        # survey over either reference network audits clean.
        network = module.build(seed=7)
        engine = Engine(network.topology, policy=network.policy)
        from repro.core import TraceNET

        tool = TraceNET(engine, "utdallas")
        inst = instrument(tool.events)
        SurveyRunner(tool).run(module.targets(network, seed=7))
        assert inst.registry.value("overhead_checks_total") > 0
        assert inst.registry.value("overhead_violations_total") == 0


# -- transport backend metrics ------------------------------------------------


class TestBackendMetrics:
    def test_fault_transport_counts_seeded_drops(self):
        network = internet2.build(seed=7)
        engine = Engine(network.topology, policy=network.policy)
        transport = FaultInjectingTransport(
            SimulatorTransport(engine), drop_rate=0.2, seed=99)
        from repro.core import TraceNET

        tool = TraceNET(transport, "utdallas")
        targets = internet2.targets(network, seed=7)[:10]
        for target in targets:
            tool.trace(target)
        assert transport.sends == engine.stats.probes_sent
        assert transport.injected_drops > 0
        assert transport.responses_suppressed >= transport.injected_drops
        registry = MetricsRegistry()
        collect_backend_metrics(registry.backend, transport)
        backend = registry.backend
        assert backend.value("fault_sends") == transport.sends
        assert (backend.value("fault_injected_drops")
                == transport.injected_drops)
        assert backend.value("fault_blackholed") == 0
        assert (backend.value("fault_responses_suppressed")
                == transport.responses_suppressed)
        # The inner engine's counters fold through the wrapper.
        assert backend.value("engine_probes_sent") == engine.stats.probes_sent

    def test_fault_counters_are_seed_deterministic(self):
        def run(seed):
            network = internet2.build(seed=7)
            engine = Engine(network.topology, policy=network.policy)
            transport = FaultInjectingTransport(
                SimulatorTransport(engine), drop_rate=0.3, seed=seed)
            from repro.core import TraceNET

            tool = TraceNET(transport, "utdallas")
            for target in internet2.targets(network, seed=7)[:5]:
                tool.trace(target)
            return (transport.sends, transport.injected_drops,
                    transport.responses_suppressed)

        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_blackhole_counter(self):
        network = internet2.build(seed=7)
        engine = Engine(network.topology, policy=network.policy)
        target = internet2.targets(network, seed=7)[0]
        transport = FaultInjectingTransport(
            SimulatorTransport(engine), blackholes=[target])
        from repro.core import TraceNET

        tool = TraceNET(transport, "utdallas")
        result = tool.trace(target)
        assert not result.reached
        assert transport.blackholed > 0
        assert transport.injected_drops == 0


class TestPrometheusEscaping:
    def test_label_values_escape_backslash_quote_newline(self):
        # The 0.0.4 text format requires all three escapes in label
        # values; an unescaped quote or newline corrupts the exposition.
        registry = MetricsRegistry()
        registry.inc("weird_total", rule='H2 "quoted" \\ two\nlines')
        text = render_prometheus(registry)
        assert (r'tracenet_weird_total{rule="H2 \"quoted\" \\ two\nlines"}'
                in text)
        # No raw newline survives inside any series line.
        for line in text.splitlines():
            assert "\n" not in line

    def test_help_text_escapes_backslash_and_newline_only(self):
        # HELP escapes \ and \n but keeps quotes raw per the spec.
        registry = MetricsRegistry()
        registry.describe("a_total", 'the "7|S| + 7" bound\nsecond \\ line')
        registry.inc("a_total")
        text = render_prometheus(registry)
        assert ('# HELP tracenet_a_total the "7|S| + 7" '
                'bound\\nsecond \\\\ line') in text


class TestTimingQuarantine:
    def test_nested_time_spans_accumulate_independently(self):
        registry = MetricsRegistry()
        with registry.time("outer"):
            with registry.time("inner"):
                pass
            with registry.time("inner"):
                pass
        assert registry.timings["outer"]["count"] == 1
        assert registry.timings["inner"]["count"] == 2
        assert registry.timings["outer"]["seconds"] >= \
            registry.timings["inner"]["seconds"]

    def test_reentrant_same_name_spans_accumulate(self):
        registry = MetricsRegistry()
        with registry.time("span"):
            with registry.time("span"):
                pass
        assert registry.timings["span"]["count"] == 2
        assert registry.timings["span"]["seconds"] >= 0.0

    def test_timings_never_leak_into_snapshot(self):
        # The deterministic snapshot is the replay-parity contract; any
        # wall-clock value inside it would break record -> replay equality.
        registry = MetricsRegistry()
        registry.inc("probes_sent_total", 3)
        before = json.dumps(registry.snapshot(), sort_keys=True)
        with registry.time("collection_seconds"):
            with registry.time("collection_seconds"):
                pass
        assert json.dumps(registry.snapshot(), sort_keys=True) == before
        full = registry.full_snapshot()
        assert full["timings"]["collection_seconds"]["count"] == 2
        assert "timings" not in registry.snapshot()

    def test_exceptions_still_close_the_span(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with registry.time("span"):
                raise RuntimeError("boom")
        assert registry.timings["span"]["count"] == 1


class TestBusMetricsCapture:
    def test_sink_errors_land_in_backend_scope(self):
        from repro.metrics import collect_bus_metrics

        bus = EventBus()

        def bad(event):
            raise RuntimeError("boom")

        bus.subscribe(bad)
        bus.subscribe(lambda e: None)
        from repro.events import TraceStarted

        bus.emit(TraceStarted(destination=1))
        registry = MetricsRegistry()
        collect_bus_metrics(registry.backend, bus)
        assert registry.backend.value("event_sink_errors_total") == 1
        assert registry.backend.value("event_sink_errors", sink="bad") == 1
        # Backend scope only: the deterministic snapshot stays clean.
        assert "event_sink_errors_total" not in json.dumps(
            registry.snapshot())
