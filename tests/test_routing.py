"""Unit tests for routing tables, ECMP sets and load balancing."""

import pytest

from repro.netsim.builder import TopologyBuilder
from repro.netsim.routing import (
    FlowKey,
    LoadBalancer,
    LoadBalancingMode,
    NextHop,
    RoutingTable,
)


def diamond():
    """A -- B/C -- D diamond: two equal-cost paths from A to D's stub."""
    builder = TopologyBuilder("diamond")
    builder.link("A", "B")
    builder.link("A", "C")
    builder.link("B", "D")
    builder.link("C", "D")
    stub = builder.link("D", "E")
    builder.edge_host("v", "A")
    return builder.build(), stub


class TestRoutingTable:
    def test_distance_zero_when_attached(self):
        topo, stub = diamond()
        table = RoutingTable(topo)
        assert table.distance("D", stub.subnet_id) == 0
        assert table.distance("E", stub.subnet_id) == 0

    def test_distance_counts_hops(self):
        topo, stub = diamond()
        table = RoutingTable(topo)
        assert table.distance("B", stub.subnet_id) == 1
        assert table.distance("A", stub.subnet_id) == 2

    def test_next_hops_empty_when_attached(self):
        topo, stub = diamond()
        table = RoutingTable(topo)
        assert table.next_hops("D", stub.subnet_id) == []

    def test_next_hops_single(self):
        topo, stub = diamond()
        table = RoutingTable(topo)
        hops = table.next_hops("B", stub.subnet_id)
        assert [h.router_id for h in hops] == ["D"]

    def test_next_hops_ecmp_pair(self):
        topo, stub = diamond()
        table = RoutingTable(topo)
        hops = table.next_hops("A", stub.subnet_id)
        assert sorted(h.router_id for h in hops) == ["B", "C"]

    def test_next_hops_cached(self):
        topo, stub = diamond()
        table = RoutingTable(topo)
        first = table.next_hops("A", stub.subnet_id)
        assert table.next_hops("A", stub.subnet_id) is first

    def test_next_hop_records_via_subnet(self):
        topo, stub = diamond()
        table = RoutingTable(topo)
        for hop in table.next_hops("A", stub.subnet_id):
            via = topo.subnets[hop.via_subnet_id]
            assert "A" in via.router_ids
            assert hop.router_id in via.router_ids

    def test_egress_interface_toward_attached(self):
        topo, stub = diamond()
        table = RoutingTable(topo)
        address = table.egress_interface_toward("D", stub.subnet_id)
        assert topo.interface_at(address).router_id == "D"

    def test_egress_interface_toward_remote(self):
        topo, stub = diamond()
        table = RoutingTable(topo)
        address = table.egress_interface_toward("A", stub.subnet_id)
        iface = topo.interface_at(address)
        assert iface.router_id == "A"

    def test_unreachable_distance_is_none(self):
        builder = TopologyBuilder()
        builder.link("A", "B")
        topo = builder.build(validate=False)
        other = TopologyBuilder()
        other.link("X", "Y")
        # Merge an island subnet manually to create unreachability.
        island = other.topology.subnets[next(iter(other.topology.subnets))]
        table = RoutingTable(topo)
        subnet_id = next(iter(topo.subnets))
        assert table.distance("A", subnet_id) is not None
        del island


class TestLoadBalancer:
    def _flow(self, flow_id=0):
        return FlowKey(src=1, dst=2, protocol="icmp", flow_id=flow_id)

    def _candidates(self):
        return [NextHop("B", "s1"), NextHop("C", "s2")]

    def test_single_candidate_passthrough(self):
        lb = LoadBalancer()
        only = [NextHop("B", "s1")]
        assert lb.choose("A", only, self._flow()) is only[0]

    def test_no_candidates_raises(self):
        lb = LoadBalancer()
        with pytest.raises(ValueError):
            lb.choose("A", [], self._flow())

    def test_none_mode_picks_first(self):
        lb = LoadBalancer(LoadBalancingMode.NONE)
        assert lb.choose("A", self._candidates(), self._flow()).router_id == "B"

    def test_per_flow_deterministic(self):
        lb = LoadBalancer(LoadBalancingMode.PER_FLOW)
        picks = {lb.choose("A", self._candidates(), self._flow(7)).router_id
                 for _ in range(10)}
        assert len(picks) == 1

    def test_per_flow_varies_with_flow_id(self):
        lb = LoadBalancer(LoadBalancingMode.PER_FLOW)
        picks = {lb.choose("A", self._candidates(), self._flow(i)).router_id
                 for i in range(32)}
        assert picks == {"B", "C"}

    def test_per_packet_varies(self):
        lb = LoadBalancer(LoadBalancingMode.PER_PACKET, seed=1)
        picks = {lb.choose("A", self._candidates(), self._flow()).router_id
                 for _ in range(32)}
        assert picks == {"B", "C"}

    def test_per_packet_seeded_reproducible(self):
        seq1 = [LoadBalancer(LoadBalancingMode.PER_PACKET, seed=5)
                .choose("A", self._candidates(), self._flow()).router_id
                for _ in range(1)]
        lb1 = LoadBalancer(LoadBalancingMode.PER_PACKET, seed=5)
        lb2 = LoadBalancer(LoadBalancingMode.PER_PACKET, seed=5)
        seq1 = [lb1.choose("A", self._candidates(), self._flow()).router_id
                for _ in range(20)]
        seq2 = [lb2.choose("A", self._candidates(), self._flow()).router_id
                for _ in range(20)]
        assert seq1 == seq2

    def test_per_router_override(self):
        lb = LoadBalancer(LoadBalancingMode.PER_PACKET, seed=3)
        lb.set_mode("A", LoadBalancingMode.NONE)
        picks = {lb.choose("A", self._candidates(), self._flow()).router_id
                 for _ in range(10)}
        assert picks == {"B"}

    def test_mode_of_default(self):
        lb = LoadBalancer(LoadBalancingMode.PER_FLOW)
        assert lb.mode_of("anything") == LoadBalancingMode.PER_FLOW
