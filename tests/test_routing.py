"""Unit tests for routing tables, ECMP sets and load balancing."""

import pytest

import repro.netsim.routing as routing_module
from repro.netsim.builder import TopologyBuilder
from repro.netsim.routing import (
    FlowKey,
    LoadBalancer,
    LoadBalancingMode,
    NextHop,
    RoutingTable,
)


def diamond():
    """A -- B/C -- D diamond: two equal-cost paths from A to D's stub."""
    builder = TopologyBuilder("diamond")
    builder.link("A", "B")
    builder.link("A", "C")
    builder.link("B", "D")
    builder.link("C", "D")
    stub = builder.link("D", "E")
    builder.edge_host("v", "A")
    return builder.build(), stub


class TestRoutingTable:
    def test_distance_zero_when_attached(self):
        topo, stub = diamond()
        table = RoutingTable(topo)
        assert table.distance("D", stub.subnet_id) == 0
        assert table.distance("E", stub.subnet_id) == 0

    def test_distance_counts_hops(self):
        topo, stub = diamond()
        table = RoutingTable(topo)
        assert table.distance("B", stub.subnet_id) == 1
        assert table.distance("A", stub.subnet_id) == 2

    def test_next_hops_empty_when_attached(self):
        topo, stub = diamond()
        table = RoutingTable(topo)
        assert table.next_hops("D", stub.subnet_id) == []

    def test_next_hops_single(self):
        topo, stub = diamond()
        table = RoutingTable(topo)
        hops = table.next_hops("B", stub.subnet_id)
        assert [h.router_id for h in hops] == ["D"]

    def test_next_hops_ecmp_pair(self):
        topo, stub = diamond()
        table = RoutingTable(topo)
        hops = table.next_hops("A", stub.subnet_id)
        assert sorted(h.router_id for h in hops) == ["B", "C"]

    def test_next_hops_cached(self):
        topo, stub = diamond()
        table = RoutingTable(topo)
        first = table.next_hops("A", stub.subnet_id)
        assert table.next_hops("A", stub.subnet_id) is first

    def test_next_hop_records_via_subnet(self):
        topo, stub = diamond()
        table = RoutingTable(topo)
        for hop in table.next_hops("A", stub.subnet_id):
            via = topo.subnets[hop.via_subnet_id]
            assert "A" in via.router_ids
            assert hop.router_id in via.router_ids

    def test_egress_interface_toward_attached(self):
        topo, stub = diamond()
        table = RoutingTable(topo)
        address = table.egress_interface_toward("D", stub.subnet_id)
        assert topo.interface_at(address).router_id == "D"

    def test_egress_interface_toward_remote(self):
        topo, stub = diamond()
        table = RoutingTable(topo)
        address = table.egress_interface_toward("A", stub.subnet_id)
        iface = topo.interface_at(address)
        assert iface.router_id == "A"

    def test_unreachable_distance_is_none(self):
        builder = TopologyBuilder()
        builder.link("A", "B")
        topo = builder.build(validate=False)
        other = TopologyBuilder()
        other.link("X", "Y")
        # Merge an island subnet manually to create unreachability.
        island = other.topology.subnets[next(iter(other.topology.subnets))]
        table = RoutingTable(topo)
        subnet_id = next(iter(topo.subnets))
        assert table.distance("A", subnet_id) is not None
        del island


class TestLazyBfsCache:
    def test_one_bfs_per_destination_subnet(self):
        topo, stub = diamond()
        table = RoutingTable(topo)
        for router in ("A", "B", "C", "D"):
            table.distance(router, stub.subnet_id)
            table.next_hops(router, stub.subnet_id)
        assert table.bfs_runs == 1
        other = sorted(set(topo.subnets) - {stub.subnet_id})[0]
        table.distance("A", other)
        assert table.bfs_runs == 2

    def test_lru_bounds_distance_maps_and_recomputes_evicted(self):
        topo, stub = diamond()
        table = RoutingTable(topo, distance_cache_size=2)
        subnets = sorted(topo.subnets)[:3]
        for subnet_id in subnets:
            table.distance("A", subnet_id)
        assert table.bfs_runs == 3
        assert len(table._distance) == 2
        # The oldest entry was evicted; touching it costs a fresh BFS.
        table.distance("A", subnets[0])
        assert table.bfs_runs == 4
        # The most-recent entries are still served from the cache.
        table.distance("A", subnets[2])
        assert table.bfs_runs == 4

    def test_topology_mutation_invalidates_graph_and_caches(self):
        builder = TopologyBuilder("diamond")
        builder.link("A", "B")
        builder.link("A", "C")
        builder.link("B", "D")
        builder.link("C", "D")
        stub = builder.link("D", "E")
        builder.edge_host("v", "A")
        topo = builder.build()
        table = RoutingTable(topo)
        first = table.next_hops("A", stub.subnet_id)
        assert table.next_hops("A", stub.subnet_id) is first
        runs_before = table.bfs_runs
        # Wire a shortcut A - E: the router↔subnet graph changed, so the
        # interned graph and every derived cache must be rebuilt.
        builder.link("A", "E")
        assert table.next_hops("A", stub.subnet_id) is not first
        assert table.bfs_runs > runs_before
        hops = table.next_hops("A", stub.subnet_id)
        assert "E" in {h.router_id for h in hops}
        assert table.distance("A", stub.subnet_id) == 1

    def test_next_hops_order_is_deterministic(self):
        # The ECMP candidate enumeration order feeds the load balancers:
        # NONE always takes the first candidate and PER_FLOW hashes into
        # the list, so the order itself is part of the contract.
        topo, stub = diamond()
        order = [
            (h.router_id, h.via_subnet_id)
            for h in RoutingTable(topo).next_hops("A", stub.subnet_id)
        ]
        assert [router for router, _ in order] == ["B", "C"]
        rebuilt = [
            (h.router_id, h.via_subnet_id)
            for h in RoutingTable(topo).next_hops("A", stub.subnet_id)
        ]
        assert rebuilt == order
        balancer = LoadBalancer(LoadBalancingMode.NONE)
        flow = FlowKey(src=1, dst=2, protocol="icmp", flow_id=0)
        hops = RoutingTable(topo).next_hops("A", stub.subnet_id)
        assert balancer.choose("A", hops, flow).router_id == "B"
        per_flow = LoadBalancer(LoadBalancingMode.PER_FLOW)
        picks = {per_flow.choose("A", hops, flow).router_id
                 for _ in range(8)}
        assert len(picks) == 1

    @pytest.mark.skipif(routing_module._np is None,
                        reason="numpy unavailable; only one path to compare")
    def test_python_fallback_matches_numpy(self, monkeypatch):
        topo, _ = diamond()
        arrays = RoutingTable(topo)
        monkeypatch.setattr(routing_module, "_np", None)
        lists = RoutingTable(topo)
        for subnet_id in sorted(topo.subnets):
            for router_id in sorted(topo.routers):
                assert (arrays.distance(router_id, subnet_id)
                        == lists.distance(router_id, subnet_id)), (
                    router_id, subnet_id)
                arrays_hops = arrays.next_hops(router_id, subnet_id)
                lists_hops = lists.next_hops(router_id, subnet_id)
                assert arrays_hops == lists_hops, (router_id, subnet_id)
        assert arrays.bfs_runs == lists.bfs_runs


class TestLoadBalancer:
    def _flow(self, flow_id=0):
        return FlowKey(src=1, dst=2, protocol="icmp", flow_id=flow_id)

    def _candidates(self):
        return [NextHop("B", "s1"), NextHop("C", "s2")]

    def test_single_candidate_passthrough(self):
        lb = LoadBalancer()
        only = [NextHop("B", "s1")]
        assert lb.choose("A", only, self._flow()) is only[0]

    def test_no_candidates_raises(self):
        lb = LoadBalancer()
        with pytest.raises(ValueError):
            lb.choose("A", [], self._flow())

    def test_none_mode_picks_first(self):
        lb = LoadBalancer(LoadBalancingMode.NONE)
        assert lb.choose("A", self._candidates(), self._flow()).router_id == "B"

    def test_per_flow_deterministic(self):
        lb = LoadBalancer(LoadBalancingMode.PER_FLOW)
        picks = {lb.choose("A", self._candidates(), self._flow(7)).router_id
                 for _ in range(10)}
        assert len(picks) == 1

    def test_per_flow_varies_with_flow_id(self):
        lb = LoadBalancer(LoadBalancingMode.PER_FLOW)
        picks = {lb.choose("A", self._candidates(), self._flow(i)).router_id
                 for i in range(32)}
        assert picks == {"B", "C"}

    def test_per_packet_varies(self):
        lb = LoadBalancer(LoadBalancingMode.PER_PACKET, seed=1)
        picks = {lb.choose("A", self._candidates(), self._flow()).router_id
                 for _ in range(32)}
        assert picks == {"B", "C"}

    def test_per_packet_seeded_reproducible(self):
        seq1 = [LoadBalancer(LoadBalancingMode.PER_PACKET, seed=5)
                .choose("A", self._candidates(), self._flow()).router_id
                for _ in range(1)]
        lb1 = LoadBalancer(LoadBalancingMode.PER_PACKET, seed=5)
        lb2 = LoadBalancer(LoadBalancingMode.PER_PACKET, seed=5)
        seq1 = [lb1.choose("A", self._candidates(), self._flow()).router_id
                for _ in range(20)]
        seq2 = [lb2.choose("A", self._candidates(), self._flow()).router_id
                for _ in range(20)]
        assert seq1 == seq2

    def test_per_router_override(self):
        lb = LoadBalancer(LoadBalancingMode.PER_PACKET, seed=3)
        lb.set_mode("A", LoadBalancingMode.NONE)
        picks = {lb.choose("A", self._candidates(), self._flow()).router_id
                 for _ in range(10)}
        assert picks == {"B"}

    def test_mode_of_default(self):
        lb = LoadBalancer(LoadBalancingMode.PER_FLOW)
        assert lb.mode_of("anything") == LoadBalancingMode.PER_FLOW
