"""Integration-grade unit tests for the TraceNET tool itself."""

import pytest

from conftest import address_on
from repro.core import TraceNET
from repro.netsim import (
    Engine,
    IndirectConfig,
    Protocol,
    ResponsePolicy,
    TopologyBuilder,
)
from repro.probing import ProbeBudget, ProbeBudgetExceeded


def path_topology():
    """vantage - R1 - R2 - LAN{R2,R3,R4,R6}/29 - R4 - R5 (dest stub)."""
    builder = TopologyBuilder("path")
    builder.link("R1", "R2")
    lan = builder.lan(["R2", "R3", "R4", "R6"], length=29)
    dest = builder.link("R4", "R5")
    builder.edge_host("v", "R1")
    topo = builder.build()
    target = topo.routers["R5"].interface_on(dest.subnet_id).address
    return topo, lan, dest, target


class TestTrace:
    def test_reaches_destination(self):
        topo, lan, dest, target = path_topology()
        tool = TraceNET(Engine(topo), "v")
        result = tool.trace(target)
        assert result.reached
        assert result.hops[-1].is_destination
        assert result.hops[-1].address == target

    def test_every_hop_annotated_with_subnet(self):
        topo, lan, dest, target = path_topology()
        tool = TraceNET(Engine(topo), "v")
        result = tool.trace(target)
        assert all(hop.subnet is not None for hop in result.hops
                   if hop.address is not None)

    def test_lan_fully_discovered_on_path(self):
        topo, lan, dest, target = path_topology()
        tool = TraceNET(Engine(topo), "v")
        result = tool.trace(target)
        lan_subnet = result.subnet_for(
            topo.routers["R3"].interface_on(lan.subnet_id).address)
        assert lan_subnet is not None
        assert lan_subnet.members == set(lan.addresses)

    def test_collects_more_addresses_than_traceroute(self):
        topo, lan, dest, target = path_topology()
        tool = TraceNET(Engine(topo), "v")
        result = tool.trace(target)
        # The traceroute view is one address per hop; tracenet must add
        # the off-path LAN members (R3, R6 interfaces at minimum).
        trace_view = {a for a in result.path_addresses if a is not None}
        assert trace_view < result.addresses
        assert len(result.addresses) >= len(trace_view) + 2

    def test_worst_case_equals_traceroute(self):
        """With exploration off, tracenet degrades to plain traceroute."""
        topo, lan, dest, target = path_topology()
        tool = TraceNET(Engine(topo), "v", explore=False)
        result = tool.trace(target)
        assert result.reached
        assert all(hop.subnet is None for hop in result.hops)

    def test_unreachable_destination(self):
        topo, lan, dest, target = path_topology()
        tool = TraceNET(Engine(topo), "v")
        result = tool.trace(0x01010101)
        assert not result.reached

    def test_probe_count_recorded(self):
        topo, lan, dest, target = path_topology()
        tool = TraceNET(Engine(topo), "v")
        result = tool.trace(target)
        assert result.probes_sent > 0
        assert result.probes_sent == tool.prober.stats.sent

    def test_anonymous_gap_ends_trace(self):
        topo, lan, dest, target = path_topology()
        policy = ResponsePolicy().silence_router("R5")
        topo.routers["R5"].indirect_config = IndirectConfig.NIL
        tool = TraceNET(Engine(topo, policy=policy), "v",
                        anonymous_gap_limit=2)
        result = tool.trace(target)
        assert not result.reached
        trailing = [hop for hop in result.hops if hop.address is None]
        assert len(trailing) == 2

    def test_anonymous_hop_recorded_mid_path(self):
        topo, lan, dest, target = path_topology()
        topo.routers["R2"].indirect_config = IndirectConfig.NIL
        tool = TraceNET(Engine(topo), "v")
        result = tool.trace(target)
        assert result.reached
        assert any(hop.address is None for hop in result.hops)


class TestSubnetReuse:
    def test_shared_path_subnets_not_reexplored(self):
        topo, lan, dest, target = path_topology()
        tool = TraceNET(Engine(topo), "v")
        tool.trace(target)
        count_after_first = len(tool.collected_subnets)
        other = address_on(topo, "R6", "R3")  # another LAN member
        tool.trace(other)
        # The second trace crosses only already-known subnets.
        assert len(tool.collected_subnets) == count_after_first

    def test_reuse_disabled_duplicates_work(self):
        topo, lan, dest, target = path_topology()
        tool = TraceNET(Engine(topo), "v", reuse_subnets=False)
        tool.trace(target)
        first = len(tool.collected_subnets)
        tool.trace(target)
        assert len(tool.collected_subnets) > first

    def test_collected_addresses_union(self):
        topo, lan, dest, target = path_topology()
        tool = TraceNET(Engine(topo), "v")
        tool.trace(target)
        assert set(lan.addresses) <= tool.collected_addresses


class TestProtocols:
    @pytest.mark.parametrize("protocol", [Protocol.ICMP, Protocol.UDP,
                                          Protocol.TCP])
    def test_all_protocols_work_on_responsive_network(self, protocol):
        topo, lan, dest, target = path_topology()
        tool = TraceNET(Engine(topo), "v", protocol=protocol)
        result = tool.trace(target)
        assert result.reached

    def test_udp_refusals_lose_subnets(self):
        topo, lan, dest, target = path_topology()
        policy = ResponsePolicy()
        for router_id in ("R3", "R4", "R5", "R6"):
            policy.refuse_protocol(router_id, Protocol.UDP)
        icmp_tool = TraceNET(Engine(topo, policy=policy), "v",
                             protocol=Protocol.ICMP)
        udp_tool = TraceNET(Engine(topo, policy=policy), "v",
                            protocol=Protocol.UDP)
        icmp_found = {s.prefix for s in
                      (icmp_tool.trace(target), )[0].subnets if s.size > 1}
        udp_found = {s.prefix for s in udp_tool.trace(target).subnets
                     if s.size > 1}
        assert len(udp_found) < len(icmp_found)


class TestBudget:
    def test_budget_propagates(self):
        topo, lan, dest, target = path_topology()
        tool = TraceNET(Engine(topo), "v", budget=ProbeBudget(limit=5))
        with pytest.raises(ProbeBudgetExceeded):
            tool.trace(target)


class TestResultRendering:
    def test_describe_contains_hops_and_subnets(self):
        topo, lan, dest, target = path_topology()
        tool = TraceNET(Engine(topo), "v")
        text = tool.trace(target).describe()
        assert "tracenet to" in text
        assert "/29" in text
        assert "destination" in text

    def test_to_dict_roundtrips_json(self):
        import json
        topo, lan, dest, target = path_topology()
        tool = TraceNET(Engine(topo), "v")
        payload = tool.trace(target).to_dict()
        encoded = json.dumps(payload)
        decoded = json.loads(encoded)
        assert decoded["reached"] is True
        assert decoded["hops"][-1]["is_destination"] is True
