"""Unit tests for subnet exploration (Algorithm 1) and H1/H9."""

import pytest

from conftest import address_on
from repro.core.exploration import explore_subnet, unpositioned_subnet
from repro.core.positioning import position_subnet
from repro.netsim import Engine, ResponsePolicy, TopologyBuilder
from repro.probing import Prober


def explore_from(topo, policy, pivot_router, lan, hop, prev="R2"):
    """Position and explore the subnet hosting pivot_router's LAN iface."""
    engine = Engine(topo, policy=policy)
    prober = Prober(engine, "v")
    pivot = topo.routers[pivot_router].interface_on(lan.subnet_id).address
    u = address_on(topo, prev, "R1")
    position = position_subnet(prober, u, pivot, hop)
    assert position is not None
    return explore_subnet(prober, position), prober


def lan_topology(length=29, members=("R2", "R3", "R4", "R6"), policy=None):
    builder = TopologyBuilder("lan")
    builder.link("R1", "R2")
    lan = builder.lan(list(members), length=length)
    builder.edge_host("v", "R1")
    return builder.build(), lan


class TestPointToPoint:
    def _topo(self, length):
        builder = TopologyBuilder("p2p")
        builder.link("R1", "R2")
        link = builder.link("R2", "R3", length=length)
        builder.edge_host("v", "R1")
        return builder.build(), link

    @pytest.mark.parametrize("length", [30, 31])
    def test_exact_collection(self, length):
        topo, link = self._topo(length)
        engine = Engine(topo)
        prober = Prober(engine, "v")
        pivot = topo.routers["R3"].interface_on(link.subnet_id).address
        u = address_on(topo, "R2", "R1")
        position = position_subnet(prober, u, pivot, 3)
        subnet = explore_subnet(prober, position)
        assert subnet.prefix == link.prefix
        assert subnet.members == set(link.addresses)


class TestMultiAccess:
    def test_full_lan_collected(self):
        topo, lan = lan_topology(length=29)
        subnet, _ = explore_from(topo, None, "R4", lan, hop=3)
        assert subnet.members == set(lan.addresses)
        assert subnet.prefix == lan.prefix

    def test_contra_pivot_identified(self):
        topo, lan = lan_topology(length=29)
        subnet, _ = explore_from(topo, None, "R4", lan, hop=3)
        ingress_lan_iface = topo.routers["R2"].interface_on(lan.subnet_id).address
        # The ingress-side interface is either recorded as contra-pivot or
        # swallowed by the H5 mate shortcut; it must be a member regardless.
        assert ingress_lan_iface in subnet.members
        if subnet.contra_pivot is not None:
            assert subnet.contra_pivot == ingress_lan_iface

    def test_fringes_excluded(self):
        builder = TopologyBuilder("fringe")
        builder.link("R1", "R2")
        lan = builder.lan(["R2", "R3", "R4", "R6"], length=29)
        close = builder.link("R2", "R7")
        far = builder.link("R4", "R5")
        builder.edge_host("v", "R1")
        topo = builder.build()
        subnet, _ = explore_from(topo, None, "R4", lan, hop=3)
        assert subnet.members == set(lan.addresses)
        for fringe in list(close.addresses) + list(far.addresses):
            assert fringe not in subnet.members

    def test_sparse_lan_underestimated(self):
        """Half-utilization (lines 19-21) stops growth of sparse subnets."""
        builder = TopologyBuilder("sparse")
        builder.link("R1", "R2")
        lan = builder.lan({"R2": "10.1.0.1", "R3": "10.1.0.2"},
                          prefix="10.1.0.0/28")
        builder.edge_host("v", "R1")
        topo = builder.build()
        subnet, _ = explore_from(topo, None, "R3", lan, hop=3)
        # Only 2 of 16 addresses in use: the observable subnet is /30.
        assert subnet.prefix.length > 28
        assert subnet.stop_reason == "under-utilized"

    def test_scattered_sparse_lan_collects_pivot_only(self):
        builder = TopologyBuilder("scatter")
        builder.link("R1", "R2")
        lan = builder.lan({"R2": "10.1.0.1", "R3": "10.1.0.9"},
                          prefix="10.1.0.0/28")
        builder.edge_host("v", "R1")
        topo = builder.build()
        subnet, _ = explore_from(topo, None, "R3", lan, hop=3)
        assert subnet.size <= 2
        assert subnet.prefix.length >= 29

    def test_partially_silent_lan_shrinks_to_responsive(self):
        topo, lan = lan_topology(length=28,
                                 members=("R2", "R3", "R4", "R6", "R7", "R8"))
        policy = ResponsePolicy()
        silent = sorted(lan.addresses)[-2:]
        policy.silence_interfaces(silent)
        subnet, _ = explore_from(topo, policy, "R4", lan, hop=3)
        assert all(address not in subnet.members for address in silent)
        assert subnet.prefix.length >= lan.prefix.length

    def test_probe_accounting_recorded(self):
        topo, lan = lan_topology()
        subnet, prober = explore_from(topo, None, "R4", lan, hop=3)
        assert subnet.probes_used > 0
        assert subnet.probes_used <= prober.stats.sent


class TestStopReasons:
    def test_under_utilized_reason(self):
        topo, lan = lan_topology(length=29, members=("R2", "R3", "R4"))
        subnet, _ = explore_from(topo, None, "R3", lan, hop=3)
        assert subnet.stop_reason in ("under-utilized", "prefix-floor")

    def test_shrunk_reason_on_fringe(self):
        builder = TopologyBuilder("shrink")
        builder.link("R1", "R2")
        # Fully utilized /30 whose sibling space holds a foreign subnet at
        # equal distance: growth to /29 must stop-and-shrink.
        link = builder.link("R2", "R3", prefix="10.1.0.0/30")
        builder.lan({"R2": "10.1.0.5", "R7": "10.1.0.6"}, prefix="10.1.0.4/30")
        builder.edge_host("v", "R1")
        topo = builder.build()
        engine = Engine(topo)
        prober = Prober(engine, "v")
        pivot = topo.routers["R3"].interface_on(link.subnet_id).address
        u = address_on(topo, "R2", "R1")
        position = position_subnet(prober, u, pivot, 3)
        subnet = explore_subnet(prober, position)
        assert subnet.prefix == link.prefix
        assert subnet.stop_reason.startswith("shrunk:")

    def test_min_prefix_floor(self):
        topo, lan = lan_topology(length=29)
        engine = Engine(topo)
        prober = Prober(engine, "v")
        pivot = topo.routers["R4"].interface_on(lan.subnet_id).address
        u = address_on(topo, "R2", "R1")
        position = position_subnet(prober, u, pivot, 3)
        subnet = explore_subnet(prober, position, min_prefix_length=30)
        assert subnet.prefix.length >= 30


class TestH1Shrink:
    def test_false_positives_removed_on_shrink(self):
        """Members admitted at a level that later stops must be dropped
        back to the last intact prefix."""
        builder = TopologyBuilder("h1")
        builder.link("R1", "R2")
        link = builder.link("R2", "R3", prefix="10.1.0.0/30")
        builder.lan({"R2": "10.1.0.5", "R7": "10.1.0.6"}, prefix="10.1.0.4/30")
        builder.edge_host("v", "R1")
        topo = builder.build()
        engine = Engine(topo)
        prober = Prober(engine, "v")
        pivot = topo.routers["R3"].interface_on(link.subnet_id).address
        u = address_on(topo, "R2", "R1")
        position = position_subnet(prober, u, pivot, 3)
        subnet = explore_subnet(prober, position)
        for member in subnet.members:
            assert member in link.prefix


class TestH9Boundaries:
    def test_unpositioned_subnet(self):
        topo, lan = lan_topology()
        engine = Engine(topo)
        prober = Prober(engine, "v")
        subnet = unpositioned_subnet(prober, 12345, 4)
        assert subnet.size == 1
        assert not subnet.positioned
        assert subnet.prefix.length == 32
        assert subnet.stop_reason == "unpositioned"
