"""Robustness: the headline results must hold across seeds, and the
collector must never crash or violate invariants on randomly perturbed
networks (fuzzing over topologies *and* responsiveness policies)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TraceNET
from repro.evaluation import (
    annotate_unresponsive,
    collected_prefixes,
    match_subnets,
)
from repro.netsim import Engine, LoadBalancer, LoadBalancingMode, ResponsePolicy
from repro.topogen import internet2, random_topo


@pytest.mark.slow
class TestSeedRobustness:
    @pytest.mark.parametrize("seed", [1, 7, 23, 101, 555])
    def test_internet2_rates_stable(self, seed):
        """Table 1's headline rates are a property of the experiment, not
        of one lucky seed."""
        network = internet2.build(seed=seed)
        tool = TraceNET(Engine(network.topology, policy=network.policy),
                        "utdallas")
        tool.trace_many(internet2.targets(network, seed=seed))
        report = match_subnets(network.ground_truth,
                               collected_prefixes(tool.collected_subnets))
        annotate_unresponsive(report, network.records)
        assert 0.62 <= report.exact_match_rate() <= 0.88, seed
        assert report.exact_match_rate(exclude_unresponsive=True) >= 0.88, seed


class TestPolicyFuzz:
    @given(seed=st.integers(min_value=0, max_value=10_000),
           silent_fraction=st.floats(min_value=0.0, max_value=0.5),
           firewall_count=st.integers(min_value=0, max_value=4))
    @settings(max_examples=12, deadline=None)
    def test_random_policy_never_breaks_invariants(self, seed,
                                                   silent_fraction,
                                                   firewall_count):
        """Arbitrary silence/firewalling may degrade collection but must
        never crash it or produce structurally invalid subnets."""
        network = random_topo.build_random(seed, max_p2p=8, max_lans=3)
        rng = random.Random(seed)
        policy = ResponsePolicy(seed=seed)
        addresses = network.topology.all_interface_addresses
        silent = rng.sample(addresses,
                            int(len(addresses) * silent_fraction))
        policy.silence_interfaces(silent)
        subnet_ids = sorted(network.topology.subnets)
        for subnet_id in rng.sample(subnet_ids,
                                    min(firewall_count, len(subnet_ids))):
            policy.firewall_subnet(subnet_id)

        tool = TraceNET(Engine(network.topology, policy=policy), "vantage",
                        max_hops=25)
        for target in network.pick_targets(rng)[:6]:
            result = tool.trace(target)
            assert len(result.hops) <= 25
        for subnet in tool.collected_subnets:
            assert subnet.pivot in subnet.members
            assert all(m in subnet.prefix for m in subnet.members)
            assert 0 < subnet.prefix.length <= 32
            # Silenced addresses cannot be *collected* (they never answer
            # direct probes).
            assert not (set(silent) & (subnet.members - {subnet.pivot}))

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=8, deadline=None)
    def test_per_packet_balancing_never_breaks_invariants(self, seed):
        """Per-packet ECMP (the hostile §3.7 case) may shrink subnets but
        must never produce invalid ones."""
        network = random_topo.build_random(seed, max_p2p=10, max_lans=3)
        balancer = LoadBalancer(LoadBalancingMode.PER_PACKET, seed=seed)
        tool = TraceNET(
            Engine(network.topology, policy=network.policy,
                   balancer=balancer),
            "vantage", max_hops=25)
        rng = random.Random(seed)
        for target in network.pick_targets(rng)[:5]:
            tool.trace(target)
        for subnet in tool.collected_subnets:
            assert subnet.pivot in subnet.members
            assert all(m in subnet.prefix for m in subnet.members)


class TestDeterminism:
    def test_identical_runs_identical_results(self):
        """Two engines over the same network give byte-identical surveys."""
        network = internet2.build(seed=3)
        targets = internet2.targets(network, seed=3)[:40]
        snapshots = []
        for _ in range(2):
            tool = TraceNET(Engine(network.topology, policy=network.policy),
                            "utdallas")
            tool.trace_many(targets)
            snapshots.append(sorted(
                (str(s.prefix), tuple(sorted(s.members)))
                for s in tool.collected_subnets))
        assert snapshots[0] == snapshots[1]

    def test_rate_limiters_stateful_unless_reset(self):
        """Buckets deliberately persist across engines (a live network does
        not reset between runs); resetting restores reproducibility."""
        from repro.netsim import policy_from_dict, policy_to_dict
        from repro.topogen import build_internet
        internet = build_internet(seed=5, scale=0.1)
        targets = [t for group in internet.targets(seed=5, per_isp=5).values()
                   for t in group]

        prefix_sets = []
        for _ in range(2):
            policy = policy_from_dict(policy_to_dict(internet.policy))
            tool = TraceNET(Engine(internet.topology, policy=policy), "rice")
            tool.trace_many(targets)
            prefix_sets.append({str(s.prefix) for s in tool.collected_subnets})
        assert prefix_sets[0] == prefix_sets[1]

    def test_reset_rate_limiters_restores_full_buckets(self):
        from repro.netsim import Protocol, ResponsePolicy
        policy = ResponsePolicy().rate_limit_router("R1", capacity=1,
                                                    refill_per_tick=0)
        assert policy.router_responds("R1", Protocol.ICMP, now=1)
        assert not policy.router_responds("R1", Protocol.ICMP, now=1)
        policy.reset_rate_limiters()
        assert policy.router_responds("R1", Protocol.ICMP, now=1)
