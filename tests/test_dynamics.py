"""Seeded network dynamics: schedules, engine invalidation, churn seam.

The robustness contract under test: a network mutating *mid-survey* must
never leave the engine serving stale cached paths (differential tests
against a freshly built engine), must keep the batched probe path
byte-identical to the serial one across mutation epochs, and must keep
every fault/retry/stop-set knob deterministic and replayable.
"""

from __future__ import annotations

import random

import pytest

from repro.core import TraceNET
from repro.events import EventBus, ProbeRetried, TopologyMutated
from repro.netsim import Engine, TopologyBuilder
from repro.netsim.dynamics import (
    MutationSchedule,
    NetworkDynamics,
    ScheduledMutation,
)
from repro.netsim.packet import Probe
from repro.netsim.serialize import (
    policy_from_dict,
    policy_to_dict,
    topology_from_dict,
    topology_to_dict,
)
from repro.probing import Prober, RetryPolicy, StopSet
from repro.topogen import geant
from repro.transport import (
    FaultInjectingTransport,
    MutatingTransport,
    RecordingTransport,
    SimulatorTransport,
)
from repro.transport.churn import find_mutating


@pytest.fixture(scope="module")
def geant_network():
    return geant.build(seed=2010)


def _schedule(topology, seed=7, count=4, start=50, interval=60):
    return MutationSchedule.generate(topology, seed=seed, start=start,
                                     interval=interval, count=count)


class TestMutationSchedule:
    def test_generation_is_deterministic(self, geant_network):
        first = _schedule(geant_network.topology)
        second = _schedule(geant_network.topology)
        assert first.to_dict() == second.to_dict()
        assert len(first) > 0

    def test_seed_changes_schedule(self, geant_network):
        assert (_schedule(geant_network.topology, seed=1).to_dict()
                != _schedule(geant_network.topology, seed=2).to_dict())

    def test_round_trip(self, geant_network):
        schedule = _schedule(geant_network.topology)
        restored = MutationSchedule.from_dict(schedule.to_dict())
        assert restored.to_dict() == schedule.to_dict()

    def test_mutations_ordered_by_epoch(self, geant_network):
        schedule = _schedule(geant_network.topology)
        epochs = [(m.epoch, m.sequence) for m in schedule]
        assert epochs == sorted(epochs)

    def test_details_name_dirty_prefixes(self, geant_network):
        """Every non-global mutation tells the radar what it touched."""
        schedule = MutationSchedule.generate(
            geant_network.topology, seed=3, count=10, start=10, interval=10)
        for mutation in schedule:
            if mutation.kind in ("link-down", "link-up"):
                assert "prefix" in mutation.detail
            elif mutation.kind in ("router-down", "router-up"):
                assert mutation.detail.get("prefixes")
            elif mutation.kind == "renumber":
                assert "old_prefix" in mutation.detail
                assert "new_prefix" in mutation.detail
            elif mutation.kind == "resize":
                assert "old_prefix" in mutation.detail
                assert "new_prefix" in mutation.detail

    def test_scheduled_mutation_round_trip(self):
        mutation = ScheduledMutation(epoch=5, sequence=1, kind="ecmp",
                                     target="R1", detail={"mode": "rotate"})
        assert ScheduledMutation.from_dict(mutation.to_dict()) == mutation


def _battery(topology, source, record_route=False):
    """Probes to every interface at a ladder of TTLs."""
    probes = []
    for dst in sorted(topology.all_interface_addresses):
        for ttl in (1, 3, 8, 30):
            probes.append(Probe(src=source, dst=dst, ttl=ttl,
                                record_route=record_route))
    return probes


def _response_keys(responses):
    return [(r.kind.name, r.source, r.responder, r.record_route)
            if r is not None else None for r in responses]


class TestEngineInvalidation:
    """Differential: a mutated engine answers like a freshly built one."""

    @pytest.fixture()
    def mutated(self, geant_network):
        # Private clones: the schedule mutates the topology in place and
        # the rate limiters are stateful — the shared fixture stays pure.
        topology = topology_from_dict(topology_to_dict(
            geant_network.topology))
        policy = policy_from_dict(policy_to_dict(geant_network.policy))
        # Exercise the rate-limit plane too: a drained/stale bucket must
        # survive mutation-driven cache invalidation identically.
        router_id = sorted(topology.routers)[0]
        policy.rate_limit_router(router_id, capacity=4, refill_per_tick=0.5)
        engine = Engine(topology, policy=policy)
        dynamics = NetworkDynamics(engine, _schedule(topology, count=6))
        source = engine.topology.hosts["utdallas"].address
        # Drive real probes between epochs so mutations land on a warm
        # path cache — the staleness the version stamps must catch.
        rng = random.Random(9)
        addresses = sorted(engine.topology.all_interface_addresses)
        fired = 0
        for count in range(0, 600, 25):
            fired += len(dynamics.advance(count))
            probe = Probe(src=source, dst=rng.choice(addresses),
                          ttl=rng.randrange(1, 30))
            engine.send(probe)
        fired += len(dynamics.advance(10_000))
        assert fired == len(dynamics.schedule)
        return engine, source, dynamics

    def _fresh_twin(self, engine, dynamics):
        """A new engine built from the mutated network's serialized state."""
        topology = topology_from_dict(topology_to_dict(engine.topology))
        policy = policy_from_dict(policy_to_dict(engine.policy))
        twin = Engine(topology, policy=policy)
        # ECMP mode flips live on the balancer, outside the serialized
        # state — replay them so the twin routes the same flows.
        for mutation in dynamics.applied:
            if mutation.kind == "ecmp":
                twin.balancer.set_mode(
                    mutation.target,
                    engine.balancer.mode_of(mutation.target))
        twin.idle(engine.clock)
        return twin

    def test_send_matches_fresh_engine(self, mutated):
        engine, source, dynamics = mutated
        engine.policy.reset_rate_limiters()
        twin = self._fresh_twin(engine, dynamics)
        battery = _battery(engine.topology, source)
        assert _response_keys([engine.send(p) for p in battery]) == \
            _response_keys([twin.send(p) for p in battery])

    def test_send_many_matches_fresh_engine(self, mutated):
        engine, source, dynamics = mutated
        engine.policy.reset_rate_limiters()
        twin = self._fresh_twin(engine, dynamics)
        battery = _battery(engine.topology, source)
        assert _response_keys(engine.send_many(battery)) == \
            _response_keys(twin.send_many(battery))

    def test_record_route_matches_fresh_engine(self, mutated):
        engine, source, dynamics = mutated
        engine.policy.reset_rate_limiters()
        twin = self._fresh_twin(engine, dynamics)
        battery = _battery(engine.topology, source, record_route=True)
        assert _response_keys(engine.send_many(battery)) == \
            _response_keys(twin.send_many(battery))


class TestMutatingTransport:
    def _build(self, network, events=None, count=4):
        engine = Engine(network.topology, policy=network.policy)
        schedule = _schedule(network.topology, count=count)
        dynamics = NetworkDynamics(engine, schedule)
        return MutatingTransport(SimulatorTransport(engine), schedule,
                                 dynamics=dynamics, events=events), engine

    def test_batched_equals_serial_across_epochs(self):
        """send_many split at mutation boundaries == one-by-one sends."""
        network = geant.build(seed=2010)
        serial, engine_a = self._build(network)
        batched, _ = self._build(geant.build(seed=2010))
        source = engine_a.topology.hosts["utdallas"].address
        battery = _battery(engine_a.topology, source)
        serial_responses = [serial.send(p) for p in battery]
        batched_responses = batched.send_many(battery)
        assert _response_keys(serial_responses) == \
            _response_keys(batched_responses)
        assert serial.mutation_epoch == batched.mutation_epoch > 0

    def test_events_derive_from_schedule(self, geant_network):
        """Live apply and dynamics-free replay emit the same events."""
        seen_live, seen_replay = [], []
        live_bus, replay_bus = EventBus(), EventBus()
        live_bus.subscribe(seen_live.append)
        replay_bus.subscribe(seen_replay.append)

        live, engine = self._build(geant.build(seed=2010), events=live_bus)
        schedule = MutationSchedule.from_dict(live.schedule.to_dict())
        # Replay side: no engine, no dynamics — the journal would answer.
        replay = MutatingTransport(_NullTransport(), schedule,
                                   dynamics=None, events=replay_bus)
        source = engine.topology.hosts["utdallas"].address
        battery = _battery(engine.topology, source)
        for probe in battery:
            live.send(probe)
            replay.send(probe)
        live_events = [(e.epoch, e.sequence, e.kind, e.target, e.detail)
                       for e in seen_live
                       if isinstance(e, TopologyMutated)]
        replay_events = [(e.epoch, e.sequence, e.kind, e.target, e.detail)
                         for e in seen_replay
                         if isinstance(e, TopologyMutated)]
        assert live_events == replay_events
        assert live_events  # churn actually fired

    def test_find_mutating_walks_wrapper_chain(self, geant_network):
        engine = Engine(geant_network.topology, policy=geant_network.policy)
        schedule = _schedule(geant_network.topology)
        churn = MutatingTransport(
            FaultInjectingTransport(SimulatorTransport(engine),
                                    drop_rate=0.1),
            schedule, dynamics=NetworkDynamics(engine, schedule))
        recording = RecordingTransport(churn, _DevNull())
        assert find_mutating(recording) is churn
        assert find_mutating(SimulatorTransport(engine)) is None


class _NullTransport:
    """Answers every probe with silence (stands in for a journal)."""

    def send(self, probe):
        return None

    def send_many(self, probes):
        return [None] * len(probes)


class _DevNull:
    def write(self, text):
        return len(text)

    def flush(self):
        pass

    def close(self):
        pass


class TestFaultBursts:
    def _line_transport(self, line_engine, **kwargs):
        return FaultInjectingTransport(SimulatorTransport(line_engine),
                                       **kwargs)

    def _probe(self, line_engine, ttl=3):
        source = line_engine.topology.hosts["vantage"].address
        dst = max(line_engine.topology.all_interface_addresses)
        return Probe(src=source, dst=dst, ttl=ttl)

    def test_burst_off_matches_legacy_stream(self, line_topology):
        """burst_enter=0 must not perturb the legacy drop RNG stream."""
        legacy = self._line_transport(Engine(line_topology), drop_rate=0.3,
                                      seed=11)
        extended = self._line_transport(Engine(line_topology), drop_rate=0.3,
                                        seed=11, burst_exit=0.9,
                                        burst_drop_rate=0.5)
        probes = [self._probe(legacy.engine) for _ in range(200)]
        assert _response_keys([legacy.send(p) for p in probes]) == \
            _response_keys([extended.send(p) for p in probes])

    def test_bursts_are_deterministic_and_counted(self, line_topology):
        kwargs = dict(burst_enter=0.2, burst_exit=0.3, seed=4)
        first = self._line_transport(Engine(line_topology), **kwargs)
        second = self._line_transport(Engine(line_topology), **kwargs)
        probes = [self._probe(first.engine) for _ in range(300)]
        assert _response_keys([first.send(p) for p in probes]) == \
            _response_keys([second.send(p) for p in probes])
        metrics = first.backend_metrics()
        assert metrics["fault_bursts_total"] > 0
        assert metrics["fault_burst_drops"] > 0
        assert first.burst_drops == metrics["fault_burst_drops"]

    def test_intermittent_duty_cycle(self, line_topology):
        engine = Engine(line_topology)
        dst = max(engine.topology.all_interface_addresses)
        transport = self._line_transport(engine,
                                         intermittent={dst: (2, 3)})
        probe = self._probe(engine, ttl=30)
        pattern = [transport.send(probe) is not None for _ in range(10)]
        assert pattern == [True, True, False, False, False] * 2
        assert transport.intermittent_drops == 6

    def test_intermittent_validation(self, line_engine):
        with pytest.raises(ValueError):
            self._line_transport(line_engine, intermittent={1: (0, 3)})

    def test_burst_rate_validation(self, line_engine):
        with pytest.raises(ValueError):
            self._line_transport(line_engine, burst_enter=1.5)


class TestRetryPolicy:
    def test_coerce_accepts_legacy_int(self):
        assert RetryPolicy.coerce(2) == RetryPolicy(attempts=2)
        policy = RetryPolicy(attempts=3, backoff_ticks=(2, 5))
        assert RetryPolicy.coerce(policy) is policy

    def test_backoff_schedule_repeats_last_entry(self):
        policy = RetryPolicy(attempts=4, backoff_ticks=(2, 5))
        assert [policy.backoff_for(a) for a in (1, 2, 3, 4)] == [2, 5, 5, 5]
        assert RetryPolicy().backoff_for(1) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_ticks=(-3,))

    def test_default_policy_is_budget_identical(self, geant_network):
        """RetryPolicy() collects the byte-identical archive retries=1 did."""
        from repro.mapping import archive_to_dict
        from repro.runner import SurveyRunner

        targets = geant.targets(geant_network, seed=2010)[:6]
        archives = []
        for retries in (1, RetryPolicy()):
            engine = Engine(geant_network.topology,
                            policy=policy_from_dict(
                                policy_to_dict(geant_network.policy)))
            # Real loss so the retry path actually runs in both variants.
            lossy = FaultInjectingTransport(SimulatorTransport(engine),
                                            drop_rate=0.15, seed=3)
            tool = TraceNET(lossy, "utdallas")
            tool.prober.retry_policy = RetryPolicy.coerce(retries)
            tool.prober.retries = tool.prober.retry_policy.attempts
            runner = SurveyRunner(tool)
            runner.run(targets)
            archives.append(archive_to_dict(runner.archive))
        assert archives[0] == archives[1]

    def test_backoff_idles_transport_and_emits_retry(self, line_topology):
        engine = Engine(line_topology)
        lossy = FaultInjectingTransport(SimulatorTransport(engine),
                                        drop_rate=1.0, seed=0)
        events = EventBus()
        retried = []
        events.subscribe(retried.append)
        prober = Prober(lossy, "vantage", events=events,
                        retries=RetryPolicy(attempts=2, backoff_ticks=(7,)))
        dst = max(engine.topology.all_interface_addresses)
        before = engine.clock
        assert prober.probe(dst, 2) is None
        # One tick per wire probe plus 7 idle ticks before each retry.
        assert engine.clock - before == 3 + 2 * 7
        attempts = [e.attempt for e in retried
                    if isinstance(e, ProbeRetried)]
        assert attempts == [1, 2]


class TestStopSetEpochs:
    def test_advance_epoch_invalidates_lazily(self):
        stop = StopSet()
        ip_a = 0x0A000001
        stop.record(ip_a, [(1, 0x0A000101), (2, 0x0A000201)])
        assert stop.lookup(ip_a) is not None
        stop.advance_epoch()
        assert stop.lookup(ip_a) is None
        assert stop.invalidated == 1
        # Re-recording after the epoch bump works and serves again.
        stop.record(ip_a, [(1, 0x0A000102)])
        assert stop.lookup(ip_a) == ((1, 0x0A000102),)

    def test_epoch_survives_serialization(self):
        stop = StopSet()
        stop.record(0x0A000001, [(1, 0x0A000101)])
        stop.advance_epoch()
        stop.record(0x0B000001, [(1, 0x0B000101)])
        restored = StopSet.from_dict(stop.to_dict())
        assert restored.epoch == 1
        assert restored.lookup(0x0B000001) is not None
        assert restored.lookup(0x0A000001) is None

    def test_merge_skips_donor_stale_entries(self):
        donor = StopSet()
        donor.record(0x0A000001, [(1, 0x0A000101)])
        donor.advance_epoch()
        donor.record(0x0B000001, [(1, 0x0B000101)])
        merged = StopSet()
        merged.merge(donor)
        assert merged.lookup(0x0B000001) is not None
        assert merged.lookup(0x0A000001) is None

    def test_churn_advances_collector_stop_set(self):
        """Regression: a flapped link's stale path must not keep
        suppressing probes after the mutation (the pre-epoch bug hid
        post-churn path changes behind Doubletree entries)."""
        builder = TopologyBuilder("stub")
        builder.link("R1", "R2")
        builder.link("R2", "R3")
        stub = builder.lan(["R3", "R4"], length=29)
        builder.edge_host("vantage", "R1")
        topology = builder.build()
        engine = Engine(topology)
        schedule = MutationSchedule(
            [ScheduledMutation(epoch=1, sequence=0, kind="ecmp",
                               target="R2", detail={})])
        dynamics = NetworkDynamics(engine, schedule)
        churn = MutatingTransport(SimulatorTransport(engine), schedule,
                                  dynamics=dynamics)
        stop = StopSet()
        tool = TraceNET(churn, "vantage", stop_set=stop)
        target = min(stub.addresses)
        tool.trace(target)
        first_epoch = stop.epoch
        tool.trace(target)
        assert stop.epoch == first_epoch + 1
