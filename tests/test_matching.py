"""Unit tests for ground-truth matching/classification (Tables 1-2 logic)."""

from repro.evaluation.matching import (
    Category,
    annotate_unresponsive,
    collected_prefixes,
    match_subnets,
)
from repro.netsim import Prefix
from repro.topogen.spec import SubnetRecord


def P(text):
    return Prefix.parse(text)


class TestCategories:
    def test_exact(self):
        report = match_subnets([P("10.0.0.0/30")], [P("10.0.0.0/30")])
        assert report.outcomes[0].category == Category.EXACT

    def test_miss(self):
        report = match_subnets([P("10.0.0.0/30")], [])
        assert report.outcomes[0].category == Category.MISS

    def test_miss_when_no_overlap(self):
        report = match_subnets([P("10.0.0.0/30")], [P("10.0.1.0/30")])
        assert report.outcomes[0].category == Category.MISS
        assert report.extras == [P("10.0.1.0/30")]

    def test_under(self):
        report = match_subnets([P("10.0.0.0/28")], [P("10.0.0.0/30")])
        outcome = report.outcomes[0]
        assert outcome.category == Category.UNDER
        assert outcome.best_collected == P("10.0.0.0/30")

    def test_split(self):
        report = match_subnets([P("10.0.0.0/28")],
                               [P("10.0.0.0/30"), P("10.0.0.8/30")])
        assert report.outcomes[0].category == Category.SPLIT

    def test_over_single_original(self):
        report = match_subnets([P("10.0.0.0/30")], [P("10.0.0.0/29")])
        assert report.outcomes[0].category == Category.OVER

    def test_merged_two_originals(self):
        report = match_subnets([P("10.0.0.0/30"), P("10.0.0.4/30")],
                               [P("10.0.0.0/29")])
        assert all(o.category == Category.MERGED for o in report.outcomes)

    def test_sab_rule_exact_plus_over(self):
        """Paper: when Sa is collected exactly AND Sab is also collected,
        Sa is exact and Sb is overestimated."""
        report = match_subnets(
            [P("10.0.0.0/30"), P("10.0.0.4/30")],
            [P("10.0.0.0/30"), P("10.0.0.0/29")],
        )
        by_original = {o.original: o.category for o in report.outcomes}
        assert by_original[P("10.0.0.0/30")] == Category.EXACT
        assert by_original[P("10.0.0.4/30")] == Category.OVER

    def test_slash32_collected_ignored(self):
        report = match_subnets([P("10.0.0.0/30")], [P("10.0.0.1/32")])
        assert report.outcomes[0].category == Category.MISS

    def test_duplicate_collected_blocks_deduplicated(self):
        report = match_subnets([P("10.0.0.0/30")],
                               [P("10.0.0.0/30"), P("10.0.0.0/30")])
        assert report.outcomes[0].category == Category.EXACT


class TestReportAggregation:
    def _report(self):
        original = [P("10.0.0.0/30"), P("10.0.0.4/30"), P("10.0.0.16/28"),
                    P("10.0.1.0/29")]
        collected = [P("10.0.0.0/30"), P("10.0.0.16/30")]
        return match_subnets(original, collected)

    def test_counts(self):
        report = self._report()
        assert report.count(Category.EXACT) == 1
        assert report.count(Category.MISS) == 2
        assert report.count(Category.UNDER) == 1

    def test_exact_match_rate(self):
        report = self._report()
        assert report.exact_match_rate() == 0.25

    def test_exact_match_rate_excluding_unresponsive(self):
        report = self._report()
        records = [SubnetRecord(subnet_id="x", prefix=P("10.0.0.4/30"),
                                kind="p2p", firewalled=True)]
        annotate_unresponsive(report, records)
        assert report.exact_match_rate(exclude_unresponsive=True) == 1 / 3

    def test_distribution_rows_sum(self):
        report = self._report()
        rows = report.distribution_rows()
        assert sum(rows["orgl"].values()) == 4
        categories_total = sum(
            sum(rows[name].values())
            for name in ("exmt", "miss", "miss\\unrs", "undes", "undes\\unrs",
                         "ovres", "splt", "merg")
        )
        assert categories_total == 4

    def test_annotate_unresponsive_splits_rows(self):
        report = self._report()
        records = [
            SubnetRecord(subnet_id="a", prefix=P("10.0.0.4/30"), kind="p2p",
                         firewalled=True),
            SubnetRecord(subnet_id="b", prefix=P("10.0.0.16/28"), kind="lan",
                         partially_silent=True, silent_addresses=[1]),
        ]
        annotate_unresponsive(report, records)
        rows = report.distribution_rows()
        assert rows["miss\\unrs"][30] == 1
        assert rows["undes\\unrs"][28] == 1

    def test_annotation_never_marks_exact(self):
        report = match_subnets([P("10.0.0.0/30")], [P("10.0.0.0/30")])
        records = [SubnetRecord(subnet_id="a", prefix=P("10.0.0.0/30"),
                                kind="p2p", firewalled=True)]
        annotate_unresponsive(report, records)
        assert not report.outcomes[0].unresponsive


class TestCollectedPrefixes:
    def test_filters_singletons(self):
        from repro.core.results import ObservedSubnet
        multi = ObservedSubnet(pivot=2, pivot_distance=1, members={1, 2})
        single = ObservedSubnet(pivot=9, pivot_distance=1, members={9})
        blocks = collected_prefixes([multi, single])
        assert len(blocks) == 1
