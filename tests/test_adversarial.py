"""Unit tests for the adversarial gauntlet and heuristic ablation wiring."""

import pytest

from repro.core import TraceNET
from repro.core.heuristics import ExplorationState
from repro.netsim import Engine
from repro.topogen.adversarial import build_gauntlet


@pytest.fixture(scope="module")
def gauntlet():
    return build_gauntlet(seed=5, motifs_per_kind=2)


def survey(gauntlet, disabled=frozenset()):
    engine = Engine(gauntlet.network.topology, policy=gauntlet.network.policy)
    tool = TraceNET(engine, "vantage", disabled_rules=disabled)
    tool.trace_many(gauntlet.targets)
    return tool


class TestGauntletStructure:
    def test_motif_counts(self, gauntlet):
        assert gauntlet.counts() == {"sibling-lan": 2, "far-fringe": 2,
                                     "foreign-entry": 2}

    def test_topology_valid(self, gauntlet):
        gauntlet.network.topology.validate()

    def test_targets_inside_probed_lans(self, gauntlet):
        for motif in gauntlet.motifs:
            assert motif.target in motif.probed_lan

    def test_sibling_blocks_adjacent(self, gauntlet):
        for motif in gauntlet.motifs:
            parent = motif.probed_lan.parent()
            assert any(parent.contains_prefix(block)
                       for block in motif.sibling_blocks)


class TestDisabledRules:
    def test_rule_enabled_default(self):
        state = ExplorationState(prober=None, pivot=1, pivot_distance=2)
        assert state.rule_enabled("H6")

    def test_rule_disabled(self):
        state = ExplorationState(prober=None, pivot=1, pivot_distance=2,
                                 disabled_rules=frozenset({"H6"}))
        assert not state.rule_enabled("H6")
        assert state.rule_enabled("H7")

    def test_audit_records(self):
        from repro.core.heuristics import Judgement, Verdict
        audit = []
        state = ExplorationState(prober=None, pivot=1, pivot_distance=2,
                                 audit=audit)
        judgement = Judgement(Verdict.ADD, "test")
        state.record(42, judgement)
        assert audit == [(42, judgement)]


class TestAblationEffects:
    def test_full_pipeline_exact_everywhere(self, gauntlet):
        tool = survey(gauntlet)
        for motif in gauntlet.motifs:
            views = [s for s in tool.collected_subnets
                     if s.size > 1 and s.prefix == motif.probed_lan]
            assert views, motif.kind

    def test_no_h6_merges_foreign_entry(self, gauntlet):
        tool = survey(gauntlet, frozenset({"H6"}))
        for motif in gauntlet.motifs_of("foreign-entry"):
            merged = [s for s in tool.collected_subnets
                      if s.size > 1
                      and s.prefix.length < motif.probed_lan.length
                      and s.prefix.overlaps(motif.probed_lan)]
            assert merged

    def test_no_h3_merges_sibling_lans(self, gauntlet):
        tool = survey(gauntlet, frozenset({"H3", "H4"}))
        for motif in gauntlet.motifs_of("sibling-lan"):
            merged = [s for s in tool.collected_subnets
                      if s.size > 1
                      and s.prefix.length < motif.probed_lan.length
                      and s.prefix.overlaps(motif.probed_lan)]
            assert merged

    def test_h7_is_probe_economy_not_accuracy(self, gauntlet):
        tool = survey(gauntlet, frozenset({"H7"}))
        for motif in gauntlet.motifs_of("far-fringe"):
            exact = [s for s in tool.collected_subnets
                     if s.prefix == motif.probed_lan]
            assert exact
