"""Unit tests for probe/response packet models."""

import pytest

from repro.netsim.addressing import parse_ip
from repro.netsim.packet import (
    ALIVE_RESPONSES,
    DEFAULT_TTL,
    Probe,
    Protocol,
    Response,
    ResponseType,
)

SRC = parse_ip("192.168.0.2")
DST = parse_ip("10.0.0.1")


class TestProbe:
    def test_defaults(self):
        probe = Probe(src=SRC, dst=DST)
        assert probe.ttl == DEFAULT_TTL
        assert probe.protocol == Protocol.ICMP
        assert probe.flow_id == 0

    def test_probe_ids_increase(self):
        a = Probe(src=SRC, dst=DST)
        b = Probe(src=SRC, dst=DST)
        assert b.probe_id > a.probe_id

    def test_rejects_zero_ttl(self):
        with pytest.raises(ValueError):
            Probe(src=SRC, dst=DST, ttl=0)

    def test_is_direct_large_ttl(self):
        assert Probe(src=SRC, dst=DST, ttl=DEFAULT_TTL).is_direct

    def test_is_not_direct_small_ttl(self):
        assert not Probe(src=SRC, dst=DST, ttl=3).is_direct

    def test_describe_mentions_endpoints(self):
        text = Probe(src=SRC, dst=DST, ttl=5).describe()
        assert "192.168.0.2" in text
        assert "10.0.0.1" in text
        assert "ttl=5" in text


class TestResponse:
    def _probe(self, protocol=Protocol.ICMP):
        return Probe(src=SRC, dst=DST, protocol=protocol)

    def test_alive_signal_icmp(self):
        response = Response(kind=ResponseType.ECHO_REPLY, source=DST,
                            probe=self._probe())
        assert response.is_alive_signal

    def test_alive_signal_udp_is_port_unreachable(self):
        response = Response(kind=ResponseType.PORT_UNREACHABLE, source=DST,
                            probe=self._probe(Protocol.UDP))
        assert response.is_alive_signal

    def test_alive_signal_tcp_is_rst(self):
        response = Response(kind=ResponseType.TCP_RST, source=DST,
                            probe=self._probe(Protocol.TCP))
        assert response.is_alive_signal

    def test_echo_reply_not_alive_for_udp(self):
        response = Response(kind=ResponseType.ECHO_REPLY, source=DST,
                            probe=self._probe(Protocol.UDP))
        assert not response.is_alive_signal

    def test_ttl_exceeded_flag(self):
        response = Response(kind=ResponseType.TTL_EXCEEDED, source=SRC,
                            probe=self._probe())
        assert response.is_ttl_exceeded
        assert not response.is_alive_signal

    def test_alive_responses_table_is_complete(self):
        assert set(ALIVE_RESPONSES) == set(Protocol)

    def test_describe_mentions_source(self):
        response = Response(kind=ResponseType.TTL_EXCEEDED, source=DST,
                            probe=self._probe())
        assert "10.0.0.1" in response.describe()
