"""Unit tests for the topology generators: blueprints, synthesis, ground
truth bookkeeping, and the named networks."""

import random

import pytest

from repro.netsim import Engine
from repro.topogen import (
    NetworkBlueprint,
    add_vantage,
    build_internet,
    default_profiles,
    figures,
    geant,
    internet2,
    random_topo,
    synthesize,
)
from repro.topogen.isp import scale_profiles


class TestSynthesize:
    def _blueprint(self, **kwargs):
        defaults = dict(
            name="tiny", seed=1, base="10.0.0.0/16",
            distribution={31: 3, 30: 8, 29: 3, 28: 1},
            backbone_routers=4,
        )
        defaults.update(kwargs)
        return NetworkBlueprint(**defaults)

    def test_distribution_matches_ground_truth(self):
        network = synthesize(self._blueprint())
        lengths = sorted(p.length for p in network.ground_truth)
        assert lengths.count(31) == 3
        assert lengths.count(30) == 8
        assert lengths.count(29) == 3
        assert lengths.count(28) == 1

    def test_topology_validates(self):
        network = synthesize(self._blueprint())
        network.topology.validate()

    def test_deterministic_given_seed(self):
        a = synthesize(self._blueprint())
        b = synthesize(self._blueprint())
        assert [str(p) for p in a.ground_truth] == [str(p) for p in b.ground_truth]
        assert sorted(a.topology.routers) == sorted(b.topology.routers)

    def test_different_seed_differs(self):
        a = synthesize(self._blueprint(seed=1))
        b = synthesize(self._blueprint(seed=2))
        assert [str(p) for p in a.ground_truth] != [str(p) for p in b.ground_truth]

    def test_firewalled_subnets_in_policy(self):
        network = synthesize(self._blueprint(firewalled={30: 2}))
        firewalled = [r for r in network.records if r.firewalled]
        assert len(firewalled) == 2
        for record in firewalled:
            assert network.policy.subnet_is_firewalled(record.subnet_id)
            assert record.unresponsive

    def test_partial_subnets_have_silent_interfaces(self):
        network = synthesize(self._blueprint(partial={29: 2}))
        partial = [r for r in network.records if r.partially_silent]
        assert len(partial) == 2
        for record in partial:
            assert record.silent_addresses
            for address in record.silent_addresses:
                assert network.policy.interface_is_silent(address)

    def test_sparse_subnets_have_two_members(self):
        network = synthesize(self._blueprint(sparse={28: 1}))
        sparse = [r for r in network.records if r.sparse][0]
        subnet = network.topology.subnets[sparse.subnet_id]
        assert len(subnet.interfaces) == 2

    def test_underutilized_subnets_cluster(self):
        network = synthesize(self._blueprint(underutilized={28: 1}))
        record = [r for r in network.records if r.underutilized][0]
        subnet = network.topology.subnets[record.subnet_id]
        addresses = sorted(subnet.addresses)
        assert len(addresses) <= subnet.prefix.host_capacity // 2 + 1
        assert addresses[-1] - addresses[0] == len(addresses) - 1  # contiguous

    def test_injection_overflow_rejected(self):
        with pytest.raises(ValueError):
            synthesize(self._blueprint(firewalled={28: 5}))

    def test_multihomed_lan_has_two_anchor_routers(self):
        network = synthesize(self._blueprint(multihomed={29: 1}))
        record = [r for r in network.records if r.multihomed][0]
        subnet = network.topology.subnets[record.subnet_id]
        multi_iface_routers = [
            router_id for router_id in subnet.router_ids
            if len(network.topology.routers[router_id].interfaces) > 1
        ]
        assert len(multi_iface_routers) >= 2

    def test_pick_targets_one_per_subnet(self):
        network = synthesize(self._blueprint())
        targets = network.pick_targets(random.Random(0))
        assert len(targets) == len(network.records)

    def test_pick_targets_prefers_responsive(self):
        network = synthesize(self._blueprint(partial={29: 2}))
        targets = set(network.pick_targets(random.Random(0)))
        silent = {a for r in network.records for a in r.silent_addresses}
        assert not (targets & silent)

    def test_responsive_interface_addresses_excludes_silent(self):
        network = synthesize(self._blueprint(partial={29: 1}))
        responsive = set(network.responsive_interface_addresses())
        silent = {a for r in network.records for a in r.silent_addresses}
        assert not (responsive & silent)


class TestVantage:
    def test_add_vantage_attaches_host(self):
        network = synthesize(NetworkBlueprint(
            name="v", seed=3, base="10.0.0.0/16",
            distribution={30: 6}, backbone_routers=3))
        host = add_vantage(network, "obs")
        assert "obs" in network.topology.hosts
        assert network.vantages["obs"] is host

    def test_vantage_stub_not_in_ground_truth(self):
        network = synthesize(NetworkBlueprint(
            name="v", seed=3, base="10.0.0.0/16",
            distribution={30: 6}, backbone_routers=3))
        host = add_vantage(network, "obs")
        stub_prefix = network.topology.subnets[host.subnet_id].prefix
        assert stub_prefix not in network.ground_truth

    def test_two_vantages_do_not_collide(self):
        network = synthesize(NetworkBlueprint(
            name="v", seed=3, base="10.0.0.0/16",
            distribution={30: 6}, backbone_routers=3))
        add_vantage(network, "a", network.border_router_ids[0])
        add_vantage(network, "b", network.border_router_ids[1])
        network.topology.validate()


class TestNamedNetworks:
    def test_internet2_distribution_matches_table1(self):
        network = internet2.build(seed=5)
        from collections import Counter
        counts = Counter(p.length for p in network.ground_truth)
        assert counts == {k: v for k, v in
                          internet2.ORIGINAL_DISTRIBUTION.items() if v}

    def test_internet2_unresponsive_counts(self):
        network = internet2.build(seed=5)
        firewalled = sum(1 for r in network.records if r.firewalled)
        partial = sum(1 for r in network.records if r.partially_silent)
        assert firewalled == sum(internet2.FIREWALLED.values())
        assert partial == sum(internet2.PARTIALLY_SILENT.values())

    def test_internet2_has_vantage(self):
        network = internet2.build(seed=5)
        assert "utdallas" in network.topology.hosts

    def test_internet2_targets_cover_every_subnet(self):
        network = internet2.build(seed=5)
        targets = internet2.targets(network, seed=5)
        assert len(targets) == 179
        covered = set()
        for target in targets:
            subnet = network.topology.subnet_containing(target)
            assert subnet is not None
            covered.add(subnet.subnet_id)
        assert len(covered) == 179

    def test_geant_distribution_matches_table2(self):
        network = geant.build(seed=5)
        from collections import Counter
        counts = Counter(p.length for p in network.ground_truth)
        assert counts == geant.ORIGINAL_DISTRIBUTION

    def test_geant_heavily_unresponsive(self):
        network = geant.build(seed=5)
        unresponsive = sum(1 for r in network.records if r.unresponsive)
        assert unresponsive == 97 + 25


class TestMultiISP:
    @pytest.fixture(scope="class")
    def internet(self):
        return build_internet(seed=9, scale=0.15)

    def test_four_isps(self, internet):
        assert sorted(internet.isps) == ["abovenet", "level3", "ntt",
                                         "sprintlink"]

    def test_three_vantages(self, internet):
        assert sorted(internet.vantages) == ["rice", "umass", "uoregon"]

    def test_validates(self, internet):
        internet.topology.validate()

    def test_isp_of_address_spaces(self, internet):
        for name, network in internet.isps.items():
            sample = network.ground_truth[0].network
            assert internet.isp_of(sample) == name

    def test_transit_space_unattributed(self, internet):
        for host in internet.vantages.values():
            assert internet.isp_of(host.address) is None

    def test_targets_drawn_per_isp(self, internet):
        targets = internet.targets(seed=1, per_isp=10)
        for name, addresses in targets.items():
            assert len(addresses) == 10
            assert all(internet.isp_of(a) == name for a in addresses)

    def test_reachability_from_every_vantage(self, internet):
        engine = Engine(internet.topology, policy=internet.policy)
        targets = internet.targets(seed=2, per_isp=3)
        for site in internet.vantages:
            for addresses in targets.values():
                for address in addresses:
                    assert engine.hop_distance(site, address) is not None, (
                        site, address)

    def test_scale_parameter_shrinks(self):
        small = default_profiles(0.1)
        full = default_profiles(1.0)
        total = lambda profiles: sum(sum(p.distribution.values())
                                     for p in profiles)
        assert total(small) < total(full)


class TestScaleProfiles:
    def test_budget_too_small_raises(self):
        with pytest.raises(ValueError, match="too small"):
            scale_profiles(500)

    def test_profile_structure(self):
        profiles = scale_profiles(1_000_000)
        assert len(profiles) == 4
        assert [p.base for p in profiles] == [
            "10.0.0.0/12", "10.16.0.0/12", "10.32.0.0/12", "10.48.0.0/12"]
        for profile in profiles:
            # Large LANs dominate the interface budget; the p2p backbone
            # mix is fixed and small.
            assert {20, 21, 22} <= set(profile.distribution)
            assert profile.distribution[31] == 24
            assert profile.distribution[30] == 40
            # Scale builds measure construction + dispatch: no stochastic
            # rate limiting, firewalls, or partial responsiveness.
            assert profile.rate_limited_fraction == 0.0
            assert not profile.firewalled
            assert not profile.partial

    def test_lan_counts_track_the_budget(self):
        small = scale_profiles(100_000)
        large = scale_profiles(1_000_000)
        lans = lambda profiles: sum(
            profiles[0].distribution[length] for length in (20, 21, 22))
        assert 8 * lans(small) <= lans(large) <= 12 * lans(small)

    def test_small_scale_build_is_reachable(self):
        network = build_internet(seed=3, profiles=scale_profiles(4000))
        assert sorted(network.isps) == ["scale0", "scale1", "scale2",
                                        "scale3"]
        engine = Engine(network.topology, policy=network.policy)
        grouped = network.targets_proportional(seed=3, total=8)
        vantage = sorted(network.vantages)[0]
        for addresses in grouped.values():
            assert addresses
            assert engine.hop_distance(vantage, addresses[0]) is not None

    def test_validate_flag_skips_flood_fill(self):
        # validate=False must hand back the same structure (correct by
        # construction) without running the O(interfaces) validation pass.
        checked = build_internet(seed=4, profiles=scale_profiles(4000))
        unchecked = build_internet(seed=4, profiles=scale_profiles(4000),
                                   validate=False)
        assert (sorted(unchecked.topology.routers)
                == sorted(checked.topology.routers))
        assert (sorted(unchecked.topology.subnets)
                == sorted(checked.topology.subnets))
        unchecked.topology.validate()  # still clean when asked


class TestFigures:
    def test_figure2_shared_lan(self):
        net = figures.figure2_network()
        lan = net.topology.subnets[net.landmarks["shared_lan"]]
        assert sorted(lan.router_ids) == ["R2", "R4", "R5", "R8"]

    def test_figure2_hosts(self):
        net = figures.figure2_network()
        assert sorted(net.hosts) == ["A", "B", "C", "D"]
        net.topology.validate()

    def test_figure3_scene(self):
        net = figures.figure3_network()
        lan = net.topology.subnets[net.landmarks["subnet_s"]]
        assert sorted(lan.router_ids) == ["R2", "R3", "R4", "R6"]


class TestRandomTopo:
    @pytest.mark.parametrize("seed", [1, 7, 23, 99])
    def test_random_networks_valid(self, seed):
        network = random_topo.build_random(seed)
        network.topology.validate()
        assert "vantage" in network.topology.hosts

    def test_random_blueprint_deterministic(self):
        a = random_topo.random_blueprint(5)
        b = random_topo.random_blueprint(5)
        assert a.distribution == b.distribution
