"""Doubletree-style stop sets: suppression without map distortion."""

import random

import pytest

from repro.core import TraceNET
from repro.events import HopObserved, ProbeSuppressed
from repro.metrics import MetricsRegistry, MetricsSink
from repro.metrics.auditor import ProbeEconomyAuditor
from repro.netsim import Engine
from repro.parallel import (
    ShardedSurveyRunner,
    archives_equivalent,
)
from repro.probing import StopSet, merge_stop_sets
from repro.probing.stopset import MIN_REMEMBERED_DEPTH
from repro.runner import SurveyRunner
from repro.topogen import geant, internet2


class TestStopSetUnit:
    def test_record_and_lookup(self):
        stop_set = StopSet(prefix_length=24)
        destination = 0x0A000001  # 10.0.0.1
        sibling = 0x0A000042     # 10.0.0.66, same /24
        stranger = 0x0A000101    # 10.0.1.1, different /24
        assert stop_set.record(destination, [(1, 111), (2, 222)])
        assert stop_set.lookup(sibling) == ((1, 111), (2, 222))
        assert stop_set.lookup(stranger) is None
        assert len(stop_set) == 1

    def test_deeper_path_replaces_shallower(self):
        stop_set = StopSet(prefix_length=24)
        destination = 0x0A000001
        assert stop_set.record(destination, [(1, 111)])
        assert stop_set.record(destination, [(1, 111), (2, 222), (3, 333)])
        assert stop_set.lookup(destination) == ((1, 111), (2, 222), (3, 333))
        # A shallower late arrival does not downgrade the memory.
        assert not stop_set.record(destination, [(1, 111), (2, 222)])
        assert stop_set.recorded == 1

    def test_empty_path_rejected(self):
        stop_set = StopSet()
        assert not stop_set.record(0x0A000001, [])
        assert len(stop_set) == 0

    def test_verification_cascade_order(self):
        stop_set = StopSet(prefix_length=24)
        destination = 0x0A000001
        stop_set.record(destination,
                        [(1, 111), (2, 222), (3, None), (4, 444)])
        # Deepest first, anonymous hops skipped, nothing below the minimum
        # depth (the check costs a probe; suppressing ttl<2 saves none).
        assert stop_set.verification_hops(destination) == [(4, 444), (2, 222)]
        assert stop_set.verification_hop(destination) == (4, 444)
        assert MIN_REMEMBERED_DEPTH == 2

    def test_too_shallow_paths_give_no_candidates(self):
        stop_set = StopSet(prefix_length=24)
        destination = 0x0A000001
        stop_set.record(destination, [(1, 111)])
        assert stop_set.verification_hops(destination) == []
        assert stop_set.verification_hop(destination) is None

    def test_roundtrip_and_merge(self):
        left = StopSet(prefix_length=24)
        left.record(0x0A000001, [(1, 111), (2, 222)])
        left.hits, left.suppressed = 3, 4
        right = StopSet(prefix_length=24)
        right.record(0x0A000001, [(1, 111), (2, 222), (3, 333)])
        right.record(0x0B000001, [(1, 111), (2, 999)])
        right.misses = 2

        merged = merge_stop_sets([left, right])
        assert len(merged) == 2
        # Deepest path wins across shards too.
        assert merged.lookup(0x0A000001) == ((1, 111), (2, 222), (3, 333))
        counters = merged.counters()
        assert counters["hits"] == 3
        assert counters["misses"] == 2
        assert counters["suppressed"] == 4

        restored = StopSet.from_dict(merged.to_dict())
        assert restored.lookup(0x0A000001) == merged.lookup(0x0A000001)
        assert restored.counters() == merged.counters()

    def test_merge_rejects_mixed_granularity(self):
        with pytest.raises(ValueError, match="prefix length"):
            merge_stop_sets([StopSet(prefix_length=24),
                             StopSet(prefix_length=28)])

    def test_invalid_prefix_length(self):
        with pytest.raises(ValueError):
            StopSet(prefix_length=0)


def survey(network, targets, stop_set=None, registry=None):
    engine = Engine(network.topology, policy=network.policy, path_cache=True)
    tool = TraceNET(engine, "utdallas", stop_set=stop_set)
    if registry is not None:
        tool.events.subscribe(MetricsSink(registry))
        tool.events.subscribe(ProbeEconomyAuditor(tool.events))
    runner = SurveyRunner(tool)
    runner.run(targets)
    return tool, runner.archive


class TestStopSetCollection:
    @pytest.mark.parametrize("module", [internet2, geant],
                             ids=["internet2", "geant"])
    def test_same_map_fewer_probes(self, module):
        network = module.build(seed=7)
        targets = network.pick_targets(random.Random(7), per_subnet=3)
        plain_tool, plain_archive = survey(network, targets)
        stop_set = StopSet()
        stopped_tool, stopped_archive = survey(network, targets,
                                               stop_set=stop_set)
        assert archives_equivalent(plain_archive, stopped_archive)
        assert stopped_tool.prober.stats.sent < plain_tool.prober.stats.sent
        assert stopped_tool.prober.stats.suppressed > 0
        counters = stop_set.counters()
        assert counters["hits"] > 0
        assert counters["suppressed"] == stopped_tool.prober.stats.suppressed

    def test_suppression_events_and_metrics(self):
        network = internet2.build(seed=7)
        targets = network.pick_targets(random.Random(7), per_subnet=3)
        registry = MetricsRegistry()
        stop_set = StopSet()
        engine = Engine(network.topology, policy=network.policy,
                        path_cache=True)
        tool = TraceNET(engine, "utdallas", stop_set=stop_set)
        events = []
        tool.events.subscribe(events.append)
        tool.events.subscribe(MetricsSink(registry))
        SurveyRunner(tool).run(targets)

        suppressions = [e for e in events if isinstance(e, ProbeSuppressed)]
        assert len(suppressions) == stop_set.suppressed
        assert all(e.reason == "stop-set" for e in suppressions)
        assert registry.value("probes_suppressed_total",
                              reason="stop-set") == stop_set.suppressed
        # Every suppressed probe still yields its HopObserved, so the trace
        # record is complete.
        observed = {(e.destination, e.ttl)
                    for e in events if isinstance(e, HopObserved)}
        assert all((e.destination, e.ttl) in observed for e in suppressions)

    def test_auditor_stays_clean(self):
        # Suppression must never make a subnet look more expensive than the
        # Section 3.6 bound: suppressed probes are free, never counted.
        network = internet2.build(seed=7)
        targets = network.pick_targets(random.Random(7), per_subnet=3)
        registry = MetricsRegistry()
        survey(network, targets, stop_set=StopSet(), registry=registry)
        assert registry.value("overhead_violations_total") == 0
        assert registry.value("probes_suppressed_total",
                              reason="stop-set") > 0


class TestParallelStopSets:
    def test_sharded_survey_merges_global_stop_set(self):
        network = internet2.build(seed=7)
        targets = internet2.targets(network, seed=7)[:20]
        plain = ShardedSurveyRunner.from_network(
            network.topology, network.policy, "utdallas", workers=2)
        stopped = ShardedSurveyRunner.from_network(
            network.topology, network.policy, "utdallas", workers=2,
            use_stop_sets=True)
        plain_outcome = plain.run(targets)
        stopped_outcome = stopped.run(targets)

        assert plain_outcome.stop_set is None
        assert stopped_outcome.stop_set is not None
        assert len(stopped_outcome.stop_set) > 0
        assert archives_equivalent(plain_outcome.archive,
                                   stopped_outcome.archive)
        counters = stopped_outcome.stop_set.counters()
        assert counters["suppressed"] == stopped_outcome.stats.suppressed

    def test_seeding_from_previous_survey(self):
        network = internet2.build(seed=7)
        targets = internet2.targets(network, seed=7)[:20]
        first = ShardedSurveyRunner.from_network(
            network.topology, network.policy, "utdallas", workers=2,
            use_stop_sets=True)
        first_outcome = first.run(targets)
        seed_payload = first_outcome.stop_set.to_dict()

        second = ShardedSurveyRunner.from_network(
            network.topology, network.policy, "utdallas", workers=2,
            use_stop_sets=True, seed_stop_set=seed_payload)
        second_outcome = second.run(targets)
        assert archives_equivalent(first_outcome.archive,
                                   second_outcome.archive)
        # The seeded survey starts warm: it can only suppress more.
        assert second_outcome.stats.suppressed >= \
            first_outcome.stats.suppressed
