"""Unit tests for the ASCII table/figure renderers."""

from repro.evaluation.crossval import IPAccounting
from repro.evaluation.matching import match_subnets
from repro.evaluation.report import (
    render_distribution_table,
    render_group_counts,
    render_histogram,
    render_ip_accounting,
    render_protocol_table,
    render_similarity,
    render_venn,
)
from repro.netsim import Prefix


def P(text):
    return Prefix.parse(text)


class TestDistributionTable:
    def _text(self):
        report = match_subnets(
            [P("10.0.0.0/30"), P("10.0.0.4/30"), P("10.0.0.16/28")],
            [P("10.0.0.0/30"), P("10.0.0.16/29")],
        )
        return render_distribution_table(report, "Table X")

    def test_title_and_rows(self):
        text = self._text()
        assert text.startswith("Table X")
        for row in ("orgl", "exmt", "miss", "undes", "ovres", "splt", "merg"):
            assert row in text

    def test_totals_column(self):
        lines = self._text().splitlines()
        orgl = next(l for l in lines if l.startswith("orgl"))
        assert orgl.split()[-1] == "3"

    def test_rates_rendered(self):
        text = self._text()
        assert "exact match rate (incl. unresponsive): 33.3%" in text


class TestProtocolTable:
    def test_rows_and_total(self):
        counts = {"sprintlink": {"icmp": 10, "udp": 4, "tcp": 0},
                  "ntt": {"icmp": 5, "udp": 1, "tcp": 0}}
        text = render_protocol_table(counts)
        assert "ICMP" in text and "UDP" in text and "TCP" in text
        assert "sprintlink" in text
        total_line = text.splitlines()[-1]
        assert "15" in total_line and "5" in total_line


class TestVenn:
    def test_regions_labelled(self):
        regions = {
            frozenset(["a"]): 3,
            frozenset(["a", "b"]): 2,
            frozenset(["a", "b", "c"]): 7,
        }
        text = render_venn(regions, ["a", "b", "c"])
        assert "a & b & c" in text
        assert "7" in text


class TestIPAccounting:
    def test_rows(self):
        rows = [IPAccounting(vantage="rice", group="ntt", targets=10,
                             subnetized=8, unsubnetized=1)]
        text = render_ip_accounting(rows)
        assert "rice" in text and "ntt" in text
        assert "10" in text and "8" in text


class TestGroupCounts:
    def test_matrix(self):
        counts = {"rice": {"ntt": 3, "level3": 5},
                  "umass": {"ntt": 2, "level3": 6}}
        text = render_group_counts(counts)
        assert "rice" in text and "umass" in text
        assert "level3" in text and "ntt" in text


class TestHistogram:
    def test_counts_and_log_bars(self):
        histograms = {"rice": {30: 100, 31: 10, 29: 0}}
        text = render_histogram(histograms)
        assert "/30" in text
        assert "100" in text
        # 100 -> log10=2 -> 8 hashes; 10 -> 4 hashes; 0 -> none.
        assert "########" in text

    def test_without_bars(self):
        text = render_histogram({"x": {30: 5}}, log_bars=False)
        assert "#" not in text


class TestSimilarityLine:
    def test_format(self):
        text = render_similarity("Internet2", 0.83, 0.86)
        assert "Internet2" in text
        assert "0.830" in text and "0.860" in text
