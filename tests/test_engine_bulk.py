"""Differential tests for the vectorized bulk ``send_many`` fast path.

The contract: ``send_many`` over the packed-key flow index (the default),
``send_many`` with ``vector_path=False`` (the legacy per-probe loop), and a
plain ``send`` loop are packet-for-packet identical — same responses, same
IP-ID streams, same rate-limit bucket drains, same record-route stamps —
and the bulk-lookup counters always reconcile
(``bulk_lookup_hits + bulk_lookup_misses == batched_probes``).
"""

from conftest import address_on
from repro.netsim import (
    Engine,
    IndirectConfig,
    IpIdMode,
    LoadBalancer,
    LoadBalancingMode,
    Probe,
    ResponsePolicy,
    TopologyBuilder,
)

#: Above the engine's bulk minimum batch size, so the vectorized path
#: engages once the flow index is warm.
CHUNK = 32


def chain(n=6, policy=None, **engine_kwargs):
    builder = TopologyBuilder("chain")
    for i in range(1, n):
        builder.link(f"R{i}", f"R{i+1}")
    builder.edge_host("v", "R1")
    topo = builder.build()
    return Engine(topo, policy=policy, **engine_kwargs), topo


def diamond(mode, seed=5, **engine_kwargs):
    """v - R1 - {R2 | R3} - R4 - R5: one ECMP split at R1."""
    builder = TopologyBuilder("diamond")
    builder.link("R1", "R2")
    builder.link("R1", "R3")
    builder.link("R2", "R4")
    builder.link("R3", "R4")
    builder.link("R4", "R5")
    builder.edge_host("v", "R1")
    topo = builder.build()
    balancer = LoadBalancer(default_mode=mode, seed=seed)
    return Engine(topo, balancer=balancer, **engine_kwargs), topo


def signature(response):
    if response is None:
        return None
    return (response.kind, response.source, response.responder,
            response.ip_id, response.record_route)


def ladder(topo, dsts, ttls=range(1, 7), repeats=3, flows=(0,),
           record_route=(False,)):
    """A survey-shaped probe sequence: repeated TTL sweeps per target."""
    src = topo.hosts["v"].address
    return [
        Probe(src=src, dst=address_on(topo, *name), ttl=ttl,
              flow_id=flow, record_route=rr)
        for _ in range(repeats)
        for name in dsts
        for ttl in ttls
        for flow in flows
        for rr in record_route
    ]


def dispatch(make_engine, probes_of, chunk=CHUNK):
    """Run one probe sequence through all three dispatch lanes.

    ``make_engine`` must build everything fresh per call (rate-limit
    buckets are stateful across engines sharing a policy object).
    """
    streams, engines = {}, {}
    for lane, kwargs in (("serial", {}),
                         ("legacy", {"vector_path": False}),
                         ("bulk", {})):
        engine, topo = make_engine(**kwargs)
        probes = probes_of(topo)
        if lane == "serial":
            responses = [engine.send(p) for p in probes]
        else:
            responses = []
            for start in range(0, len(probes), chunk):
                responses.extend(engine.send_many(probes[start:start + chunk]))
        streams[lane] = [signature(r) for r in responses]
        engines[lane] = engine
    assert streams["legacy"] == streams["serial"]
    assert streams["bulk"] == streams["serial"]
    for lane in ("legacy", "bulk"):
        stats = engines[lane].stats
        assert (stats.bulk_lookup_hits + stats.bulk_lookup_misses
                == stats.batched_probes), lane
    return streams, engines


class TestBulkEquivalence:
    def test_matches_serial_on_chain(self):
        _, engines = dispatch(
            chain,
            lambda topo: ladder(topo, [("R5", "R4"), ("R3", "R2"),
                                       ("R2", "R1")]))
        assert engines["bulk"].stats.bulk_lookup_hits > 0

    def test_multiple_flows_keyed_separately(self):
        dispatch(chain,
                 lambda topo: ladder(topo, [("R5", "R4"), ("R4", "R3")],
                                     flows=(0, 3, 7)))

    def test_rate_limited_bucket_drains_identically(self):
        def limited(**kw):
            policy = ResponsePolicy().rate_limit_router(
                "R2", capacity=2, refill_per_tick=0.3)
            return chain(policy=policy, **kw)

        streams, _ = dispatch(
            limited,
            lambda topo: ladder(topo, [("R5", "R4")], ttls=(2,),
                                repeats=40))
        assert None in streams["serial"]          # the bucket did drain
        assert any(s is not None for s in streams["serial"])

    def test_nil_router_and_random_ip_id(self):
        def configured(**kw):
            engine, topo = chain(**kw)
            topo.routers["R2"].indirect_config = IndirectConfig.NIL
            topo.routers["R3"].ip_id_mode = IpIdMode.RANDOM
            engine.clear_path_cache()
            return engine, topo

        streams, _ = dispatch(
            configured,
            lambda topo: ladder(topo, [("R5", "R4"), ("R4", "R3")]))
        # The NIL router stays silent on indirect probes (ttl=2 expires at
        # R2), while deeper hops — including the RANDOM-IP-ID one — answer.
        assert None in streams["serial"]
        assert any(s is not None and s[2] == "R3" for s in streams["serial"])

    def test_record_route_probes_take_the_slow_path(self):
        _, engines = dispatch(
            chain,
            lambda topo: ladder(topo, [("R5", "R4")],
                                record_route=(False, True)))
        stats = engines["bulk"].stats
        assert stats.bulk_lookup_hits > 0
        assert stats.bulk_lookup_misses > 0   # every record-route probe

    def test_per_packet_balancer_preserves_rng_stream(self):
        streams, engines = dispatch(
            lambda **kw: diamond(LoadBalancingMode.PER_PACKET, **kw),
            lambda topo: ladder(topo, [("R5", "R4")], ttls=(2,),
                                repeats=48))
        responders = {s[2] for s in streams["bulk"] if s is not None}
        assert responders == {"R2", "R3"}
        # Per-packet flows are uncacheable: the bulk lane must fall back
        # probe for probe, never serving them from the flow index.
        assert engines["bulk"].stats.bulk_lookup_hits == 0

    def test_per_flow_balancer_is_cached(self):
        _, engines = dispatch(
            lambda **kw: diamond(LoadBalancingMode.PER_FLOW, **kw),
            lambda topo: ladder(topo, [("R5", "R4"), ("R4", "R5")],
                                flows=(0, 5)))
        assert engines["bulk"].stats.bulk_lookup_hits > 0

    def test_misses_interleaved_mid_batch(self):
        # New destinations first appear in the middle of a batch, so the
        # bulk path must splice walk results between index-served hits.
        def probes_of(topo):
            warm = ladder(topo, [("R5", "R4")], repeats=8)
            cold = ladder(topo, [("R3", "R2")], repeats=1)
            head, tail = warm[:CHUNK // 2], warm[CHUNK // 2:]
            return head + cold + tail

        _, engines = dispatch(chain, probes_of)
        stats = engines["bulk"].stats
        assert stats.bulk_lookup_hits > 0
        assert stats.bulk_lookup_misses > 0


class TestRateLimitedNilOrdering:
    def test_token_state_matches_serial(self):
        # Regression: the legacy loop once checked the NIL (source=None)
        # plan before drawing the rate-limit bucket, leaving a silenced,
        # rate-limited router's token state ahead of a serial run.  The
        # bucket must be consumed first, exactly as the walk does.
        def run(lane):
            policy = ResponsePolicy().rate_limit_router(
                "R2", capacity=3, refill_per_tick=0.1)
            policy.silence_router("R2")
            engine, topo = chain(
                policy=policy,
                **({"vector_path": False} if lane == "legacy" else {}))
            probes = ladder(topo, [("R5", "R4")], ttls=(2, 3), repeats=30)
            if lane == "serial":
                responses = [engine.send(p) for p in probes]
            else:
                responses = []
                for start in range(0, len(probes), CHUNK):
                    responses.extend(
                        engine.send_many(probes[start:start + CHUNK]))
            bucket = policy._rate_limiters["R2"]
            return ([signature(r) for r in responses],
                    (bucket.tokens, bucket.last_tick))

        serial_stream, serial_bucket = run("serial")
        for lane in ("legacy", "bulk"):
            stream, bucket = run(lane)
            assert stream == serial_stream, lane
            assert bucket == serial_bucket, lane
        # R2 never answers (silenced), deeper hops still do.
        assert all(s is None or s[2] != "R2" for s in serial_stream)
        assert any(s is not None for s in serial_stream)
