"""Unit tests for the node model: Interface, Router, Subnet."""

import pytest

from repro.netsim.addressing import Prefix, parse_ip
from repro.netsim.iface import Interface
from repro.netsim.router import DirectConfig, IndirectConfig, Router
from repro.netsim.subnet import Subnet


def make_iface(addr="10.0.0.1", router="R1", subnet="s1"):
    return Interface(address=parse_ip(addr), router_id=router, subnet_id=subnet)


class TestInterface:
    def test_ip_text(self):
        assert make_iface("10.0.0.9").ip_text == "10.0.0.9"

    def test_str_includes_router(self):
        assert "R1" in str(make_iface())

    def test_frozen(self):
        iface = make_iface()
        with pytest.raises(AttributeError):
            iface.address = 5


class TestRouter:
    def test_attach_and_lookup(self):
        router = Router("R1")
        iface = make_iface()
        router.attach(iface)
        assert router.owns(iface.address)
        assert router.interface_for(iface.address) is iface

    def test_attach_rejects_foreign_interface(self):
        router = Router("R1")
        with pytest.raises(ValueError):
            router.attach(make_iface(router="R2"))

    def test_attach_rejects_duplicate_address(self):
        router = Router("R1")
        router.attach(make_iface())
        with pytest.raises(ValueError):
            router.attach(make_iface(subnet="s2"))

    def test_interfaces_and_addresses(self):
        router = Router("R1")
        router.attach(make_iface("10.0.0.1", subnet="s1"))
        router.attach(make_iface("10.0.1.1", subnet="s2"))
        assert len(router.interfaces) == 2
        assert sorted(router.addresses) == [parse_ip("10.0.0.1"), parse_ip("10.0.1.1")]
        assert set(router.subnet_ids) == {"s1", "s2"}

    def test_interface_on(self):
        router = Router("R1")
        router.attach(make_iface("10.0.0.1", subnet="s1"))
        assert router.interface_on("s1").address == parse_ip("10.0.0.1")
        assert router.interface_on("missing") is None

    def test_default_configs(self):
        router = Router("R1")
        assert router.indirect_config == IndirectConfig.INCOMING
        assert router.direct_config == DirectConfig.PROBED

    def test_report_address_default_is_lowest(self):
        router = Router("R1")
        router.attach(make_iface("10.0.0.9", subnet="s1"))
        router.attach(make_iface("10.0.0.5", subnet="s2"))
        assert router.report_address() == parse_ip("10.0.0.5")

    def test_report_address_explicit(self):
        router = Router("R1", default_address=parse_ip("1.1.1.1"))
        assert router.report_address() == parse_ip("1.1.1.1")

    def test_report_address_no_interfaces(self):
        assert Router("R1").report_address() is None

    def test_owns_false_for_unknown(self):
        assert not Router("R1").owns(parse_ip("10.0.0.1"))


class TestSubnet:
    def _subnet(self, prefix="10.0.0.0/29"):
        return Subnet(subnet_id="s1", prefix=Prefix.parse(prefix))

    def test_attach_and_lookup(self):
        subnet = self._subnet()
        iface = make_iface("10.0.0.1")
        subnet.attach(iface)
        assert subnet.owns(iface.address)
        assert subnet.interface_for(iface.address) is iface

    def test_attach_rejects_wrong_subnet_id(self):
        subnet = self._subnet()
        with pytest.raises(ValueError):
            subnet.attach(make_iface(subnet="other"))

    def test_attach_rejects_address_outside_block(self):
        subnet = self._subnet()
        with pytest.raises(ValueError):
            subnet.attach(make_iface("10.0.0.9"))

    def test_attach_rejects_network_address(self):
        subnet = self._subnet()
        with pytest.raises(ValueError):
            subnet.attach(make_iface("10.0.0.0"))

    def test_attach_rejects_broadcast_address(self):
        subnet = self._subnet()
        with pytest.raises(ValueError):
            subnet.attach(make_iface("10.0.0.7"))

    def test_slash31_boundary_addresses_allowed(self):
        subnet = Subnet(subnet_id="s1", prefix=Prefix.parse("10.0.0.0/31"))
        subnet.attach(make_iface("10.0.0.0"))
        subnet.attach(make_iface("10.0.0.1", router="R2"))
        assert len(subnet.interfaces) == 2

    def test_attach_rejects_duplicate(self):
        subnet = self._subnet()
        subnet.attach(make_iface("10.0.0.1"))
        with pytest.raises(ValueError):
            subnet.attach(make_iface("10.0.0.1", router="R2"))

    def test_router_ids_deduplicated(self):
        subnet = self._subnet()
        subnet.attach(make_iface("10.0.0.1", router="R1"))
        subnet.attach(make_iface("10.0.0.2", router="R2"))
        subnet.attach(make_iface("10.0.0.3", router="R1"))
        assert subnet.router_ids == ["R1", "R2"]

    def test_point_to_point_flag(self):
        assert Subnet("s", Prefix.parse("10.0.0.0/30")).is_point_to_point
        assert Subnet("s", Prefix.parse("10.0.0.0/31")).is_point_to_point
        assert not Subnet("s", Prefix.parse("10.0.0.0/29")).is_point_to_point

    def test_utilization(self):
        subnet = self._subnet()
        subnet.attach(make_iface("10.0.0.1"))
        subnet.attach(make_iface("10.0.0.2", router="R2"))
        assert subnet.utilization == pytest.approx(2 / 8)
