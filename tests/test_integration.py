"""End-to-end integration tests: the paper's experiments in miniature."""


import pytest

from repro.baselines import Traceroute
from repro.core import TraceNET
from repro.evaluation import (
    Category,
    VantageCollection,
    agreement_rates,
    annotate_unresponsive,
    collected_prefixes,
    match_subnets,
    similarity_summary,
    venn_regions,
)
from repro.netsim import Engine, LoadBalancer, LoadBalancingMode, Protocol
from repro.topogen import build_internet, figures, geant, internet2


@pytest.fixture(scope="module")
def internet2_run():
    network = internet2.build(seed=7)
    engine = Engine(network.topology, policy=network.policy)
    tool = TraceNET(engine, "utdallas")
    tool.trace_many(internet2.targets(network, seed=7))
    report = match_subnets(network.ground_truth,
                           collected_prefixes(tool.collected_subnets))
    annotate_unresponsive(report, network.records)
    return network, tool, report


class TestInternet2Experiment:
    def test_exact_match_rate_matches_paper_shape(self, internet2_run):
        _, _, report = internet2_run
        # Paper: 73.7% including unresponsive subnets.
        assert 0.65 <= report.exact_match_rate() <= 0.85

    def test_exact_match_rate_excluding_unresponsive(self, internet2_run):
        _, _, report = internet2_run
        # Paper: 94.9% excluding unresponsive subnets.
        assert report.exact_match_rate(exclude_unresponsive=True) >= 0.90

    def test_similarities_match_paper_shape(self, internet2_run):
        _, _, report = internet2_run
        prefix_sim, size_sim = similarity_summary(report)
        # Paper: 0.83 prefix / 0.86 size.
        assert 0.75 <= prefix_sim <= 0.90
        assert 0.75 <= size_sim <= 0.92

    def test_point_to_point_links_dominate_exact_matches(self, internet2_run):
        _, _, report = internet2_run
        exact = report.by_category(Category.EXACT)
        p2p = sum(1 for o in exact if o.original.length >= 30)
        assert p2p / len(exact) > 0.75

    def test_most_degradation_is_unresponsiveness(self, internet2_run):
        _, _, report = internet2_run
        degraded = (report.by_category(Category.MISS)
                    + report.by_category(Category.UNDER))
        unresponsive = [o for o in degraded if o.unresponsive]
        assert len(unresponsive) >= len(degraded) / 2


class TestGEANTExperiment:
    @pytest.fixture(scope="class")
    def geant_run(self):
        network = geant.build(seed=7)
        engine = Engine(network.topology, policy=network.policy)
        tool = TraceNET(engine, "utdallas")
        tool.trace_many(geant.targets(network, seed=7))
        report = match_subnets(network.ground_truth,
                               collected_prefixes(tool.collected_subnets))
        annotate_unresponsive(report, network.records)
        return report

    def test_raw_rate_low_due_to_unresponsiveness(self, geant_run):
        # Paper: 53.5% — GEANT is heavily firewalled, not badly measured.
        assert 0.45 <= geant_run.exact_match_rate() <= 0.65

    def test_observable_rate_high(self, geant_run):
        # Paper: 97.3%.
        assert geant_run.exact_match_rate(exclude_unresponsive=True) >= 0.92

    def test_gap_between_rates_is_the_headline(self, geant_run):
        gap = (geant_run.exact_match_rate(exclude_unresponsive=True)
               - geant_run.exact_match_rate())
        assert gap > 0.3


class TestTracenetVsTraceroute:
    def test_figure2_disjointness_conclusion(self):
        """Figure 2: traceroute concludes P1 (A->D) and P3 (B->C) are link
        disjoint; tracenet reveals the shared multi-access LAN."""
        net = figures.figure2_network()
        lan = net.topology.subnets[net.landmarks["shared_lan"]]
        d = net.hosts["D"].address
        c = net.hosts["C"].address

        tr_a = Traceroute(net.engine(), "A").trace(d)
        tr_b = Traceroute(net.engine(), "B").trace(c)
        a_addrs = {a for a in tr_a.path_addresses if a is not None}
        b_addrs = {a for a in tr_b.path_addresses if a is not None}
        # Either trace may touch a LAN interface, but traceroute cannot
        # see that both paths cross the same LAN.
        shared_lan_view = (a_addrs & set(lan.addresses),
                           b_addrs & set(lan.addresses))
        assert not (shared_lan_view[0] and shared_lan_view[1]) or \
            shared_lan_view[0] != shared_lan_view[1]

        tn_a = TraceNET(net.engine(), "A").trace(d)
        tn_b = TraceNET(net.engine(), "B").trace(c)
        lan_prefix = lan.prefix
        a_blocks = {s.prefix for s in tn_a.subnets}
        b_blocks = {s.prefix for s in tn_b.subnets}
        assert lan_prefix in a_blocks
        assert lan_prefix in b_blocks

    def test_tracenet_supersets_traceroute(self):
        network = internet2.build(seed=11)
        engine = Engine(network.topology, policy=network.policy)
        targets = internet2.targets(network, seed=11)[:20]
        tracenet_tool = TraceNET(engine, "utdallas")
        traceroute_tool = Traceroute(
            Engine(network.topology, policy=network.policy), "utdallas",
            vary_flow=False)
        tracenet_addresses = set()
        traceroute_addresses = set()
        for target in targets:
            tracenet_addresses |= tracenet_tool.trace(target).addresses
            traceroute_addresses |= {
                a for a in traceroute_tool.trace(target).path_addresses
                if a is not None}
        assert traceroute_addresses <= tracenet_addresses
        assert len(tracenet_addresses) > 1.5 * len(traceroute_addresses)


class TestPathFluctuations:
    def test_tracenet_stable_under_per_flow_ecmp(self):
        """Section 3.7: tracenet rests on the stable-ingress concept, so a
        per-flow balancer upstream does not change the collected subnet."""
        from repro.netsim import TopologyBuilder
        builder = TopologyBuilder("ecmp")
        builder.link("A", "B1")
        builder.link("A", "B2")
        builder.link("B1", "C")
        builder.link("B2", "C")
        lan = builder.lan(["C", "D", "E"], length=29)
        builder.edge_host("v", "A")
        topo = builder.build()
        target = topo.routers["E"].interface_on(lan.subnet_id).address

        collected = []
        for seed in range(3):
            engine = Engine(
                topo,
                balancer=LoadBalancer(LoadBalancingMode.PER_FLOW, seed=seed))
            tool = TraceNET(engine, "v")
            result = tool.trace(target)
            subnet = result.subnet_for(target)
            assert subnet is not None
            collected.append((subnet.prefix, frozenset(subnet.members)))
        assert len(set(collected)) == 1


@pytest.mark.slow
class TestMultiVantage:
    def test_cross_validation_agreement_shape(self):
        internet = build_internet(seed=42, scale=0.25)
        targets = [t for group in internet.targets(seed=1, per_isp=40).values()
                   for t in group]
        prefix_sets = {}
        for site in internet.vantages:
            engine = Engine(internet.topology, policy=internet.policy)
            tool = TraceNET(engine, site)
            tool.trace_many(targets)
            prefix_sets[site] = VantageCollection(
                vantage=site, subnets=tool.collected_subnets).prefixes
        regions = venn_regions(prefix_sets)
        assert sum(regions.values()) > 50
        rates = agreement_rates(prefix_sets)
        for site, rate in rates.items():
            # Paper: ~60% seen by all three, ~80% by at least one other.
            assert rate["all"] >= 0.4, (site, rate)
            assert rate["shared"] >= 0.6, (site, rate)
            assert rate["shared"] >= rate["all"]

    def test_protocol_ordering(self):
        internet = build_internet(seed=42, scale=0.2)
        targets = [t for group in internet.targets(seed=3, per_isp=25).values()
                   for t in group]
        counts = {}
        for protocol in (Protocol.ICMP, Protocol.UDP, Protocol.TCP):
            engine = Engine(internet.topology, policy=internet.policy)
            tool = TraceNET(engine, "rice", protocol=protocol)
            tool.trace_many(targets)
            counts[protocol] = sum(1 for s in tool.collected_subnets
                                   if s.size >= 2)
        # Table 3's ordering: ICMP >> UDP >> TCP (TCP nearly nothing).
        assert counts[Protocol.ICMP] > counts[Protocol.UDP]
        assert counts[Protocol.UDP] > counts[Protocol.TCP]
