"""The batched probe pipeline: send_many, probe_many, and batched surveys.

The batch API's contract is that ``send_many(probes)`` is semantically
identical to ``[send(p) for p in probes]`` on every backend — same
responses, same clock ticks, same RNG draws, same journal records — so a
batched collection produces byte-identical artifacts in exact mode
(``batch_window=1``).
"""

import io
import json

import pytest

from repro.core import TraceNET
from repro.events import CacheHit, ProbeBatchSent, ProbeSent
from repro.metrics import MetricsRegistry, MetricsSink
from repro.metrics.analytics import stats_from_journal
from repro.mapping.store import archive_to_dict
from repro.netsim import Engine
from repro.netsim.packet import Probe
from repro.probing import ProbeBudget, ProbeBudgetExceeded, Prober
from repro.runner import SurveyRunner
from repro.topogen import internet2
from repro.transport import (
    FaultInjectingTransport,
    RecordingTransport,
    ReplayTransport,
    SimulatorTransport,
    send_batch,
)


def line_probes(engine, count=6):
    src = engine.topology.hosts["vantage"].address
    dst = src  # probing the vantage's own subnet keeps the line topology busy
    return [Probe(src=src, dst=dst, ttl=ttl) for ttl in range(1, count + 1)]


def survey_network():
    network = internet2.build(seed=7)
    targets = internet2.targets(network, seed=7)[:10]
    return network, targets


def response_key(response):
    if response is None:
        return None
    return (response.kind, response.source, response.responder,
            response.ip_id)


class TestEngineSendMany:
    def test_matches_serial_sends(self):
        network, targets = survey_network()
        src = network.topology.hosts["utdallas"].address
        work = [(dst, ttl) for dst in targets for ttl in range(1, 13)]
        serial_engine = Engine(network.topology, policy=network.policy,
                               path_cache=True)
        batched_engine = Engine(network.topology, policy=network.policy,
                                path_cache=True)
        serial = [serial_engine.send(Probe(src=src, dst=d, ttl=t))
                  for d, t in work]
        probes = [Probe(src=src, dst=d, ttl=t) for d, t in work]
        batched = []
        for start in range(0, len(probes), 17):  # uneven chunks on purpose
            batched.extend(batched_engine.send_many(probes[start:start + 17]))
        assert [response_key(r) for r in serial] == \
            [response_key(r) for r in batched]
        assert serial_engine.clock == batched_engine.clock
        assert serial_engine.stats.probes_sent == \
            batched_engine.stats.probes_sent
        assert serial_engine.stats.per_protocol == \
            batched_engine.stats.per_protocol

    def test_counts_batches(self, line_engine):
        probes = line_probes(line_engine)
        line_engine.send_many(probes)
        assert line_engine.stats.batches == 1
        assert line_engine.stats.batched_probes == len(probes)

    def test_cache_off_falls_back_to_send(self, line_topology):
        engine = Engine(line_topology, path_cache=False)
        probes = line_probes(engine, count=3)
        responses = engine.send_many(probes)
        assert len(responses) == 3
        assert engine.stats.batches == 1


class TestTransportSendMany:
    def test_simulator_delegates_to_engine(self, line_engine):
        transport = SimulatorTransport(line_engine)
        probes = line_probes(line_engine, count=4)
        responses = transport.send_many(probes)
        assert len(responses) == 4
        metrics = transport.backend_metrics()
        assert metrics["transport_batches"] == 1
        assert metrics["transport_batched_probes"] == 4

    def test_send_batch_falls_back_without_send_many(self, line_engine):
        class Minimal:
            def __init__(self, engine):
                self.engine = engine

            def send(self, probe):
                return self.engine.send(probe)

        probes = line_probes(line_engine, count=3)
        responses = send_batch(Minimal(line_engine), probes)
        assert len(responses) == 3

    def test_fault_batches_match_serial_faults(self, line_topology):
        # Same seed, same probe order: the RNG draw sequence (and so the
        # dropped-response pattern) must be identical serial vs batched.
        serial = FaultInjectingTransport(
            SimulatorTransport(Engine(line_topology)), drop_rate=0.5, seed=3)
        batched = FaultInjectingTransport(
            SimulatorTransport(Engine(line_topology)), drop_rate=0.5, seed=3)
        probes = line_probes(serial.engine, count=8)
        one_by_one = [serial.send(p) for p in probes]
        together = batched.send_many(line_probes(batched.engine, count=8))
        assert [r is None for r in one_by_one] == \
            [r is None for r in together]
        assert serial.injected_drops == batched.injected_drops
        metrics = batched.backend_metrics()
        assert metrics["fault_batches"] == 1
        assert metrics["fault_batched_probes"] == 8

    def test_recording_journals_batches_flat(self, line_engine):
        # Batches are a pipelining detail, not a wire-format concern: the
        # journal holds ordinary sequential exchange records, so a journal
        # recorded in batches replays under serial dispatch and vice versa.
        buffer = io.StringIO()
        recording = RecordingTransport(SimulatorTransport(line_engine),
                                       buffer)
        probes = line_probes(line_engine, count=5)
        recorded = recording.send_many(probes)
        recording.close()
        metrics_text = buffer.getvalue()
        records = [json.loads(line) for line in
                   metrics_text.strip().splitlines()]
        exchanges = [r for r in records if r.get("kind") == "exchange"]
        assert len(exchanges) == 5
        assert [r["seq"] for r in exchanges] == list(range(1, 6))

        replay = ReplayTransport(io.StringIO(metrics_text))
        served_serial = [replay.send(p)
                         for p in line_probes(line_engine, count=5)]
        assert [response_key(r) for r in served_serial] == \
            [response_key(r) for r in recorded]

        replay_batched = ReplayTransport(io.StringIO(metrics_text))
        served_batched = replay_batched.send_many(
            line_probes(line_engine, count=5))
        assert [response_key(r) for r in served_batched] == \
            [response_key(r) for r in recorded]
        assert replay_batched.backend_metrics()["replay_batches_served"] == 1


class TestProbeMany:
    def test_matches_serial_probe_semantics(self, line_topology):
        # Two identical engines: the probers must not share simulator state
        # (IP-ID counters) or the comparison measures the engine, not the
        # prober.
        serial = Prober(SimulatorTransport(Engine(line_topology)), "vantage")
        batched = Prober(SimulatorTransport(Engine(line_topology)), "vantage")
        dst = line_topology.hosts["vantage"].address
        requests = [(dst, ttl) for ttl in range(1, 5)]
        one_by_one = [serial.probe(d, t) for d, t in requests]
        together = batched.probe_many(requests)
        assert [response_key(r) for r in one_by_one] == \
            [response_key(r) for r in together]
        assert serial.stats.sent == batched.stats.sent
        assert serial.stats.responses == batched.stats.responses

    def test_cache_and_duplicates(self, line_engine):
        prober = Prober(SimulatorTransport(line_engine), "vantage")
        dst = line_engine.topology.hosts["vantage"].address
        events = []
        prober.events.subscribe(events.append)
        prober.probe(dst, 1)  # pre-populates the cache
        events.clear()
        results = prober.probe_many([(dst, 1), (dst, 2), (dst, 2)])
        # (dst, 1) from the cache, (dst, 2) once on the wire, the repeat
        # resolved as a cache hit exactly like the serial path would.
        assert response_key(results[1]) == response_key(results[2])
        hits = [e for e in events if isinstance(e, CacheHit)]
        sent = [e for e in events if isinstance(e, ProbeSent)]
        batches = [e for e in events if isinstance(e, ProbeBatchSent)]
        assert len(hits) == 2
        assert len(sent) == 1
        assert len(batches) == 1 and batches[0].size == 1
        assert prober.stats.cache_hits == 2  # primed entry + in-batch dup

    def test_budget_charges_prefix_then_raises(self, line_engine):
        budget = ProbeBudget(2)
        prober = Prober(SimulatorTransport(line_engine), "vantage",
                        budget=budget, use_cache=False, retries=0)
        dst = line_engine.topology.hosts["vantage"].address
        with pytest.raises(ProbeBudgetExceeded):
            prober.probe_many([(dst, 1), (dst, 2), (dst, 3)])
        # The two probes the budget paid for hit the wire before the raise,
        # exactly as in the serial loop.
        assert prober.stats.sent == 2


class TestBatchedCollection:
    def test_batch_window_one_is_byte_identical(self):
        network, targets = survey_network()

        def survey(**kwargs):
            engine = Engine(network.topology, policy=network.policy,
                            path_cache=True)
            tool = TraceNET(engine, "utdallas", **kwargs)
            runner = SurveyRunner(tool)
            runner.run(targets)
            return tool, runner.archive

        serial_tool, serial_archive = survey()
        batched_tool, batched_archive = survey(batch_window=1)
        assert json.dumps(archive_to_dict(serial_archive), sort_keys=True) \
            == json.dumps(archive_to_dict(batched_archive), sort_keys=True)
        assert serial_tool.prober.stats.sent == batched_tool.prober.stats.sent

    def test_offline_stats_replay_batched_journal(self, tmp_path):
        # A journal recorded under batch_window=1 carries the collector
        # options in its metadata; the offline analytics rebuild the same
        # collector, so the registry from the journal matches the live one.
        network, targets = survey_network()
        journal = tmp_path / "batched.jsonl"
        engine = Engine(network.topology, policy=network.policy,
                        path_cache=True)
        recording = RecordingTransport(
            SimulatorTransport(engine), str(journal),
            metadata={"network": "internet2", "seed": 7,
                      "vantage": "utdallas",
                      "collector": {"batch_window": 1}})
        tool = TraceNET(recording, "utdallas", batch_window=1)
        live = MetricsRegistry()
        tool.events.subscribe(MetricsSink(live))
        SurveyRunner(tool).run(targets)
        recording.close()

        offline = stats_from_journal(str(journal), targets=targets)
        live_counters = live.snapshot()["counters"]
        offline_counters = offline.registry.snapshot()["counters"]
        assert offline_counters["probes_sent_total"] == \
            live_counters["probes_sent_total"]
        assert offline_counters["probe_batches_total"] == \
            live_counters["probe_batches_total"]
        assert offline.exchanges_remaining == 0
