"""Unit tests for the fluent builder and the prefix allocator."""

import pytest

from repro.netsim.addressing import AddressError, Prefix, parse_ip
from repro.netsim.builder import PrefixAllocator, TopologyBuilder
from repro.netsim.router import IndirectConfig
from repro.netsim.topology import TopologyError


class TestPrefixAllocator:
    def test_sequential_allocation(self):
        alloc = PrefixAllocator("10.0.0.0/24")
        assert str(alloc.allocate(30)) == "10.0.0.0/30"
        assert str(alloc.allocate(30)) == "10.0.0.4/30"

    def test_alignment(self):
        alloc = PrefixAllocator("10.0.0.0/24")
        alloc.allocate(30)          # uses .0-.3
        block = alloc.allocate(29)  # must align to .8
        assert str(block) == "10.0.0.8/29"

    def test_rejects_block_larger_than_base(self):
        alloc = PrefixAllocator("10.0.0.0/24")
        with pytest.raises(AddressError):
            alloc.allocate(16)

    def test_exhaustion(self):
        alloc = PrefixAllocator("10.0.0.0/30")
        alloc.allocate(31)
        alloc.allocate(31)
        with pytest.raises(AddressError):
            alloc.allocate(31)

    def test_remaining_decreases(self):
        alloc = PrefixAllocator("10.0.0.0/24")
        before = alloc.remaining
        alloc.allocate(28)
        assert alloc.remaining == before - 16

    def test_accepts_prefix_object(self):
        alloc = PrefixAllocator(Prefix.parse("10.1.0.0/16"))
        assert str(alloc.allocate(24)) == "10.1.0.0/24"


class TestBuilder:
    def test_router_idempotent(self):
        builder = TopologyBuilder()
        a = builder.router("R1")
        b = builder.router("R1")
        assert a is b

    def test_router_config_passthrough(self):
        builder = TopologyBuilder()
        router = builder.router("R1", indirect_config=IndirectConfig.DEFAULT)
        assert router.indirect_config == IndirectConfig.DEFAULT

    def test_link_allocates_slash30_by_default(self):
        builder = TopologyBuilder()
        subnet = builder.link("A", "B")
        assert subnet.prefix.length == 30
        assert len(subnet.interfaces) == 2

    def test_link_slash31(self):
        builder = TopologyBuilder()
        subnet = builder.link("A", "B", length=31)
        assert subnet.prefix.length == 31
        assert sorted(subnet.addresses) == [subnet.prefix.network,
                                            subnet.prefix.network + 1]

    def test_link_rejects_wide_prefix(self):
        builder = TopologyBuilder()
        with pytest.raises(TopologyError):
            builder.link("A", "B", prefix="10.0.0.0/29")

    def test_link_explicit_prefix(self):
        builder = TopologyBuilder()
        subnet = builder.link("A", "B", prefix="172.16.0.0/30")
        assert str(subnet.prefix) == "172.16.0.0/30"

    def test_lan_sequence_members(self):
        builder = TopologyBuilder()
        subnet = builder.lan(["A", "B", "C"], length=29)
        assert len(subnet.interfaces) == 3
        assert subnet.router_ids == ["A", "B", "C"]

    def test_lan_mapping_members(self):
        builder = TopologyBuilder()
        subnet = builder.lan({"A": "10.0.0.1", "B": "10.0.0.6"},
                             prefix="10.0.0.0/29")
        assert sorted(subnet.addresses) == [parse_ip("10.0.0.1"),
                                            parse_ip("10.0.0.6")]

    def test_edge_host_creates_stub(self):
        builder = TopologyBuilder()
        builder.link("A", "B")
        host = builder.edge_host("v", "A")
        topo = builder.build()
        assert topo.hosts["v"] is host
        assert host.gateway_router_id == "A"
        # The stub subnet holds the gateway interface and the host.
        stub = topo.subnets[host.subnet_id]
        assert len(stub.interfaces) == 1

    def test_build_validates(self):
        builder = TopologyBuilder()
        builder.router("lonely")
        with pytest.raises(TopologyError):
            builder.build()

    def test_build_can_skip_validation(self):
        builder = TopologyBuilder()
        builder.router("lonely")
        assert builder.build(validate=False) is builder.topology

    def test_wrap_extends_existing_topology(self):
        builder = TopologyBuilder()
        builder.link("A", "B")
        topo = builder.build()
        wrapped = TopologyBuilder.wrap(topo, allocator=PrefixAllocator("192.168.0.0/24"))
        wrapped.edge_host("v", "A")
        assert "v" in topo.hosts

    def test_wrap_subnet_ids_do_not_collide(self):
        builder = TopologyBuilder()
        builder.link("A", "B")
        topo = builder.build()
        before = set(topo.subnets)
        wrapped = TopologyBuilder.wrap(topo, allocator=PrefixAllocator("192.168.0.0/24"))
        wrapped.link("A", "C")
        assert len(topo.subnets) == len(before) + 1

    def test_attach_accepts_string_address(self):
        builder = TopologyBuilder()
        builder.subnet("10.0.0.0/29", subnet_id="lan")
        builder.attach("A", "lan", "10.0.0.1")
        assert builder.topology.interface_at(parse_ip("10.0.0.1")) is not None
