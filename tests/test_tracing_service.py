"""Span stitching across the service seam: the distributed parity proof.

The deterministic job span tree the coordinator assembles live at commit
time must equal, bit for bit, the tree ``tracenet spans`` derives from
the committed event journal offline — for a healthy fleet AND across a
killed worker, where the committed tree describes exactly the effective
execution (the crashed attempt's lease span holds only its checkpointed
prefix; the re-lease attempt holds the rest).
"""

import pytest

from repro.metrics import render_prometheus
from repro.parallel import ShardSpec
from repro.service import (
    Coordinator,
    JobQueue,
    JobState,
    ServiceFleet,
    VantageWorker,
)
from repro.topogen import internet2
from repro.tracing import (
    Span,
    chrome_trace_for_service,
    span_tree_from_journal,
)


@pytest.fixture(scope="module")
def network():
    return internet2.build(seed=13)


@pytest.fixture(scope="module")
def targets(network):
    return internet2.targets(network, seed=13)[:24]


@pytest.fixture(scope="module")
def spec(network):
    return ShardSpec.from_network(network.topology, network.policy,
                                  "utdallas")


def run_fleet(spec, targets, tmp_path, fail_after=None, shards=2):
    queue = JobQueue(str(tmp_path / "queue.jsonl"))
    coordinator = Coordinator(queue=queue,
                              work_dir=str(tmp_path / "work"),
                              heartbeat_timeout=1.5)
    job = coordinator.submit(spec, targets, shards=shards,
                             checkpoint_every=3)
    workers = [
        VantageWorker("w0", coordinator, stream_every=8,
                      fail_after_targets=fail_after),
        VantageWorker("w1", coordinator, stream_every=8),
    ]
    ServiceFleet(coordinator, workers).run(reap_interval=0.05,
                                           timeout=120.0)
    assert coordinator.queue.get(job.job_id).state is JobState.DONE, \
        coordinator.queue.get(job.job_id).error
    return coordinator, coordinator.result(job.job_id), workers


class TestServiceSpanParity:
    def test_healthy_fleet_live_equals_offline(self, spec, targets,
                                               tmp_path):
        _, result, _ = run_fleet(spec, targets, tmp_path)
        assert result.spans is not None
        offline = span_tree_from_journal(result.events_path)
        assert result.spans.to_dict() == offline.to_dict()
        leases = [s for s in result.spans.children if s.kind == "lease"]
        assert {s.meta["shard"] for s in leases} == {0, 1}
        assert all(s.meta["attempt"] == 1 for s in leases)
        # Every committed probe is attributed to some lease subtree.
        committed_probes = result.event_counts.get("ProbeSent", 0)
        assert result.spans.total("probes") == committed_probes

    def test_killed_worker_tree_matches_effective_execution(
            self, spec, targets, tmp_path):
        _, result, workers = run_fleet(spec, targets, tmp_path,
                                          fail_after=4)
        assert workers[0].crashed
        assert max(result.attempts.values()) > 1, "expected a re-lease"
        offline = span_tree_from_journal(result.events_path)
        assert result.spans.to_dict() == offline.to_dict()
        # The committed tree is the effective execution: the re-leased
        # attempt appears, and probe totals equal the committed stream
        # (work lost past the crashed attempt's last checkpoint is in
        # neither).
        attempts = {(s.meta["shard"], s.meta["attempt"])
                    for s in result.spans.children if s.kind == "lease"}
        assert any(attempt > 1 for _, attempt in attempts)
        assert result.spans.total("probes") == \
            result.event_counts.get("ProbeSent", 0)

    def test_lease_stamps_stay_out_of_the_deterministic_plane(
            self, spec, targets, tmp_path):
        _, result, _ = run_fleet(spec, targets, tmp_path)
        # The coordinator stamped lease grant/completion times...
        leases = [s for s in result.spans.children if s.kind == "lease"]
        assert all(s.duration is not None and s.duration >= 0
                   for s in leases)
        assert result.spans.duration is not None
        # ...but none of it reaches the deterministic serialization.
        payload = result.spans.to_dict()

        def no_stamps(node):
            assert "start" not in node and "end" not in node
            for child in node["children"]:
                no_stamps(child)

        no_stamps(payload)

    def test_worker_spans_ship_and_export(self, spec, targets, tmp_path):
        _, result, _ = run_fleet(spec, targets, tmp_path)
        assert set(result.worker_spans) == {0, 1}
        for shard, payload in result.worker_spans.items():
            tree = Span.from_dict(payload)
            assert tree.kind == "shard"
            assert tree.duration is not None
        doc = chrome_trace_for_service(result.spans, result.worker_spans)
        pids = {event["pid"] for event in doc["traceEvents"]}
        # pid 0 = coordinator job/leases; pid 1+shard = worker timebases.
        assert pids == {0, 1, 2}


class TestFleetHealthTelemetry:
    def test_gauges_reflect_an_idle_coordinator(self, tmp_path):
        queue = JobQueue(str(tmp_path / "queue.jsonl"))
        coordinator = Coordinator(queue=queue,
                                  work_dir=str(tmp_path / "work"))
        registry = coordinator.health_registry()
        text = render_prometheus(registry)
        assert 'tracenet_service_jobs{state="running"} 0' in text
        assert "tracenet_service_queue_depth 0" in text
        assert "tracenet_service_leases_active 0" in text

    def test_gauges_mid_job_and_after_completion(self, spec, targets,
                                                 tmp_path):
        coordinator, _, _ = run_fleet(spec, targets, tmp_path)
        text = render_prometheus(coordinator.health_registry())
        assert 'tracenet_service_jobs{state="done"} 1' in text
        assert 'tracenet_service_jobs{state="failed"} 0' in text
        assert "tracenet_service_leases_active 0" in text

    def test_lease_age_and_heartbeat_lag_track_the_clock(self, spec,
                                                         targets,
                                                         tmp_path):
        queue = JobQueue(str(tmp_path / "queue.jsonl"))
        coordinator = Coordinator(queue=queue,
                                  work_dir=str(tmp_path / "work"),
                                  heartbeat_timeout=1e9)
        job = coordinator.submit(spec, targets, shards=2)
        task = coordinator.lease("w0")
        assert task is not None
        text = render_prometheus(coordinator.health_registry())
        assert "tracenet_service_leases_active 1" in text
        prefix = (f'tracenet_service_lease_age_seconds{{'
                  f'job="{job.job_id}",shard="{task.shard_index}"}}')
        assert any(line.startswith(prefix)
                   for line in text.splitlines()), text
        lag = (f'tracenet_service_heartbeat_lag_seconds{{'
               f'job="{job.job_id}",shard="{task.shard_index}"}}')
        assert any(line.startswith(lag) for line in text.splitlines())
