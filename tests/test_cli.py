"""Unit tests for the command-line front end."""

import json

import pytest

from repro.cli import main


class TestTrace:
    def test_default_scenario(self, capsys):
        assert main(["trace"]) == 0
        out = capsys.readouterr().out
        assert "tracenet to" in out

    def test_figure2_with_source(self, capsys):
        assert main(["trace", "--scenario", "figure2", "--source", "A"]) == 0
        assert "tracenet to" in capsys.readouterr().out

    def test_unknown_source_fails(self, capsys):
        assert main(["trace", "--source", "nobody"]) == 2

    def test_json_output(self, capsys):
        assert main(["trace", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["reached"] is True

    def test_compare_traceroute(self, capsys):
        assert main(["trace", "--compare-traceroute"]) == 0
        assert "traceroute view:" in capsys.readouterr().out

    def test_explicit_destination(self, capsys):
        assert main(["trace", "--scenario", "figure3",
                     "--dest", "10.0.1.1"]) == 0
        out = capsys.readouterr().out
        assert "10.0.1.1" in out

    def test_udp_protocol(self, capsys):
        assert main(["trace", "--protocol", "udp"]) == 0
        assert "tracenet to" in capsys.readouterr().out


class TestSurvey:
    def test_internet2(self, capsys):
        assert main(["survey", "--network", "internet2", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "orgl" in out
        assert "exact match rate" in out

    def test_geant(self, capsys):
        assert main(["survey", "--network", "geant", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out


class TestNoCommand:
    def test_help_shown(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out.lower()


@pytest.mark.slow
class TestCrossvalAndProtocols:
    def test_crossval(self, capsys):
        assert main(["crossval", "--scale", "0.12",
                     "--targets-per-isp", "8"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out
        assert "Figure 8" in out
        assert "Figure 9" in out

    def test_protocols(self, capsys):
        assert main(["protocols", "--scale", "0.12",
                     "--targets-per-isp", "8"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "ICMP" in out


class TestMapCommand:
    def test_adjacency_output(self, capsys):
        assert main(["map", "--scenario", "figure2"]) == 0
        out = capsys.readouterr().out
        assert "topology map:" in out
        assert "/29" in out

    def test_dot_output(self, capsys):
        assert main(["map", "--scenario", "figure3", "--dot"]) == 0
        out = capsys.readouterr().out
        assert "graph" in out
        assert "--" in out

    def test_save_archives(self, capsys, tmp_path):
        assert main(["map", "--scenario", "figure3",
                     "--save", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "saved" in out
        from repro.mapping import load_archive
        archives = list(tmp_path.glob("*.json"))
        assert archives
        loaded = load_archive(str(archives[0]))
        assert loaded.metadata["scenario"] == "figure3"


class TestOverheadCommand:
    def test_table_printed(self, capsys):
        assert main(["overhead", "--sizes", "2,6"]) == 0
        out = capsys.readouterr().out
        assert "3.6" in out
        assert "upper" in out


class TestExportCommand:
    def test_scenario_export(self, capsys, tmp_path):
        path = str(tmp_path / "net.json")
        assert main(["export", "--network", "internet2", "--seed", "3",
                     "--out", path]) == 0
        out = capsys.readouterr().out
        assert "exported internet2" in out
        from repro.netsim import load_scenario
        topology, policy = load_scenario(path)
        assert len(topology.subnets) >= 179
        assert policy.firewalled_subnet_ids
