"""Unit tests for the probing layer: retries, caching, distance measuring,
budgets and statistics."""

import pytest

from conftest import address_on
from repro.netsim import (
    DEFAULT_TTL,
    Engine,
    ResponsePolicy,
    TopologyBuilder,
)
from repro.probing import ProbeBudget, ProbeBudgetExceeded, ProbeStats, Prober


def chain(n=4, policy=None):
    builder = TopologyBuilder("chain")
    for i in range(1, n):
        builder.link(f"R{i}", f"R{i+1}")
    builder.edge_host("v", "R1")
    topo = builder.build()
    return Engine(topo, policy=policy), topo


class TestProberBasics:
    def test_unknown_vantage_rejected(self):
        engine, _ = chain()
        with pytest.raises(ValueError):
            Prober(engine, "nobody")

    def test_direct_probe_alive(self):
        engine, topo = chain()
        prober = Prober(engine, "v")
        dst = address_on(topo, "R4", "R3")
        response = prober.direct_probe(dst)
        assert response is not None and response.is_alive_signal

    def test_indirect_probe_requires_small_ttl(self):
        engine, topo = chain()
        prober = Prober(engine, "v")
        with pytest.raises(ValueError):
            prober.indirect_probe(address_on(topo, "R4", "R3"), DEFAULT_TTL)

    def test_is_alive(self):
        engine, topo = chain()
        prober = Prober(engine, "v")
        assert prober.is_alive(address_on(topo, "R2", "R1"))
        assert not prober.is_alive(0x01010101)

    def test_phase_accounting(self):
        engine, topo = chain()
        prober = Prober(engine, "v")
        prober.direct_probe(address_on(topo, "R2", "R1"), phase="testing")
        assert prober.stats.by_phase["testing"] == 1


class TestRetries:
    def test_silent_address_retried_once(self):
        engine, topo = chain()
        prober = Prober(engine, "v", retries=1, use_cache=False)
        prober.direct_probe(0x01010101)
        assert prober.stats.sent == 2
        assert prober.stats.retries == 1

    def test_no_retry_on_answer(self):
        engine, topo = chain()
        prober = Prober(engine, "v", retries=1)
        prober.direct_probe(address_on(topo, "R2", "R1"))
        assert prober.stats.retries == 0

    def test_retry_recovers_from_one_drop(self):
        policy = ResponsePolicy().rate_limit_router("R2", capacity=1,
                                                    refill_per_tick=0.5)
        engine, topo = chain(policy=policy)
        prober = Prober(engine, "v", retries=1, use_cache=False)
        dst = address_on(topo, "R2", "R1")
        assert prober.direct_probe(dst) is not None
        # Bucket now empty; the next probe drops (only 0.5 tokens refilled)
        # and the retry one tick later succeeds.
        assert prober.direct_probe(dst) is not None
        assert prober.stats.retries >= 1


class TestCache:
    def test_repeat_probe_served_from_cache(self):
        engine, topo = chain()
        prober = Prober(engine, "v")
        dst = address_on(topo, "R3", "R2")
        prober.probe(dst, 3)
        sent_before = prober.stats.sent
        prober.probe(dst, 3)
        assert prober.stats.sent == sent_before
        assert prober.stats.cache_hits == 1

    def test_silence_is_cached_after_retry(self):
        engine, topo = chain()
        prober = Prober(engine, "v")
        prober.direct_probe(0x01010101)
        sent_before = prober.stats.sent
        prober.direct_probe(0x01010101)
        assert prober.stats.sent == sent_before

    def test_oversized_ttl_rejected_not_aliased(self):
        # A TTL beyond DEFAULT_TTL used to silently alias the direct-probe
        # cache entry even though the engine can walk it differently.
        engine, topo = chain()
        prober = Prober(engine, "v")
        dst = address_on(topo, "R2", "R1")
        prober.probe(dst, DEFAULT_TTL)
        with pytest.raises(ValueError):
            prober.probe(dst, DEFAULT_TTL + 10)
        assert prober.stats.cache_hits == 0

    def test_default_ttl_probe_shares_direct_cache_entry(self):
        engine, topo = chain()
        prober = Prober(engine, "v")
        dst = address_on(topo, "R2", "R1")
        prober.direct_probe(dst)
        prober.probe(dst, DEFAULT_TTL)
        assert prober.stats.cache_hits == 1

    def test_flow_override_bypasses_cache(self):
        engine, topo = chain()
        prober = Prober(engine, "v")
        dst = address_on(topo, "R3", "R2")
        prober.probe(dst, 3)
        prober.probe(dst, 3, flow_id=7)
        assert prober.stats.cache_hits == 0

    def test_clear_cache(self):
        engine, topo = chain()
        prober = Prober(engine, "v")
        dst = address_on(topo, "R3", "R2")
        prober.probe(dst, 3)
        prober.clear_cache()
        sent_before = prober.stats.sent
        prober.probe(dst, 3)
        assert prober.stats.sent == sent_before + 1

    def test_cache_disabled(self):
        engine, topo = chain()
        prober = Prober(engine, "v", use_cache=False)
        dst = address_on(topo, "R3", "R2")
        prober.probe(dst, 3)
        prober.probe(dst, 3)
        assert prober.stats.sent == 2


class TestMeasureDistance:
    def test_exact_hint(self):
        engine, topo = chain(5)
        prober = Prober(engine, "v")
        assert prober.measure_distance(address_on(topo, "R4", "R3"), hint=4) == 4

    def test_hint_too_low(self):
        engine, topo = chain(5)
        prober = Prober(engine, "v")
        assert prober.measure_distance(address_on(topo, "R4", "R3"), hint=1) == 4

    def test_hint_too_high(self):
        engine, topo = chain(5)
        prober = Prober(engine, "v")
        assert prober.measure_distance(address_on(topo, "R2", "R1"), hint=5) == 2

    def test_unresponsive_returns_none(self):
        engine, topo = chain(5)
        prober = Prober(engine, "v")
        assert prober.measure_distance(0x01010101, hint=3) is None

    def test_near_side_vs_far_side(self):
        engine, topo = chain(4)
        prober = Prober(engine, "v")
        near = address_on(topo, "R2", "R3")
        far = address_on(topo, "R3", "R2")
        assert prober.measure_distance(near, hint=3) == 2
        assert prober.measure_distance(far, hint=2) == 3


class TestBudget:
    def test_budget_enforced(self):
        engine, topo = chain()
        prober = Prober(engine, "v", budget=ProbeBudget(limit=3),
                        use_cache=False, retries=0)
        dst = address_on(topo, "R2", "R1")
        for _ in range(3):
            prober.direct_probe(dst)
        with pytest.raises(ProbeBudgetExceeded):
            prober.direct_probe(dst)

    def test_budget_remaining(self):
        budget = ProbeBudget(limit=5)
        budget.charge(2)
        assert budget.remaining == 3

    def test_cache_hits_do_not_charge_budget(self):
        engine, topo = chain()
        prober = Prober(engine, "v", budget=ProbeBudget(limit=1))
        dst = address_on(topo, "R2", "R1")
        prober.direct_probe(dst)
        prober.direct_probe(dst)  # served from cache, no charge
        assert prober.budget.remaining == 0


class TestStats:
    def test_snapshot_is_independent_copy(self):
        engine, topo = chain()
        prober = Prober(engine, "v")
        snap = prober.stats_snapshot()
        prober.direct_probe(address_on(topo, "R2", "R1"))
        assert snap.sent == 0
        assert prober.stats.sent == 1

    def test_diff(self):
        a = ProbeStats(sent=10, responses=8, by_phase={"x": 4})
        b = ProbeStats(sent=3, responses=2, by_phase={"x": 1})
        delta = a.diff(b)
        assert delta.sent == 7
        assert delta.responses == 6
        assert delta.by_phase == {"x": 3}

    def test_snapshot_dict(self):
        stats = ProbeStats(sent=2, responses=1, silent=1, by_phase={"p": 2})
        flat = stats.snapshot()
        assert flat["sent"] == 2
        assert flat["phase:p"] == 2
