"""Unit tests for the ProbeTransport seam and its backends."""

import io

import pytest

from repro.baselines import DisCarte, ParisTraceroute, Ping, Traceroute
from repro.netsim import Engine
from repro.core import TraceNET
from repro.netsim.packet import DEFAULT_TTL, Probe
from repro.probing import Prober
from repro.transport import (
    FaultInjectingTransport,
    ProbeTransport,
    RecordingTransport,
    ReplayTransport,
    SimulatorTransport,
    TransportCapabilities,
    as_transport,
)


@pytest.fixture()
def transport(line_engine):
    return SimulatorTransport(line_engine)


class TestSimulatorTransport:
    def test_satisfies_protocol(self, transport):
        assert isinstance(transport, ProbeTransport)

    def test_send_matches_engine(self, line_engine, transport):
        probe = Probe(src=transport.source_address("vantage"),
                      dst=transport.source_address("vantage"),
                      ttl=DEFAULT_TTL)
        direct = line_engine.send(probe)
        assert transport.send(probe).kind == direct.kind

    def test_capabilities(self, transport):
        caps = transport.capabilities()
        assert caps.name == "simulator"
        assert caps.deterministic
        assert caps.supports_record_route
        assert not caps.live_network
        assert not caps.replayed

    def test_unknown_vantage(self, transport):
        with pytest.raises(ValueError, match="unknown vantage"):
            transport.source_address("nobody")


class TestAsTransport:
    def test_engine_is_wrapped(self, line_engine):
        wrapped = as_transport(line_engine)
        assert isinstance(wrapped, SimulatorTransport)
        assert wrapped.engine is line_engine

    def test_transport_passes_through(self, transport):
        assert as_transport(transport) is transport

    def test_rejects_other_types(self):
        with pytest.raises(TypeError, match="ProbeTransport"):
            as_transport(42)


class TestCollectorsOnTheSeam:
    """Acceptance criterion: every collector builds from a ProbeTransport
    and keeps working when handed a bare Engine."""

    def test_prober(self, line_engine, transport):
        from_engine = Prober(line_engine, "vantage")
        from_transport = Prober(transport, "vantage")
        assert from_engine.vantage_address == from_transport.vantage_address

    def test_tracenet(self, lan_engine, lan_network, transport):
        destination = min(
            min(r.addresses) for r in lan_network.topology.routers.values())
        seam_tool = TraceNET(SimulatorTransport(lan_engine), "vantage")
        assert seam_tool.trace(destination).hops
        assert seam_tool.engine is lan_engine

    def test_baselines(self, line_engine, line_topology):
        destination = max(line_topology.all_interface_addresses)
        for cls in (Traceroute, ParisTraceroute):
            result = cls(SimulatorTransport(line_engine), "vantage")\
                .trace(destination)
            assert result.hops
        assert Ping(SimulatorTransport(line_engine), "vantage")\
            .is_alive(destination) in (True, False)
        assert DisCarte(SimulatorTransport(line_engine), "vantage")\
            .trace(destination).hops

    def test_discarte_requires_record_route(self, transport):
        class NoRecordRoute:
            def send(self, probe):
                return None

            def capabilities(self):
                return TransportCapabilities(name="bare",
                                             supports_record_route=False)

            def source_address(self, host_id):
                return 1

            def close(self):
                pass

        with pytest.raises(ValueError, match="record-route"):
            DisCarte(NoRecordRoute(), "vantage")


class TestFaultInjection:
    def test_zero_rate_is_transparent(self, line_topology):
        hops = []
        for wrap in (False, True):
            engine = Engine(line_topology)
            transport = SimulatorTransport(engine)
            network = (FaultInjectingTransport(transport, drop_rate=0.0)
                       if wrap else transport)
            tool = TraceNET(network, "vantage")
            dst = max(engine.topology.all_interface_addresses)
            hops.append([h.address for h in tool.trace(dst).hops])
        assert hops[0] == hops[1]

    def test_blackhole_silences_target(self, transport, line_topology):
        dst = max(line_topology.all_interface_addresses)
        faulty = FaultInjectingTransport(transport, blackholes={dst})
        tool = Traceroute(faulty, "vantage", vary_flow=False)
        result = tool.trace(dst)
        assert not result.reached
        assert faulty.blackholed > 0

    def test_seeded_drops_are_deterministic(self, line_topology):
        def run(seed):
            engine = Engine(line_topology)
            faulty = FaultInjectingTransport(SimulatorTransport(engine),
                                             drop_rate=0.4, seed=seed)
            tool = Traceroute(faulty, "vantage", vary_flow=False)
            dst = max(engine.topology.all_interface_addresses)
            return [h.address for h in tool.trace(dst).hops]

        assert run(3) == run(3)

    def test_drop_rate_validated(self, transport):
        with pytest.raises(ValueError, match="drop_rate"):
            FaultInjectingTransport(transport, drop_rate=1.5)

    def test_capability_name_nests(self, transport):
        faulty = FaultInjectingTransport(transport, drop_rate=0.1)
        assert faulty.capabilities().name == "fault(simulator)"


class TestRecordingWrapsAnything:
    def test_capabilities_and_engine_passthrough(self, line_engine, transport):
        recorder = RecordingTransport(transport, io.StringIO())
        assert recorder.capabilities().name == "recording(simulator)"
        assert recorder.engine is line_engine

    def test_replay_capabilities(self, transport):
        buffer = io.StringIO()
        with RecordingTransport(transport, buffer):
            pass
        buffer.seek(0)
        caps = ReplayTransport(buffer).capabilities()
        assert caps.replayed
        assert caps.deterministic
