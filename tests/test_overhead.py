"""Unit tests for the Section 3.6 probing-overhead model, including a check
of measured probe counts against the analytic bounds."""

import pytest

from conftest import address_on
from repro.core import overhead
from repro.core.exploration import explore_subnet
from repro.core.positioning import position_subnet
from repro.netsim import Engine, TopologyBuilder
from repro.probing import Prober


class TestModel:
    def test_lower_bound_p2p_constant(self):
        assert overhead.lower_bound(2) == overhead.LOWER_BOUND_P2P == 4

    def test_upper_bound_formula(self):
        assert overhead.upper_bound(2) == 21
        assert overhead.upper_bound(6) == 49
        assert overhead.upper_bound(14) == 105

    def test_bounds_reject_empty_subnet(self):
        with pytest.raises(ValueError):
            overhead.upper_bound(0)
        with pytest.raises(ValueError):
            overhead.lower_bound(0)

    def test_estimate_consistency(self):
        est = overhead.estimate(6)
        assert est.lower < est.expected < est.upper

    def test_contains_with_slack(self):
        est = overhead.estimate(4)
        assert est.contains(est.upper)
        assert est.contains(int(est.upper * 1.2))
        assert not est.contains(est.upper * 2)

    def test_worst_case_probability_small(self):
        assert overhead.worst_case_probability(4) < 0.02
        assert overhead.worst_case_probability(8) < overhead.worst_case_probability(4)

    def test_worst_case_probability_degenerate(self):
        assert overhead.worst_case_probability(1) == 0.0


class TestMeasuredAgainstModel:
    def _measure(self, lan_size):
        builder = TopologyBuilder("measure")
        builder.link("R1", "R2")
        members = ["R2"] + [f"M{i}" for i in range(lan_size - 1)]
        lengths = {2: 30, 3: 29, 4: 29, 6: 29, 10: 28, 14: 28}
        lan = builder.lan(members, length=lengths.get(lan_size, 28))
        builder.edge_host("v", "R1")
        topo = builder.build()
        engine = Engine(topo)
        prober = Prober(engine, "v")
        # Pivot on the dense (low) side of the block: a sparse-tail pivot
        # makes Algorithm 1's half-utilization stop underestimate the LAN
        # (paper Section 3.8), which is not what this test measures.
        pivot = topo.routers[members[1]].interface_on(lan.subnet_id).address
        u = address_on(topo, "R2", "R1")
        position = position_subnet(prober, u, pivot, 3)
        subnet = explore_subnet(prober, position)
        return subnet

    @pytest.mark.parametrize("size", [2, 3, 4, 6, 10, 14])
    def test_measured_probes_within_model(self, size):
        subnet = self._measure(size)
        est = overhead.estimate(size)
        # The analytic model excludes silence retries and boundary probes;
        # the estimate's slack absorbs exactly those.
        assert subnet.probes_used <= est.upper * 1.25, (
            f"size {size}: measured {subnet.probes_used} > {est.upper}")

    @pytest.mark.parametrize("size", [2, 5, 6, 10, 14])
    def test_well_utilized_subnets_collected_exactly(self, size):
        """Subnets over half utilized are collected in full; a half-or-less
        utilized one (e.g. 3 of 6 in a /29) is underestimated per §3.8."""
        subnet = self._measure(size)
        assert subnet.size == size

    def test_half_utilized_subnet_underestimated(self):
        subnet = self._measure(3)  # 3 assigned of a /29's 6
        assert subnet.size < 3
        assert subnet.prefix.length > 29

    def test_p2p_cost_near_lower_bound(self):
        subnet = self._measure(2)
        # Positioning + exploration of an on-path /30 should stay within a
        # small multiple of the 4-probe lower bound.
        assert subnet.probes_used <= 4 * overhead.LOWER_BOUND_P2P
