"""The metrics parity contract: live run == journal replay == tracenet stats.

The deterministic :meth:`MetricsRegistry.snapshot` payload is a pure
function of the session-event stream.  Recording a run and replaying its
journal — through :class:`ReplayTransport` directly, or through the
``tracenet stats`` analytics entry point — must therefore reproduce the
registry bit for bit, histograms included.  Backend counters and timing
spans legitimately differ (different backends, different wall clocks),
which is why they are quarantined outside ``snapshot()``.
"""

import io
import json

from repro.core import TraceNET
from repro.metrics import (
    MetricsRegistry,
    instrument,
    instrumented_collection,
    registry_from_events,
    stats_from_journal,
)
from repro.netsim import Engine
from repro.parallel import ShardSpec, ShardedSurveyRunner
from repro.runner import SurveyRunner
from repro.topogen import internet2
from repro.transport import (
    RecordingTransport,
    ReplayTransport,
    SimulatorTransport,
    collect_backend_metrics,
)

SEED = 7
VANTAGE = "utdallas"


def _record_survey(targets):
    """One live instrumented survey; returns (registry, journal_text, tool)."""
    network = internet2.build(seed=SEED)
    engine = Engine(network.topology, policy=network.policy)
    buffer = io.StringIO()
    transport = RecordingTransport(
        SimulatorTransport(engine), buffer,
        metadata={"network": "internet2", "seed": SEED, "vantage": VANTAGE})
    tool = TraceNET(transport, VANTAGE)
    registry = MetricsRegistry()
    instrument(tool.events, registry=registry)
    SurveyRunner(tool).run(targets)
    collect_backend_metrics(registry.backend, transport)
    return registry, buffer.getvalue(), tool


def _targets(count=12):
    network = internet2.build(seed=SEED)
    return internet2.targets(network, seed=SEED)[:count]


class TestThreeWayParity:
    def test_live_replay_and_stats_registries_are_identical(self):
        targets = _targets()
        live, journal, _ = _record_survey(targets)

        replayed = instrumented_collection(
            ReplayTransport(io.StringIO(journal)), VANTAGE, targets=targets)

        stats = stats_from_journal(io.StringIO(journal), targets=targets)

        assert live.snapshot() == replayed.snapshot()
        assert live.snapshot() == stats.registry.snapshot()
        # Histograms specifically: same buckets, same per-bucket counts.
        assert live.snapshot()["histograms"] == \
            stats.registry.snapshot()["histograms"]
        assert live.snapshot()["histograms"]["probe_ttl"]["count"] > 0
        assert stats.mode == "survey"
        assert stats.exchanges_remaining == 0

    def test_stats_resolves_survey_shape_from_metadata(self):
        # Full target list so the journal metadata alone (network + seed)
        # reconstructs the run; no targets= hint passed.
        network = internet2.build(seed=SEED)
        targets = internet2.targets(network, seed=SEED)
        live, journal, _ = _record_survey(targets)
        stats = stats_from_journal(io.StringIO(journal))
        assert stats.vantage == VANTAGE
        assert stats.targets == list(targets)
        assert stats.registry.snapshot() == live.snapshot()
        assert stats.exchanges_remaining == 0

    def test_snapshot_survives_json_roundtrip(self):
        targets = _targets(6)
        live, _, _ = _record_survey(targets)
        clone = MetricsRegistry.from_dict(
            json.loads(json.dumps(live.to_dict())))
        assert clone.snapshot() == live.snapshot()

    def test_backend_scopes_differ_but_sessions_match(self):
        targets = _targets(6)
        live, journal, _ = _record_survey(targets)
        stats = stats_from_journal(io.StringIO(journal), targets=targets)
        # Live saw the engine; stats saw only the journal cursor.
        assert "engine_probes_sent" in live.backend.snapshot()["gauges"]
        replay_backend = stats.registry.backend.snapshot()["gauges"]
        assert "engine_probes_sent" not in replay_backend
        assert replay_backend["replay_exchanges_remaining"] == 0


class TestEngineReconciliation:
    def test_event_counters_match_engine_and_prober_exactly(self):
        # The accounting skew the CacheHit event closed: wire-probe events
        # must reconcile with the engine's own counters, and cache-hit
        # events with the prober's.
        targets = _targets()
        network = internet2.build(seed=SEED)
        engine = Engine(network.topology, policy=network.policy)
        tool = TraceNET(engine, VANTAGE)
        registry = MetricsRegistry()
        instrument(tool.events, registry=registry)
        SurveyRunner(tool).run(targets)
        assert registry.value("probes_sent_total") == engine.stats.probes_sent
        assert (registry.value("probe_cache_hits_total")
                == tool.prober.stats.cache_hits)
        assert (registry.value("probe_responses_total")
                == engine.stats.responses_returned)
        assert registry.value("probe_silent_total") == engine.stats.silent_drops
        assert registry.value("probe_cache_hits_total") > 0

    def test_replayed_event_stream_rebuilds_the_registry(self):
        # registry_from_events over the collected stream equals the live
        # sink — the sink is a pure function of the events.
        from repro.events import CollectingSink

        targets = _targets(6)
        network = internet2.build(seed=SEED)
        engine = Engine(network.topology, policy=network.policy)
        tool = TraceNET(engine, VANTAGE)
        collected = CollectingSink()
        tool.events.subscribe(collected)
        registry = MetricsRegistry()
        instrument(tool.events, registry=registry)
        SurveyRunner(tool).run(targets)
        # The stream already contains the auditor's OverheadViolation
        # events (none expected here), so rebuild without re-auditing.
        rebuilt = registry_from_events(collected.events)
        assert rebuilt.snapshot() == registry.snapshot()


class TestShardedMetrics:
    def test_sharded_survey_merges_shard_registries(self):
        network = internet2.build(seed=SEED)
        targets = internet2.targets(network, seed=SEED)[:16]
        spec = ShardSpec.from_network(network.topology, network.policy,
                                      VANTAGE)
        outcome = ShardedSurveyRunner(spec, workers=2).run(targets)
        merged = outcome.metrics
        assert merged is not None
        assert all(shard.metrics is not None for shard in outcome.shards)
        # Counters sum exactly across shards.
        for name in ("probes_sent_total", "traces_finished_total",
                     "subnets_grown_total"):
            assert merged.value(name) == sum(
                shard.metrics.value(name) for shard in outcome.shards)
        assert merged.value("probes_sent_total") == outcome.stats.sent
        assert merged.value("traces_finished_total") == len(targets)
        # Backend gauges sum too: fleet-total engine counters.
        assert merged.backend.value("engine_probes_sent") == \
            outcome.stats.sent
        assert merged.value("overhead_violations_total") == 0
