"""Unit tests for the mapping layer: store, merge, graph."""

import io

import pytest

from repro.core import TraceNET
from repro.core.results import ObservedSubnet, TraceHop, TraceResult
from repro.mapping import (
    CollectionArchive,
    TopologyMap,
    annotate_same_lan,
    archive_from_tool,
    confirmed,
    coverage,
    load_archive,
    map_from_collections,
    merge_collections,
    render_adjacency,
    save_archive,
    subnet_from_dict,
    subnet_to_dict,
    trace_from_dict,
    trace_to_dict,
)
from repro.netsim import Engine, Prefix, TopologyBuilder
from repro.netsim.addressing import parse_ip


def observed(pivot, members, vantage_extras=None, **kwargs):
    return ObservedSubnet(pivot=parse_ip(pivot),
                          pivot_distance=kwargs.pop("pivot_distance", 3),
                          members={parse_ip(m) for m in members},
                          **kwargs)


class TestStore:
    def _subnet(self):
        return observed("10.0.0.2", ["10.0.0.1", "10.0.0.2"],
                        contra_pivot=parse_ip("10.0.0.1"),
                        ingress=parse_ip("10.1.0.1"),
                        on_trace_path=True,
                        stop_reason="under-utilized",
                        probes_used=9,
                        prefix_length=30)

    def test_subnet_roundtrip(self):
        original = self._subnet()
        rebuilt = subnet_from_dict(subnet_to_dict(original))
        assert rebuilt.prefix == original.prefix
        assert rebuilt.members == original.members
        assert rebuilt.contra_pivot == original.contra_pivot
        assert rebuilt.ingress == original.ingress
        assert rebuilt.on_trace_path is True
        assert rebuilt.stop_reason == "under-utilized"
        assert rebuilt.probes_used == 9

    def test_trace_roundtrip_with_subnet_refs(self):
        subnet = self._subnet()
        trace = TraceResult(vantage_host_id="v",
                            destination=parse_ip("10.0.0.2"), reached=True)
        trace.hops.append(TraceHop(ttl=1, address=parse_ip("10.0.0.2"),
                                   subnet=subnet, is_destination=True))
        payload = trace_to_dict(trace)
        index = {str(subnet.prefix): subnet}
        rebuilt = trace_from_dict(payload, index)
        assert rebuilt.reached
        assert rebuilt.hops[0].subnet is subnet

    def test_archive_roundtrip_via_file_object(self):
        subnet = self._subnet()
        archive = CollectionArchive(vantage="rice", subnets=[subnet],
                                    metadata={"seed": 7})
        buffer = io.StringIO()
        save_archive(buffer, archive)
        buffer.seek(0)
        loaded = load_archive(buffer)
        assert loaded.vantage == "rice"
        assert loaded.metadata == {"seed": 7}
        assert loaded.subnets[0].prefix == subnet.prefix

    def test_archive_roundtrip_via_path(self, tmp_path):
        archive = CollectionArchive(vantage="x", subnets=[self._subnet()])
        path = str(tmp_path / "collection.json")
        save_archive(path, archive)
        loaded = load_archive(path)
        assert loaded.subnets[0].members == self._subnet().members

    def test_unsupported_version_rejected(self):
        from repro.mapping import archive_from_dict
        with pytest.raises(ValueError):
            archive_from_dict({"format_version": 99, "vantage": "x"})

    def test_archive_from_tool(self):
        builder = TopologyBuilder()
        stub = builder.link("R1", "R2")
        builder.edge_host("v", "R1")
        topo = builder.build()
        tool = TraceNET(Engine(topo), "v")
        result = tool.trace(max(stub.addresses))
        archive = archive_from_tool(tool, traces=[result], seed=1)
        assert archive.vantage == "v"
        assert archive.subnets
        assert archive.metadata == {"seed": 1}


class TestMerge:
    def test_identical_observations_merge(self):
        a = observed("10.0.0.2", ["10.0.0.1", "10.0.0.2"], prefix_length=30)
        b = observed("10.0.0.1", ["10.0.0.1", "10.0.0.2"], prefix_length=30)
        merged = merge_collections({"rice": [a], "umass": [b]})
        assert len(merged) == 1
        assert merged[0].confirmation == 2
        assert merged[0].observers == {"rice", "umass"}

    def test_majority_block_wins(self):
        small = observed("10.0.0.2", ["10.0.0.1", "10.0.0.2"], prefix_length=30)
        small2 = observed("10.0.0.2", ["10.0.0.1", "10.0.0.2"], prefix_length=30)
        big = observed("10.0.0.2", ["10.0.0.1", "10.0.0.2", "10.0.0.5"],
                       prefix_length=29)
        merged = merge_collections({"a": [small], "b": [small2], "c": [big]})
        assert len(merged) == 1
        assert merged[0].prefix == Prefix.parse("10.0.0.0/30")

    def test_tie_breaks_toward_larger_block(self):
        small = observed("10.0.0.2", ["10.0.0.1", "10.0.0.2"], prefix_length=30)
        big = observed("10.0.0.2", ["10.0.0.1", "10.0.0.2", "10.0.0.5"],
                       prefix_length=29)
        merged = merge_collections({"a": [small], "b": [big]})
        assert merged[0].prefix == Prefix.parse("10.0.0.0/29")
        assert parse_ip("10.0.0.5") in merged[0].members

    def test_disjoint_blocks_stay_separate(self):
        a = observed("10.0.0.2", ["10.0.0.1", "10.0.0.2"], prefix_length=30)
        b = observed("10.0.1.2", ["10.0.1.1", "10.0.1.2"], prefix_length=30)
        merged = merge_collections({"x": [a, b]})
        assert len(merged) == 2

    def test_singletons_excluded_by_default(self):
        single = observed("10.0.0.9", ["10.0.0.9"])
        merged = merge_collections({"x": [single]})
        assert merged == []

    def test_coverage_and_confirmed(self):
        a = observed("10.0.0.2", ["10.0.0.1", "10.0.0.2"], prefix_length=30)
        b = observed("10.0.0.2", ["10.0.0.1", "10.0.0.2"], prefix_length=30)
        c = observed("10.0.1.2", ["10.0.1.1", "10.0.1.2"], prefix_length=30)
        merged = merge_collections({"r": [a, c], "u": [b]})
        assert len(coverage(merged)) == 4
        assert len(confirmed(merged, minimum_observers=2)) == 1

    def test_members_outside_consensus_block_dropped(self):
        wide = observed("10.0.0.2",
                        ["10.0.0.1", "10.0.0.2", "10.0.0.9"],
                        prefix_length=28)
        narrow1 = observed("10.0.0.2", ["10.0.0.1", "10.0.0.2"],
                           prefix_length=30)
        narrow2 = observed("10.0.0.2", ["10.0.0.1", "10.0.0.2"],
                           prefix_length=30)
        merged = merge_collections({"a": [wide], "b": [narrow1],
                                    "c": [narrow2]})
        assert merged[0].prefix == Prefix.parse("10.0.0.0/30")
        assert parse_ip("10.0.0.9") not in merged[0].members


class TestTopologyMap:
    def _map(self):
        lan = observed("10.0.0.10",
                       ["10.0.0.9", "10.0.0.10", "10.0.0.11"],
                       prefix_length=29)
        link = observed("10.0.1.2", ["10.0.1.1", "10.0.1.2"],
                        prefix_length=30)
        merged = merge_collections({"v": [lan, link]})
        trace = TraceResult(vantage_host_id="v",
                            destination=parse_ip("10.0.1.2"), reached=True)
        trace.hops = [
            TraceHop(ttl=1, address=parse_ip("10.0.0.9")),
            TraceHop(ttl=2, address=parse_ip("10.0.1.2"),
                     is_destination=True),
        ]
        return TopologyMap.build(merged, [trace])

    def test_edge_from_trace(self):
        topo_map = self._map()
        assert len(topo_map.edges) == 1
        a, b = topo_map.edges[0]
        assert {str(a), str(b)} == {"10.0.0.8/29", "10.0.1.0/30"}

    def test_neighbors_and_degree(self):
        topo_map = self._map()
        lan = Prefix.parse("10.0.0.8/29")
        assert topo_map.degree(lan) == 1
        assert topo_map.neighbors(lan) == [Prefix.parse("10.0.1.0/30")]

    def test_subnet_of_member_and_block(self):
        topo_map = self._map()
        by_member = topo_map.subnet_of(parse_ip("10.0.0.9"))
        by_block = topo_map.subnet_of(parse_ip("10.0.0.12"))
        assert by_member is not None
        assert by_block is not None and by_block.prefix == by_member.prefix

    def test_path_analysis(self):
        topo_map = self._map()
        path_a = [parse_ip("10.0.0.9"), parse_ip("10.0.1.2")]
        path_b = [parse_ip("10.0.0.11")]
        assert not topo_map.link_disjoint(path_a, path_b)
        assert topo_map.link_disjoint([parse_ip("10.0.1.1")], path_b)

    def test_dot_export(self):
        text = self._map().to_dot()
        assert text.startswith("graph")
        assert '"10.0.0.8/29" -- "10.0.1.0/30"' in text

    def test_edge_list_export(self):
        lines = self._map().to_edge_list()
        assert lines == ["10.0.0.8/29 10.0.1.0/30"]

    def test_annotate_same_lan(self):
        topo_map = self._map()
        notes = annotate_same_lan(topo_map, [parse_ip("10.0.0.9"),
                                             parse_ip("10.0.0.10"),
                                             parse_ip("99.0.0.1")])
        assert notes[parse_ip("10.0.0.9")] == notes[parse_ip("10.0.0.10")]
        assert notes[parse_ip("99.0.0.1")] is None

    def test_render_adjacency(self):
        text = render_adjacency(self._map())
        assert "10.0.0.8/29" in text

    def test_summary_and_describe(self):
        topo_map = self._map()
        assert "2 subnets" in topo_map.summary()
        assert "1 links" in topo_map.summary()
        assert topo_map.describe().count("\n") >= 2


class TestEndToEndMapping:
    def test_map_from_real_collections(self):
        """Collect with tracenet from two vantages, merge, build the map,
        and answer the Figure 2 question through the public API."""
        from repro.topogen import figures
        net = figures.figure2_network()
        lan = net.topology.subnets[net.landmarks["shared_lan"]]

        collections = {}
        traces = []
        for vantage, destination in (("A", net.hosts["D"].address),
                                     ("B", net.hosts["C"].address)):
            tool = TraceNET(net.engine(), vantage)
            traces.append(tool.trace(destination))
            collections[vantage] = tool.collected_subnets
        topo_map = map_from_collections(collections, traces)

        path_a = [a for a in traces[0].path_addresses if a is not None]
        path_b = [a for a in traces[1].path_addresses if a is not None]
        assert not topo_map.link_disjoint(path_a, path_b)
        shared = topo_map.shared_subnets(path_a, path_b)
        assert lan.prefix in {s.prefix for s in shared}
