"""Tests for the engine's IP-ID models, wire-byte accounting, record-route
plumbing, generator variety knobs, and other substrate details."""


from conftest import address_on
from repro.netsim import Engine, IpIdMode, Probe, Protocol, TopologyBuilder
from repro.netsim.packet import PROBE_WIRE_BYTES, RECORD_ROUTE_SLOTS, wire_bytes
from repro.netsim.router import IndirectConfig
from repro.topogen.spec import NetworkBlueprint, synthesize


def chain(n=4, **engine_kwargs):
    builder = TopologyBuilder("chain")
    for i in range(1, n):
        builder.link(f"R{i}", f"R{i+1}")
    builder.edge_host("v", "R1")
    topo = builder.build()
    return Engine(topo, **engine_kwargs), topo


def send(engine, topo, dst, ttl=64):
    return engine.send(Probe(src=topo.hosts["v"].address, dst=dst, ttl=ttl))


class TestIpIds:
    def test_shared_counter_increases(self):
        engine, topo = chain()
        dst = address_on(topo, "R2", "R1")
        ids = []
        for _ in range(5):
            response = send(engine, topo, dst)
            ids.append(response.ip_id)
        advances = [(b - a) % 65536 for a, b in zip(ids, ids[1:])]
        assert all(1 <= adv <= 9 for adv in advances)

    def test_counter_shared_across_interfaces(self):
        engine, topo = chain()
        a = address_on(topo, "R2", "R1")
        b = address_on(topo, "R2", "R3")
        first = send(engine, topo, a).ip_id
        second = send(engine, topo, b).ip_id
        assert 1 <= (second - first) % 65536 <= 9

    def test_different_routers_independent(self):
        engine, topo = chain()
        a = send(engine, topo, address_on(topo, "R2", "R1")).ip_id
        b = send(engine, topo, address_on(topo, "R3", "R2")).ip_id
        # Independent random starting offsets: equality would be a fluke.
        assert a != b

    def test_random_mode_scatters(self):
        engine, topo = chain()
        topo.routers["R2"].ip_id_mode = IpIdMode.RANDOM
        dst = address_on(topo, "R2", "R1")
        engine_cacheless_ids = set()
        for _ in range(12):
            engine_cacheless_ids.add(send(engine, topo, dst).ip_id)
        assert len(engine_cacheless_ids) >= 8

    def test_engine_seed_reproducible(self):
        for _ in range(2):
            ids = []
            for seed in (9, 9):
                engine, topo = chain(seed=seed)
                ids.append(send(engine, topo,
                                address_on(topo, "R2", "R1")).ip_id)
            assert ids[0] == ids[1]

    def test_ttl_exceeded_carries_ip_id(self):
        engine, topo = chain()
        response = send(engine, topo, address_on(topo, "R3", "R2"), ttl=2)
        assert response.is_ttl_exceeded
        assert response.ip_id is not None

    def test_noise_zero_gives_unit_steps(self):
        engine, topo = chain(ip_id_noise=0)
        dst = address_on(topo, "R2", "R1")
        first = send(engine, topo, dst).ip_id
        second = send(engine, topo, dst).ip_id
        assert (second - first) % 65536 == 1


class TestWireBytes:
    def test_constants_present(self):
        assert set(PROBE_WIRE_BYTES) == set(Protocol)

    def test_wire_bytes_scales(self):
        assert wire_bytes(Protocol.ICMP, 10) == 10 * PROBE_WIRE_BYTES[Protocol.ICMP]
        assert wire_bytes(Protocol.UDP, 0) == 0


class TestRecordRoutePlumbing:
    def test_stamps_are_outgoing_interfaces(self):
        engine, topo = chain(5)
        host = topo.hosts["v"]
        dst = address_on(topo, "R5", "R4")
        response = engine.send(Probe(src=host.address, dst=dst, ttl=64,
                                     record_route=True))
        assert response.record_route
        for stamp in response.record_route:
            assert topo.interface_at(stamp) is not None
        # The first stamp is the gateway's outgoing interface, which is on
        # the R1-R2 link (not the vantage stub).
        first = topo.interface_at(response.record_route[0])
        assert first.router_id == "R1"

    def test_slot_limit(self):
        builder = TopologyBuilder()
        for i in range(1, 14):
            builder.link(f"R{i}", f"R{i+1}")
        builder.edge_host("v", "R1")
        topo = builder.build()
        engine = Engine(topo)
        dst = address_on(topo, "R14", "R13")
        response = engine.send(Probe(src=topo.hosts["v"].address, dst=dst,
                                     ttl=64, record_route=True))
        assert len(response.record_route) == RECORD_ROUTE_SLOTS


class TestGeneratorVariety:
    def _network(self, **kwargs):
        return synthesize(NetworkBlueprint(
            name="variety", seed=3, base="10.0.0.0/16",
            distribution={30: 30, 29: 6}, backbone_routers=5, **kwargs))

    def test_response_config_mix_sampled(self):
        network = self._network(shortest_path_fraction=0.3,
                                default_iface_fraction=0.2)
        configs = {r.indirect_config
                   for r in network.topology.routers.values()}
        assert IndirectConfig.SHORTEST_PATH in configs
        assert IndirectConfig.DEFAULT in configs
        assert IndirectConfig.INCOMING in configs

    def test_random_ip_id_sampled(self):
        network = self._network(random_ip_id_fraction=0.5)
        modes = {r.ip_id_mode for r in network.topology.routers.values()}
        assert modes == {IpIdMode.SHARED, IpIdMode.RANDOM}

    def test_zero_fractions_leave_defaults(self):
        network = self._network(shortest_path_fraction=0.0,
                                default_iface_fraction=0.0,
                                random_ip_id_fraction=0.0)
        for router in network.topology.routers.values():
            assert router.indirect_config == IndirectConfig.INCOMING
            assert router.ip_id_mode == IpIdMode.SHARED

    def test_variety_survey_still_accurate(self):
        """A network with heavy config variety still surveys well: the
        positioning machinery absorbs non-incoming responders."""
        from repro.core import TraceNET
        from repro.evaluation import collected_prefixes, match_subnets
        from repro.topogen.spec import add_vantage
        import random
        network = self._network(shortest_path_fraction=0.25,
                                default_iface_fraction=0.1)
        add_vantage(network, "v")
        network.topology.validate()
        tool = TraceNET(Engine(network.topology, policy=network.policy), "v")
        tool.trace_many(network.pick_targets(random.Random(1)))
        report = match_subnets(network.ground_truth,
                               collected_prefixes(tool.collected_subnets))
        assert report.exact_match_rate() >= 0.8
