"""repro.tracing: deterministic span trees, replay parity, analytics.

The load-bearing contract: the span tree is a pure function of the
session-event stream, so a live run, a ReplayTransport replay of its
probe journal, and the offline ``span_tree_from_journal`` path all derive
bit-identical trees — and the timing plane (clock stamps) never leaks
into the deterministic serialization.
"""

import json
import time

import pytest

from repro.core import TraceNET
from repro.events import (
    HeuristicFired,
    HopObserved,
    ProbeSent,
    SubnetGrown,
    SubnetShrunk,
    TraceFinished,
    TraceStarted,
    CollectingSink,
    JsonlEventSink,
    replay_events,
)
from repro.netsim import format_ip
from repro.runner import SurveyRunner
from repro.tracing import (
    Span,
    SpanBuilder,
    chrome_trace,
    chrome_trace_for_service,
    critical_path,
    growth_outcomes,
    heuristic_attribution,
    per_trace_table,
    render_report,
    span_cost,
    span_tree_from_events,
    span_tree_from_journal,
)
from repro.transport import (
    RecordingTransport,
    ReplayTransport,
    SimulatorTransport,
)


# -- span primitives ----------------------------------------------------------


class TestSpan:
    def test_counters_and_subtree_rollup(self):
        root = Span(kind="session", name="session")
        trace = root.child("trace", "t")
        hop = trace.child("hop", "ttl-1")
        hop.count("probes", 3)
        trace.count("probes")
        assert hop.total("probes") == 3
        assert trace.total("probes") == 4
        assert root.total("probes") == 4
        assert root.counters.get("probes", 0) == 0

    def test_to_dict_round_trip(self):
        root = Span(kind="session", name="s", meta={"b": 2, "a": 1})
        child = root.child("trace", "t")
        child.count("probes", 7)
        payload = root.to_dict()
        assert list(payload["meta"]) == ["a", "b"]   # sorted keys
        clone = Span.from_dict(payload)
        assert clone.to_dict() == payload

    def test_timing_plane_is_quarantined(self):
        span = Span(kind="trace", name="t", start=1.0, end=3.5)
        assert span.duration == 2.5
        assert "start" not in span.to_dict()
        timed = span.to_dict(timing=True)
        assert timed["start"] == 1.0 and timed["end"] == 3.5

    def test_walk_is_depth_first_self_first(self):
        root = Span(kind="a", name="a")
        b = root.child("b", "b")
        b.child("c", "c")
        root.child("d", "d")
        assert [s.name for s in root.walk()] == ["a", "b", "c", "d"]


# -- builder structure on a real collection -----------------------------------


@pytest.fixture
def lan_tree(lan_network):
    tool = TraceNET(lan_network.engine(), "vantage")
    builder = SpanBuilder()
    tool.events.subscribe(builder)
    collected = tool.events.subscribe(CollectingSink())
    destination = max(lan_network.topology.all_interface_addresses)
    tool.trace(destination)
    return builder.finish(), collected.events, destination


class TestBuilderStructure:
    def test_one_trace_span_named_after_destination(self, lan_tree):
        root, events, destination = lan_tree
        traces = [s for s in root.walk() if s.kind == "trace"]
        assert len(traces) == 1
        assert traces[0].name == format_ip(destination)
        assert traces[0].meta["destination"] == destination
        assert traces[0].meta["reached"] in (True, False)

    def test_hop_spans_are_keyed_by_ttl(self, lan_tree):
        root, events, _ = lan_tree
        hops = [s for s in root.walk() if s.kind == "hop"]
        ttls = [s.meta["ttl"] for s in hops]
        assert len(set(ttls)) == len(ttls)           # one span per TTL
        observed = {e.ttl for e in events if isinstance(e, HopObserved)}
        assert observed <= set(ttls)

    def test_probe_rollup_matches_event_stream(self, lan_tree):
        root, events, _ = lan_tree
        sent = sum(1 for e in events if isinstance(e, ProbeSent))
        assert root.total("probes") == sent

    def test_heuristic_leaves_carry_charged_probes(self, lan_tree):
        root, events, _ = lan_tree
        fired = sum(1 for e in events if isinstance(e, HeuristicFired))
        leaves = [s for s in root.walk() if s.kind == "heuristic"]
        assert sum(s.counters["fires"] for s in leaves) == fired
        # Exploration probes land on judgement leaves (or the phase span),
        # never above the exploration phase.
        for phase in (s for s in root.walk()
                      if s.kind == "phase" and "exploration" in s.name):
            assert phase.total("probes") >= \
                sum(leaf.counters.get("probes", 0)
                    for leaf in phase.children if leaf.kind == "heuristic")

    def test_trace_meta_matches_trace_finished(self, lan_tree):
        root, events, _ = lan_tree
        finished = next(e for e in events if isinstance(e, TraceFinished))
        trace = next(s for s in root.walk() if s.kind == "trace")
        assert trace.meta["probes_sent"] == finished.probes_sent
        assert trace.meta["hops"] == finished.hops
        assert trace.meta["cache_hits"] == finished.cache_hits


# -- parity: live == replay == offline ----------------------------------------


def _record_trace(lan_network, path, **collector):
    """One recorded figure-3 trace; returns (live tree, journal path)."""
    destination = max(lan_network.topology.all_interface_addresses)
    metadata = {"source": "vantage",
                "destination": format_ip(destination)}
    if collector:
        metadata["collector"] = dict(collector)
    transport = RecordingTransport(
        SimulatorTransport(lan_network.engine()), str(path),
        metadata=metadata)
    kwargs = {}
    if collector.get("batch_window"):
        kwargs["batch_window"] = collector["batch_window"]
    if collector.get("stop_sets"):
        from repro.probing import StopSet

        kwargs["stop_set"] = StopSet()
    tool = TraceNET(transport, "vantage", **kwargs)
    builder = SpanBuilder(clock=time.perf_counter)   # clocked on purpose
    tool.events.subscribe(builder)
    tool.trace(destination)
    transport.close()
    return builder.finish(), destination


class TestReplayParity:
    @pytest.mark.parametrize("collector", [
        {},
        {"batch_window": 4},
        {"stop_sets": True},
    ], ids=["serial", "batched", "stop-sets"])
    def test_trace_journal_parity(self, lan_network, tmp_path, collector):
        journal = tmp_path / "trace.jsonl"
        live, destination = _record_trace(lan_network, journal, **collector)
        offline = span_tree_from_journal(str(journal))
        assert offline.to_dict() == live.to_dict()

    def test_replay_transport_rebuilds_the_same_tree(self, lan_network,
                                                     tmp_path):
        journal = tmp_path / "trace.jsonl"
        live, destination = _record_trace(lan_network, journal)
        transport = ReplayTransport(str(journal))
        tool = TraceNET(transport, "vantage")
        builder = SpanBuilder()
        tool.events.subscribe(builder)
        tool.trace(destination)
        assert builder.finish().to_dict() == live.to_dict()

    def test_survey_event_journal_parity(self, lan_network, tmp_path):
        events_path = tmp_path / "events.jsonl"
        tool = TraceNET(lan_network.engine(), "vantage")
        sink = tool.events.subscribe(JsonlEventSink(str(events_path)))
        tracer = SpanBuilder(clock=time.perf_counter)
        targets = sorted(lan_network.topology.all_interface_addresses)[-3:]
        SurveyRunner(tool, tracer=tracer).run(targets)
        sink.close()
        live = tracer.root
        offline = span_tree_from_journal(str(events_path))
        assert offline.to_dict() == live.to_dict()
        rebuilt = span_tree_from_events(replay_events(str(events_path)))
        assert rebuilt.to_dict() == live.to_dict()

    def test_clock_never_changes_the_deterministic_tree(self, lan_network):
        destination = max(lan_network.topology.all_interface_addresses)

        def run(clock):
            tool = TraceNET(lan_network.engine(), "vantage")
            builder = SpanBuilder(clock=clock)
            tool.events.subscribe(builder)
            tool.trace(destination)
            return builder.finish()

        unclocked, clocked = run(None), run(time.perf_counter)
        assert unclocked.to_dict() == clocked.to_dict()
        assert clocked.duration is not None
        assert unclocked.duration is None


# -- critical path and attribution --------------------------------------------


def _timed(kind, name, start, end, **counters):
    span = Span(kind=kind, name=name, start=start, end=end)
    for key, value in counters.items():
        span.count(key, value)
    return span


class TestCriticalPath:
    def test_untimed_levels_fall_back_to_probe_cost(self):
        root = Span(kind="session", name="session")
        cheap = root.child("trace", "a")
        cheap.count("probes", 3)
        dear = root.child("trace", "b")
        dear.count("probes", 5)
        dear.count("suppressed", 2)
        assert [s.name for s in critical_path(root)] == ["session", "b"]
        assert span_cost(dear) == 7

    def test_timed_levels_follow_duration(self):
        root = _timed("session", "session", 0.0, 10.0)
        fast = _timed("trace", "fast", 0.0, 1.0, probes=100)
        slow = _timed("trace", "slow", 1.0, 9.0, probes=1)
        root.children = [fast, slow]
        # Duration wins over probe cost when every sibling is timed.
        assert [s.name for s in critical_path(root)] == ["session", "slow"]

    def test_mixed_level_uses_probe_cost(self):
        root = _timed("session", "session", 0.0, 10.0)
        timed = _timed("trace", "timed", 0.0, 9.0, probes=1)
        untimed = Span(kind="trace", name="untimed")
        untimed.count("probes", 50)
        root.children = [timed, untimed]
        assert critical_path(root)[-1].name == "untimed"

    def test_real_tree_path_reaches_a_leaf(self, lan_tree):
        root, _, _ = lan_tree
        path = critical_path(root)
        assert path[0] is root
        assert not path[-1].children
        # Monotone containment: every step is a child of the previous.
        for parent, child in zip(path, path[1:]):
            assert child in parent.children


class TestHeuristicAttribution:
    def test_pending_probes_charge_the_next_judgement(self):
        events = [
            TraceStarted(destination=1),
            ProbeSent(dst=9, ttl=None, protocol="icmp", flow_id=0,
                      phase="subnet-exploration", answered=True,
                      response_kind="echo-reply", response_source=9),
            ProbeSent(dst=10, ttl=None, protocol="icmp", flow_id=0,
                      phase="subnet-exploration", answered=False,
                      response_kind=None, response_source=None),
            HeuristicFired(candidate=9, rule="H2",
                           verdict="continue-with-next-address",
                           detail="responsive"),
            SubnetShrunk(pivot=1, rule="H3", prefix_length=30),
            SubnetGrown(pivot=1, prefix="10.0.0.0/30", size=2,
                        stop_reason="prefix-floor", probes_used=2),
            TraceFinished(destination=1, reached=True, hops=1,
                          probes_sent=2, cache_hits=0),
        ]
        root = span_tree_from_events(events)
        rows = heuristic_attribution(root)
        assert rows["H2"]["fires"] == 1
        assert rows["H2"]["probes"] == 2          # both pending probes
        assert rows["H2"]["verdicts"] == {
            "continue-with-next-address": 1}
        assert rows["H3"]["shrinks"] == 1
        assert growth_outcomes(root) == {"prefix-floor": 1}

    def test_real_tree_report_renders(self, lan_tree):
        root, _, _ = lan_tree
        report = render_report(root)
        assert "critical path" in report
        assert "heuristic attribution" in report
        table = per_trace_table(root)
        assert "probes" in table


# -- Chrome trace export ------------------------------------------------------


class TestChromeExport:
    def test_timed_tree_exports_complete_events(self):
        root = _timed("session", "session", 1.0, 2.0)
        root.children = [_timed("trace", "t", 1.2, 1.7, probes=3)]
        doc = chrome_trace(root)
        events = doc["traceEvents"]
        assert [e["ph"] for e in events] == ["X", "X"]
        child = events[1]
        assert child["name"] == "trace:t"
        assert child["ts"] == pytest.approx(0.2e6)
        assert child["dur"] == pytest.approx(0.5e6)
        assert child["args"]["counters"] == {"probes": 3}

    def test_untimed_spans_are_skipped(self):
        root = _timed("session", "session", 0.0, 1.0)
        root.children = [Span(kind="trace", name="untimed")]
        assert len(chrome_trace(root)["traceEvents"]) == 1

    def test_service_document_separates_worker_timebases(self):
        job = _timed("job", "job", 100.0, 110.0)
        job.children = [_timed("lease", "shard-0-attempt-1", 101.0, 109.0)]
        worker_tree = _timed("shard", "shard-0", 5000.0, 5009.0)
        doc = chrome_trace_for_service(
            job, {0: worker_tree.to_dict(timing=True)})
        pids = {event["pid"] for event in doc["traceEvents"]}
        assert pids == {0, 1}
        # Each pid keeps its own origin: both trees start at ts == 0.
        starts = {}
        for event in doc["traceEvents"]:
            starts[event["pid"]] = min(starts.get(event["pid"],
                                                  event["ts"]),
                                       event["ts"])
        assert starts == {0: 0.0, 1: 0.0}

    def test_clocked_real_tree_round_trips_through_export(self, lan_network,
                                                          tmp_path):
        tool = TraceNET(lan_network.engine(), "vantage")
        builder = SpanBuilder(clock=time.perf_counter)
        tool.events.subscribe(builder)
        tool.trace(max(lan_network.topology.all_interface_addresses))
        doc = chrome_trace(builder.finish())
        assert doc["traceEvents"]
        for event in doc["traceEvents"]:
            assert event["dur"] >= 0
            assert event["ts"] >= 0
        path = tmp_path / "trace.chrome.json"
        from repro.tracing import write_chrome_trace

        write_chrome_trace(str(path), doc)
        assert json.loads(path.read_text())["traceEvents"]
