"""Unit tests for the checkpointing survey runner."""

import pytest

from repro.core import TraceNET
from repro.mapping import load_archive
from repro.netsim import Engine
from repro.probing import ProbeBudget, ProbeBudgetExceeded
from repro.runner import SurveyRunner, run_survey_with_checkpoints
from repro.topogen import internet2


@pytest.fixture(scope="module")
def network():
    return internet2.build(seed=13)


@pytest.fixture(scope="module")
def targets(network):
    return internet2.targets(network, seed=13)[:25]


def make_tool(network, **kwargs):
    return TraceNET(Engine(network.topology, policy=network.policy),
                    "utdallas", **kwargs)


class TestRun:
    def test_progress_counters(self, network, targets):
        runner = SurveyRunner(make_tool(network))
        progress = runner.run(targets)
        assert progress.completed == len(targets)
        assert progress.skipped == 0
        assert progress.reached > 0
        assert progress.probes_sent > 0
        assert progress.remaining == 0

    def test_traces_recorded(self, network, targets):
        runner = SurveyRunner(make_tool(network))
        runner.run(targets)
        assert len(runner.traces) == len(targets)

    def test_progress_hook_called(self, network, targets):
        seen = []
        runner = SurveyRunner(make_tool(network),
                              progress=lambda p: seen.append(p.completed))
        runner.run(targets[:5])
        assert len(seen) == 5

    def test_duplicate_targets_skipped(self, network, targets):
        runner = SurveyRunner(make_tool(network))
        doubled = list(targets[:5]) + list(targets[:5])
        progress = runner.run(doubled)
        assert progress.completed == 5
        assert progress.skipped == 5

    def test_describe(self, network, targets):
        runner = SurveyRunner(make_tool(network))
        progress = runner.run(targets[:3])
        assert "3/3 targets" in progress.describe()


class TestCheckpointing:
    def test_checkpoint_written(self, network, targets, tmp_path):
        path = str(tmp_path / "survey.json")
        runner = SurveyRunner(make_tool(network), checkpoint_path=path,
                              checkpoint_every=2)
        runner.run(targets[:6])
        archive = load_archive(path)
        assert archive.vantage == "utdallas"
        assert len(archive.traces) == 6
        assert len(archive.metadata["done_targets"]) == 6

    def test_resume_skips_done_targets(self, network, targets, tmp_path):
        path = str(tmp_path / "survey.json")
        first = SurveyRunner(make_tool(network), checkpoint_path=path)
        first.run(targets[:10])

        resumed_tool = make_tool(network)
        resumed = SurveyRunner(resumed_tool, checkpoint_path=path)
        progress = resumed.run(targets)
        assert progress.skipped == 10
        assert progress.completed == len(targets) - 10
        # The resumed tool reuses archived subnets instead of re-exploring.
        assert resumed_tool.collected_subnets

    def test_resume_rejects_foreign_vantage(self, network, targets, tmp_path):
        path = str(tmp_path / "survey.json")
        SurveyRunner(make_tool(network), checkpoint_path=path).run(targets[:2])
        other_network = internet2.build(seed=13, vantage="elsewhere")
        other_tool = TraceNET(
            Engine(other_network.topology, policy=other_network.policy),
            "elsewhere")
        with pytest.raises(ValueError):
            SurveyRunner(other_tool, checkpoint_path=path)

    def test_budget_exhaustion_flushes(self, network, targets, tmp_path):
        path = str(tmp_path / "survey.json")
        tool = make_tool(network, budget=ProbeBudget(limit=40))
        runner = SurveyRunner(tool, checkpoint_path=path)
        with pytest.raises(ProbeBudgetExceeded):
            runner.run(targets)
        archive = load_archive(path)
        assert archive.metadata["done_targets"] is not None

    def test_convenience_wrapper(self, network, targets, tmp_path):
        path = str(tmp_path / "survey.json")
        archive = run_survey_with_checkpoints(make_tool(network),
                                              targets[:4], path)
        assert len(archive.traces) == 4
        assert load_archive(path).vantage == "utdallas"

    def test_resumed_collection_equivalent_to_uninterrupted(self, network,
                                                            targets, tmp_path):
        """Interrupt + resume must converge to the same subnet inventory
        as a single uninterrupted run."""
        path = str(tmp_path / "survey.json")
        SurveyRunner(make_tool(network), checkpoint_path=path).run(targets[:12])
        resumed_tool = make_tool(network)
        SurveyRunner(resumed_tool, checkpoint_path=path).run(targets)

        straight_tool = make_tool(network)
        SurveyRunner(straight_tool).run(targets)

        resumed_blocks = {s.prefix for s in resumed_tool.collected_subnets
                          if s.size > 1}
        straight_blocks = {s.prefix for s in straight_tool.collected_subnets
                           if s.size > 1}
        assert resumed_blocks == straight_blocks
