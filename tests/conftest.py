"""Shared fixtures: small hand-built topologies every test layer reuses."""

from __future__ import annotations

import pytest

from repro.netsim import Engine, TopologyBuilder
from repro.topogen import figures


@pytest.fixture
def line_builder():
    """vantage -- R1 -- R2 -- R3 chain of /30 links."""
    builder = TopologyBuilder("line")
    builder.link("R1", "R2")
    builder.link("R2", "R3")
    builder.edge_host("vantage", "R1")
    return builder


@pytest.fixture
def line_topology(line_builder):
    return line_builder.build()


@pytest.fixture
def line_engine(line_topology):
    return Engine(line_topology)


@pytest.fixture
def lan_network():
    """The Figure 3 scene: ingress + /24 LAN + close/far fringes."""
    return figures.figure3_network()


@pytest.fixture
def lan_engine(lan_network):
    return lan_network.engine()


@pytest.fixture
def figure2():
    return figures.figure2_network()


def iface_of(topology, router_id, subnet_id=None):
    """First interface of a router (optionally on a given subnet)."""
    router = topology.routers[router_id]
    if subnet_id is not None:
        interface = router.interface_on(subnet_id)
        assert interface is not None
        return interface
    return router.interfaces[0]


def address_on(topology, router_id, other_router_id):
    """Address of ``router_id``'s interface on the subnet it shares with
    ``other_router_id``."""
    router = topology.routers[router_id]
    other = topology.routers[other_router_id]
    shared = set(router.subnet_ids) & set(other.subnet_ids)
    assert shared, f"{router_id} and {other_router_id} share no subnet"
    return router.interface_on(sorted(shared)[0]).address
