"""Checkpoint-resume equivalence for the serial survey runner.

An interrupted survey resumed from its checkpoint must end with the same
collected content (subnets and traces) as a never-interrupted run, and
re-entering ``run`` must not inherit stale per-run counters.
"""

import pytest

from repro.core import TraceNET
from repro.netsim import Engine
from repro.parallel import archives_equivalent
from repro.runner import SurveyRunner
from repro.topogen import internet2


@pytest.fixture(scope="module")
def network():
    return internet2.build(seed=13)


@pytest.fixture(scope="module")
def targets(network):
    return internet2.targets(network, seed=13)[:20]


def make_tool(network):
    return TraceNET(Engine(network.topology, policy=network.policy),
                    "utdallas")


class TestResumeEquivalence:
    def test_interrupted_resume_matches_uninterrupted(self, network,
                                                      targets, tmp_path):
        uninterrupted = SurveyRunner(make_tool(network))
        uninterrupted.run(targets)

        # "Interrupt" after the first half, then resume with a fresh tool
        # (a new process would rebuild everything from the checkpoint).
        path = str(tmp_path / "survey.json")
        first = SurveyRunner(make_tool(network), checkpoint_path=path,
                             checkpoint_every=2)
        first.run(targets[:len(targets) // 2])

        resumed = SurveyRunner(make_tool(network), checkpoint_path=path,
                               checkpoint_every=2)
        progress = resumed.run(targets)
        assert progress.skipped == len(targets) // 2
        assert progress.completed == len(targets) - len(targets) // 2
        assert archives_equivalent(uninterrupted.archive, resumed.archive)

    def test_resume_skips_probing_entirely_when_done(self, network,
                                                     targets, tmp_path):
        path = str(tmp_path / "survey.json")
        SurveyRunner(make_tool(network), checkpoint_path=path).run(targets)

        tool = make_tool(network)
        resumed = SurveyRunner(tool, checkpoint_path=path)
        progress = resumed.run(targets)
        assert progress.skipped == len(targets)
        assert progress.completed == 0
        assert tool.prober.stats.sent == 0


class TestRunReentry:
    def test_second_run_resets_per_run_counters(self, network, targets):
        # Regression: run() used to keep accumulating completed/skipped
        # across calls, driving ``remaining`` negative on re-entry.
        runner = SurveyRunner(make_tool(network))
        runner.run(targets[:6])
        progress = runner.run(targets[:6])
        assert progress.total_targets == 6
        assert progress.completed == 0
        assert progress.skipped == 6
        assert progress.remaining == 0

    def test_reentry_with_longer_list_counts_only_new_work(self, network,
                                                           targets):
        runner = SurveyRunner(make_tool(network))
        runner.run(targets[:4])
        progress = runner.run(targets[:10])
        assert progress.total_targets == 10
        assert progress.skipped == 4
        assert progress.completed == 6
        assert progress.remaining == 0
