"""Unit tests for the result types (ObservedSubnet, TraceHop, TraceResult)."""

from repro.core.results import ObservedSubnet, TraceHop, TraceResult
from repro.netsim.addressing import parse_ip


def subnet(pivot="10.0.0.2", members=("10.0.0.1", "10.0.0.2"), **kwargs):
    return ObservedSubnet(
        pivot=parse_ip(pivot),
        pivot_distance=kwargs.pop("pivot_distance", 3),
        members={parse_ip(m) for m in members},
        **kwargs,
    )


class TestObservedSubnet:
    def test_pivot_always_member(self):
        s = ObservedSubnet(pivot=parse_ip("10.0.0.2"), pivot_distance=3,
                           members=set())
        assert parse_ip("10.0.0.2") in s.members

    def test_prefix_is_enclosing(self):
        s = subnet(members=("10.0.0.1", "10.0.0.2"))
        assert str(s.prefix) == "10.0.0.0/30"

    def test_single_member_is_slash32(self):
        s = subnet(members=("10.0.0.2",))
        assert s.prefix.length == 32
        assert not s.is_subnetized

    def test_point_to_point_flag(self):
        assert subnet().is_point_to_point
        wide = subnet(members=("10.0.0.1", "10.0.0.6"))
        assert not wide.is_point_to_point

    def test_contains(self):
        s = subnet()
        assert s.contains(parse_ip("10.0.0.1"))
        assert not s.contains(parse_ip("10.0.0.9"))

    def test_describe_mentions_roles(self):
        s = subnet(contra_pivot=parse_ip("10.0.0.1"),
                   ingress=parse_ip("10.0.1.1"), on_trace_path=True)
        text = s.describe()
        assert "contra=10.0.0.1" in text
        assert "ingress=10.0.1.1" in text
        assert "on-path" in text

    def test_describe_off_path(self):
        assert "off-path" in subnet(on_trace_path=False).describe()
        assert "unknown-path" in subnet(on_trace_path=None).describe()


class TestTraceHop:
    def test_anonymous(self):
        hop = TraceHop(ttl=4, address=None)
        assert hop.is_anonymous
        assert "*" in hop.describe()

    def test_describe_with_subnet(self):
        hop = TraceHop(ttl=2, address=parse_ip("10.0.0.2"), subnet=subnet())
        text = hop.describe()
        assert "10.0.0.2" in text
        assert "/30" in text

    def test_destination_marker(self):
        hop = TraceHop(ttl=5, address=parse_ip("10.0.0.2"), is_destination=True)
        assert "destination" in hop.describe()


class TestTraceResult:
    def _result(self):
        result = TraceResult(vantage_host_id="v",
                             destination=parse_ip("10.0.0.2"))
        result.hops.append(TraceHop(ttl=1, address=parse_ip("10.0.9.1"),
                                    subnet=subnet(pivot="10.0.9.1",
                                                  members=("10.0.9.1", "10.0.9.2"))))
        result.hops.append(TraceHop(ttl=2, address=None))
        result.hops.append(TraceHop(ttl=3, address=parse_ip("10.0.0.2"),
                                    subnet=subnet(), is_destination=True))
        result.reached = True
        return result

    def test_subnets_in_order(self):
        result = self._result()
        assert len(result.subnets) == 2

    def test_addresses_union(self):
        result = self._result()
        assert parse_ip("10.0.9.2") in result.addresses
        assert parse_ip("10.0.0.1") in result.addresses

    def test_path_addresses_preserve_anonymous(self):
        assert self._result().path_addresses[1] is None

    def test_subnet_for(self):
        result = self._result()
        found = result.subnet_for(parse_ip("10.0.0.1"))
        assert found is not None
        assert parse_ip("10.0.0.2") in found.members
        assert result.subnet_for(parse_ip("99.0.0.1")) is None

    def test_describe_lists_all_hops(self):
        text = self._result().describe()
        assert text.count("\n") == 3
        assert "reached" in text

    def test_to_dict_handles_anonymous(self):
        payload = self._result().to_dict()
        assert payload["hops"][1]["address"] is None
        assert payload["hops"][1]["subnet"] is None
