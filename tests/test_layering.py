"""Layer-boundary contract: collectors speak to the network only through
the ProbeTransport seam.

An import-linter-equivalent check: modules in ``repro.core``,
``repro.baselines``, ``repro.probing``, ``repro.metrics`` and
``repro.tracing`` must not import ``repro.netsim.engine`` — the simulator
is an implementation detail behind
:class:`repro.transport.SimulatorTransport`, and any direct import would
quietly re-couple the collector layers to it.  For metrics and tracing
the seal is what keeps registries and span trees backend-agnostic:
engine counters may only arrive via the duck-typed ``backend_metrics()``
transport hook, and span trees only from the session-event stream.
"""

import ast
import pathlib

import repro

SRC_ROOT = pathlib.Path(repro.__file__).resolve().parent

SEALED_PACKAGES = ("core", "baselines", "probing", "metrics", "tracing")

FORBIDDEN_MODULE = "repro.netsim.engine"


def sealed_modules():
    for package in SEALED_PACKAGES:
        for path in sorted((SRC_ROOT / package).rglob("*.py")):
            yield path


def imported_modules(path):
    """Absolute names of every module a file imports, with relative
    imports resolved against its package."""
    package_parts = ("repro",) + path.relative_to(SRC_ROOT).parts[:-1]
    tree = ast.parse(path.read_text(), filename=str(path))
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = package_parts[:len(package_parts) - node.level + 1]
                module = ".".join(base + ((node.module,) if node.module
                                          else ()))
            else:
                module = node.module or ""
            yield module
            # `from X import engine` imports X.engine just as surely.
            for alias in node.names:
                yield f"{module}.{alias.name}"


def test_sealed_packages_never_import_the_engine():
    violations = []
    for path in sealed_modules():
        for module in imported_modules(path):
            if module == FORBIDDEN_MODULE:
                violations.append(
                    f"{path.relative_to(SRC_ROOT.parent)} imports {module}")
    assert not violations, (
        "collector layers must depend on repro.transport, not the "
        "simulator directly:\n" + "\n".join(violations))


def test_the_check_sees_the_sealed_files():
    # Guard against the walk silently matching nothing (e.g. after a
    # package rename), which would make the contract test vacuous.
    paths = list(sealed_modules())
    assert len(paths) >= 10
    names = {p.name for p in paths}
    assert {"tracenet.py", "heuristics.py", "prober.py",
            "traceroute.py", "registry.py", "auditor.py"} <= names
