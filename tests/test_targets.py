"""Unit tests for destination-selection strategies."""

import pytest

from repro.targets import (
    STRATEGIES,
    address_blocks,
    coverage_of,
    per_subnet,
    prefix_stratified,
    select,
    uniform_addresses,
)
from repro.topogen import internet2, random_topo


@pytest.fixture(scope="module")
def network():
    return random_topo.build_random(31, max_p2p=12, max_lans=4)


class TestStrategies:
    def test_registry_complete(self):
        assert set(STRATEGIES) == {"per-subnet", "uniform", "stratified",
                                   "census-blocks"}

    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_budget_respected(self, network, name):
        targets = select(name, network, seed=1, budget=10)
        assert len(targets) <= 10

    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_deterministic(self, network, name):
        a = select(name, network, seed=5, budget=12)
        b = select(name, network, seed=5, budget=12)
        assert a == b

    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_targets_are_assigned_addresses(self, network, name):
        for target in select(name, network, seed=2, budget=15):
            assert network.topology.interface_at(target) is not None

    def test_unknown_strategy_rejected(self, network):
        with pytest.raises(ValueError):
            select("nope", network, seed=1, budget=5)

    def test_per_subnet_full_budget_covers_everything(self, network):
        import random
        targets = per_subnet(network, random.Random(0),
                             budget=len(network.records))
        assert coverage_of(targets, network) == 1.0

    def test_uniform_biased_toward_large_subnets(self):
        """On Internet2 (where /24s dwarf the /30s), the uniform sweep
        covers fewer subnets than the per-subnet recipe."""
        import random
        network = internet2.build(seed=3)
        budget = 60
        informed = per_subnet(network, random.Random(1), budget)
        blind = uniform_addresses(network, random.Random(1), budget)
        assert coverage_of(informed, network) > coverage_of(blind, network)

    def test_stratified_touches_every_length(self, network):
        import random
        targets = prefix_stratified(network, random.Random(4), budget=50)
        lengths = {record.prefix.length for record in network.records}
        covered_lengths = set()
        for record in network.records:
            if any(t in record.prefix for t in targets):
                covered_lengths.add(record.prefix.length)
        assert covered_lengths == lengths

    def test_census_blocks_one_per_block(self, network):
        import random
        from repro.netsim import Prefix
        targets = address_blocks(network, random.Random(2), budget=100,
                                 block_length=24)
        blocks = [Prefix.containing(t, 24) for t in targets]
        assert len(blocks) == len(set(blocks))


class TestCoverage:
    def test_empty_targets(self, network):
        assert coverage_of([], network) == 0.0

    def test_coverage_bounds(self, network):
        targets = select("uniform", network, seed=9, budget=20)
        assert 0.0 <= coverage_of(targets, network) <= 1.0
