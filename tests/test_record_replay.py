"""Record → replay determinism: a journaled survey re-runs without a network.

The operational contract of the transport seam: recording a survey once and
replaying the journal must reproduce the identical archive and the
identical session-event stream — with no Engine involved at all on the
replay side.  This is what makes collected runs auditable and debuggable
offline ("A Radar for the Internet": runs are only comparable when each
probe stream is fully recorded).
"""

import io

import pytest

from repro.core import TraceNET
from repro.events import CollectingSink, event_to_dict
from repro.netsim import Engine, Probe
from repro.netsim import engine as engine_module
from repro.parallel import archive_signature
from repro.runner import SurveyRunner
from repro.topogen import figures
from repro.transport import (
    RecordingTransport,
    ReplayExhausted,
    ReplayMismatch,
    ReplayTransport,
    SimulatorTransport,
)


def survey_targets(scenario):
    """One far interface per router — a small but exploration-heavy survey."""
    return sorted(min(router.addresses)
                  for router in scenario.topology.routers.values())


def run_survey(transport, vantage):
    tool = TraceNET(transport, vantage)
    sink = tool.events.subscribe(CollectingSink())
    runner = SurveyRunner(tool)
    runner.run(survey_targets(figures.figure2_network()))
    return runner.archive, sink.events


class TestRecordReplayDeterminism:
    @pytest.fixture(scope="class")
    def recorded(self):
        scenario = figures.figure2_network()
        vantage = next(iter(scenario.hosts))
        journal = io.StringIO()
        transport = RecordingTransport(SimulatorTransport(scenario.engine()),
                                       journal)
        archive, events = run_survey(transport, vantage)
        return vantage, journal.getvalue(), archive, events

    def test_replay_reproduces_archive_without_engine(self, recorded,
                                                      monkeypatch):
        vantage, journal, archive, events = recorded

        def no_engines_allowed(self, *args, **kwargs):
            raise AssertionError("replay must not instantiate an Engine")

        monkeypatch.setattr(engine_module.Engine, "__init__",
                            no_engines_allowed)
        replay = ReplayTransport(io.StringIO(journal))
        replayed_archive, replayed_events = run_survey(replay, vantage)
        assert (archive_signature(replayed_archive)
                == archive_signature(archive))
        replay.assert_drained()

    def test_replay_reproduces_event_sequence(self, recorded):
        vantage, journal, archive, events = recorded
        replay = ReplayTransport(io.StringIO(journal))
        _, replayed_events = run_survey(replay, vantage)
        assert ([event_to_dict(e) for e in replayed_events]
                == [event_to_dict(e) for e in events])

    def test_vantage_resolution_from_journal(self, recorded):
        vantage, journal, _, _ = recorded
        replay = ReplayTransport(io.StringIO(journal))
        assert replay.source_address(vantage) > 0
        with pytest.raises(ValueError, match="unknown vantage"):
            replay.source_address("nobody")


class TestReplayFailsLoudly:
    def make_journal(self, line_engine):
        journal = io.StringIO()
        transport = RecordingTransport(SimulatorTransport(line_engine),
                                       journal)
        src = transport.source_address("vantage")
        dst = max(line_engine.topology.all_interface_addresses)
        transport.send(Probe(src=src, dst=dst, ttl=1))
        return journal.getvalue(), src, dst

    def test_mismatched_probe_rejected(self, line_engine):
        journal, src, dst = self.make_journal(line_engine)
        replay = ReplayTransport(io.StringIO(journal))
        with pytest.raises(ReplayMismatch, match="diverged"):
            replay.send(Probe(src=src, dst=dst, ttl=9))

    def test_exhausted_journal_rejected(self, line_engine):
        journal, src, dst = self.make_journal(line_engine)
        replay = ReplayTransport(io.StringIO(journal))
        assert replay.send(Probe(src=src, dst=dst, ttl=1)) is not None
        with pytest.raises(ReplayExhausted):
            replay.send(Probe(src=src, dst=dst, ttl=1))

    def test_undrained_journal_detected(self, line_engine):
        journal, _, _ = self.make_journal(line_engine)
        replay = ReplayTransport(io.StringIO(journal))
        with pytest.raises(ReplayMismatch, match="never replayed"):
            replay.assert_drained()

    def test_responses_roundtrip_exactly(self, line_engine):
        journal_text, src, dst = self.make_journal(line_engine)
        # Re-send the same probe against a fresh engine to learn the truth.
        fresh = Engine(line_engine.topology)
        expected = fresh.send(Probe(src=src, dst=dst, ttl=1))
        replayed = ReplayTransport(io.StringIO(journal_text))\
            .send(Probe(src=src, dst=dst, ttl=1))
        assert replayed.kind == expected.kind
        assert replayed.source == expected.source
        assert replayed.responder == expected.responder
