"""Radar mode: continuous re-surveys over a network that keeps changing.

The contract under test, end to end: with no churn the radar degenerates
to byte-identical repeated surveys; with seeded churn the rounds shrink to
the dirty portion of the target set, stay fully deterministic, replay
bit-identically from a journal, and survive chaos (churn + loss) with
degraded traces marked and zero probe-economy violations.
"""

from __future__ import annotations

import io

import pytest

from repro import TraceNET
from repro.events import (
    EventBus,
    SubnetRetracted,
    TopologyMutated,
    event_to_dict,
)
from repro.mapping.diff import diff_archives
from repro.mapping.store import archive_from_dict, archive_to_dict
from repro.metrics import instrument
from repro.netsim import Engine
from repro.netsim.dynamics import MutationSchedule, NetworkDynamics
from repro.parallel import ShardSpec, run_radar_shard
from repro.radar import RadarRunner, mutation_prefixes, run_radar
from repro.runner import SurveyRunner
from repro.service.jobs import SurveyJob
from repro.topogen import geant
from repro.transport import (
    FaultInjectingTransport,
    MutatingTransport,
    RecordingTransport,
    ReplayTransport,
    SimulatorTransport,
)

CHURN = dict(seed=7, start=60, interval=90, count=4)


def _radar_setup(churn=False, drop_rate=0.0, journal=None, limit=10):
    """A collector over GEANT with optional churn/fault/record layers.

    Layering matches ``tracenet radar``: record(churn(fault(simulator))),
    with one shared event bus between the churn seam and the collector.
    """
    network = geant.build(seed=2010)
    engine = Engine(network.topology, policy=network.policy)
    transport = SimulatorTransport(engine)
    if drop_rate > 0.0:
        transport = FaultInjectingTransport(transport, drop_rate=drop_rate,
                                            seed=1)
    events = EventBus()
    schedule = None
    if churn:
        schedule = MutationSchedule.generate(network.topology, **CHURN)
        transport = MutatingTransport(
            transport, schedule,
            dynamics=NetworkDynamics(engine, schedule), events=events)
    if journal is not None:
        transport = RecordingTransport(transport, journal)
    tool = TraceNET(transport, "utdallas", events=events)
    targets = geant.targets(network, seed=2010)[:limit]
    return tool, targets, schedule


class TestQuietRadar:
    """No churn: the radar is just a repeated survey, bit for bit."""

    def test_rounds_are_byte_identical(self):
        tool, targets, _ = _radar_setup()
        result = run_radar(tool, targets, rounds=3)
        first = archive_to_dict(result.rounds[0].archive)
        for later in result.rounds[1:]:
            assert archive_to_dict(later.archive) == first
            assert later.probed_targets == []
            assert later.diff is not None and later.diff.is_empty
        assert [len(r.probed_targets) for r in result.rounds] == \
            [len(targets), 0, 0]

    def test_round_zero_matches_plain_survey(self):
        tool, targets, _ = _radar_setup()
        radar = run_radar(tool, targets, rounds=1)
        survey_tool, _, _ = _radar_setup()
        runner = SurveyRunner(survey_tool)
        runner.run(targets)
        assert archive_to_dict(radar.final_archive) == \
            archive_to_dict(runner.archive)

    def test_non_incremental_reprobes_everything(self):
        tool, targets, _ = _radar_setup()
        result = run_radar(tool, targets, rounds=2, incremental=False)
        assert all(r.full for r in result.rounds)
        assert [len(r.probed_targets) for r in result.rounds] == \
            [len(targets)] * 2


class TestChurningRadar:
    def test_incremental_rounds_shrink(self):
        tool, targets, _ = _radar_setup(churn=True)
        result = run_radar(tool, targets, rounds=3)
        assert result.rounds[0].full
        assert result.rounds[0].mutations_seen == 0
        # Round 0's probes crossed the mutation epochs; round 1 sees them
        # and re-probes only the dirty slice of the target set.
        assert result.rounds[1].mutations_seen > 0
        assert not result.rounds[1].full
        assert 0 < len(result.rounds[1].probed_targets) < len(targets)

    def test_churn_radar_is_deterministic(self):
        runs = []
        for _ in range(2):
            tool, targets, _ = _radar_setup(churn=True)
            runs.append(run_radar(tool, targets, rounds=3))
        assert runs[0].to_dict() == runs[1].to_dict()
        assert archive_to_dict(runs[0].final_archive) == \
            archive_to_dict(runs[1].final_archive)

    def test_diff_matches_offline_recomputation(self):
        """tracenet diff over dumped archives == the in-run diff."""
        tool, targets, _ = _radar_setup(churn=True)
        result = run_radar(tool, targets, rounds=2)
        old = archive_from_dict(archive_to_dict(result.rounds[0].archive))
        new = archive_from_dict(archive_to_dict(result.rounds[1].archive))
        assert diff_archives(old, new).to_dict() == \
            result.rounds[1].diff.to_dict()

    def test_degraded_traces_reprobed_next_round(self):
        tool, targets, _ = _radar_setup(churn=True)
        result = run_radar(tool, targets, rounds=3)
        degraded_round0 = {t.destination
                           for t in result.rounds[0].archive.traces
                           if t.degraded}
        # Mid-survey churn degrades some round-0 traces...
        assert degraded_round0
        # ...and every one of them is on round 1's re-probe list.
        assert degraded_round0 <= set(result.rounds[1].probed_targets)

    def test_vanished_subnets_emit_retractions(self):
        tool, targets, _ = _radar_setup(churn=True)
        retracted = []

        class _Sink:
            interests = (SubnetRetracted,)

            def __call__(self, event):
                retracted.append(event)

        tool.events.subscribe(_Sink())
        result = run_radar(tool, targets, rounds=3)
        vanished = [change.prefix for diff in result.diffs
                    for change in diff.vanished]
        assert sorted(e.prefix for e in retracted) == sorted(vanished)


class TestChaosRadar:
    def test_chaos_run_is_crash_free_and_audited(self):
        tool, targets, _ = _radar_setup(churn=True, drop_rate=0.05)
        inst = instrument(tool.events, audit=True)
        result = run_radar(tool, targets, rounds=3)
        assert len(result.rounds) == 3
        assert inst.auditor.violations == 0
        # Degradation markers survive with consistent confidence fields.
        final = result.final_archive
        for trace in final.traces:
            if trace.degraded:
                assert trace.confidence < 1.0
                assert trace.degraded_reasons
        # The chaos archive still round-trips losslessly.
        payload = archive_to_dict(final)
        assert archive_to_dict(archive_from_dict(payload)) == payload

    def test_chaos_run_is_deterministic(self):
        runs = []
        for _ in range(2):
            tool, targets, _ = _radar_setup(churn=True, drop_rate=0.05)
            runs.append(run_radar(tool, targets, rounds=3))
        assert runs[0].to_dict() == runs[1].to_dict()


class TestRadarReplay:
    def test_live_and_replay_are_bit_identical(self):
        journal = io.StringIO()
        live_events = []
        tool, targets, _ = _radar_setup(churn=True, drop_rate=0.05,
                                        journal=journal)
        tool.events.subscribe(live_events.append)
        live = run_radar(tool, targets, rounds=3)

        replay_bus = EventBus()
        replay_events = []
        replay_bus.subscribe(replay_events.append)
        schedule = MutationSchedule.generate(
            geant.build(seed=2010).topology, **CHURN)
        replay_transport = MutatingTransport(
            ReplayTransport(io.StringIO(journal.getvalue())),
            schedule, dynamics=None, events=replay_bus)
        replay_tool = TraceNET(replay_transport, "utdallas",
                               events=replay_bus)
        replayed = run_radar(replay_tool, targets, rounds=3)

        assert replayed.to_dict() == live.to_dict()
        assert archive_to_dict(replayed.final_archive) == \
            archive_to_dict(live.final_archive)
        assert [event_to_dict(e) for e in replay_events] == \
            [event_to_dict(e) for e in live_events]


class TestMutationPrefixes:
    def test_global_kinds_have_unbounded_blast_radius(self):
        assert mutation_prefixes(
            [TopologyMutated(epoch=1, sequence=0, kind="ecmp",
                             target="R1", detail=None)]) is None

    def test_missing_detail_is_conservative(self):
        assert mutation_prefixes(
            [TopologyMutated(epoch=1, sequence=0, kind="link-down",
                             target="x", detail=None)]) is None

    def test_prefixes_collected_from_details(self):
        blocks = mutation_prefixes([
            TopologyMutated(epoch=1, sequence=0, kind="link-down",
                            target="x", detail={"prefix": "10.0.0.0/30"}),
            TopologyMutated(epoch=2, sequence=1, kind="router-down",
                            target="R9",
                            detail={"prefixes": ["10.0.1.0/30"]}),
            TopologyMutated(epoch=3, sequence=2, kind="renumber",
                            target="s1",
                            detail={"old_prefix": "10.0.2.0/29",
                                    "new_prefix": "198.18.0.0/29"}),
        ])
        assert sorted(str(b) for b in blocks) == [
            "10.0.0.0/30", "10.0.1.0/30", "10.0.2.0/29", "198.18.0.0/29"]

    def test_rounds_validation(self):
        tool, targets, _ = _radar_setup()
        with pytest.raises(ValueError):
            RadarRunner(tool, targets, rounds=0)


class TestRadarService:
    def _spec(self):
        network = geant.build(seed=2010)
        spec = ShardSpec.from_network(network.topology, network.policy,
                                      "utdallas")
        return spec, geant.targets(network, seed=2010)[:8]

    def _radar_config(self):
        return {"rounds": 3, "churn_count": 3, "churn_seed": 7,
                "churn_start": 60, "churn_interval": 90,
                "drop_rate": 0.0, "fault_seed": 0, "incremental": True}

    def test_run_radar_shard_payload(self):
        spec, targets = self._spec()
        payload = run_radar_shard(spec, 0, targets, self._radar_config())
        assert {"shard", "archive", "stats", "events", "metrics",
                "radar"} <= set(payload)
        assert len(payload["radar"]["rounds"]) == 3
        assert payload["radar"]["rounds"][0]["full"]
        restored = archive_from_dict(payload["archive"])
        assert archive_to_dict(restored) == payload["archive"]

    def test_run_radar_shard_is_deterministic(self):
        spec, targets = self._spec()
        first = run_radar_shard(spec, 0, targets, self._radar_config())
        second = run_radar_shard(spec, 0, targets, self._radar_config())
        assert first["archive"] == second["archive"]
        assert first["radar"] == second["radar"]

    def test_survey_job_radar_round_trip(self):
        spec, targets = self._spec()
        job = SurveyJob(job_id="radar-1", spec=spec, targets=targets,
                        radar=self._radar_config())
        restored = SurveyJob.from_dict(job.to_dict())
        assert restored.radar == job.radar
        assert restored.to_dict() == job.to_dict()

    def test_radar_scenario_fingerprint_is_scoped(self):
        """Radar discoveries must not cross-pollinate plain surveys."""
        spec, targets = self._spec()
        plain = SurveyJob(job_id="a", spec=spec, targets=targets)
        radar = SurveyJob(job_id="b", spec=spec, targets=targets,
                          radar=self._radar_config())
        assert plain.scenario_fingerprint() != radar.scenario_fingerprint()
        other = SurveyJob(job_id="c", spec=spec, targets=targets,
                          radar=dict(self._radar_config(), churn_seed=8))
        assert other.scenario_fingerprint() != radar.scenario_fingerprint()
