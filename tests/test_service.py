"""Tests for the distributed survey service (repro.service).

Three layers of coverage:

* protocol units — job state machine, durable queue journal, lease
  fencing, and the checkpoint-aligned event commit log, all driven
  deterministically with a manual clock and no threads;
* the shared subnet dedupe store;
* the fault-tolerance proof — a real two-worker fleet where one worker
  dies mid-shard, asserting the job completes via re-lease + checkpoint
  resume, the merged archive matches a serial run, and the coordinator's
  streamed registry equals an offline replay of the committed event
  journal (live == replay parity across worker death).
"""

import json
import os

import pytest

from repro.core import TraceNET
from repro.events import replay_events
from repro.mapping import SubnetDedupeStore
from repro.metrics import registry_from_events, stats_from_events
from repro.netsim import Engine
from repro.parallel import ShardSpec, archives_equivalent
from repro.runner import SurveyRunner
from repro.service import (
    Coordinator,
    InvalidTransition,
    JobQueue,
    JobState,
    ServiceFleet,
    StaleLeaseError,
    SurveyJob,
    VantageWorker,
    shard_attempt_summary,
)
from repro.topogen import internet2


@pytest.fixture(scope="module")
def network():
    return internet2.build(seed=13)


@pytest.fixture(scope="module")
def targets(network):
    return internet2.targets(network, seed=13)[:24]


@pytest.fixture(scope="module")
def spec(network):
    return ShardSpec.from_network(network.topology, network.policy,
                                  "utdallas")


@pytest.fixture(scope="module")
def serial_archive(network, targets):
    tool = TraceNET(Engine(network.topology, policy=network.policy),
                    "utdallas")
    runner = SurveyRunner(tool)
    runner.run(targets)
    return runner.archive


def make_job(spec, targets, **overrides):
    options = dict(job_id="job-0001", spec=spec, targets=list(targets),
                   shards=2)
    options.update(overrides)
    return SurveyJob(**options)


class TestJobQueue:
    def test_state_machine_rejects_invalid_edges(self, spec, targets):
        queue = JobQueue()
        queue.submit(make_job(spec, targets))
        with pytest.raises(InvalidTransition):
            queue.transition("job-0001", JobState.DONE)
        queue.transition("job-0001", JobState.RUNNING)
        queue.transition("job-0001", JobState.MERGING)
        queue.transition("job-0001", JobState.DONE)
        with pytest.raises(InvalidTransition):
            queue.transition("job-0001", JobState.FAILED)

    def test_duplicate_job_id_rejected(self, spec, targets):
        queue = JobQueue()
        queue.submit(make_job(spec, targets))
        with pytest.raises(ValueError):
            queue.submit(make_job(spec, targets))

    def test_journal_round_trip(self, spec, targets, tmp_path):
        path = str(tmp_path / "queue.jsonl")
        queue = JobQueue(path)
        queue.submit(make_job(spec, targets, checkpoint_every=5,
                              tenant="probe-lab", max_attempts=7))
        queue.transition("job-0001", JobState.RUNNING)
        reopened = JobQueue(path)
        job = reopened.get("job-0001")
        assert job.state is JobState.RUNNING
        assert job.tenant == "probe-lab"
        assert job.max_attempts == 7
        assert job.checkpoint_every == 5
        assert job.targets == list(targets)
        assert job.spec == reopened.get("job-0001").spec

    def test_recover_demotes_mid_flight_jobs(self, spec, targets, tmp_path):
        path = str(tmp_path / "queue.jsonl")
        queue = JobQueue(path)
        queue.submit(make_job(spec, targets))
        queue.transition("job-0001", JobState.RUNNING)
        reopened = JobQueue(path)
        demoted = reopened.recover()
        assert [job.job_id for job in demoted] == ["job-0001"]
        assert reopened.get("job-0001").state is JobState.QUEUED
        # recovery is journaled too: a third open sees queued directly
        assert JobQueue(path).get("job-0001").state is JobState.QUEUED

    def test_scenario_fingerprint_tracks_spec(self, spec, targets):
        job = make_job(spec, targets)
        same = make_job(spec, targets, job_id="job-0002")
        assert job.scenario_fingerprint() == same.scenario_fingerprint()
        other_spec = ShardSpec(**{**spec.__dict__, "engine_seed": 99})
        other = make_job(other_spec, targets, job_id="job-0003")
        assert (job.scenario_fingerprint()
                != other.scenario_fingerprint())

    def test_attempt_summary(self):
        assert shard_attempt_summary({0: 1, 1: 1}) == "no re-leases"
        assert "shard 1: 3 attempts" in shard_attempt_summary({0: 1, 1: 3})


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestLeaseProtocol:
    """Deterministic single-thread protocol tests (manual clock)."""

    def make_coordinator(self, spec, targets, tmp_path, shards=2,
                         **submit_options):
        clock = FakeClock()
        coordinator = Coordinator(work_dir=str(tmp_path / "work"),
                                  heartbeat_timeout=5.0, clock=clock)
        job = coordinator.submit(spec, targets, shards=shards,
                                 **submit_options)
        return coordinator, clock, job

    def test_lease_grants_distinct_shards(self, spec, targets, tmp_path):
        coordinator, _, job = self.make_coordinator(spec, targets, tmp_path)
        first = coordinator.lease("w0")
        second = coordinator.lease("w1")
        assert {first.shard_index, second.shard_index} == {0, 1}
        assert first.attempt == 1
        assert coordinator.lease("w2") is None
        assert coordinator.queue.get(job.job_id).state is JobState.RUNNING

    def test_reap_requeues_and_fences_the_dead_worker(self, spec, targets,
                                                      tmp_path):
        coordinator, clock, job = self.make_coordinator(
            spec, targets, tmp_path)
        task = coordinator.lease("w0")
        clock.now += 3.0
        coordinator.heartbeat("w0", task.job_id, task.shard_index,
                              task.attempt)
        clock.now += 6.0  # beyond the 5s timeout
        expired = coordinator.reap()
        assert [lease.worker_id for lease in expired] == ["w0"]
        # the shard rejoins the back of the pending list with attempt 2;
        # the old attempt is fenced
        leases = [coordinator.lease("w1"), coordinator.lease("w1")]
        retaken = next(lease for lease in leases
                       if lease.shard_index == task.shard_index)
        assert retaken.attempt == 2
        with pytest.raises(StaleLeaseError):
            coordinator.heartbeat("w0", task.job_id, task.shard_index,
                                  task.attempt)
        with pytest.raises(StaleLeaseError):
            coordinator.fail("w0", task.job_id, task.shard_index,
                             task.attempt, "boom")
        with pytest.raises(StaleLeaseError):
            coordinator.stream("w0", task.job_id, task.shard_index,
                               task.attempt, [])
        with pytest.raises(StaleLeaseError):
            coordinator.complete("w0", task.job_id, task.shard_index,
                                 task.attempt, {})
        assert coordinator.queue.get(job.job_id).state is JobState.RUNNING

    def test_exhausted_attempts_fail_the_job(self, spec, targets, tmp_path):
        coordinator, clock, job = self.make_coordinator(
            spec, targets, tmp_path, shards=1, max_attempts=2)
        for expected_attempt in (1, 2):
            task = coordinator.lease("w0")
            assert task.attempt == expected_attempt
            clock.now += 10.0
            coordinator.reap()
        failed = coordinator.queue.get(job.job_id)
        assert failed.state is JobState.FAILED
        assert f"shard {task.shard_index}" in failed.error
        assert "2 attempts" in failed.error
        assert "checkpoint" in failed.error

    def test_worker_fail_report_requeues(self, spec, targets, tmp_path):
        coordinator, _, job = self.make_coordinator(spec, targets, tmp_path,
                                                    shards=1)
        task = coordinator.lease("w0")
        coordinator.fail("w0", task.job_id, task.shard_index, task.attempt,
                         "ValueError: boom")
        retaken = coordinator.lease("w0")
        assert retaken.shard_index == task.shard_index
        assert retaken.attempt == 2

    def test_stream_commits_only_up_to_checkpoint_marker(self, spec,
                                                         targets, tmp_path):
        coordinator, clock, job = self.make_coordinator(
            spec, targets, tmp_path)
        task = coordinator.lease("w0")
        probe = {"event": "ProbeSent", "dst": 1, "ttl": 1,
                 "protocol": "icmp", "flow_id": 0, "phase": "trace",
                 "answered": True, "response_kind": "ttl-exceeded",
                 "response_source": 2}
        marker = {"event": "CheckpointWritten", "path": "x.json",
                  "completed_targets": 1, "traces": 1}
        coordinator.stream("w0", task.job_id, task.shard_index,
                           task.attempt, [probe, marker, probe])
        runtime = coordinator._runtimes[task.job_id]
        assert len(runtime.committed_events) == 2    # probe + marker
        # Intake annotates every record with the lease that produced it.
        annotated = {**probe, "shard": task.shard_index,
                     "attempt": task.attempt}
        assert runtime.uncommitted[task.shard_index] == [annotated]
        assert all(record["shard"] == task.shard_index
                   and record["attempt"] == task.attempt
                   for record in runtime.committed_events)
        # lease expiry discards the uncommitted tail
        clock.now += 10.0
        coordinator.reap()
        assert task.shard_index not in runtime.uncommitted
        assert len(runtime.committed_events) == 2


class TestDedupeStore:
    def test_first_publication_wins(self):
        store = SubnetDedupeStore()
        payload = {"prefix": "10.0.0.0/30", "pivot": "10.0.0.1",
                   "pivot_distance": 3, "members": ["10.0.0.1"],
                   "prefix_length": 30}
        assert store.publish(payload) is True
        assert store.publish(dict(payload)) is False
        assert store.known("10.0.0.0/30")
        assert store.counters()["duplicates"] == 1

    def test_scopes_are_isolated(self):
        store = SubnetDedupeStore()
        payload = {"prefix": "10.0.0.0/30", "pivot": "10.0.0.1",
                   "pivot_distance": 3, "members": ["10.0.0.1"],
                   "prefix_length": 30}
        store.publish(payload, scope="scenario-a")
        assert not store.known("10.0.0.0/30", scope="scenario-b")
        assert store.size("scenario-a") == 1
        assert store.snapshot("scenario-b") == []


class TestServiceEndToEnd:
    def run_fleet(self, spec, targets, tmp_path, fail_after=None,
                  shards=2, heartbeat_timeout=1.5):
        queue = JobQueue(str(tmp_path / "queue.jsonl"))
        coordinator = Coordinator(queue=queue,
                                  work_dir=str(tmp_path / "work"),
                                  heartbeat_timeout=heartbeat_timeout)
        job = coordinator.submit(spec, targets, shards=shards,
                                 checkpoint_every=3)
        workers = [
            VantageWorker("w0", coordinator, stream_every=8,
                          fail_after_targets=fail_after),
            VantageWorker("w1", coordinator, stream_every=8),
        ]
        ServiceFleet(coordinator, workers).run(reap_interval=0.05,
                                               timeout=120.0)
        return coordinator, job, workers

    def test_healthy_fleet_matches_serial(self, spec, targets, tmp_path,
                                          serial_archive):
        coordinator, job, workers = self.run_fleet(spec, targets, tmp_path)
        assert coordinator.queue.get(job.job_id).state is JobState.DONE
        result = coordinator.result(job.job_id)
        assert archives_equivalent(serial_archive, result.archive)
        assert result.attempts == {0: 1, 1: 1}
        assert result.stats.sent > 0

    def test_worker_death_survived_with_parity(self, spec, targets,
                                               tmp_path, serial_archive):
        """The PR's fault-tolerance proof.

        Worker w0 dies silently mid-shard.  The coordinator must detect it
        by missed heartbeats, re-lease the shard, and the successor must
        resume from the shard checkpoint — ending with (a) a merged
        archive equivalent to the serial run and (b) a streamed registry
        equal to an offline replay of the committed event journal.
        """
        coordinator, job, workers = self.run_fleet(spec, targets, tmp_path,
                                                   fail_after=4)
        assert workers[0].crashed
        job = coordinator.queue.get(job.job_id)
        assert job.state is JobState.DONE, job.error
        result = coordinator.result(job.job_id)
        assert max(result.attempts.values()) > 1, "expected a re-lease"
        assert archives_equivalent(serial_archive, result.archive)
        # live == replay parity over the committed event journal
        replayed = registry_from_events(
            replay_events(result.events_path), audit=False)
        assert result.metrics.snapshot() == replayed.snapshot()
        # the offline analytics entry point agrees too (tracenet stats)
        offline = stats_from_events(result.events_path)
        assert offline.registry.snapshot() == result.metrics.snapshot()
        # no economy violations slipped in through the resume path
        counters = result.metrics.snapshot().get("counters", {})
        assert counters.get("overhead_violations_total", 0) == 0

    def test_dedupe_store_seeds_later_shards(self, spec, targets, tmp_path):
        coordinator, job, workers = self.run_fleet(spec, targets, tmp_path)
        counters = coordinator.store.counters()
        assert counters["published"] > 0
        result = coordinator.result(job.job_id)
        assert counters["published"] == len({
            str(subnet.prefix) for subnet in result.archive.subnets})

    def test_durable_queue_survives_serve_restart(self, spec, targets,
                                                  tmp_path):
        coordinator, job, workers = self.run_fleet(spec, targets, tmp_path)
        reopened = JobQueue(str(tmp_path / "queue.jsonl"))
        assert reopened.get(job.job_id).state is JobState.DONE

    def test_event_journal_is_valid_jsonl(self, spec, targets, tmp_path):
        coordinator, job, workers = self.run_fleet(spec, targets, tmp_path)
        result = coordinator.result(job.job_id)
        assert os.path.exists(result.events_path)
        with open(result.events_path, "r", encoding="utf-8") as fp:
            lines = [json.loads(line) for line in fp if line.strip()]
        assert lines, "committed journal must not be empty"
        assert all("event" in record for record in lines)
        # the journal is the committed stream: its per-kind totals are
        # exactly the coordinator's live event counts
        journal_counts = {}
        for record in lines:
            journal_counts[record["event"]] = journal_counts.get(
                record["event"], 0) + 1
        assert journal_counts == dict(result.event_counts)
