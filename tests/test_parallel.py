"""Unit tests for parallel sharded surveys.

The determinism contract: a sharded run merged back together collects the
same subnets and traces as one serial run over the same target list, and a
re-run against existing shard checkpoints resumes without re-probing.
"""

import pytest

from repro.core import TraceNET
from repro.netsim import Engine
from repro.parallel import (
    ShardSpec,
    ShardedSurveyRunner,
    archive_signature,
    archives_equivalent,
    merge_probe_stats,
    shard_targets,
)
from repro.probing import ProbeStats
from repro.runner import SurveyRunner
from repro.topogen import internet2


@pytest.fixture(scope="module")
def network():
    return internet2.build(seed=13)


@pytest.fixture(scope="module")
def targets(network):
    return internet2.targets(network, seed=13)[:24]


@pytest.fixture(scope="module")
def serial_archive(network, targets):
    tool = TraceNET(Engine(network.topology, policy=network.policy),
                    "utdallas")
    runner = SurveyRunner(tool)
    runner.run(targets)
    return runner.archive


class TestShardTargets:
    def test_balanced_contiguous_split(self):
        slices = shard_targets(list(range(10)), 3)
        assert slices == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]

    def test_more_shards_than_targets(self):
        slices = shard_targets([1, 2], 5)
        assert slices == [[1], [2]]

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            shard_targets([1], 0)

    def test_deterministic(self):
        assert shard_targets(list(range(7)), 2) == shard_targets(
            list(range(7)), 2)


class TestShardSpec:
    def test_round_trip_builds_equivalent_tool(self, network):
        spec = ShardSpec.from_network(network.topology, network.policy,
                                      "utdallas")
        tool = spec.build_tool()
        assert tool.vantage_host_id == "utdallas"
        assert len(tool.engine.topology.routers) == len(
            network.topology.routers)


class TestParallelEquivalence:
    def test_two_workers_match_serial_content(self, network, targets,
                                              serial_archive):
        runner = ShardedSurveyRunner.from_network(
            network.topology, network.policy, "utdallas", workers=2)
        outcome = runner.run(targets)
        assert outcome.workers == 2
        assert archives_equivalent(serial_archive, outcome.archive)
        assert outcome.stats.sent > 0
        assert len(outcome.archive.traces) == len(targets)

    def test_single_worker_runs_inline(self, network, targets,
                                       serial_archive):
        runner = ShardedSurveyRunner.from_network(
            network.topology, network.policy, "utdallas", workers=1)
        outcome = runner.run(targets[:6])
        assert outcome.executed_inline
        sig = archive_signature(outcome.archive)
        assert len(sig["traces"]) == 6

    def test_signature_ignores_probe_counts(self, serial_archive):
        sig = archive_signature(serial_archive)
        assert "probes" not in str(sig.keys())
        assert sig == archive_signature(serial_archive)


class TestShardCheckpoints:
    def test_rerun_resumes_from_shard_checkpoints(self, network, targets,
                                                  tmp_path):
        checkpoint_dir = str(tmp_path / "shards")
        first = ShardedSurveyRunner.from_network(
            network.topology, network.policy, "utdallas", workers=2,
            checkpoint_dir=checkpoint_dir, checkpoint_every=3)
        outcome = first.run(targets)
        for index in range(2):
            assert (tmp_path / "shards" / f"shard-{index}.json").exists()

        # A fresh runner over the same directory resumes every shard:
        # nothing is re-probed, the merged archive is unchanged.
        second = ShardedSurveyRunner.from_network(
            network.topology, network.policy, "utdallas", workers=2,
            checkpoint_dir=checkpoint_dir, checkpoint_every=3)
        resumed = second.run(targets)
        assert resumed.stats.sent == 0
        assert archives_equivalent(outcome.archive, resumed.archive)

    def test_partial_checkpoint_resume_matches_uninterrupted(
            self, network, targets, tmp_path, serial_archive):
        # Interrupt: survey only each shard's first half, checkpointing.
        checkpoint_dir = str(tmp_path / "partial")
        slices = shard_targets(targets, 2)
        partial_targets = slices[0][:len(slices[0]) // 2] + \
            slices[1][:len(slices[1]) // 2]
        # Shard the partial list manually so each half lands in the same
        # shard file the full run will use.
        spec = ShardSpec.from_network(network.topology, network.policy,
                                      "utdallas")
        import os

        from repro.parallel import _run_shard
        os.makedirs(checkpoint_dir, exist_ok=True)
        for index, full in enumerate(slices):
            half = full[:len(full) // 2]
            _run_shard(spec, index, half,
                       os.path.join(checkpoint_dir, f"shard-{index}.json"),
                       checkpoint_every=2)

        resumed = ShardedSurveyRunner.from_network(
            network.topology, network.policy, "utdallas", workers=2,
            checkpoint_dir=checkpoint_dir).run(targets)
        assert archives_equivalent(serial_archive, resumed.archive)


class TestMergeStats:
    def test_probe_stats_summed(self):
        a = ProbeStats(sent=5, responses=4, silent=1, by_phase={"p": 2})
        b = ProbeStats(sent=3, responses=3, by_phase={"p": 1, "q": 4})
        total = merge_probe_stats([a, b])
        assert total.sent == 8
        assert total.responses == 7
        assert total.by_phase == {"p": 3, "q": 4}


class TestShardTargetsEdgeCases:
    def test_empty_target_list_yields_one_empty_shard(self):
        assert shard_targets([], 3) == [[]]

    def test_duplicate_targets_preserved_in_order(self):
        assert shard_targets([5, 5, 7, 5], 2) == [[5, 5], [7, 5]]

    def test_shards_capped_at_target_count(self):
        slices = shard_targets([1, 2, 3], 10)
        assert slices == [[1], [2], [3]]


class TestPoolFallback:
    def test_pool_failure_degrades_to_inline(self, network, targets,
                                             serial_archive, monkeypatch):
        """A sandbox without process support must still finish the survey."""
        import repro.parallel as parallel

        def broken_pool(*args, **kwargs):
            raise OSError("no semaphores in this sandbox")

        monkeypatch.setattr(parallel, "ProcessPoolExecutor", broken_pool)
        runner = ShardedSurveyRunner.from_network(
            network.topology, network.policy, "utdallas", workers=2)
        outcome = runner.run(targets)
        assert outcome.executed_inline
        assert outcome.workers == 2
        assert archives_equivalent(serial_archive, outcome.archive)


class TestShardFailureContext:
    def test_shard_error_names_shard_slice_and_checkpoint(
            self, network, targets, tmp_path, monkeypatch):
        import repro.parallel as parallel
        from repro.parallel import ShardExecutionError

        def exploding_shard(spec, index, shard, checkpoint, every,
                            **kwargs):
            raise ValueError("collector blew up")

        monkeypatch.setattr(parallel, "run_shard", exploding_shard)
        runner = ShardedSurveyRunner.from_network(
            network.topology, network.policy, "utdallas", workers=1,
            checkpoint_dir=str(tmp_path / "ck"))
        with pytest.raises(ShardExecutionError) as excinfo:
            runner.run(targets[:4])
        error = excinfo.value
        assert error.shard_index == 0
        assert error.targets == list(targets[:4])
        assert error.checkpoint_path.endswith("shard-0.json")
        assert isinstance(error.cause, ValueError)
        message = str(error)
        assert "shard 0" in message
        assert "4 targets" in message
        assert "shard-0.json" in message
        assert "ValueError" in message


class TestTypedStopSets:
    def test_outcomes_carry_typed_stop_sets(self, network, targets):
        from repro.probing import StopSet

        runner = ShardedSurveyRunner.from_network(
            network.topology, network.policy, "utdallas", workers=2,
            use_stop_sets=True)
        outcome = runner.run(targets)
        assert isinstance(outcome.stop_set, StopSet)
        for shard in outcome.shards:
            assert isinstance(shard.stop_set, StopSet)
        assert outcome.stop_set.recorded >= max(
            shard.stop_set.recorded for shard in outcome.shards)

    def test_outcomes_without_stop_sets_stay_none(self, network, targets):
        runner = ShardedSurveyRunner.from_network(
            network.topology, network.policy, "utdallas", workers=2)
        outcome = runner.run(targets[:6])
        assert outcome.stop_set is None
        for shard in outcome.shards:
            assert shard.stop_set is None
