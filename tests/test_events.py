"""Unit tests for the session-event stream, bus, and sinks."""

import io
import json

import pytest

from repro.core import TraceNET
from repro.core.heuristics import ExplorationState, Judgement, Verdict
from repro.events import (
    CacheHit,
    CheckpointWritten,
    CollectingSink,
    CounterSink,
    EventBus,
    HeuristicFired,
    HopObserved,
    JsonlEventSink,
    OverheadViolation,
    ProbeSent,
    ProgressSink,
    SubnetGrown,
    SubnetPositioned,
    SurveyProgressed,
    TraceFinished,
    TraceStarted,
    event_from_dict,
    event_to_dict,
    replay_events,
)
from repro.probing import Prober
from repro.runner import SurveyRunner
from repro.topogen import internet2


class TestEventBus:
    def test_falsy_without_sinks(self):
        bus = EventBus()
        assert not bus
        bus.subscribe(lambda e: None)
        assert bus

    def test_emit_order_and_unsubscribe(self):
        bus = EventBus()
        seen = []
        first = bus.subscribe(lambda e: seen.append(("first", e)))
        bus.subscribe(lambda e: seen.append(("second", e)))
        event = TraceStarted(destination=1)
        bus.emit(event)
        assert [name for name, _ in seen] == ["first", "second"]
        bus.unsubscribe(first)
        bus.emit(event)
        assert [name for name, _ in seen] == ["first", "second", "second"]

    def test_scoped_subscription(self):
        bus = EventBus()
        sink = CollectingSink()
        with bus.subscribed(sink):
            bus.emit(TraceStarted(destination=9))
        bus.emit(TraceStarted(destination=10))
        assert [e.destination for e in sink.events] == [9]


def _probe_sent():
    return ProbeSent(dst=1, ttl=2, protocol="icmp", flow_id=0, phase="trace",
                     answered=True, response_kind=None, response_source=None)


class TestDispatchMask:
    def test_wants_everything_for_legacy_sinks(self):
        # A bare callable declares no interests: the legacy contract is
        # full payloads for every event type.
        bus = EventBus()
        bus.subscribe(lambda e: None)
        assert bus.wants(ProbeSent)
        assert bus.wants(TraceStarted)

    def test_counter_sink_wants_only_its_interests(self):
        bus = EventBus()
        bus.subscribe(CounterSink())
        assert bus.wants(HeuristicFired)
        assert not bus.wants(ProbeSent)
        assert not bus.wants(HopObserved)

    def test_emit_routes_to_tally_outside_interests(self):
        bus = EventBus()
        sink = bus.subscribe(CounterSink())
        bus.emit(_probe_sent())
        bus.tally(ProbeSent, 3)
        assert sink.counts["ProbeSent"] == 4

    def test_payload_sinks_never_see_foreign_types(self):
        bus = EventBus()
        collecting = CollectingSink(TraceStarted)
        bus.subscribe(collecting)
        bus.emit(_probe_sent())
        bus.emit(TraceStarted(destination=9))
        assert [type(e).__name__ for e in collecting.events] == [
            "TraceStarted"]

    def test_subscribe_invalidates_cached_dispatch(self):
        bus = EventBus()
        bus.subscribe(CounterSink())
        assert not bus.wants(ProbeSent)  # caches the dispatch entry
        collecting = bus.subscribe(CollectingSink())
        assert bus.wants(ProbeSent)
        bus.unsubscribe(collecting)
        assert not bus.wants(ProbeSent)

    def test_tally_without_counting_sinks_is_a_noop(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.tally(ProbeSent, 5)   # payload-only sink: nothing delivered
        assert seen == []


class TestSerialization:
    def test_roundtrip_every_type(self):
        samples = [
            ProbeSent(dst=1, ttl=2, protocol="icmp", flow_id=0, phase="x",
                      answered=True, response_kind="echo-reply",
                      response_source=7),
            HopObserved(destination=1, ttl=3, kind="router", address=5),
            SubnetPositioned(trace_address=5, positioned=True, pivot=6,
                             pivot_distance=3, on_trace_path=None),
            HeuristicFired(candidate=8, rule="H2", verdict="stop-and-shrink",
                           detail="d"),
            CacheHit(dst=9, ttl=4, phase="subnet-exploration"),
            SubnetGrown(pivot=6, prefix="10.0.0.4/31", size=2,
                        stop_reason="prefix-floor", probes_used=11,
                        phase_probes={"subnet-exploration": 11},
                        candidates_tested=3),
            OverheadViolation(pivot=6, prefix="10.0.0.4/29", size=5,
                              probes_used=99, upper_bound=42, slack=1.25,
                              phase_probes={"subnet-exploration": 99}),
            TraceFinished(destination=1, reached=True, hops=4,
                          probes_sent=40, cache_hits=3),
            CheckpointWritten(path="/tmp/x.json", completed_targets=3,
                              traces=3),
            SurveyProgressed(total_targets=10, completed=4, skipped=1,
                             reached=3, probes_sent=99),
        ]
        for event in samples:
            payload = event_to_dict(event)
            assert payload["event"] == type(event).__name__
            assert event_from_dict(json.loads(json.dumps(payload))) == event

    def test_unknown_kind_fails(self):
        with pytest.raises(ValueError, match="unknown session event"):
            event_from_dict({"event": "Nonsense"})


class TestSinks:
    def test_counter_sink(self):
        sink = CounterSink()
        sink(TraceStarted(destination=1))
        sink(HeuristicFired(candidate=1, rule="H5", verdict="add", detail=""))
        sink(HeuristicFired(candidate=2, rule="H5", verdict="add", detail=""))
        assert sink.counts["TraceStarted"] == 1
        assert sink.rules == {"H5": 2}
        assert sink.total == 3
        assert sink.snapshot()["rule:H5"] == 2

    def test_jsonl_sink_and_replay(self):
        buffer = io.StringIO()
        sink = JsonlEventSink(buffer)
        sink(TraceStarted(destination=12))
        sink(TraceFinished(destination=12, reached=False, hops=0,
                           probes_sent=0))
        sink.close()
        buffer.seek(0)
        events = replay_events(buffer)
        assert events == [
            TraceStarted(destination=12),
            TraceFinished(destination=12, reached=False, hops=0,
                          probes_sent=0),
        ]

    def test_progress_sink_renders_bar(self):
        stream = io.StringIO()
        sink = ProgressSink(stream=stream, width=10)
        sink(SurveyProgressed(total_targets=4, completed=2, skipped=0,
                              reached=2, probes_sent=50))
        sink.close()
        text = stream.getvalue()
        assert "2/4 targets" in text
        assert "#" in text


class TestCollectorEmission:
    def test_prober_emits_probe_sent(self, line_engine, line_topology):
        prober = Prober(line_engine, "vantage")
        sink = prober.events.subscribe(CollectingSink(ProbeSent))
        destination = max(line_topology.all_interface_addresses)
        prober.probe(destination, 1)
        assert sink.events
        assert sink.events[0].dst == destination
        assert sink.events[0].ttl == 1

    def test_cache_hits_do_not_emit(self, line_engine, line_topology):
        prober = Prober(line_engine, "vantage")
        counter = prober.events.subscribe(CounterSink())
        destination = max(line_topology.all_interface_addresses)
        prober.probe(destination, 1)
        wire_probes = counter.counts.get("ProbeSent", 0)
        prober.probe(destination, 1)  # cached
        assert counter.counts.get("ProbeSent", 0) == wire_probes

    def test_trace_emits_full_stream(self, lan_engine, lan_network):
        tool = TraceNET(lan_engine, "vantage")
        counter = tool.events.subscribe(CounterSink())
        destination = min(
            min(r.addresses) for r in lan_network.topology.routers.values())
        tool.trace(destination)
        assert counter.counts["TraceStarted"] == 1
        assert counter.counts["TraceFinished"] == 1
        assert counter.counts.get("HopObserved", 0) > 0
        assert counter.counts.get("ProbeSent", 0) > 0
        assert counter.counts.get("SubnetPositioned", 0) > 0
        assert counter.counts.get("HeuristicFired", 0) > 0
        assert counter.counts.get("SubnetGrown", 0) > 0

    def test_no_sink_no_cost(self, lan_engine, lan_network):
        tool = TraceNET(lan_engine, "vantage")
        assert not tool.events  # nothing attached -> producers skip emission
        destination = min(
            min(r.addresses) for r in lan_network.topology.routers.values())
        assert tool.trace(destination).hops


class TestAuditAdapter:
    """`ExplorationState.audit` is now a thin adapter over the bus."""

    def test_audit_fed_through_bus(self, lan_engine):
        prober = Prober(lan_engine, "vantage")
        audit = []
        state = ExplorationState(prober=prober, pivot=1, pivot_distance=2,
                                 audit=audit)
        judgement = Judgement(Verdict.ADD, "H5", "mate of pivot")
        state.record(42, judgement)
        assert audit == [(42, judgement)]
        state.detach()
        state.record(43, judgement)
        assert len(audit) == 1

    def test_bus_sinks_see_audited_judgements(self, lan_engine):
        prober = Prober(lan_engine, "vantage")
        sink = prober.events.subscribe(CollectingSink(HeuristicFired))
        state = ExplorationState(prober=prober, pivot=1, pivot_distance=2)
        state.record(7, Judgement(Verdict.STOP, "H6", "foreign router"))
        assert sink.events == [HeuristicFired(
            candidate=7, rule="H6", verdict="stop-and-shrink",
            detail="foreign router")]


class TestSurveyRunnerEvents:
    @pytest.fixture(scope="class")
    def network(self):
        return internet2.build(seed=13)

    def make_tool(self, network):
        from repro.netsim import Engine

        return TraceNET(Engine(network.topology, policy=network.policy),
                        "utdallas")

    def test_progress_events_and_hook_agree(self, network):
        tool = self.make_tool(network)
        targets = internet2.targets(network, seed=13)[:5]
        hook_calls = []
        runner = SurveyRunner(tool,
                              progress=lambda p: hook_calls.append(p.completed))
        sink = tool.events.subscribe(CollectingSink(SurveyProgressed))
        runner.run(targets)
        assert len(hook_calls) == len(targets)
        assert len(sink.events) == len(targets)
        assert sink.events[-1].completed == len(targets)

    def test_checkpoint_event(self, network, tmp_path):
        tool = self.make_tool(network)
        targets = internet2.targets(network, seed=13)[:3]
        sink = tool.events.subscribe(CollectingSink(CheckpointWritten))
        path = str(tmp_path / "survey.json")
        SurveyRunner(tool, checkpoint_path=path, checkpoint_every=2)\
            .run(targets)
        assert sink.events
        assert sink.events[-1].path == path
        assert sink.events[-1].completed_targets == len(targets)

    def test_probes_sent_is_per_run_delta(self, network):
        tool = self.make_tool(network)
        targets = internet2.targets(network, seed=13)
        runner = SurveyRunner(tool)
        first = runner.run(targets[:4])
        assert first.probes_sent > 0
        # A second run over fresh targets must not inherit the first
        # run's probe count (regression: it reported the lifetime total).
        second = runner.run(targets[4:6])
        assert second.probes_sent > 0
        assert (first.probes_sent + second.probes_sent
                == tool.prober.stats.sent)


class TestSinkFailureIsolation:
    def test_raising_sink_is_counted_and_skipped(self):
        bus = EventBus()
        seen = []

        def bad(event):
            raise RuntimeError("boom")

        bus.subscribe(bad)
        bus.subscribe(seen.append)
        bus.emit(TraceStarted(destination=1))
        bus.emit(TraceStarted(destination=2))
        # Later sinks keep receiving every event; the failure is tallied.
        assert [e.destination for e in seen] == [1, 2]
        assert bus.sink_errors["bad"] == 2
        assert bus.total_sink_errors == 2
        name, detail = bus.last_sink_error
        assert name == "bad"
        assert detail == "RuntimeError: boom"

    def test_class_sinks_are_counted_by_type_name(self):
        class Exploding:
            def __call__(self, event):
                raise ValueError("nope")

        bus = EventBus()
        bus.subscribe(Exploding())
        bus.emit(TraceStarted(destination=1))
        assert bus.sink_errors == {"Exploding": 1}

    def test_propagate_errors_sinks_still_raise(self):
        # Service sinks use exceptions as control flow (StaleLeaseError
        # fencing, injected WorkerCrashed): the bus must not swallow them.
        class Fencing:
            propagate_errors = True

            def __call__(self, event):
                raise ValueError("fenced")

        bus = EventBus()
        bus.subscribe(Fencing())
        with pytest.raises(ValueError, match="fenced"):
            bus.emit(TraceStarted(destination=1))
        assert bus.total_sink_errors == 0

    def test_tally_path_is_isolated_too(self):
        class BadCounter(CounterSink):
            def tally(self, cls, count=1):
                raise RuntimeError("tally boom")

        bus = EventBus()
        bus.subscribe(BadCounter())
        good = bus.subscribe(CounterSink())
        bus.tally(ProbeSent, 3)
        bus.emit(_probe_sent())
        assert good.counts["ProbeSent"] == 4
        assert bus.sink_errors["BadCounter"] == 2

    def test_collection_survives_a_raising_sink(self, lan_engine,
                                                lan_network):
        # End to end: a broken observer must not abort the survey, and the
        # surviving sinks must see the identical stream.
        tool = TraceNET(lan_engine, "vantage")

        def flaky(event):
            raise OSError("observer disk full")

        tool.events.subscribe(flaky)
        counter = tool.events.subscribe(CounterSink())
        destination = min(
            min(r.addresses) for r in lan_network.topology.routers.values())
        result = tool.trace(destination)
        assert result.hops
        assert counter.counts["TraceFinished"] == 1
        assert tool.events.total_sink_errors > 0
