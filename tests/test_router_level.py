"""Unit tests for router-level map construction and scoring."""


from repro.core.results import ObservedSubnet
from repro.evaluation import (
    build_router_level_map,
    score_router_level_map,
)
from repro.netsim import TopologyBuilder
from repro.netsim.addressing import parse_ip


def observed(pivot, members):
    return ObservedSubnet(pivot=pivot, pivot_distance=2, members=set(members))


class TestBuild:
    def test_alias_groups_become_nodes(self):
        subnet = observed(2, {1, 2})
        rmap = build_router_level_map([subnet], [{1, 100}])
        index = rmap.node_of(1)
        assert index >= 0
        assert rmap.nodes[index] == frozenset({1, 100})

    def test_ungrouped_members_become_singletons(self):
        subnet = observed(2, {1, 2})
        rmap = build_router_level_map([subnet], [])
        assert rmap.node_count == 2
        assert all(len(node) == 1 for node in rmap.nodes)

    def test_lan_contributes_pairwise_edges(self):
        subnet = observed(3, {1, 2, 3})
        rmap = build_router_level_map([subnet], [])
        assert rmap.edge_count == 3  # C(3,2)

    def test_singleton_subnets_ignored(self):
        rmap = build_router_level_map([observed(9, {9})], [])
        assert rmap.node_count == 0
        assert rmap.edge_count == 0

    def test_shared_alias_group_collapses_edges(self):
        """Two subnets joined by one router produce edges through a single
        node when the alias group covers both its interfaces."""
        a = observed(2, {1, 2})
        b = observed(12, {11, 12})
        rmap = build_router_level_map([a, b], [{2, 11}])
        joint = rmap.node_of(2)
        assert joint == rmap.node_of(11)
        neighbors = {tuple(sorted(edge)) for edge in rmap.edges}
        assert len(neighbors) == 2

    def test_summary(self):
        rmap = build_router_level_map([observed(2, {1, 2})], [{1, 50}])
        assert "router-level map" in rmap.summary()


class TestScore:
    def _topology(self):
        from repro.netsim import PrefixAllocator
        builder = TopologyBuilder(
            "score", allocator=PrefixAllocator("192.168.0.0/24"))
        builder.link("R1", "R2", prefix="10.0.0.0/30")
        builder.link("R2", "R3", prefix="10.0.0.4/30")
        builder.edge_host("v", "R1")
        return builder.build()

    def test_perfect_inference(self):
        topo = self._topology()
        a1 = parse_ip("10.0.0.1")   # R1
        a2 = parse_ip("10.0.0.2")   # R2
        b1 = parse_ip("10.0.0.5")   # R2
        b2 = parse_ip("10.0.0.6")   # R3
        subnets = [observed(a2, {a1, a2}), observed(b2, {b1, b2})]
        rmap = build_router_level_map(subnets, [{a2, b1}])
        accuracy = score_router_level_map(rmap, topo)
        assert accuracy.grouping_precision == 1.0
        assert accuracy.grouping_recall == 1.0
        assert accuracy.link_precision == 1.0
        assert accuracy.link_recall == 1.0
        assert accuracy.inferred_routers == accuracy.true_routers_observed == 3

    def test_missing_alias_costs_recall_not_precision(self):
        topo = self._topology()
        a1 = parse_ip("10.0.0.1")
        a2 = parse_ip("10.0.0.2")
        b1 = parse_ip("10.0.0.5")
        b2 = parse_ip("10.0.0.6")
        subnets = [observed(a2, {a1, a2}), observed(b2, {b1, b2})]
        rmap = build_router_level_map(subnets, [])  # no alias knowledge
        accuracy = score_router_level_map(rmap, topo)
        assert accuracy.grouping_precision == 1.0
        assert accuracy.grouping_recall == 0.0
        assert accuracy.link_precision == 1.0

    def test_wrong_alias_costs_precision(self):
        topo = self._topology()
        a1 = parse_ip("10.0.0.1")
        a2 = parse_ip("10.0.0.2")
        subnets = [observed(a2, {a1, a2})]
        rmap = build_router_level_map(subnets, [{a1, a2}])  # false alias
        accuracy = score_router_level_map(rmap, topo)
        assert accuracy.grouping_precision == 0.0

    def test_describe(self):
        topo = self._topology()
        a1 = parse_ip("10.0.0.1")
        a2 = parse_ip("10.0.0.2")
        rmap = build_router_level_map([observed(a2, {a1, a2})], [])
        text = score_router_level_map(rmap, topo).describe()
        assert "grouping precision" in text
