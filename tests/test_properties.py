"""Property-based tests (hypothesis) on core invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import infer_subnets
from repro.core import TraceNET
from repro.evaluation.matching import Category, match_subnets
from repro.evaluation.similarity import prefix_similarity, size_similarity
from repro.netsim import Engine, Prefix, mate30, mate31
from repro.netsim.addressing import (
    MAX_IPV4,
    common_prefix_length,
    enclosing_prefix,
    format_ip,
    parse_ip,
    same_prefix,
)
from repro.topogen import random_topo

addresses = st.integers(min_value=0, max_value=MAX_IPV4)
prefix_lengths = st.integers(min_value=0, max_value=32)


class TestAddressingProperties:
    @given(addresses)
    def test_parse_format_roundtrip(self, addr):
        assert parse_ip(format_ip(addr)) == addr

    @given(addresses)
    def test_mate31_involution_and_block(self, addr):
        assert mate31(mate31(addr)) == addr
        assert same_prefix(addr, mate31(addr), 31)

    @given(addresses)
    def test_mate30_involution_and_block(self, addr):
        assert mate30(mate30(addr)) == addr
        assert same_prefix(addr, mate30(addr), 30)
        assert mate30(addr) != mate31(addr)

    @given(addresses, addresses)
    def test_common_prefix_symmetric(self, a, b):
        length = common_prefix_length(a, b)
        assert length == common_prefix_length(b, a)
        if length < 32:
            assert same_prefix(a, b, length)
            assert not same_prefix(a, b, length + 1)

    @given(addresses, prefix_lengths)
    def test_prefix_contains_its_network_and_broadcast(self, addr, length):
        block = Prefix.containing(addr, length)
        assert addr in block
        assert block.network in block
        assert block.broadcast in block
        assert block.size == block.broadcast - block.network + 1

    @given(addresses, st.integers(min_value=1, max_value=32))
    def test_parent_contains_child(self, addr, length):
        child = Prefix.containing(addr, length)
        parent = child.parent()
        assert parent.contains_prefix(child)
        assert parent.length == length - 1

    @given(addresses, st.integers(min_value=0, max_value=31))
    def test_halves_partition_block(self, addr, length):
        block = Prefix.containing(addr, length)
        low, high = block.halves()
        assert low.size + high.size == block.size
        assert not low.overlaps(high)
        assert block.contains_prefix(low) and block.contains_prefix(high)

    @given(st.lists(addresses, min_size=1, max_size=12))
    def test_enclosing_prefix_covers_everything(self, addrs):
        block = enclosing_prefix(addrs)
        assert all(a in block for a in addrs)
        # Minimality: the child block containing the first address cannot
        # cover everything unless all addresses coincide.
        if block.length < 32:
            child = Prefix.containing(addrs[0], block.length + 1)
            assert not all(a in child for a in addrs)


class TestOfflineInferenceProperties:
    @given(st.dictionaries(addresses, st.integers(min_value=1, max_value=12),
                           min_size=0, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_every_address_placed_exactly_once(self, distances):
        inferred = infer_subnets(distances)
        placed = [a for subnet in inferred for a in subnet.members]
        assert sorted(placed) == sorted(distances)

    @given(st.dictionaries(addresses, st.integers(min_value=1, max_value=12),
                           min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_members_inside_their_block(self, distances):
        for subnet in infer_subnets(distances):
            assert all(a in subnet.prefix for a in subnet.members)


class TestMatchingProperties:
    prefixes = st.builds(
        Prefix.containing,
        addresses,
        st.integers(min_value=20, max_value=31),
    )

    @given(st.lists(prefixes, min_size=1, max_size=12, unique=True))
    @settings(max_examples=30, deadline=None)
    def test_every_original_classified_once(self, originals):
        # De-overlap the originals (ground truth never overlaps).
        clean = []
        for block in originals:
            if not any(block.overlaps(other) for other in clean):
                clean.append(block)
        report = match_subnets(clean, clean)
        assert len(report.outcomes) == len(clean)
        assert all(o.category == Category.EXACT for o in report.outcomes)
        assert report.exact_match_rate() == 1.0

    @given(st.lists(prefixes, min_size=1, max_size=10, unique=True),
           st.lists(prefixes, max_size=10, unique=True))
    @settings(max_examples=30, deadline=None)
    def test_similarities_bounded(self, originals, collected):
        clean = []
        for block in originals:
            if not any(block.overlaps(other) for other in clean):
                clean.append(block)
        report = match_subnets(clean, collected)
        assert 0.0 <= prefix_similarity(report) <= 1.0
        assert 0.0 <= size_similarity(report) <= 1.0


class TestTraceNETProperties:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_random_network_trace_invariants(self, seed):
        """On any random topology: traces terminate, collected subnets
        contain their pivots, members share the observed block, and
        distinct collected subnets never overlap (same-vantage view)."""
        network = random_topo.build_random(seed, max_p2p=10, max_lans=3)
        engine = Engine(network.topology, policy=network.policy)
        tool = TraceNET(engine, "vantage", max_hops=25)
        rng = random.Random(seed)
        targets = network.pick_targets(rng)
        for target in targets[:8]:
            result = tool.trace(target)
            assert len(result.hops) <= 25
        for subnet in tool.collected_subnets:
            assert subnet.pivot in subnet.members
            assert all(member in subnet.prefix for member in subnet.members)
        blocks = [s.prefix for s in tool.collected_subnets if s.size > 1]
        for i, a in enumerate(blocks):
            for b in blocks[i + 1:]:
                assert not a.overlaps(b) or a == b, (str(a), str(b))


class TestStoreProperties:
    @given(
        pivot=addresses,
        extra=st.sets(addresses, max_size=6),
        distance=st.integers(min_value=1, max_value=20),
        length=st.one_of(st.none(), st.integers(min_value=20, max_value=32)),
    )
    @settings(max_examples=40, deadline=None)
    def test_subnet_roundtrip(self, pivot, extra, distance, length):
        from repro.core.results import ObservedSubnet
        from repro.mapping import subnet_from_dict, subnet_to_dict

        members = set(extra) | {pivot}
        if length is not None:
            block = Prefix.containing(pivot, length)
            members = {m for m in members if m in block} | {pivot}
        original = ObservedSubnet(pivot=pivot, pivot_distance=distance,
                                  members=set(members), prefix_length=length)
        rebuilt = subnet_from_dict(subnet_to_dict(original))
        assert rebuilt.pivot == original.pivot
        assert rebuilt.members == original.members
        assert rebuilt.prefix == original.prefix


class TestMergeProperties:
    observations = st.lists(
        st.tuples(
            st.sampled_from(["rice", "umass", "uoregon"]),
            addresses,
            st.integers(min_value=24, max_value=31),
        ),
        max_size=12,
    )

    @given(observations)
    @settings(max_examples=40, deadline=None)
    def test_merged_blocks_never_overlap(self, raw):
        from repro.core.results import ObservedSubnet
        from repro.mapping import merge_collections

        collections = {}
        for vantage, pivot, length in raw:
            block = Prefix.containing(pivot, length)
            members = {block.network, block.broadcast, pivot}
            subnet = ObservedSubnet(pivot=pivot, pivot_distance=3,
                                    members=members, prefix_length=length)
            collections.setdefault(vantage, []).append(subnet)
        merged = merge_collections(collections)
        for i, a in enumerate(merged):
            for b in merged[i + 1:]:
                assert not a.prefix.overlaps(b.prefix), (str(a.prefix),
                                                         str(b.prefix))

    @given(observations)
    @settings(max_examples=40, deadline=None)
    def test_every_observer_counted_at_most_once(self, raw):
        from repro.core.results import ObservedSubnet
        from repro.mapping import merge_collections

        collections = {}
        for vantage, pivot, length in raw:
            block = Prefix.containing(pivot, length)
            subnet = ObservedSubnet(pivot=pivot, pivot_distance=3,
                                    members={block.network, pivot},
                                    prefix_length=length)
            collections.setdefault(vantage, []).append(subnet)
        for subnet in merge_collections(collections):
            assert subnet.observers <= set(collections)
            assert subnet.confirmation <= len(collections)
