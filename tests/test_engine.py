"""Unit tests for the forwarding engine: TTL semantics, response configs,
policies, delivery and unreachability."""

import pytest

from conftest import address_on
from repro.netsim import (
    DEFAULT_TTL,
    Engine,
    IndirectConfig,
    LoadBalancer,
    LoadBalancingMode,
    Probe,
    Protocol,
    ResponsePolicy,
    ResponseType,
    TopologyBuilder,
    UnassignedAddressBehavior,
)


def chain(n=4, lb=None):
    """vantage - R1 - R2 - ... - Rn chain; returns (engine, topology)."""
    builder = TopologyBuilder("chain")
    for i in range(1, n):
        builder.link(f"R{i}", f"R{i+1}")
    builder.edge_host("v", "R1")
    topo = builder.build()
    return Engine(topo, balancer=lb), topo


def send(engine, topo, dst, ttl=DEFAULT_TTL, protocol=Protocol.ICMP, flow_id=0):
    host = topo.hosts["v"]
    return engine.send(Probe(src=host.address, dst=dst, ttl=ttl,
                             protocol=protocol, flow_id=flow_id))


class TestTTLSemantics:
    def test_ttl_k_reveals_kth_router(self):
        engine, topo = chain(5)
        dst = address_on(topo, "R5", "R4")
        for ttl in range(1, 5):
            response = send(engine, topo, dst, ttl=ttl)
            assert response.kind == ResponseType.TTL_EXCEEDED
            assert response.responder == f"R{ttl}"

    def test_destination_replies_at_its_distance(self):
        engine, topo = chain(5)
        dst = address_on(topo, "R5", "R4")
        response = send(engine, topo, dst, ttl=5)
        assert response.kind == ResponseType.ECHO_REPLY
        assert response.source == dst

    def test_larger_ttl_still_delivers(self):
        engine, topo = chain(5)
        dst = address_on(topo, "R5", "R4")
        assert send(engine, topo, dst, ttl=30).kind == ResponseType.ECHO_REPLY

    def test_gateway_delivery_at_ttl_1(self):
        engine, topo = chain(3)
        dst = address_on(topo, "R1", "R2")
        assert send(engine, topo, dst, ttl=1).kind == ResponseType.ECHO_REPLY

    def test_near_side_address_one_hop_closer(self):
        engine, topo = chain(3)
        near = address_on(topo, "R2", "R3")   # R2's iface on R2-R3 link
        far = address_on(topo, "R3", "R2")    # R3's iface on same link
        assert send(engine, topo, near, ttl=2).kind == ResponseType.ECHO_REPLY
        assert send(engine, topo, far, ttl=2).kind == ResponseType.TTL_EXCEEDED

    def test_unknown_source_rejected(self):
        engine, topo = chain(3)
        dst = address_on(topo, "R3", "R2")
        with pytest.raises(ValueError):
            engine.send(Probe(src=12345, dst=dst, ttl=3))


class TestResponseConfigs:
    def test_incoming_interface_source(self):
        engine, topo = chain(4)
        dst = address_on(topo, "R4", "R3")
        response = send(engine, topo, dst, ttl=2)
        # R2 reports the interface the probe entered through: its address
        # on the R1-R2 link.
        assert response.source == address_on(topo, "R2", "R1")

    def test_shortest_path_source(self):
        engine, topo = chain(4)
        topo.routers["R2"].indirect_config = IndirectConfig.SHORTEST_PATH
        dst = address_on(topo, "R4", "R3")
        response = send(engine, topo, dst, ttl=2)
        # Toward the vantage the egress is the same interface (chain), so
        # this matches the incoming interface here.
        assert response.source == address_on(topo, "R2", "R1")

    def test_default_source(self):
        engine, topo = chain(4)
        topo.routers["R2"].indirect_config = IndirectConfig.DEFAULT
        dst = address_on(topo, "R4", "R3")
        response = send(engine, topo, dst, ttl=2)
        assert response.source == min(topo.routers["R2"].addresses)

    def test_nil_indirect_config_is_silent(self):
        engine, topo = chain(4)
        topo.routers["R2"].indirect_config = IndirectConfig.NIL
        dst = address_on(topo, "R4", "R3")
        assert send(engine, topo, dst, ttl=2) is None

    def test_nil_direct_config_is_silent(self):
        from repro.netsim import DirectConfig
        engine, topo = chain(3)
        topo.routers["R3"].direct_config = DirectConfig.NIL
        dst = address_on(topo, "R3", "R2")
        assert send(engine, topo, dst) is None


class TestProtocols:
    def test_udp_alive_is_port_unreachable(self):
        engine, topo = chain(3)
        dst = address_on(topo, "R3", "R2")
        response = send(engine, topo, dst, protocol=Protocol.UDP)
        assert response.kind == ResponseType.PORT_UNREACHABLE
        assert response.is_alive_signal

    def test_tcp_alive_is_rst(self):
        engine, topo = chain(3)
        dst = address_on(topo, "R3", "R2")
        response = send(engine, topo, dst, protocol=Protocol.TCP)
        assert response.kind == ResponseType.TCP_RST

    def test_protocol_refusal_silences_router(self):
        builder = TopologyBuilder()
        builder.link("R1", "R2")
        builder.link("R2", "R3")
        builder.edge_host("v", "R1")
        topo = builder.build()
        policy = ResponsePolicy().refuse_protocol("R2", Protocol.UDP)
        engine = Engine(topo, policy=policy)
        dst = address_on(topo, "R3", "R2")
        assert send(engine, topo, dst, ttl=2, protocol=Protocol.UDP) is None
        assert send(engine, topo, dst, ttl=2, protocol=Protocol.ICMP) is not None


class TestPolicies:
    def _engine(self, policy):
        builder = TopologyBuilder()
        builder.link("R1", "R2")
        lan = builder.lan(["R2", "R3", "R4"], length=29)
        builder.edge_host("v", "R1")
        topo = builder.build()
        return Engine(topo, policy=policy), topo, lan

    def test_firewalled_subnet_drops_direct_probes(self):
        policy = ResponsePolicy()
        engine, topo, lan = self._engine(policy)
        policy.firewall_subnet(lan.subnet_id)
        for address in lan.addresses:
            assert send(engine, topo, address) is None

    def test_firewall_does_not_block_ttl_exceeded(self):
        policy = ResponsePolicy()
        engine, topo, lan = self._engine(policy)
        policy.firewall_subnet(lan.subnet_id)
        member = [a for a in lan.addresses
                  if topo.interface_at(a).router_id == "R3"][0]
        response = send(engine, topo, member, ttl=1)
        assert response is not None
        assert response.kind == ResponseType.TTL_EXCEEDED

    def test_silent_interface_ignores_direct_probe(self):
        policy = ResponsePolicy()
        engine, topo, lan = self._engine(policy)
        member = sorted(lan.addresses)[1]
        policy.silence_interface(member)
        assert send(engine, topo, member) is None

    def test_silent_interface_still_sources_ttl_exceeded(self):
        policy = ResponsePolicy()
        engine, topo, lan = self._engine(policy)
        # Silence R2's incoming interface on the R1-R2 link, then expire a
        # probe at R2: the reply is still sourced from that interface.
        incoming = address_on(topo, "R2", "R1")
        policy.silence_interface(incoming)
        far = [a for a in lan.addresses
               if topo.interface_at(a).router_id == "R3"][0]
        response = send(engine, topo, far, ttl=2)
        assert response is not None
        assert response.source == incoming

    def test_rate_limited_router_goes_quiet(self):
        policy = ResponsePolicy().rate_limit_router("R2", capacity=1,
                                                    refill_per_tick=0)
        engine, topo, lan = self._engine(policy)
        member = address_on(topo, "R2", "R1")
        assert send(engine, topo, member) is not None
        assert send(engine, topo, member) is None


class TestUnassignedAddresses:
    def _topo(self):
        builder = TopologyBuilder()
        builder.link("R1", "R2")
        builder.lan(["R2", "R3"], length=29)
        builder.edge_host("v", "R1")
        return builder.build()

    def test_silent_by_default(self):
        topo = self._topo()
        engine = Engine(topo)
        lan = [s for s in topo.subnets.values() if s.prefix.length == 29][0]
        unassigned = lan.prefix.network + 5
        assert topo.interface_at(unassigned) is None
        assert send(engine, topo, unassigned) is None

    def test_host_unreachable_mode(self):
        topo = self._topo()
        engine = Engine(
            topo, unassigned_behavior=UnassignedAddressBehavior.HOST_UNREACHABLE)
        lan = [s for s in topo.subnets.values() if s.prefix.length == 29][0]
        unassigned = lan.prefix.network + 5
        response = send(engine, topo, unassigned)
        assert response.kind == ResponseType.HOST_UNREACHABLE

    def test_unrouted_space_is_silent(self):
        topo = self._topo()
        engine = Engine(topo)
        assert send(engine, topo, 0x01010101) is None


class TestGroundTruthHelpers:
    def test_path_routers(self):
        engine, topo = chain(4)
        dst = address_on(topo, "R4", "R3")
        assert engine.path_routers("v", dst) == ["R1", "R2", "R3", "R4"]

    def test_hop_distance(self):
        engine, topo = chain(4)
        assert engine.hop_distance("v", address_on(topo, "R4", "R3")) == 4
        assert engine.hop_distance("v", address_on(topo, "R1", "R2")) == 1

    def test_hop_distance_none_for_unassigned(self):
        engine, topo = chain(3)
        assert engine.hop_distance("v", 0x01010101) is None

    def test_contra_pivot_one_hop_closer_on_lan(self):
        builder = TopologyBuilder()
        builder.link("R1", "R2")
        lan = builder.lan(["R2", "R3", "R4"], length=29)
        builder.edge_host("v", "R1")
        topo = builder.build()
        engine = Engine(topo)
        distances = {topo.interface_at(a).router_id: engine.hop_distance("v", a)
                     for a in lan.addresses}
        assert distances["R2"] == 2       # contra-pivot side
        assert distances["R3"] == 3
        assert distances["R4"] == 3

    def test_stats_counts(self):
        engine, topo = chain(3)
        dst = address_on(topo, "R3", "R2")
        send(engine, topo, dst)
        send(engine, topo, 0x01010101)
        assert engine.stats.probes_sent == 2
        assert engine.stats.responses_returned == 1
        assert engine.stats.silent_drops == 1

    def test_wire_log(self):
        builder = TopologyBuilder()
        builder.link("R1", "R2")
        builder.edge_host("v", "R1")
        topo = builder.build()
        engine = Engine(topo, keep_wire_log=True)
        send(engine, topo, address_on(topo, "R2", "R1"))
        actions = [event.action for event in engine.wire_log]
        assert "deliver" in actions


class TestECMP:
    def _diamond(self, mode):
        builder = TopologyBuilder("diamond")
        builder.link("A", "B")
        builder.link("A", "C")
        builder.link("B", "D")
        builder.link("C", "D")
        stub = builder.link("D", "E")
        builder.edge_host("v", "A")
        topo = builder.build()
        lb = LoadBalancer(mode, seed=11)
        return Engine(topo, balancer=lb), topo, stub

    def test_per_flow_stable_per_flow_id(self):
        engine, topo, stub = self._diamond(LoadBalancingMode.PER_FLOW)
        dst = [a for a in stub.addresses
               if topo.interface_at(a).router_id == "E"][0]
        hop2 = {send(engine, topo, dst, ttl=2, flow_id=9).responder
                for _ in range(10)}
        assert len(hop2) == 1

    def test_per_flow_differs_across_flow_ids(self):
        engine, topo, stub = self._diamond(LoadBalancingMode.PER_FLOW)
        dst = [a for a in stub.addresses
               if topo.interface_at(a).router_id == "E"][0]
        hop2 = {send(engine, topo, dst, ttl=2, flow_id=i).responder
                for i in range(32)}
        assert hop2 == {"B", "C"}

    def test_per_packet_fluctuates(self):
        engine, topo, stub = self._diamond(LoadBalancingMode.PER_PACKET)
        dst = [a for a in stub.addresses
               if topo.interface_at(a).router_id == "E"][0]
        hop2 = {send(engine, topo, dst, ttl=2).responder for _ in range(32)}
        assert hop2 == {"B", "C"}
