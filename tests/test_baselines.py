"""Unit tests for traceroute, Paris traceroute, ping, and offline subnet
inference baselines."""

import pytest

from conftest import address_on
from repro.baselines import (
    ParisTraceroute,
    Ping,
    Traceroute,
    completeness,
    infer_subnets,
    offline_dataset_from_traces,
)
from repro.netsim import (
    Engine,
    LoadBalancer,
    LoadBalancingMode,
    Prefix,
    ResponsePolicy,
    TopologyBuilder,
)


def chain(n=4):
    builder = TopologyBuilder("chain")
    for i in range(1, n):
        builder.link(f"R{i}", f"R{i+1}")
    builder.edge_host("v", "R1")
    topo = builder.build()
    return Engine(topo), topo


def diamond(mode=LoadBalancingMode.PER_FLOW):
    builder = TopologyBuilder("diamond")
    builder.link("A", "B")
    builder.link("A", "C")
    builder.link("B", "D")
    builder.link("C", "D")
    stub = builder.link("D", "E")
    builder.edge_host("v", "A")
    topo = builder.build()
    target = topo.routers["E"].interface_on(stub.subnet_id).address
    return Engine(topo, balancer=LoadBalancer(mode, seed=2)), topo, target


class TestTraceroute:
    def test_one_address_per_hop(self):
        engine, topo = chain(5)
        result = Traceroute(engine, "v").trace(address_on(topo, "R5", "R4"))
        assert result.reached
        assert len(result.hops) == 5
        assert all(hop.subnet is None for hop in result.hops)

    def test_unreachable_gives_anonymous_tail(self):
        engine, topo = chain(3)
        result = Traceroute(engine, "v", gap_limit=3).trace(0x01010101)
        assert not result.reached
        assert [hop.address for hop in result.hops][-3:] == [None, None, None]

    def test_classic_fluctuates_under_per_flow_balancing(self):
        engine, topo, target = diamond()
        tracer = Traceroute(engine, "v", vary_flow=True)
        second_hops = {tracer.trace(target).hops[1].address
                       for _ in range(12)}
        assert len(second_hops) > 1

    def test_probe_accounting(self):
        engine, topo = chain(4)
        result = Traceroute(engine, "v").trace(address_on(topo, "R4", "R3"))
        assert result.probes_sent >= len(result.hops)


class TestParisTraceroute:
    def test_stable_under_per_flow_balancing(self):
        engine, topo, target = diamond()
        tracer = ParisTraceroute(engine, "v")
        second_hops = {tracer.trace(target).hops[1].address
                       for _ in range(12)}
        assert len(second_hops) == 1

    def test_same_endpoints_as_classic(self):
        engine, topo = chain(4)
        target = address_on(topo, "R4", "R3")
        classic = Traceroute(engine, "v").trace(target)
        paris = ParisTraceroute(Engine(topo), "v").trace(target)
        assert classic.reached and paris.reached
        assert classic.hops[-1].address == paris.hops[-1].address


class TestPing:
    def test_alive_and_dead(self):
        engine, topo = chain(3)
        ping = Ping(engine, "v")
        assert ping.is_alive(address_on(topo, "R3", "R2"))
        assert not ping.is_alive(0x01010101)

    def test_sweep(self):
        engine, topo = chain(3)
        ping = Ping(engine, "v")
        alive = address_on(topo, "R2", "R1")
        results = ping.sweep([alive, 0x01010101])
        assert results[alive] is True
        assert results[0x01010101] is False

    def test_alive_fraction(self):
        engine, topo = chain(3)
        ping = Ping(engine, "v")
        fraction = ping.alive_fraction([address_on(topo, "R2", "R1"),
                                        0x01010101])
        assert fraction == pytest.approx(0.5)

    def test_alive_fraction_empty(self):
        engine, topo = chain(3)
        assert Ping(engine, "v").alive_fraction([]) == 0.0

    def test_respects_policy(self):
        builder = TopologyBuilder()
        builder.link("R1", "R2")
        builder.edge_host("v", "R1")
        topo = builder.build()
        address = address_on(topo, "R2", "R1")
        policy = ResponsePolicy().silence_interface(address)
        ping = Ping(Engine(topo, policy=policy), "v")
        assert not ping.is_alive(address)


class TestOfflineInference:
    def test_p2p_pair_grouped(self):
        distances = {Prefix.parse("10.0.0.0/30").network + 1: 2,
                     Prefix.parse("10.0.0.0/30").network + 2: 3}
        inferred = infer_subnets(distances)
        blocks = {str(s.prefix) for s in inferred}
        assert "10.0.0.0/30" in blocks or "10.0.0.0/31" in blocks

    def test_distant_addresses_not_grouped(self):
        a = Prefix.parse("10.0.0.0/30").network + 1
        b = Prefix.parse("10.0.0.0/30").network + 2
        inferred = infer_subnets({a: 2, b: 7})
        assert all(s.size == 1 for s in inferred)

    def test_singletons_reported_as_slash32(self):
        address = Prefix.parse("10.0.0.0/30").network + 1
        inferred = infer_subnets({address: 4})
        assert len(inferred) == 1
        assert inferred[0].prefix.length == 32

    def test_ingress_rule_rejects_two_near_addresses(self):
        base = Prefix.parse("10.0.0.0/29").network
        distances = {base + 1: 2, base + 2: 2, base + 3: 3}
        inferred = infer_subnets(distances)
        widest = min(s.prefix.length for s in inferred)
        assert widest >= 30

    def test_boundary_addresses_block_wide_groups(self):
        base = Prefix.parse("10.0.0.0/29").network
        distances = {base: 3, base + 1: 2, base + 2: 3, base + 3: 3,
                     base + 4: 3}
        inferred = infer_subnets(distances)
        assert Prefix.parse("10.0.0.0/29") not in {s.prefix for s in inferred}

    def test_completeness_metric(self):
        truth = [Prefix.parse("10.0.0.0/30"), Prefix.parse("10.0.1.0/30")]
        base = truth[0].network
        inferred = infer_subnets({base + 1: 2, base + 2: 3})
        assert 0.0 <= completeness(inferred, truth) <= 0.5

    def test_completeness_empty_truth(self):
        assert completeness([], []) == 0.0

    def test_dataset_from_traces_takes_min_ttl(self):
        from repro.core.results import TraceHop, TraceResult
        r1 = TraceResult(vantage_host_id="v", destination=1)
        r1.hops = [TraceHop(ttl=3, address=42)]
        r2 = TraceResult(vantage_host_id="v", destination=2)
        r2.hops = [TraceHop(ttl=2, address=42), TraceHop(ttl=3, address=None)]
        dataset = offline_dataset_from_traces([r1, r2])
        assert dataset == {42: 2}

    def test_tracenet_beats_offline_on_lan_coverage(self):
        """The paper's core claim vs [7]: offline inference only sees
        addresses that surfaced on traced paths, so it cannot recover the
        full LAN tracenet explores."""
        builder = TopologyBuilder()
        builder.link("R1", "R2")
        lan = builder.lan(["R2", "R3", "R4", "R6"], length=29)
        dest = builder.link("R4", "R5")
        builder.edge_host("v", "R1")
        topo = builder.build()
        target = topo.routers["R5"].interface_on(dest.subnet_id).address

        from repro.core import TraceNET
        tracenet_tool = TraceNET(Engine(topo), "v")
        tracenet_members = tracenet_tool.trace(target).subnet_for(
            topo.routers["R3"].interface_on(lan.subnet_id).address)

        tracer = Traceroute(Engine(topo), "v")
        dataset = offline_dataset_from_traces([tracer.trace(target)])
        inferred = infer_subnets(dataset)
        offline_lan = [s for s in inferred
                       if any(a in lan.prefix for a in s.members)]
        offline_count = max((s.size for s in offline_lan), default=0)
        assert tracenet_members is not None
        assert tracenet_members.size == len(lan.addresses)
        assert offline_count < tracenet_members.size


class TestDisCarte:
    def _topo(self, n=6):
        builder = TopologyBuilder()
        for i in range(1, n):
            builder.link(f"R{i}", f"R{i+1}")
        builder.edge_host("v", "R1")
        topo = builder.build()
        from conftest import address_on as addr
        return topo, addr(topo, f"R{n}", f"R{n-1}")

    def test_two_addresses_per_middle_hop(self):
        from repro.baselines import DisCarte
        topo, target = self._topo()
        trace = DisCarte(Engine(topo), "v").trace(target)
        assert trace.reached
        middle = trace.hops[2]
        assert middle.source is not None
        assert middle.stamps
        assert len(middle.addresses) >= 2

    def test_collects_more_than_plain_traceroute(self):
        from repro.baselines import DisCarte
        topo, target = self._topo()
        rr_addresses = DisCarte(Engine(topo), "v").trace(target).addresses
        tr = Traceroute(Engine(topo), "v", vary_flow=False).trace(target)
        tr_addresses = {a for a in tr.path_addresses if a is not None}
        assert tr_addresses < rr_addresses

    def test_record_route_limited_to_nine_slots(self):
        from repro.baselines import DisCarte
        builder = TopologyBuilder()
        for i in range(1, 14):
            builder.link(f"R{i}", f"R{i+1}")
        builder.edge_host("v", "R1")
        topo = builder.build()
        from conftest import address_on as addr
        target = addr(topo, "R14", "R13")
        trace = DisCarte(Engine(topo), "v").trace(target)
        assert trace.reached
        assert max(len(hop.stamps) for hop in trace.hops) == 9

    def test_unknown_vantage_rejected(self):
        from repro.baselines import DisCarte
        topo, _ = self._topo()
        with pytest.raises(ValueError):
            DisCarte(Engine(topo), "nobody")

    def test_unreachable_target_gap_limit(self):
        from repro.baselines import DisCarte
        topo, _ = self._topo()
        trace = DisCarte(Engine(topo), "v", gap_limit=2).trace(0x01010101)
        assert not trace.reached
        assert [h.source for h in trace.hops][-2:] == [None, None]

    def test_plain_probe_has_no_stamps(self):
        from repro.netsim import Probe
        topo, target = self._topo()
        engine = Engine(topo)
        host = topo.hosts["v"]
        response = engine.send(Probe(src=host.address, dst=target, ttl=3))
        assert response.record_route == ()
