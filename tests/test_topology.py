"""Unit tests for the topology graph."""

import pytest

from repro.netsim.addressing import Prefix, parse_ip
from repro.netsim.router import Router
from repro.netsim.subnet import Subnet
from repro.netsim.topology import Topology, TopologyError


def simple_topology():
    """R1 -- (10.0.0.0/30) -- R2, plus host on a stub /30 behind R1."""
    topo = Topology("t")
    topo.add_router(Router("R1"))
    topo.add_router(Router("R2"))
    topo.add_subnet(Subnet("link", Prefix.parse("10.0.0.0/30")))
    topo.add_subnet(Subnet("stub", Prefix.parse("10.0.0.4/30")))
    topo.connect("R1", "link", parse_ip("10.0.0.1"))
    topo.connect("R2", "link", parse_ip("10.0.0.2"))
    topo.connect("R1", "stub", parse_ip("10.0.0.5"))
    topo.add_host("h", "stub", parse_ip("10.0.0.6"))
    return topo


class TestConstruction:
    def test_duplicate_router_rejected(self):
        topo = Topology()
        topo.add_router(Router("R1"))
        with pytest.raises(TopologyError):
            topo.add_router(Router("R1"))

    def test_duplicate_subnet_rejected(self):
        topo = Topology()
        topo.add_subnet(Subnet("s", Prefix.parse("10.0.0.0/30")))
        with pytest.raises(TopologyError):
            topo.add_subnet(Subnet("s", Prefix.parse("10.0.1.0/30")))

    def test_overlapping_subnet_rejected(self):
        topo = Topology()
        topo.add_subnet(Subnet("a", Prefix.parse("10.0.0.0/24")))
        with pytest.raises(TopologyError):
            topo.add_subnet(Subnet("b", Prefix.parse("10.0.0.0/30")))

    def test_connect_unknown_router(self):
        topo = Topology()
        topo.add_subnet(Subnet("s", Prefix.parse("10.0.0.0/30")))
        with pytest.raises(TopologyError):
            topo.connect("nope", "s", parse_ip("10.0.0.1"))

    def test_connect_unknown_subnet(self):
        topo = Topology()
        topo.add_router(Router("R1"))
        with pytest.raises(TopologyError):
            topo.connect("R1", "nope", parse_ip("10.0.0.1"))

    def test_connect_duplicate_address(self):
        topo = simple_topology()
        with pytest.raises(TopologyError):
            topo.connect("R2", "link", parse_ip("10.0.0.1"))

    def test_host_requires_address_in_block(self):
        topo = simple_topology()
        with pytest.raises(TopologyError):
            topo.add_host("h2", "stub", parse_ip("10.0.1.1"))

    def test_host_duplicate_id(self):
        topo = simple_topology()
        with pytest.raises(TopologyError):
            topo.add_host("h", "stub", parse_ip("10.0.0.4"))

    def test_host_gateway_defaults_to_first_router(self):
        topo = simple_topology()
        assert topo.hosts["h"].gateway_router_id == "R1"

    def test_host_gateway_must_be_attached(self):
        topo = simple_topology()
        with pytest.raises(TopologyError):
            topo.add_host("h2", "link", parse_ip("10.0.0.3"),
                          gateway_router_id="missing")


class TestLookups:
    def test_interface_at(self):
        topo = simple_topology()
        iface = topo.interface_at(parse_ip("10.0.0.2"))
        assert iface is not None and iface.router_id == "R2"
        assert topo.interface_at(parse_ip("10.0.0.3")) is None

    def test_host_at(self):
        topo = simple_topology()
        assert topo.host_at(parse_ip("10.0.0.6")).host_id == "h"
        assert topo.host_at(parse_ip("10.0.0.5")) is None

    def test_subnet_containing_assigned(self):
        topo = simple_topology()
        assert topo.subnet_containing(parse_ip("10.0.0.1")).subnet_id == "link"

    def test_subnet_containing_unassigned_in_block(self):
        topo = simple_topology()
        assert topo.subnet_containing(parse_ip("10.0.0.3")).subnet_id == "link"

    def test_subnet_containing_outside_everything(self):
        topo = simple_topology()
        assert topo.subnet_containing(parse_ip("11.0.0.1")) is None

    def test_subnet_containing_between_blocks(self):
        topo = Topology()
        topo.add_subnet(Subnet("a", Prefix.parse("10.0.0.0/30")))
        topo.add_subnet(Subnet("b", Prefix.parse("10.0.0.8/30")))
        assert topo.subnet_containing(parse_ip("10.0.0.5")) is None

    def test_subnet_containing_host_address(self):
        topo = simple_topology()
        assert topo.subnet_containing(parse_ip("10.0.0.6")).subnet_id == "stub"

    def test_router_hosting(self):
        topo = simple_topology()
        assert topo.router_hosting(parse_ip("10.0.0.1")).router_id == "R1"
        assert topo.router_hosting(parse_ip("10.0.0.3")) is None

    def test_neighbors(self):
        topo = simple_topology()
        assert topo.neighbors("R1") == ["R2"]
        assert topo.neighbors("R2") == ["R1"]

    def test_all_interface_addresses(self):
        topo = simple_topology()
        assert len(topo.all_interface_addresses) == 3

    def test_ground_truth_prefixes(self):
        topo = simple_topology()
        assert Prefix.parse("10.0.0.0/30") in topo.ground_truth_prefixes()


class TestValidation:
    def test_valid_topology_passes(self):
        simple_topology().validate()

    def test_empty_router_fails(self):
        topo = simple_topology()
        topo.add_router(Router("lonely"))
        with pytest.raises(TopologyError):
            topo.validate()

    def test_empty_subnet_fails(self):
        topo = simple_topology()
        topo.add_subnet(Subnet("empty", Prefix.parse("10.0.1.0/30")))
        with pytest.raises(TopologyError):
            topo.validate()

    def test_disconnected_fails(self):
        topo = simple_topology()
        topo.add_router(Router("R3"))
        topo.add_router(Router("R4"))
        topo.add_subnet(Subnet("island", Prefix.parse("10.0.2.0/30")))
        topo.connect("R3", "island", parse_ip("10.0.2.1"))
        topo.connect("R4", "island", parse_ip("10.0.2.2"))
        with pytest.raises(TopologyError):
            topo.validate()

    def test_summary_mentions_counts(self):
        text = simple_topology().summary()
        assert "2 routers" in text
        assert "2 subnets" in text
