"""Unit tests for alias resolution: union-find, analytical pairs, Ally."""


from conftest import address_on
from repro.aliases import (
    AliasVerdict,
    AllyResolver,
    UnionFind,
    alias_sets,
    analytical_pairs,
    ground_truth_pairs,
    groups_from_pairs,
    negative_pairs,
    pair_keys,
    pairs_from_sets,
    score_pairs,
)
from repro.core import TraceNET
from repro.core.results import ObservedSubnet
from repro.netsim import Engine, TopologyBuilder
from repro.netsim.router import IpIdMode
from repro.probing import Prober


def chain(n=4):
    builder = TopologyBuilder("chain")
    for i in range(1, n):
        builder.link(f"R{i}", f"R{i+1}")
    builder.edge_host("v", "R1")
    topo = builder.build()
    return Engine(topo), topo


class TestUnionFind:
    def test_union_and_together(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(2, 3)
        assert uf.together(1, 3)
        assert not uf.together(1, 4)

    def test_groups(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(3, 4)
        uf.union(4, 5)
        groups = uf.groups()
        assert {3, 4, 5} in groups
        assert {1, 2} in groups

    def test_groups_largest_first(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(3, 4)
        uf.union(4, 5)
        assert uf.groups()[0] == {3, 4, 5}

    def test_contains_and_len(self):
        uf = UnionFind()
        uf.add(7)
        assert 7 in uf
        assert len(uf) == 1

    def test_groups_from_pairs(self):
        groups = groups_from_pairs([(1, 2), (2, 3), (9, 10)])
        assert {1, 2, 3} in groups
        assert {9, 10} in groups


class TestAnalyticalPairs:
    def _subnet(self, **kwargs):
        defaults = dict(pivot=100, pivot_distance=3, members={99, 100},
                        contra_pivot=99, ingress=50, trace_entry=50,
                        on_trace_path=True, trace_address=100)
        defaults.update(kwargs)
        return ObservedSubnet(**defaults)

    def test_ingress_contra_pair(self):
        pairs = analytical_pairs([self._subnet()])
        assert (50, 99) in pair_keys(pairs)

    def test_trace_entry_pair_when_distinct(self):
        subnet = self._subnet(ingress=51, trace_entry=50)
        keys = pair_keys(analytical_pairs([subnet]))
        assert (51, 99) in keys
        assert (50, 99) in keys

    def test_no_pairs_without_contra(self):
        assert analytical_pairs([self._subnet(contra_pivot=None)]) == []

    def test_no_trace_entry_pair_for_mate_pivot(self):
        """When positioning promoted v's mate, u is not on the ingress."""
        subnet = self._subnet(trace_address=99, ingress=51, trace_entry=50)
        keys = pair_keys(analytical_pairs([subnet]))
        assert (50, 99) not in keys
        assert (51, 99) in keys

    def test_no_trace_entry_pair_off_path(self):
        subnet = self._subnet(on_trace_path=False, ingress=None)
        assert analytical_pairs([subnet]) == []

    def test_alias_sets_close_transitively(self):
        a = self._subnet()
        b = self._subnet(pivot=200, members={99, 200}, contra_pivot=99,
                         ingress=51, trace_entry=51, trace_address=200)
        groups = alias_sets(analytical_pairs([a, b]))
        assert any({50, 51, 99} <= group for group in groups)

    def test_negative_pairs(self):
        subnet = self._subnet(members={99, 100, 101})
        negatives = negative_pairs([subnet])
        assert (99, 100) in negatives
        assert (100, 101) in negatives
        assert all(a < b for a, b in negatives)

    def test_negatives_never_intersect_truth(self):
        engine, topo = chain(4)
        tool = TraceNET(engine, "v")
        tool.trace(address_on(topo, "R4", "R3"))
        negatives = negative_pairs(tool.collected_subnets)
        truth = ground_truth_pairs(topo)
        assert not (negatives & truth)


class TestAllyResolver:
    def test_same_router_interfaces_are_aliases(self):
        engine, topo = chain(4)
        resolver = AllyResolver(Prober(engine, "v"))
        a = address_on(topo, "R2", "R1")
        b = address_on(topo, "R2", "R3")
        result = resolver.are_aliases(a, b)
        assert result.verdict == AliasVerdict.ALIASES

    def test_different_routers_not_aliases(self):
        engine, topo = chain(4)
        resolver = AllyResolver(Prober(engine, "v"))
        a = address_on(topo, "R2", "R1")
        b = address_on(topo, "R3", "R4")
        result = resolver.are_aliases(a, b)
        assert result.verdict == AliasVerdict.NOT_ALIASES

    def test_randomized_ids_inconclusive(self):
        engine, topo = chain(4)
        topo.routers["R2"].ip_id_mode = IpIdMode.RANDOM
        resolver = AllyResolver(Prober(engine, "v"))
        a = address_on(topo, "R2", "R1")
        b = address_on(topo, "R2", "R3")
        result = resolver.are_aliases(a, b)
        assert result.verdict == AliasVerdict.UNKNOWN
        assert "random" in result.reason

    def test_unresponsive_address_unknown(self):
        engine, topo = chain(3)
        resolver = AllyResolver(Prober(engine, "v"))
        result = resolver.are_aliases(address_on(topo, "R2", "R1"),
                                      0x01010101)
        assert result.verdict == AliasVerdict.UNKNOWN
        assert result.ids.count(None) >= 1

    def test_verify_pairs_counts_tests(self):
        engine, topo = chain(4)
        resolver = AllyResolver(Prober(engine, "v"))
        pairs = [(address_on(topo, "R2", "R1"), address_on(topo, "R2", "R3"))]
        results = resolver.verify_pairs(pairs)
        assert len(results) == 1
        assert resolver.tests_run == 1


class TestEvaluation:
    def test_ground_truth_pairs_restricted(self):
        engine, topo = chain(3)
        a = address_on(topo, "R2", "R1")
        b = address_on(topo, "R2", "R3")
        truth = ground_truth_pairs(topo, restrict_to=[a, b])
        assert truth == {(min(a, b), max(a, b))}

    def test_score_pairs(self):
        truth = {(1, 2), (3, 4)}
        accuracy = score_pairs([(2, 1), (5, 6)], truth)
        assert accuracy.true_positives == 1
        assert accuracy.false_positives == 1
        assert accuracy.precision == 0.5
        assert accuracy.recall == 0.5

    def test_score_empty_inferred(self):
        accuracy = score_pairs([], {(1, 2)})
        assert accuracy.precision == 1.0
        assert accuracy.recall == 0.0

    def test_pairs_from_sets(self):
        pairs = pairs_from_sets([{1, 2, 3}])
        assert set(pairs) == {(1, 2), (1, 3), (2, 3)}

    def test_describe(self):
        accuracy = score_pairs([(1, 2)], {(1, 2)})
        assert "precision 100.0%" in accuracy.describe()


class TestEndToEndAliasPipeline:
    def test_internet2_pipeline_precision(self):
        from repro.topogen import internet2
        network = internet2.build(seed=21)
        engine = Engine(network.topology, policy=network.policy)
        tool = TraceNET(engine, "utdallas")
        tool.trace_many(internet2.targets(network, seed=21)[:80])

        pairs = pair_keys(analytical_pairs(tool.collected_subnets))
        truth = ground_truth_pairs(network.topology)
        accuracy = score_pairs(pairs, truth)
        assert accuracy.precision >= 0.9

        resolver = AllyResolver(Prober(engine, "utdallas"))
        confirmed = [
            (r.first, r.second)
            for r in resolver.verify_pairs(sorted(pairs))
            if r.verdict == AliasVerdict.ALIASES
        ]
        filtered = score_pairs(confirmed, truth)
        assert filtered.precision >= accuracy.precision
        assert filtered.true_positives > 0
