"""Unit tests for response policies: firewalls, silence, bias, rate limits."""

from repro.netsim.builder import TopologyBuilder
from repro.netsim.packet import Protocol
from repro.netsim.responsiveness import ResponsePolicy, TokenBucket, fully_responsive


class TestTokenBucket:
    def test_starts_full(self):
        bucket = TokenBucket(capacity=2, refill_per_tick=0)
        assert bucket.try_consume(0)
        assert bucket.try_consume(0)
        assert not bucket.try_consume(0)

    def test_refills_over_time(self):
        bucket = TokenBucket(capacity=1, refill_per_tick=0.5)
        assert bucket.try_consume(0)
        assert not bucket.try_consume(1)   # only 0.5 tokens back
        assert bucket.try_consume(3)       # refilled past 1.0

    def test_never_exceeds_capacity(self):
        bucket = TokenBucket(capacity=2, refill_per_tick=1)
        bucket.try_consume(0)
        bucket.try_consume(0)
        assert bucket.try_consume(100)
        assert bucket.try_consume(100)
        assert not bucket.try_consume(100)


class TestResponsePolicy:
    def test_default_everything_responds(self):
        policy = fully_responsive()
        assert policy.router_responds("R1", Protocol.ICMP, now=1)
        assert not policy.subnet_is_firewalled("s1")
        assert not policy.interface_is_silent(42)

    def test_firewall_subnet(self):
        policy = ResponsePolicy().firewall_subnet("s1")
        assert policy.subnet_is_firewalled("s1")
        assert "s1" in policy.firewalled_subnet_ids

    def test_firewall_subnets_bulk(self):
        policy = ResponsePolicy().firewall_subnets(["a", "b"])
        assert policy.subnet_is_firewalled("a")
        assert policy.subnet_is_firewalled("b")

    def test_silence_interface(self):
        policy = ResponsePolicy().silence_interface(42)
        assert policy.interface_is_silent(42)
        assert 42 in policy.silent_interface_addresses

    def test_silence_interfaces_bulk(self):
        policy = ResponsePolicy().silence_interfaces([1, 2])
        assert policy.interface_is_silent(1)
        assert policy.interface_is_silent(2)

    def test_silence_router(self):
        policy = ResponsePolicy().silence_router("R1")
        assert not policy.router_responds("R1", Protocol.ICMP, now=1)
        assert policy.router_responds("R2", Protocol.ICMP, now=1)

    def test_refuse_protocol(self):
        policy = ResponsePolicy().refuse_protocol("R1", Protocol.UDP)
        assert policy.router_responds("R1", Protocol.ICMP, now=1)
        assert not policy.router_responds("R1", Protocol.UDP, now=1)

    def test_rate_limit(self):
        policy = ResponsePolicy().rate_limit_router("R1", capacity=2,
                                                    refill_per_tick=0)
        assert policy.router_responds("R1", Protocol.ICMP, now=1)
        assert policy.router_responds("R1", Protocol.ICMP, now=1)
        assert not policy.router_responds("R1", Protocol.ICMP, now=1)

    def test_rate_limit_recovers(self):
        policy = ResponsePolicy().rate_limit_router("R1", capacity=1,
                                                    refill_per_tick=0.5)
        assert policy.router_responds("R1", Protocol.ICMP, now=0)
        assert not policy.router_responds("R1", Protocol.ICMP, now=1)
        assert policy.router_responds("R1", Protocol.ICMP, now=5)

    def test_sample_protocol_bias_rates(self):
        builder = TopologyBuilder()
        previous = None
        for i in range(200):
            name = f"R{i}"
            if previous is not None:
                builder.link(previous, name)
            previous = name
        topology = builder.topology
        policy = ResponsePolicy(seed=3).sample_protocol_bias(
            topology, {Protocol.ICMP: 0.95, Protocol.UDP: 0.5,
                       Protocol.TCP: 0.05})
        counts = {p: 0 for p in Protocol}
        for router_id in topology.routers:
            for protocol in Protocol:
                if policy.router_responds(router_id, protocol, now=1):
                    counts[protocol] += 1
        assert counts[Protocol.ICMP] > counts[Protocol.UDP] > counts[Protocol.TCP]

    def test_sample_protocol_bias_nested(self):
        """A router answering TCP must also answer UDP and ICMP when the
        configured rates are ordered."""
        builder = TopologyBuilder()
        previous = None
        for i in range(100):
            name = f"R{i}"
            if previous is not None:
                builder.link(previous, name)
            previous = name
        topology = builder.topology
        policy = ResponsePolicy(seed=9).sample_protocol_bias(
            topology, {Protocol.ICMP: 0.9, Protocol.UDP: 0.5,
                       Protocol.TCP: 0.1})
        for router_id in topology.routers:
            if policy.router_responds(router_id, Protocol.TCP, now=1):
                assert policy.router_responds(router_id, Protocol.UDP, now=1)
                assert policy.router_responds(router_id, Protocol.ICMP, now=1)

    def test_describe_counts(self):
        policy = (ResponsePolicy().firewall_subnet("s")
                  .silence_interface(1).silence_router("R"))
        text = policy.describe()
        assert "firewalled_subnets=1" in text
        assert "silent_interfaces=1" in text
        assert "silent_routers=1" in text

    def test_seeded_determinism(self):
        builder = TopologyBuilder()
        builder.link("A", "B")
        builder.link("B", "C")
        topo = builder.topology
        rates = {Protocol.UDP: 0.5}
        a = ResponsePolicy(seed=4).sample_protocol_bias(topo, rates)
        b = ResponsePolicy(seed=4).sample_protocol_bias(topo, rates)
        for router_id in topo.routers:
            assert (a.router_responds(router_id, Protocol.UDP, 1)
                    == b.router_responds(router_id, Protocol.UDP, 1))
