"""Unit tests for the H2-H8 heuristics pipeline on Figure 3-style scenes."""

import pytest

from conftest import address_on
from repro.core.heuristics import (
    ExplorationState,
    Verdict,
    evaluate_candidate,
    heuristic_h2,
    heuristic_h5,
)
from repro.core.positioning import position_subnet
from repro.netsim import Engine, TopologyBuilder
from repro.netsim.addressing import mate30, mate31
from repro.probing import Prober


@pytest.fixture
def scene():
    """vantage - R1 - R2(ingress) - LAN/28 {R2,R3,R4,R6} with fringes.

    R7 hangs off R2 (close fringe), R5 hangs off R4 (far fringe).
    """
    builder = TopologyBuilder("scene")
    builder.link("R1", "R2")
    lan = builder.lan(["R2", "R3", "R4", "R6"], length=28)
    close = builder.link("R2", "R7")
    far = builder.link("R4", "R5")
    builder.edge_host("v", "R1")
    topo = builder.build()
    engine = Engine(topo)
    prober = Prober(engine, "v")
    pivot = topo.routers["R4"].interface_on(lan.subnet_id).address
    u = address_on(topo, "R2", "R1")
    position = position_subnet(prober, u, pivot, 3)
    state = ExplorationState(
        prober=prober,
        pivot=position.pivot,
        pivot_distance=position.pivot_distance,
        ingress=position.ingress,
        trace_entry=u,
        on_trace_path=position.on_trace_path,
    )
    return {
        "topo": topo, "engine": engine, "prober": prober, "state": state,
        "lan": lan, "close": close, "far": far,
    }


class TestH2:
    def test_member_at_pivot_distance_passes(self, scene):
        member = scene["topo"].routers["R3"].interface_on(
            scene["lan"].subnet_id).address
        assert heuristic_h2(scene["state"], member) is None

    def test_silent_address_skipped(self, scene):
        unassigned = scene["lan"].prefix.broadcast - 1
        assert scene["topo"].interface_at(unassigned) is None
        judgement = heuristic_h2(scene["state"], unassigned)
        assert judgement.verdict == Verdict.SKIP

    def test_farther_address_stops(self, scene):
        # R5's interface on the far stub is one hop beyond the LAN.
        farther = address_on(scene["topo"], "R5", "R4")
        judgement = heuristic_h2(scene["state"], farther)
        assert judgement.verdict == Verdict.STOP
        assert judgement.rule == "H2"


class TestH5:
    def test_mate31_of_pivot_added(self, scene):
        state = scene["state"]
        judgement = heuristic_h5(state, mate31(state.pivot))
        assert judgement is not None
        assert judgement.verdict == Verdict.ADD
        assert judgement.rule == "H5"

    def test_unrelated_address_not_claimed(self, scene):
        state = scene["state"]
        other = scene["topo"].routers["R6"].interface_on(
            scene["lan"].subnet_id).address
        if other in (mate31(state.pivot), mate30(state.pivot)):
            pytest.skip("address happens to be the pivot's mate")
        assert heuristic_h5(state, other) is None


class TestPipeline:
    def test_genuine_members_admitted(self, scene):
        state = scene["state"]
        for router_id in ("R3", "R6"):
            member = scene["topo"].routers[router_id].interface_on(
                scene["lan"].subnet_id).address
            judgement = evaluate_candidate(state, member)
            assert judgement.verdict in (Verdict.ADD, Verdict.ADD_CONTRA), (
                router_id, judgement)

    def test_contra_pivot_detected(self, scene):
        state = scene["state"]
        contra = scene["topo"].routers["R2"].interface_on(
            scene["lan"].subnet_id).address
        judgement = evaluate_candidate(state, contra)
        assert judgement.verdict == Verdict.ADD_CONTRA

    def test_second_contra_pivot_stops(self, scene):
        state = scene["state"]
        contra = scene["topo"].routers["R2"].interface_on(
            scene["lan"].subnet_id).address
        state.contra_pivot = contra
        # The ingress router's *other* interfaces answer at jh-1 too.
        ingress_fringe = address_on(scene["topo"], "R2", "R1")
        judgement = evaluate_candidate(state, ingress_fringe)
        assert judgement.verdict == Verdict.STOP
        assert judgement.rule in ("H3", "H6", "H8")

    def test_far_fringe_stopped(self, scene):
        state = scene["state"]
        far_fringe = address_on(scene["topo"], "R4", "R5")
        # R4's interface on the far stub: alive at jh, enters via the
        # ingress, but its mate (R5's side) is one hop past the LAN.
        judgement = evaluate_candidate(state, far_fringe)
        assert judgement.verdict == Verdict.STOP
        assert judgement.rule == "H7"

    def test_close_fringe_stopped(self, scene):
        state = scene["state"]
        # Seed the contra-pivot first, as exploration would have.
        contra = scene["topo"].routers["R2"].interface_on(
            scene["lan"].subnet_id).address
        state.contra_pivot = contra
        close_fringe = address_on(scene["topo"], "R7", "R2")
        judgement = evaluate_candidate(state, close_fringe)
        assert judgement.verdict == Verdict.STOP
        assert judgement.rule in ("H7", "H8")

    def test_candidate_beyond_subnet_stops_via_h2(self, scene):
        state = scene["state"]
        beyond = address_on(scene["topo"], "R5", "R4")
        judgement = evaluate_candidate(state, beyond)
        assert judgement.verdict == Verdict.STOP
        assert judgement.rule == "H2"

    def test_silent_candidate_skipped(self, scene):
        state = scene["state"]
        judgement = evaluate_candidate(state, scene["lan"].prefix.broadcast - 1)
        assert judgement.verdict == Verdict.SKIP


class TestH6ForeignEntry:
    def test_equidistant_foreign_subnet_stopped(self):
        """An address at the pivot's distance but behind a different
        ingress router must be rejected by H6."""
        builder = TopologyBuilder("h6")
        builder.link("R1", "R2")
        builder.link("R1", "R9")            # second branch
        lan = builder.lan(["R2", "R3"], length=29)
        foreign = builder.lan(["R9", "R8"], length=29)
        builder.edge_host("v", "R1")
        topo = builder.build()
        engine = Engine(topo)
        prober = Prober(engine, "v")
        pivot = topo.routers["R3"].interface_on(lan.subnet_id).address
        u = address_on(topo, "R2", "R1")
        position = position_subnet(prober, u, pivot, 3)
        state = ExplorationState(
            prober=prober, pivot=position.pivot,
            pivot_distance=position.pivot_distance,
            ingress=position.ingress, trace_entry=u,
            on_trace_path=position.on_trace_path,
        )
        # R8's interface on the foreign LAN is also at distance 3 but its
        # probes enter through R9, not R2.
        foreign_member = topo.routers["R8"].interface_on(
            foreign.subnet_id).address
        judgement = evaluate_candidate(state, foreign_member)
        assert judgement.verdict == Verdict.STOP
        assert judgement.rule in ("H6", "H7", "H8")


class TestEntryAddresses:
    def test_trace_entry_excluded_when_off_path(self):
        state = ExplorationState(prober=None, pivot=1, pivot_distance=3,
                                 ingress=100, trace_entry=200,
                                 on_trace_path=False)
        assert state.entry_addresses == {100}

    def test_trace_entry_included_when_unknown(self):
        state = ExplorationState(prober=None, pivot=1, pivot_distance=3,
                                 ingress=100, trace_entry=200,
                                 on_trace_path=None)
        assert state.entry_addresses == {100, 200}

    def test_empty_when_anonymous(self):
        state = ExplorationState(prober=None, pivot=1, pivot_distance=3)
        assert state.entry_addresses == set()
