"""Unit tests for the similarity metrics (equations 1-5)."""

import pytest

from repro.evaluation.matching import match_subnets
from repro.evaluation.similarity import (
    PrefixBounds,
    minkowski_distance,
    prefix_bounds,
    prefix_distance_factor,
    prefix_similarity,
    similarity_summary,
    size_distance_factor,
    size_similarity,
)
from repro.netsim import Prefix


def P(text):
    return Prefix.parse(text)


class TestBounds:
    def test_bounds_over_both_topologies(self):
        report = match_subnets([P("10.0.0.0/30"), P("10.0.0.16/28")],
                               [P("10.0.0.0/31")])
        bounds = prefix_bounds(report)
        assert bounds.upper == 31
        assert bounds.lower == 28

    def test_bounds_include_extras(self):
        report = match_subnets([P("10.0.0.0/30")], [P("10.1.0.0/24")])
        bounds = prefix_bounds(report)
        assert bounds.lower == 24


class TestPrefixDistance:
    def test_exact_is_zero(self):
        report = match_subnets([P("10.0.0.0/30")], [P("10.0.0.0/30")])
        bounds = PrefixBounds(upper=31, lower=24)
        assert prefix_distance_factor(report.outcomes[0], bounds) == 0

    def test_under_is_difference(self):
        report = match_subnets([P("10.0.0.0/28")], [P("10.0.0.0/30")])
        bounds = PrefixBounds(upper=31, lower=24)
        assert prefix_distance_factor(report.outcomes[0], bounds) == 2

    def test_miss_is_max_to_bounds(self):
        report = match_subnets([P("10.0.0.0/30")], [])
        bounds = PrefixBounds(upper=31, lower=24)
        assert prefix_distance_factor(report.outcomes[0], bounds) == 6

    def test_split_uses_numerically_largest_piece(self):
        report = match_subnets([P("10.0.0.0/28")],
                               [P("10.0.0.0/30"), P("10.0.0.8/31")])
        bounds = PrefixBounds(upper=31, lower=24)
        # Equation (1): |s_o - max{s_c}| = |28 - 31| = 3
        assert prefix_distance_factor(report.outcomes[0], bounds) == 3


class TestSizeDistance:
    def test_exact_is_zero(self):
        report = match_subnets([P("10.0.0.0/30")], [P("10.0.0.0/30")])
        bounds = PrefixBounds(upper=31, lower=24)
        assert size_distance_factor(report.outcomes[0], bounds) == 0

    def test_under_size_difference(self):
        report = match_subnets([P("10.0.0.0/28")], [P("10.0.0.0/30")])
        bounds = PrefixBounds(upper=31, lower=24)
        assert size_distance_factor(report.outcomes[0], bounds) == 16 - 4

    def test_split_uses_largest_piece_by_size(self):
        report = match_subnets([P("10.0.0.0/28")],
                               [P("10.0.0.0/30"), P("10.0.0.8/31")])
        bounds = PrefixBounds(upper=31, lower=24)
        # Equation (4): |2^(32-28) - max{2^(32-s_c)}| = |16 - 4| = 12
        assert size_distance_factor(report.outcomes[0], bounds) == 12

    def test_miss_favors_dissimilarity(self):
        report = match_subnets([P("10.0.0.0/28")], [])
        bounds = PrefixBounds(upper=31, lower=24)
        assert size_distance_factor(report.outcomes[0], bounds) == 256 - 16


class TestMinkowski:
    def test_order_one_is_sum(self):
        assert minkowski_distance([1, 2, 3], order=1) == 6

    def test_order_two(self):
        assert minkowski_distance([3, 4], order=2) == pytest.approx(5.0)

    def test_rejects_bad_order(self):
        with pytest.raises(ValueError):
            minkowski_distance([1], order=0)


class TestSimilarities:
    def test_perfect_collection_is_one(self):
        originals = [P("10.0.0.0/30"), P("10.0.0.16/28")]
        report = match_subnets(originals, originals)
        assert prefix_similarity(report) == 1.0
        assert size_similarity(report) == 1.0

    def test_everything_missing_is_near_zero(self):
        report = match_subnets([P("10.0.0.0/30"), P("10.0.0.16/28")], [])
        assert prefix_similarity(report) <= 0.05
        assert size_similarity(report) <= 0.05

    def test_similarity_in_unit_interval(self):
        report = match_subnets(
            [P("10.0.0.0/28"), P("10.0.1.0/29"), P("10.0.2.0/30")],
            [P("10.0.0.0/30"), P("10.0.2.0/30")],
        )
        for value in similarity_summary(report):
            assert 0.0 <= value <= 1.0

    def test_empty_report(self):
        report = match_subnets([], [])
        assert prefix_similarity(report) == 1.0
        assert similarity_summary(report) == (1.0, 1.0)

    def test_exclude_unresponsive_improves(self):
        from repro.evaluation.matching import annotate_unresponsive
        from repro.topogen.spec import SubnetRecord
        report = match_subnets(
            [P("10.0.0.0/30"), P("10.0.0.16/28")],
            [P("10.0.0.0/30")],
        )
        annotate_unresponsive(report, [SubnetRecord(
            subnet_id="x", prefix=P("10.0.0.16/28"), kind="lan",
            firewalled=True)])
        incl = similarity_summary(report)
        excl = similarity_summary(report, exclude_unresponsive=True)
        assert excl[0] > incl[0]
        assert excl == (1.0, 1.0)

    def test_underestimates_score_higher_than_misses(self):
        base = [P("10.0.0.16/28")]
        under = match_subnets(base, [P("10.0.0.16/29")])
        miss = match_subnets(base, [])
        # Use fixed bounds so the two reports are comparable.
        bounds = PrefixBounds(upper=31, lower=24)
        assert (prefix_similarity(under, bounds)
                > prefix_similarity(miss, bounds))
