"""Unit tests for subnet positioning (Algorithm 2)."""

from conftest import address_on
from repro.core.positioning import position_subnet
from repro.netsim import Engine, TopologyBuilder
from repro.netsim.addressing import mate31
from repro.netsim.router import IndirectConfig
from repro.probing import Prober


def chain(n=5):
    builder = TopologyBuilder("chain")
    for i in range(1, n):
        builder.link(f"R{i}", f"R{i+1}")
    builder.edge_host("v", "R1")
    topo = builder.build()
    return Engine(topo), topo


class TestOnPath:
    def test_incoming_interface_pivot_is_v(self):
        engine, topo = chain()
        prober = Prober(engine, "v")
        u = address_on(topo, "R2", "R1")   # hop 2 report
        v = address_on(topo, "R3", "R2")   # hop 3 report
        position = position_subnet(prober, u, v, 3)
        assert position is not None
        assert position.pivot == v
        assert position.pivot_distance == 3
        assert position.on_trace_path is True

    def test_ingress_is_previous_hop(self):
        engine, topo = chain()
        prober = Prober(engine, "v")
        u = address_on(topo, "R2", "R1")
        v = address_on(topo, "R3", "R2")
        position = position_subnet(prober, u, v, 3)
        assert position.ingress == u
        assert position.trace_entry == u
        assert position.entry_addresses == {u}

    def test_first_hop_trivially_on_path(self):
        engine, topo = chain()
        prober = Prober(engine, "v")
        # Hop 1 reports R1's interface on the vantage stub.
        host = topo.hosts["v"]
        v = topo.routers["R1"].interface_on(host.subnet_id).address
        position = position_subnet(prober, None, v, 1)
        assert position is not None
        assert position.on_trace_path is True
        # The stub's far side (the vantage host itself) is the pivot: it
        # sits one hop beyond the gateway interface.
        from repro.netsim.addressing import mate30
        assert position.pivot in (v, mate31(v), mate30(v))

    def test_anonymous_previous_hop_gives_unknown_path(self):
        engine, topo = chain()
        prober = Prober(engine, "v")
        v = address_on(topo, "R3", "R2")
        position = position_subnet(prober, None, v, 3)
        assert position is not None
        assert position.on_trace_path is None


class TestMatePivot:
    def _default_reporting_southern_interface(self):
        """R3 reports its interface on a stub link whose far side (R5) is
        one hop beyond — the Figure 4 'R3 returns R3.s' scene."""
        builder = TopologyBuilder("fig4")
        builder.link("R1", "R2")
        builder.link("R2", "R3")
        builder.link("R3", "R4")
        south = builder.link("R3", "R5", length=31)
        builder.edge_host("v", "R1")
        topo = builder.build()
        r3_south = topo.routers["R3"].interface_on(south.subnet_id).address
        topo.routers["R3"].indirect_config = IndirectConfig.DEFAULT
        topo.routers["R3"].default_address = r3_south
        return Engine(topo), topo, south, r3_south

    def test_pivot_is_mate31_of_reported_interface(self):
        engine, topo, south, r3_south = self._default_reporting_southern_interface()
        prober = Prober(engine, "v")
        u = address_on(topo, "R2", "R1")
        position = position_subnet(prober, u, r3_south, 3)
        assert position is not None
        assert position.pivot == mate31(r3_south)
        assert position.pivot_distance == 4

    def test_ingress_of_mate_pivot_is_reporting_router(self):
        engine, topo, south, r3_south = self._default_reporting_southern_interface()
        prober = Prober(engine, "v")
        u = address_on(topo, "R2", "R1")
        position = position_subnet(prober, u, r3_south, 3)
        # A probe to the pivot expiring one hop short lands on R3, which
        # reports its default (southern) address.
        assert position.ingress == r3_south


class TestOffPath:
    def test_distance_mismatch_marks_off_path(self):
        builder = TopologyBuilder("triangle")
        builder.link("R1", "R2")
        side = builder.link("R2", "R3")
        builder.link("R1", "R3")
        builder.link("R3", "R4")
        builder.edge_host("v", "R1")
        topo = builder.build()
        engine = Engine(topo)
        r3_side = topo.routers["R3"].interface_on(side.subnet_id).address
        # Ground truth: that interface is 3 hops away (via R2)...
        assert engine.hop_distance("v", r3_side) == 3
        prober = Prober(engine, "v")
        # ...but R3 surfaced at hop 2 on the trace (via the direct link).
        position = position_subnet(prober, None, r3_side, 2)
        assert position is not None
        assert position.on_trace_path is False

    def test_foreign_entry_marks_off_path(self):
        builder = TopologyBuilder("split-entry")
        builder.link("R1", "R2")
        builder.link("R1", "R4")
        builder.link("R2", "R3")
        back = builder.link("R4", "R3")
        builder.link("R3", "R6")
        builder.edge_host("v", "R1")
        topo = builder.build()
        r3_back = topo.routers["R3"].interface_on(back.subnet_id).address
        topo.routers["R3"].indirect_config = IndirectConfig.DEFAULT
        topo.routers["R3"].default_address = r3_back
        engine = Engine(topo)
        prober = Prober(engine, "v")
        u = address_on(topo, "R2", "R1")
        # The trace ran via R2 (u), but probes to R3's back interface enter
        # via R4 — a foreign entry point.
        position = position_subnet(prober, u, r3_back, 3)
        assert position is not None
        assert position.on_trace_path is False


class TestUnpositionable:
    def test_silent_address_returns_none(self):
        engine, topo = chain()
        prober = Prober(engine, "v")
        assert position_subnet(prober, None, 0x01010101, 3) is None
