"""Unit tests for the engine's resolved-path fast path.

The contract: a path-cached engine is packet-for-packet identical to a
walk-only engine — same responses, same IP-IDs, same rate-limit bucket
drains, same record-route stamps — while answering repeat probes of a
memoized flow without re-walking the topology.  Flows crossing a per-packet
load balancer are never memoized.
"""


from conftest import address_on
from repro.netsim import (
    DEFAULT_TTL,
    Engine,
    LoadBalancer,
    LoadBalancingMode,
    Probe,
    Protocol,
    ResponsePolicy,
    ResponseType,
    TopologyBuilder,
)


def chain(n=5, policy=None, **engine_kwargs):
    builder = TopologyBuilder("chain")
    for i in range(1, n):
        builder.link(f"R{i}", f"R{i+1}")
    builder.edge_host("v", "R1")
    topo = builder.build()
    return Engine(topo, policy=policy, **engine_kwargs), topo


def diamond(mode, seed=5, **engine_kwargs):
    """v - R1 - {R2 | R3} - R4 - R5: one ECMP split at R1."""
    builder = TopologyBuilder("diamond")
    builder.link("R1", "R2")
    builder.link("R1", "R3")
    builder.link("R2", "R4")
    builder.link("R3", "R4")
    builder.link("R4", "R5")
    builder.edge_host("v", "R1")
    topo = builder.build()
    balancer = LoadBalancer(default_mode=mode, seed=seed)
    return Engine(topo, balancer=balancer, **engine_kwargs), topo


def probe(topo, dst, ttl, flow_id=0, record_route=False,
          protocol=Protocol.ICMP):
    return Probe(src=topo.hosts["v"].address, dst=dst, ttl=ttl,
                 protocol=protocol, flow_id=flow_id,
                 record_route=record_route)


def signature(response):
    if response is None:
        return None
    return (response.kind, response.source, response.responder,
            response.ip_id, response.record_route)


class TestCounters:
    def test_first_probe_misses_then_hits(self):
        engine, topo = chain()
        dst = address_on(topo, "R5", "R4")
        engine.send(probe(topo, dst, 3))
        assert engine.stats.path_cache_misses == 1
        assert engine.stats.path_cache_hits == 0
        engine.send(probe(topo, dst, 5))
        engine.send(probe(topo, dst, 1))
        assert engine.stats.path_cache_hits == 2
        assert engine.stats.path_cache_misses == 1

    def test_flows_are_keyed_separately(self):
        engine, topo = chain()
        dst = address_on(topo, "R5", "R4")
        engine.send(probe(topo, dst, 3, flow_id=0))
        engine.send(probe(topo, dst, 3, flow_id=1))
        assert engine.stats.path_cache_misses == 2
        assert engine.stats.path_cache_hits == 0

    def test_clear_path_cache(self):
        engine, topo = chain()
        dst = address_on(topo, "R5", "R4")
        engine.send(probe(topo, dst, 3))
        engine.clear_path_cache()
        engine.send(probe(topo, dst, 3))
        assert engine.stats.path_cache_misses == 2

    def test_cache_disabled_never_counts(self):
        engine, topo = chain(path_cache=False)
        dst = address_on(topo, "R5", "R4")
        engine.send(probe(topo, dst, 3))
        engine.send(probe(topo, dst, 3))
        assert engine.stats.path_cache_misses == 0
        assert engine.stats.path_cache_hits == 0


class TestEquivalence:
    def sweep(self, make_engine, dsts, ttls=range(1, 9), flows=(0, 3),
              record_route=(False, True)):
        """Send the same probe sequence through a walk-only and a cached
        engine; every response (including IP-ID) must match."""
        slow, topo = make_engine(path_cache=False)
        fast, _ = make_engine(path_cache=True)
        for name in dsts:
            dst = address_on(topo, *name) if isinstance(name, tuple) else name
            for ttl in ttls:
                for flow in flows:
                    for rr in record_route:
                        a = slow.send(probe(topo, dst, ttl, flow, rr))
                        b = fast.send(probe(topo, dst, ttl, flow, rr))
                        assert signature(a) == signature(b), (
                            f"dst={dst} ttl={ttl} flow={flow} rr={rr}")
        assert fast.stats.path_cache_hits > 0
        return slow, fast

    def test_replay_matches_walk_on_chain(self):
        self.sweep(lambda **kw: chain(**kw),
                   [("R5", "R4"), ("R3", "R2"), ("R1", "R2"), 0x01010101])

    def test_replay_matches_walk_with_per_flow_balancing(self):
        self.sweep(lambda **kw: diamond(LoadBalancingMode.PER_FLOW, **kw),
                   [("R5", "R4"), ("R4", "R5")])

    def test_record_route_stamps_identical(self):
        slow, topo = chain(path_cache=False)
        fast, _ = chain(path_cache=True)
        dst = address_on(topo, "R5", "R4")
        for ttl in (2, 3, 5, 9):
            a = slow.send(probe(topo, dst, ttl, record_route=True))
            b = fast.send(probe(topo, dst, ttl, record_route=True))
            assert a.record_route == b.record_route
        assert fast.stats.path_cache_hits > 0

    def test_rate_limit_buckets_drain_identically(self):
        # Cached replay must draw from the same token bucket, in the same
        # cases, as the walk — including a NIL router that consumes a
        # token and then stays silent.
        def limited(**kw):
            policy = ResponsePolicy().rate_limit_router(
                "R2", capacity=2, refill_per_tick=0.3)
            return chain(policy=policy, **kw)

        slow, topo = limited(path_cache=False)
        fast, _ = limited(path_cache=True)
        dst = address_on(topo, "R5", "R4")
        pattern_slow = [signature(slow.send(probe(topo, dst, 2)))
                        for _ in range(8)]
        pattern_fast = [signature(fast.send(probe(topo, dst, 2)))
                        for _ in range(8)]
        assert pattern_slow == pattern_fast
        assert None in pattern_slow          # the bucket did drain
        assert fast.stats.path_cache_hits > 0


class TestUncacheable:
    def test_per_packet_flows_bypass_the_cache(self):
        engine, topo = diamond(LoadBalancingMode.PER_PACKET)
        dst = address_on(topo, "R5", "R4")
        for _ in range(4):
            engine.send(probe(topo, dst, 4))
        assert engine.stats.path_cache_misses == 1
        assert engine.stats.path_cache_uncacheable == 3
        assert engine.stats.path_cache_hits == 0

    def test_per_packet_distribution_preserved(self):
        # The cached engine must keep sampling both ECMP branches with the
        # same PRNG stream a walk-only engine uses.
        responders = set()
        engine, topo = diamond(LoadBalancingMode.PER_PACKET)
        dst = address_on(topo, "R5", "R4")
        for _ in range(24):
            response = engine.send(probe(topo, dst, 2))
            responders.add(response.responder)
        assert responders == {"R2", "R3"}

    def test_per_flow_flows_are_cached(self):
        engine, topo = diamond(LoadBalancingMode.PER_FLOW)
        dst = address_on(topo, "R5", "R4")
        engine.send(probe(topo, dst, 4))
        engine.send(probe(topo, dst, 4))
        assert engine.stats.path_cache_hits == 1
        assert engine.stats.path_cache_uncacheable == 0


class TestWireLog:
    def test_wire_log_engine_bypasses_cache(self):
        engine, topo = chain(keep_wire_log=True)
        dst = address_on(topo, "R5", "R4")
        engine.send(probe(topo, dst, 3))
        engine.send(probe(topo, dst, 3))
        assert engine.stats.path_cache_hits == 0
        assert engine.stats.path_cache_misses == 0
        # Both sends produced full per-hop event streams.
        ttl_events = [e for e in engine.wire_log if e.action == "ttl-exceeded"]
        assert len(ttl_events) == 2


class TestDefaultTTL:
    def test_direct_and_indirect_probes_share_one_flow(self):
        engine, topo = chain()
        dst = address_on(topo, "R2", "R1")
        engine.send(probe(topo, dst, DEFAULT_TTL))
        response = engine.send(probe(topo, dst, 2))
        assert engine.stats.path_cache_hits == 1
        assert response.kind == ResponseType.ECHO_REPLY
