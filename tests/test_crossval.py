"""Unit tests for multi-vantage cross-validation (Figures 6-9 machinery)."""

from repro.core.results import ObservedSubnet
from repro.evaluation.crossval import (
    VantageCollection,
    agreement_rates,
    ip_accounting,
    pairwise_overlap,
    prefix_length_histogram,
    subnets_per_group,
    venn_regions,
)
from repro.netsim import Prefix


def P(text):
    return Prefix.parse(text)


def observed(pivot, members, **kwargs):
    return ObservedSubnet(pivot=pivot, pivot_distance=3,
                          members=set(members), **kwargs)


class TestVantageCollection:
    def _collection(self):
        return VantageCollection(
            vantage="rice",
            subnets=[
                observed(2, {1, 2}),           # /31-ish pair
                observed(9, {9}),              # un-subnetized
                observed(21, {21, 22}),
            ],
            targets=[2, 9, 21],
        )

    def test_prefixes_exclude_singletons(self):
        assert len(self._collection().prefixes) == 2

    def test_subnetized_addresses(self):
        assert self._collection().subnetized_addresses == {1, 2, 21, 22}

    def test_unsubnetized_addresses(self):
        assert self._collection().unsubnetized_addresses == {9}

    def test_unsubnetized_excludes_placed_pivots(self):
        collection = VantageCollection(
            vantage="x",
            subnets=[observed(2, {1, 2}), observed(2, {2})],
        )
        assert collection.unsubnetized_addresses == set()


class TestVenn:
    def _sets(self):
        return {
            "rice": {P("10.0.0.0/30"), P("10.0.0.4/30"), P("10.0.0.8/30")},
            "umass": {P("10.0.0.0/30"), P("10.0.0.4/30")},
            "uoregon": {P("10.0.0.0/30"), P("10.0.0.12/30")},
        }

    def test_regions_partition_universe(self):
        regions = venn_regions(self._sets())
        assert sum(regions.values()) == 4

    def test_triple_region(self):
        regions = venn_regions(self._sets())
        assert regions[frozenset(["rice", "umass", "uoregon"])] == 1

    def test_exclusive_pair_region(self):
        regions = venn_regions(self._sets())
        assert regions[frozenset(["rice", "umass"])] == 1

    def test_unique_regions(self):
        regions = venn_regions(self._sets())
        assert regions[frozenset(["rice"])] == 1
        assert regions[frozenset(["uoregon"])] == 1

    def test_agreement_rates(self):
        rates = agreement_rates(self._sets())
        assert rates["rice"]["all"] == 1 / 3
        assert rates["rice"]["shared"] == 2 / 3
        assert rates["umass"]["all"] == 1 / 2
        assert rates["umass"]["shared"] == 1.0

    def test_agreement_rates_empty_set(self):
        sets = {"a": set(), "b": {P("10.0.0.0/30")}}
        rates = agreement_rates(sets)
        assert rates["a"] == {"all": 0.0, "shared": 0.0}

    def test_pairwise_overlap(self):
        overlap = pairwise_overlap(self._sets())
        assert overlap[frozenset(["rice", "umass"])] == 2
        assert overlap[frozenset(["rice", "uoregon"])] == 1


class TestAccounting:
    def test_ip_accounting_by_group(self):
        collection = VantageCollection(
            vantage="rice",
            subnets=[observed(2, {1, 2}), observed(100, {100})],
            targets=[2, 100, 7],
        )
        group_of = lambda a: "isp-a" if a < 50 else "isp-b"
        rows = ip_accounting(collection, group_of, ["isp-a", "isp-b"])
        by_group = {row.group: row for row in rows}
        assert by_group["isp-a"].targets == 2
        assert by_group["isp-a"].subnetized == 2
        assert by_group["isp-a"].unsubnetized == 0
        assert by_group["isp-b"].targets == 1
        assert by_group["isp-b"].unsubnetized == 1

    def test_subnets_per_group(self):
        collection = VantageCollection(
            vantage="x",
            subnets=[observed(2, {1, 2}), observed(101, {100, 101})],
        )
        group_of = lambda p: "low" if p.network < 50 else "high"
        counts = subnets_per_group(collection, group_of, ["low", "high"])
        assert counts == {"low": 1, "high": 1}

    def test_prefix_length_histogram(self):
        collection = VantageCollection(
            vantage="x",
            subnets=[observed(2, {1, 2}), observed(5, {5, 6}),
                     observed(9, {9, 10, 11, 12})],
        )
        histogram = prefix_length_histogram(collection, lengths=range(28, 32))
        assert sum(histogram.values()) == 3
        assert histogram[31] + histogram[30] >= 2
