"""Unit tests for topology/policy/scenario (de)serialization."""

import io
import json

import pytest

from repro.netsim import Engine, Probe, Protocol, ResponsePolicy, TopologyBuilder
from repro.netsim.router import IndirectConfig, IpIdMode
from repro.netsim.serialize import (
    load_scenario,
    load_topology,
    policy_from_dict,
    policy_to_dict,
    save_scenario,
    save_topology,
    topology_from_dict,
    topology_to_dict,
)
from repro.topogen import internet2


def sample_topology():
    builder = TopologyBuilder("sample")
    builder.link("R1", "R2")
    lan = builder.lan(["R2", "R3", "R4"], length=29)
    builder.edge_host("v", "R1")
    topo = builder.build()
    topo.routers["R3"].indirect_config = IndirectConfig.SHORTEST_PATH
    topo.routers["R4"].ip_id_mode = IpIdMode.RANDOM
    return topo, lan


class TestTopologyRoundtrip:
    def test_structure_preserved(self):
        topo, lan = sample_topology()
        rebuilt = topology_from_dict(topology_to_dict(topo))
        assert sorted(rebuilt.routers) == sorted(topo.routers)
        assert sorted(rebuilt.subnets) == sorted(topo.subnets)
        assert (sorted(rebuilt.all_interface_addresses)
                == sorted(topo.all_interface_addresses))
        assert sorted(rebuilt.hosts) == sorted(topo.hosts)
        rebuilt.validate()

    def test_router_configs_preserved(self):
        topo, _ = sample_topology()
        rebuilt = topology_from_dict(topology_to_dict(topo))
        assert rebuilt.routers["R3"].indirect_config == IndirectConfig.SHORTEST_PATH
        assert rebuilt.routers["R4"].ip_id_mode == IpIdMode.RANDOM

    def test_hosts_keep_gateways(self):
        topo, _ = sample_topology()
        rebuilt = topology_from_dict(topology_to_dict(topo))
        assert rebuilt.hosts["v"].gateway_router_id == "R1"

    def test_file_roundtrip(self, tmp_path):
        topo, _ = sample_topology()
        path = str(tmp_path / "topo.json")
        save_topology(path, topo)
        rebuilt = load_topology(path)
        assert rebuilt.summary() == topo.summary()

    def test_file_object_roundtrip(self):
        topo, _ = sample_topology()
        buffer = io.StringIO()
        save_topology(buffer, topo)
        buffer.seek(0)
        payload = json.load(buffer)
        rebuilt = topology_from_dict(payload)
        assert rebuilt.name == "sample"

    def test_bad_version_rejected(self):
        with pytest.raises(ValueError):
            topology_from_dict({"format_version": 999})

    def test_rebuilt_topology_probes_identically(self):
        """An engine over the reloaded topology answers exactly like the
        original (same responders, same sources)."""
        topo, lan = sample_topology()
        rebuilt = topology_from_dict(topology_to_dict(topo))
        host = topo.hosts["v"]
        original_engine = Engine(topo, seed=5)
        rebuilt_engine = Engine(rebuilt, seed=5)
        for address in sorted(lan.addresses):
            for ttl in (1, 2, 3, 64):
                a = original_engine.send(Probe(src=host.address, dst=address,
                                               ttl=ttl))
                b = rebuilt_engine.send(Probe(src=host.address, dst=address,
                                              ttl=ttl))
                assert (a is None) == (b is None)
                if a is not None:
                    assert a.kind == b.kind
                    assert a.source == b.source


class TestPolicyRoundtrip:
    def _policy(self):
        policy = ResponsePolicy(seed=4)
        policy.firewall_subnet("s1")
        policy.silence_interface(42)
        policy.silence_router("R9")
        policy.refuse_protocol("R2", Protocol.UDP)
        policy.rate_limit_router("R3", capacity=5, refill_per_tick=0.5)
        return policy

    def test_roundtrip_behaviour(self):
        original = self._policy()
        rebuilt = policy_from_dict(policy_to_dict(original))
        assert rebuilt.subnet_is_firewalled("s1")
        assert rebuilt.interface_is_silent(42)
        assert not rebuilt.router_responds("R9", Protocol.ICMP, now=1)
        assert not rebuilt.router_responds("R2", Protocol.UDP, now=1)
        assert rebuilt.router_responds("R2", Protocol.ICMP, now=1)
        # Rate limiter config restored (bucket starts full).
        for _ in range(5):
            assert rebuilt.router_responds("R3", Protocol.ICMP, now=1)
        assert not rebuilt.router_responds("R3", Protocol.ICMP, now=1)

    def test_bad_version_rejected(self):
        with pytest.raises(ValueError):
            policy_from_dict({"format_version": 0})


class TestScenario:
    def test_scenario_roundtrip(self, tmp_path):
        topo, lan = sample_topology()
        policy = ResponsePolicy().firewall_subnet(lan.subnet_id)
        path = str(tmp_path / "scenario.json")
        save_scenario(path, topo, policy)
        rebuilt_topo, rebuilt_policy = load_scenario(path)
        assert rebuilt_topo.summary() == topo.summary()
        assert rebuilt_policy.subnet_is_firewalled(lan.subnet_id)

    def test_generated_network_roundtrips(self, tmp_path):
        """A full Internet2 ground-truth network survives the format and
        produces the same survey result."""
        from repro.core import TraceNET
        network = internet2.build(seed=5)
        path = str(tmp_path / "internet2.json")
        save_scenario(path, network.topology, network.policy)
        topo, policy = load_scenario(path)

        targets = internet2.targets(network, seed=5)[:30]
        original_tool = TraceNET(
            Engine(network.topology, policy=network.policy), "utdallas")
        original_tool.trace_many(targets)
        rebuilt_tool = TraceNET(Engine(topo, policy=policy), "utdallas")
        rebuilt_tool.trace_many(targets)
        original_blocks = {s.prefix for s in original_tool.collected_subnets}
        rebuilt_blocks = {s.prefix for s in rebuilt_tool.collected_subnets}
        assert original_blocks == rebuilt_blocks
