"""Unit tests for trace-collection mode."""

from conftest import address_on
from repro.core.collection import HopKind, collect_hop
from repro.netsim import Engine, IndirectConfig, TopologyBuilder
from repro.probing import Prober


def chain(n=4):
    builder = TopologyBuilder("chain")
    for i in range(1, n):
        builder.link(f"R{i}", f"R{i+1}")
    builder.edge_host("v", "R1")
    topo = builder.build()
    return Engine(topo), topo


class TestCollectHop:
    def test_router_hop(self):
        engine, topo = chain()
        prober = Prober(engine, "v")
        dst = address_on(topo, "R4", "R3")
        observation = collect_hop(prober, dst, ttl=2)
        assert observation.kind == HopKind.ROUTER
        assert observation.address == address_on(topo, "R2", "R1")

    def test_destination_hop(self):
        engine, topo = chain()
        prober = Prober(engine, "v")
        dst = address_on(topo, "R4", "R3")
        observation = collect_hop(prober, dst, ttl=4)
        assert observation.kind == HopKind.DESTINATION
        assert observation.reached_destination
        assert observation.address == dst

    def test_anonymous_hop(self):
        engine, topo = chain()
        topo.routers["R2"].indirect_config = IndirectConfig.NIL
        prober = Prober(engine, "v")
        dst = address_on(topo, "R4", "R3")
        observation = collect_hop(prober, dst, ttl=2)
        assert observation.kind == HopKind.ANONYMOUS
        assert observation.is_anonymous
        assert observation.address is None

    def test_unreachable_destination_is_anonymous(self):
        engine, topo = chain()
        prober = Prober(engine, "v")
        observation = collect_hop(prober, 0x01010101, ttl=9)
        assert observation.kind == HopKind.ANONYMOUS

    def test_flow_id_passthrough(self):
        engine, topo = chain()
        prober = Prober(engine, "v")
        dst = address_on(topo, "R4", "R3")
        observation = collect_hop(prober, dst, ttl=2, flow_id=5)
        assert observation.kind == HopKind.ROUTER
        # A fresh flow id bypasses the cache, so a second identical call
        # sends another probe.
        sent_before = prober.stats.sent
        collect_hop(prober, dst, ttl=2, flow_id=6)
        assert prober.stats.sent > sent_before
