"""Unit tests for IPv4 addressing arithmetic."""

import pytest

from repro.netsim.addressing import (
    AddressError,
    Prefix,
    broadcast_of,
    common_prefix_length,
    enclosing_prefix,
    format_ip,
    ip,
    mask_for,
    mate30,
    mate31,
    network_of,
    parse_ip,
    same_prefix,
)


class TestParseFormat:
    def test_parse_simple(self):
        assert parse_ip("10.0.0.1") == (10 << 24) + 1

    def test_parse_zero(self):
        assert parse_ip("0.0.0.0") == 0

    def test_parse_max(self):
        assert parse_ip("255.255.255.255") == 2**32 - 1

    def test_format_roundtrip(self):
        for text in ("1.2.3.4", "192.168.10.250", "8.8.8.8"):
            assert format_ip(parse_ip(text)) == text

    def test_parse_rejects_three_octets(self):
        with pytest.raises(AddressError):
            parse_ip("10.0.1")

    def test_parse_rejects_large_octet(self):
        with pytest.raises(AddressError):
            parse_ip("10.0.0.256")

    def test_parse_rejects_garbage(self):
        with pytest.raises(AddressError):
            parse_ip("10.0.0.x")

    def test_format_rejects_negative(self):
        with pytest.raises(AddressError):
            format_ip(-1)

    def test_format_rejects_too_large(self):
        with pytest.raises(AddressError):
            format_ip(2**32)

    def test_ip_coerces_string(self):
        assert ip("10.0.0.1") == parse_ip("10.0.0.1")

    def test_ip_passes_int(self):
        assert ip(42) == 42

    def test_ip_rejects_float(self):
        with pytest.raises(AddressError):
            ip(1.5)

    def test_ip_rejects_out_of_range_int(self):
        with pytest.raises(AddressError):
            ip(2**32)


class TestMasks:
    def test_mask_32(self):
        assert mask_for(32) == 2**32 - 1

    def test_mask_0(self):
        assert mask_for(0) == 0

    def test_mask_24(self):
        assert mask_for(24) == parse_ip("255.255.255.0")

    def test_mask_30(self):
        assert mask_for(30) == parse_ip("255.255.255.252")

    def test_mask_rejects_invalid(self):
        with pytest.raises(AddressError):
            mask_for(33)

    def test_network_of(self):
        assert network_of(parse_ip("10.1.2.3"), 24) == parse_ip("10.1.2.0")

    def test_broadcast_of(self):
        assert broadcast_of(parse_ip("10.1.2.3"), 24) == parse_ip("10.1.2.255")

    def test_broadcast_of_slash0(self):
        assert broadcast_of(0, 0) == 2**32 - 1

    def test_same_prefix_true(self):
        assert same_prefix(parse_ip("10.0.0.1"), parse_ip("10.0.0.2"), 30)

    def test_same_prefix_false(self):
        assert not same_prefix(parse_ip("10.0.0.1"), parse_ip("10.0.0.5"), 30)


class TestMates:
    def test_mate31_flips_last_bit(self):
        assert mate31(parse_ip("10.0.0.0")) == parse_ip("10.0.0.1")
        assert mate31(parse_ip("10.0.0.1")) == parse_ip("10.0.0.0")

    def test_mate31_involution(self):
        addr = parse_ip("192.168.3.77")
        assert mate31(mate31(addr)) == addr

    def test_mate30_pairs_usable_hosts(self):
        # In 10.0.0.0/30 the hosts are .1 and .2 — mates of each other.
        assert mate30(parse_ip("10.0.0.1")) == parse_ip("10.0.0.2")
        assert mate30(parse_ip("10.0.0.2")) == parse_ip("10.0.0.1")

    def test_mate30_involution(self):
        addr = parse_ip("172.16.5.9")
        assert mate30(mate30(addr)) == addr

    def test_mates_differ(self):
        addr = parse_ip("10.1.1.1")
        assert mate30(addr) != mate31(addr)

    def test_mates_share_their_blocks(self):
        addr = parse_ip("10.9.8.7")
        assert same_prefix(addr, mate31(addr), 31)
        assert same_prefix(addr, mate30(addr), 30)


class TestCommonPrefixLength:
    def test_identical(self):
        assert common_prefix_length(5, 5) == 32

    def test_adjacent(self):
        assert common_prefix_length(parse_ip("10.0.0.0"), parse_ip("10.0.0.1")) == 31

    def test_disjoint_top_bit(self):
        assert common_prefix_length(0, 1 << 31) == 0

    def test_known_value(self):
        a = parse_ip("10.0.0.1")
        b = parse_ip("10.0.0.6")
        assert common_prefix_length(a, b) == 29


class TestPrefix:
    def test_parse(self):
        p = Prefix.parse("10.0.0.0/30")
        assert p.network == parse_ip("10.0.0.0")
        assert p.length == 30

    def test_parse_rejects_missing_slash(self):
        with pytest.raises(AddressError):
            Prefix.parse("10.0.0.0")

    def test_normalizes_host_bits(self):
        assert Prefix(parse_ip("10.0.0.3"), 30).network == parse_ip("10.0.0.0")

    def test_rejects_bad_length(self):
        with pytest.raises(AddressError):
            Prefix(0, 40)

    def test_containing(self):
        p = Prefix.containing(parse_ip("10.1.2.3"), 24)
        assert str(p) == "10.1.2.0/24"

    def test_size(self):
        assert Prefix.parse("0.0.0.0/24").size == 256
        assert Prefix.parse("0.0.0.0/31").size == 2
        assert Prefix.parse("0.0.0.0/32").size == 1

    def test_host_capacity_slash29(self):
        assert Prefix.parse("10.0.0.0/29").host_capacity == 6

    def test_host_capacity_slash31_rfc3021(self):
        assert Prefix.parse("10.0.0.0/31").host_capacity == 2

    def test_contains_address(self):
        p = Prefix.parse("10.0.0.0/29")
        assert parse_ip("10.0.0.7") in p
        assert parse_ip("10.0.0.8") not in p

    def test_contains_accepts_strings(self):
        assert "10.0.0.3" in Prefix.parse("10.0.0.0/30")

    def test_contains_prefix_nested(self):
        outer = Prefix.parse("10.0.0.0/24")
        inner = Prefix.parse("10.0.0.128/25")
        assert outer.contains_prefix(inner)
        assert not inner.contains_prefix(outer)

    def test_contains_prefix_self(self):
        p = Prefix.parse("10.0.0.0/24")
        assert p.contains_prefix(p)

    def test_overlaps_disjoint(self):
        a = Prefix.parse("10.0.0.0/30")
        b = Prefix.parse("10.0.0.4/30")
        assert not a.overlaps(b)

    def test_overlaps_nested_symmetric(self):
        outer = Prefix.parse("10.0.0.0/24")
        inner = Prefix.parse("10.0.0.0/30")
        assert outer.overlaps(inner)
        assert inner.overlaps(outer)

    def test_addresses_order_and_count(self):
        p = Prefix.parse("10.0.0.4/30")
        addrs = list(p.addresses())
        assert addrs == [parse_ip("10.0.0.4") + i for i in range(4)]

    def test_host_addresses_excludes_boundaries(self):
        p = Prefix.parse("10.0.0.0/29")
        hosts = list(p.host_addresses())
        assert len(hosts) == 6
        assert p.network not in hosts
        assert p.broadcast not in hosts

    def test_host_addresses_slash31_includes_all(self):
        p = Prefix.parse("10.0.0.0/31")
        assert len(list(p.host_addresses())) == 2

    def test_boundary_addresses(self):
        p = Prefix.parse("10.0.0.0/30")
        assert p.boundary_addresses() == [p.network, p.broadcast]

    def test_boundary_addresses_slash31_empty(self):
        assert Prefix.parse("10.0.0.0/31").boundary_addresses() == []

    def test_parent(self):
        p = Prefix.parse("10.0.0.4/30")
        assert str(p.parent()) == "10.0.0.0/29"

    def test_parent_of_slash0_fails(self):
        with pytest.raises(AddressError):
            Prefix.parse("0.0.0.0/0").parent()

    def test_halves(self):
        lo, hi = Prefix.parse("10.0.0.0/29").halves()
        assert str(lo) == "10.0.0.0/30"
        assert str(hi) == "10.0.0.4/30"

    def test_halves_of_slash32_fails(self):
        with pytest.raises(AddressError):
            Prefix.parse("10.0.0.0/32").halves()

    def test_ordering_and_hash(self):
        a = Prefix.parse("10.0.0.0/30")
        b = Prefix.parse("10.0.0.0/30")
        c = Prefix.parse("10.0.0.4/30")
        assert a == b
        assert hash(a) == hash(b)
        assert a < c

    def test_str(self):
        assert str(Prefix.parse("192.168.1.0/24")) == "192.168.1.0/24"


class TestEnclosingPrefix:
    def test_empty(self):
        assert enclosing_prefix([]) is None

    def test_single_address(self):
        p = enclosing_prefix([parse_ip("10.0.0.5")])
        assert str(p) == "10.0.0.5/32"

    def test_pair_in_slash31(self):
        p = enclosing_prefix([parse_ip("10.0.0.0"), parse_ip("10.0.0.1")])
        assert str(p) == "10.0.0.0/31"

    def test_hosts_of_slash30(self):
        p = enclosing_prefix([parse_ip("10.0.0.1"), parse_ip("10.0.0.2")])
        assert str(p) == "10.0.0.0/30"

    def test_spanning_slash29(self):
        addrs = [parse_ip("10.0.0.1"), parse_ip("10.0.0.6")]
        assert str(enclosing_prefix(addrs)) == "10.0.0.0/29"

    def test_covers_all_members(self):
        addrs = [parse_ip("10.0.0.9"), parse_ip("10.0.0.14"), parse_ip("10.0.0.11")]
        block = enclosing_prefix(addrs)
        assert all(a in block for a in addrs)

    def test_max_length_cap(self):
        p = enclosing_prefix([parse_ip("10.0.0.5")], max_length=30)
        assert p.length == 30
