"""Tests for the heuristic pipeline's hardening branches and edge cases:
the H5 contra-pivot detection, H8's tentative-contra designation, and
behaviour under alternative router response configurations."""

import pytest

from conftest import address_on
from repro.core import TraceNET
from repro.core.exploration import explore_subnet
from repro.core.heuristics import (
    ExplorationState,
    Verdict,
    _passes_h4,
    heuristic_h5,
)
from repro.core.positioning import position_subnet
from repro.netsim import Engine, TopologyBuilder
from repro.netsim.addressing import mate30, mate31
from repro.netsim.router import IndirectConfig
from repro.probing import Prober


def p2p_chain():
    """vantage - R1 - R2 - R3 with an extra parallel /30 pair off R2."""
    builder = TopologyBuilder("p2p")
    builder.link("R1", "R2")
    link = builder.link("R2", "R3", prefix="10.9.0.0/30")
    sibling = builder.link("R2", "R7", prefix="10.9.0.4/30")
    builder.edge_host("v", "R1")
    topo = builder.build()
    return topo, link, sibling


class TestH5ContraDetection:
    def test_p2p_mate_recorded_as_contra(self):
        """On a /30 link the pivot's mate answers one hop closer: H5 must
        designate it contra-pivot so H3 stays armed."""
        topo, link, sibling = p2p_chain()
        engine = Engine(topo)
        prober = Prober(engine, "v")
        pivot = topo.routers["R3"].interface_on(link.subnet_id).address
        u = address_on(topo, "R2", "R1")
        position = position_subnet(prober, u, pivot, 3)
        state = ExplorationState(prober=prober, pivot=position.pivot,
                                 pivot_distance=position.pivot_distance,
                                 ingress=position.ingress,
                                 trace_entry=u,
                                 on_trace_path=position.on_trace_path)
        judgement = heuristic_h5(state, mate30(position.pivot))
        assert judgement is not None
        assert judgement.verdict == Verdict.ADD_CONTRA

    def test_sibling_p2p_does_not_merge(self):
        """The armed contra-pivot stops the parallel /30 from merging."""
        topo, link, sibling = p2p_chain()
        engine = Engine(topo)
        prober = Prober(engine, "v")
        pivot = topo.routers["R3"].interface_on(link.subnet_id).address
        u = address_on(topo, "R2", "R1")
        position = position_subnet(prober, u, pivot, 3)
        subnet = explore_subnet(prober, position)
        assert subnet.prefix == link.prefix
        assert all(member in link.prefix for member in subnet.members)

    def test_lan_mate_not_contra(self):
        """On a LAN the pivot's mate is a same-distance member, not the
        contra-pivot."""
        builder = TopologyBuilder("lan")
        builder.link("R1", "R2")
        lan = builder.lan(["R2", "R3", "R4", "R6"], length=29)
        builder.edge_host("v", "R1")
        topo = builder.build()
        engine = Engine(topo)
        prober = Prober(engine, "v")
        pivot = topo.routers["R4"].interface_on(lan.subnet_id).address
        u = address_on(topo, "R2", "R1")
        position = position_subnet(prober, u, pivot, 3)
        state = ExplorationState(prober=prober, pivot=position.pivot,
                                 pivot_distance=position.pivot_distance,
                                 ingress=position.ingress, trace_entry=u,
                                 on_trace_path=position.on_trace_path)
        mate = mate31(position.pivot)
        if topo.interface_at(mate) is None:
            mate = mate30(position.pivot)
        judgement = heuristic_h5(state, mate)
        assert judgement is not None
        assert judgement.verdict == Verdict.ADD


class TestPassesH4:
    def test_distance_two_always_passes(self):
        state = ExplorationState(prober=None, pivot=1, pivot_distance=2)
        assert _passes_h4(state, 42)

    def test_alive_two_closer_fails(self):
        builder = TopologyBuilder()
        builder.link("R1", "R2")
        builder.link("R2", "R3")
        builder.edge_host("v", "R1")
        topo = builder.build()
        prober = Prober(Engine(topo), "v")
        r1_address = address_on(topo, "R1", "R2")
        state = ExplorationState(prober=prober, pivot=1, pivot_distance=3)
        assert not _passes_h4(state, r1_address)


class TestResponseConfigVariety:
    @pytest.mark.parametrize("config", [IndirectConfig.SHORTEST_PATH,
                                        IndirectConfig.DEFAULT])
    def test_survey_accuracy_with_mixed_configs(self, config):
        """Whole-path collection still resolves the on-path subnets when a
        mid-path router uses a non-incoming response configuration."""
        builder = TopologyBuilder("mixed")
        builder.link("R1", "R2")
        builder.link("R2", "R3")
        # Four of six hosts assigned: above Algorithm 1's half-utilization
        # stop, so the LAN must come back as the exact /29.
        lan = builder.lan(["R3", "R4", "R5", "R7"], length=29)
        stub = builder.link("R4", "R6")
        builder.edge_host("v", "R1")
        topo = builder.build()
        topo.routers["R3"].indirect_config = config
        tool = TraceNET(Engine(topo), "v")
        target = topo.routers["R6"].interface_on(stub.subnet_id).address
        result = tool.trace(target)
        assert result.reached
        # The LAN must be discovered regardless of how R3 reports itself.
        blocks = {s.prefix for s in tool.collected_subnets if s.size > 1}
        assert lan.prefix in blocks

    def test_default_config_triggers_mate_positioning(self):
        """A DEFAULT-configured router reporting a far-side-facing address
        exercises Algorithm 2's mate-pivot branch; the subnet is still
        collected exactly and trace_address records the promotion."""
        builder = TopologyBuilder("mate")
        builder.link("R1", "R2")
        builder.link("R2", "R3")
        south = builder.link("R3", "R5", length=31)
        builder.link("R3", "R4")
        builder.edge_host("v", "R1")
        topo = builder.build()
        r3_south = topo.routers["R3"].interface_on(south.subnet_id).address
        topo.routers["R3"].indirect_config = IndirectConfig.DEFAULT
        topo.routers["R3"].default_address = r3_south
        tool = TraceNET(Engine(topo), "v")
        target = address_on(topo, "R4", "R3")
        tool.trace(target)
        south_view = [s for s in tool.collected_subnets
                      if s.prefix == south.prefix]
        assert south_view
        subnet = south_view[0]
        assert subnet.trace_address == r3_south
        assert subnet.pivot != subnet.trace_address  # the mate was promoted


class TestAuditPlumbing:
    def test_tracenet_audit_disabled_by_default(self):
        topo, link, sibling = p2p_chain()
        tool = TraceNET(Engine(topo), "v")
        target = topo.routers["R3"].interface_on(link.subnet_id).address
        tool.trace(target)  # must not raise; audit stays None internally

    def test_explore_audit_records_every_candidate(self):
        topo, link, sibling = p2p_chain()
        prober = Prober(Engine(topo), "v")
        pivot = topo.routers["R3"].interface_on(link.subnet_id).address
        u = address_on(topo, "R2", "R1")
        position = position_subnet(prober, u, pivot, 3)
        audit = []
        explore_subnet(prober, position, audit=audit)
        assert audit
        candidates = [candidate for candidate, _ in audit]
        assert len(candidates) == len(set(candidates))
