"""Unit tests for the experiment runners (shared by benches and CLI)."""

import pytest

from repro import experiments


class TestSurveyRunners:
    @pytest.fixture(scope="class")
    def internet2_outcome(self):
        return experiments.run_internet2_survey(seed=11)

    def test_internet2_outcome_fields(self, internet2_outcome):
        assert internet2_outcome.name == "Internet2"
        assert internet2_outcome.probes_sent > 0
        assert len(internet2_outcome.report.outcomes) == 179

    def test_internet2_render_contains_table(self, internet2_outcome):
        text = internet2_outcome.render()
        assert "orgl" in text
        assert "similarity" in text

    def test_similarity_pair(self, internet2_outcome):
        incl = internet2_outcome.similarity()
        excl = internet2_outcome.similarity(exclude_unresponsive=True)
        assert 0 <= incl[0] <= excl[0] <= 1

    def test_seed_changes_network_not_shape(self):
        a = experiments.run_internet2_survey(seed=1)
        b = experiments.run_internet2_survey(seed=2)
        assert abs(a.exact_match_rate - b.exact_match_rate) < 0.15


class TestCrossValidation:
    @pytest.fixture(scope="class")
    def outcome(self):
        return experiments.run_cross_validation(seed=5, scale=0.12,
                                                per_isp=10)

    def test_three_collections(self, outcome):
        assert sorted(outcome.collections) == ["rice", "umass", "uoregon"]

    def test_venn_partitions(self, outcome):
        universe = set()
        for prefixes in outcome.prefix_sets.values():
            universe |= prefixes
        assert sum(outcome.venn.values()) == len(universe)

    def test_agreement_bounds(self, outcome):
        for rates in outcome.agreement.values():
            assert 0 <= rates["all"] <= rates["shared"] <= 1

    def test_accounting_rows(self, outcome):
        rows = outcome.accounting()
        assert len(rows) == 3 * 4  # vantages x ISPs
        for row in rows:
            assert row.targets >= 0

    def test_renders(self, outcome):
        assert "Figure 6" in outcome.render_figure6()
        assert "Figure 7" in outcome.render_figure7()
        assert "Figure 8" in outcome.render_figure8()
        assert "Figure 9" in outcome.render_figure9()
        assert outcome.render().count("Figure") >= 4


class TestProtocolComparison:
    def test_counts_structure(self):
        outcome = experiments.run_protocol_comparison(seed=5, scale=0.12,
                                                      per_isp=10)
        assert sorted(outcome.counts) == ["abovenet", "level3", "ntt",
                                          "sprintlink"]
        for per_isp in outcome.counts.values():
            assert set(per_isp) == {"icmp", "udp", "tcp"}
        totals = outcome.totals()
        assert totals["icmp"] >= totals["udp"] >= totals["tcp"]


class TestOverheadSweep:
    def test_points_within_model(self):
        outcome = experiments.run_overhead_sweep(sizes=(2, 6, 10))
        assert [p.subnet_size for p in outcome.points] == [2, 6, 10]
        assert all(p.within_model for p in outcome.points)

    def test_render(self):
        outcome = experiments.run_overhead_sweep(sizes=(2,))
        assert "3.6" in outcome.render()


class TestDisjointPaths:
    def test_paper_conclusion(self):
        outcome = experiments.run_disjoint_paths()
        assert outcome.traceroute_concludes_disjoint
        assert outcome.tracenet_sees_shared_lan
        assert "Figure 2" in outcome.render()


class TestFluctuations:
    def test_stability_gap(self):
        outcome = experiments.run_fluctuation_experiment(runs=8, seed=3)
        assert outcome.tracenet_subnet_variants == 1
        assert outcome.traceroute_path_variants >= 1
        assert "3.7" in outcome.render()


class TestBandwidth:
    def test_tracenet_more_addresses(self):
        outcome = experiments.run_bandwidth_comparison(seed=5, scale=0.12,
                                                       per_isp=10)
        assert outcome.tracenet_addresses > outcome.traceroute_addresses
        assert outcome.tracenet_bytes > 0
        assert "bandwidth economy" in outcome.render()


class TestHeuristicAblation:
    def test_variants_present(self):
        outcome = experiments.run_heuristic_ablation(seed=11)
        assert "full pipeline" in outcome.variants
        assert "no H6" in outcome.variants
        assert "Ablation" in outcome.render()

    def test_full_at_least_as_accurate(self):
        outcome = experiments.run_heuristic_ablation(seed=11)
        full = outcome.variants["full pipeline"].exact_match_rate
        bare = outcome.variants["no H6+H7+H8"].exact_match_rate
        assert full >= bare - 0.02
