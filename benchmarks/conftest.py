"""Shared fixtures for the benchmark harness.

The Section 4.2 experiments (Table 3, Figures 6-9) share one four-ISP
internet and one cross-validation run, exactly as in the paper; the
session-scoped fixtures below build them once.  Every bench writes its
rendered artifact under ``benchmarks/output/`` so a run leaves the full set
of regenerated tables/figures on disk.
"""

from __future__ import annotations

import os

import pytest

from repro import experiments

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")

#: Scale of the four-ISP internet used by the benches (1.0 = full profile).
BENCH_SCALE = 0.6
#: Common target-set size per ISP.
BENCH_TARGETS_PER_ISP = 80
BENCH_SEED = 42


def write_artifact(name: str, text: str) -> str:
    """Persist a rendered table/figure; returns the path."""
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    path = os.path.join(OUTPUT_DIR, name)
    with open(path, "w") as handle:
        handle.write(text + "\n")
    return path


@pytest.fixture(scope="session")
def isp_internet():
    from repro.topogen import build_internet
    return build_internet(seed=BENCH_SEED, scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def crossval_outcome(isp_internet):
    return experiments.run_cross_validation(
        seed=BENCH_SEED, per_isp=BENCH_TARGETS_PER_ISP, internet=isp_internet)
