"""Baseline comparison: address yield per collection technique.

The paper's related-work section surveys the alternatives: plain
traceroute (one address per hop), DisCarte's record-route tracing (two per
hop, limited to 9 RR slots, [20]), and post-hoc subnet inference over
traceroute data ([7]).  This bench runs all of them plus tracenet over the
same Internet2 target set and compares discovered addresses, exact subnet
matches and probe spend.
"""

from conftest import write_artifact
from repro.baselines import (
    DisCarte,
    Traceroute,
    infer_subnets,
    offline_dataset_from_traces,
)
from repro.core import TraceNET
from repro.evaluation import collected_prefixes, match_subnets
from repro.netsim import Engine
from repro.topogen import internet2


def run_comparison(seed=7):
    network = internet2.build(seed=seed)
    targets = internet2.targets(network, seed=seed)
    rows = {}

    def engine():
        return Engine(network.topology, policy=network.policy)

    tracer = Traceroute(engine(), "utdallas", vary_flow=False)
    traces = [tracer.trace(t) for t in targets]
    tr_addresses = {a for trace in traces
                    for a in trace.path_addresses if a is not None}
    rows["traceroute"] = {
        "addresses": len(tr_addresses),
        "probes": tracer.prober.stats.sent,
        "exact": 0,
    }

    dataset = offline_dataset_from_traces(traces)
    inferred = [s.prefix for s in infer_subnets(dataset) if s.size >= 2]
    offline_report = match_subnets(network.ground_truth, inferred)
    rows["traceroute + offline [7]"] = {
        "addresses": len(dataset),
        "probes": rows["traceroute"]["probes"],
        "exact": round(offline_report.exact_match_rate() * 179),
    }

    discarte = DisCarte(engine(), "utdallas")
    rr_addresses = set()
    rr_probes = 0
    for target in targets:
        trace = discarte.trace(target)
        rr_addresses |= trace.addresses
        rr_probes += trace.probes_sent
    rows["DisCarte record-route [20]"] = {
        "addresses": len(rr_addresses),
        "probes": rr_probes,
        "exact": 0,
    }

    tool = TraceNET(engine(), "utdallas")
    tool.trace_many(targets)
    report = match_subnets(network.ground_truth,
                           collected_prefixes(tool.collected_subnets))
    rows["tracenet"] = {
        "addresses": len(tool.collected_addresses),
        "probes": tool.prober.stats.sent,
        "exact": round(report.exact_match_rate() * 179),
    }
    return rows


def test_baseline_comparison(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    lines = ["Baseline comparison over the Internet2 survey (179 targets)",
             f"{'technique':<30} {'addresses':>10} {'probes':>8} "
             f"{'exact subnets':>14}"]
    for name, row in rows.items():
        lines.append(f"{name:<30} {row['addresses']:>10} {row['probes']:>8} "
                     f"{row['exact']:>14}")
    text = "\n".join(lines)
    print()
    print(text)
    write_artifact("baseline_comparison.txt", text)

    # Address yield ordering: tracenet > DisCarte > plain traceroute.
    assert (rows["tracenet"]["addresses"]
            > rows["DisCarte record-route [20]"]["addresses"]
            > rows["traceroute"]["addresses"])
    # Only the subnet-aware techniques produce subnets at all, and tracenet
    # resolves far more of them exactly than offline inference.
    assert rows["tracenet"]["exact"] > 3 * rows["traceroute + offline [7]"]["exact"]
