"""Figure 9 — subnet prefix-length distribution at the three sites
(log scale in the paper).

Paper: /31 and /30 point-to-point links dominate, /29 follows with a big
drop, then a sharp decrease toward /28 and shorter — with a small uptick
around /24 — and the three vantage points' curves coincide.
"""

from conftest import write_artifact


def test_fig9_prefix_distribution(benchmark, crossval_outcome):
    histograms = benchmark.pedantic(crossval_outcome.histograms,
                                    rounds=1, iterations=1)
    text = crossval_outcome.render_figure9()
    print()
    print(text)
    write_artifact("fig9_prefix_distribution.txt", text)

    for site, histogram in histograms.items():
        p2p = histogram[30] + histogram[31]
        multi_access = sum(histogram[length] for length in range(20, 30))
        # Point-to-point links dominate (the figure's defining feature).
        assert p2p > multi_access, site
        # /29 is the most common multi-access size, with a sharp decrease
        # beyond it.
        assert histogram[29] >= histogram[28] >= 0, site
        assert histogram[29] > histogram[27], site

    # The three curves are coherent: same dominant bucket everywhere.
    dominant = {max(h, key=h.get) for h in histograms.values()}
    assert len(dominant) == 1
