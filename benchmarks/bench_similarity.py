"""Section 4.1.2 — similarity of collected vs original topologies.

Paper figures (including unresponsive subnets): Internet2 0.83 prefix /
0.86 size; GEANT 0.900 / 0.907.  Note: the paper's GEANT values are not
reproducible from its own equations with 98 missing subnets (see
EXPERIMENTS.md); we report both the inclusive similarity and the similarity
over observable subnets.
"""

from conftest import write_artifact
from repro import experiments
from repro.evaluation import render_similarity


def run():
    return (experiments.run_internet2_survey(seed=7),
            experiments.run_geant_survey(seed=7))


def test_similarity_rates(benchmark):
    internet2, geant = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = []
    for outcome in (internet2, geant):
        lines.append(render_similarity(
            f"{outcome.name} (incl. unresponsive)", *outcome.similarity()))
        lines.append(render_similarity(
            f"{outcome.name} (excl. unresponsive)",
            *outcome.similarity(exclude_unresponsive=True)))
    text = "\n".join(lines)
    print()
    print(text)
    write_artifact("similarity.txt", text)

    i2_prefix, i2_size = internet2.similarity()
    assert 0.75 <= i2_prefix <= 0.90          # paper: 0.83
    assert 0.75 <= i2_size <= 0.92            # paper: 0.86
    ge_prefix_x, ge_size_x = geant.similarity(exclude_unresponsive=True)
    assert ge_prefix_x >= 0.90                # paper's 0.900, observable view
    assert ge_size_x >= 0.90                  # paper's 0.907, observable view
    # Size similarity weights large subnets more, and tracenet's errors
    # concentrate in small blocks: size >= prefix on both networks.
    assert i2_size >= i2_prefix - 0.02
