"""Table 1 — tracenet accuracy over the Internet2-like topology.

Regenerates the original-vs-collected subnet distribution table and the
headline exact-match rates (paper: 73.7% including unresponsive subnets,
94.9% excluding them).
"""

from conftest import write_artifact
from repro import experiments


def run():
    return experiments.run_internet2_survey(seed=7)


def test_table1_internet2(benchmark):
    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    text = outcome.render()
    print()
    print(text)
    write_artifact("table1_internet2.txt", text)

    rows = outcome.report.distribution_rows()
    assert sum(rows["orgl"].values()) == 179
    # Paper shape: ~3/4 exact including unresponsive, ~19/20 excluding.
    assert 0.65 <= outcome.exact_match_rate <= 0.85
    assert outcome.observable_exact_match_rate >= 0.90
    # /30 point-to-point links dominate the exact matches, as in Table 1.
    assert rows["exmt"][30] > rows["exmt"][29] > rows["exmt"][28]
