"""Alias resolution from tracenet data (extension experiment).

The paper's introduction: "router level maps group the interfaces hosted
by the same router into a single unit (via alias resolution)".  tracenet's
collection structure yields that grouping almost for free: the ingress
interface and the contra-pivot of every positioned subnet sit on one
router, and same-subnet members are guaranteed non-aliases.  An Ally-style
IP-ID pass (Rocketfuel, the paper's [21]) verifies the analytical pairs.
"""

from conftest import write_artifact
from repro import experiments


def test_alias_resolution(benchmark):
    outcome = benchmark.pedantic(experiments.run_alias_resolution,
                                 kwargs=dict(seed=7), rounds=1, iterations=1)
    text = outcome.render()
    print()
    print(text)
    write_artifact("alias_resolution.txt", text)

    # Analytical pairs come free and are already highly precise.
    assert outcome.analytical_precision >= 0.90
    assert outcome.analytical_pairs > 100
    # Ally filtering trades a little recall for (near-)perfect precision.
    assert outcome.filtered_precision >= outcome.analytical_precision
    assert outcome.filtered_precision >= 0.99
    assert outcome.filtered_recall >= 0.3
    # Four probes per verified pair (plus retries on silent addresses).
    assert 4 * outcome.ally_tests <= outcome.extra_probes \
        <= 8 * outcome.ally_tests
    # The negative constraints vastly outnumber the positive pairs.
    assert outcome.negative_constraints > outcome.analytical_pairs


def test_router_level_map(benchmark):
    """The combined product: subnets + alias groups -> router-level map."""
    outcome = benchmark.pedantic(experiments.run_alias_resolution,
                                 kwargs=dict(seed=11), rounds=1, iterations=1)
    print()
    print(outcome.router_map_summary)
    print(outcome.router_map_accuracy)
    assert "router-level map" in outcome.router_map_summary
    assert "precision" in outcome.router_map_accuracy
