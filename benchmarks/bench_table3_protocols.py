"""Table 3 — tracenet under ICMP, UDP and TCP probing over four ISPs.

Paper (PlanetLab site Rice): ICMP 11 995 subnets total, UDP 3 779, TCP 68 —
ICMP clearly outperforms UDP, and TCP is negligible.
"""

from conftest import (
    BENCH_SEED,
    BENCH_TARGETS_PER_ISP,
    write_artifact,
)
from repro import experiments


def test_table3_protocols(benchmark, isp_internet):
    outcome = benchmark.pedantic(
        experiments.run_protocol_comparison,
        kwargs=dict(seed=BENCH_SEED, per_isp=BENCH_TARGETS_PER_ISP,
                    vantage="rice", internet=isp_internet),
        rounds=1, iterations=1)
    text = outcome.render()
    print()
    print(text)
    write_artifact("table3_protocols.txt", text)

    totals = outcome.totals()
    # The paper's ordering: ICMP >> UDP >> TCP (TCP nearly nothing).
    assert totals["icmp"] > totals["udp"] > totals["tcp"]
    assert totals["udp"] >= totals["icmp"] * 0.15
    assert totals["tcp"] <= totals["icmp"] * 0.1
    # Every ISP individually keeps the ICMP >= UDP ordering.
    for isp, counts in outcome.counts.items():
        assert counts["icmp"] >= counts["udp"], isp
