"""Table 2 — tracenet accuracy over the GEANT-like topology.

Paper: raw exact-match rate 53.5% (GEANT is heavily firewalled), 97.3% over
the observable subnets.
"""

from conftest import write_artifact
from repro import experiments


def run():
    return experiments.run_geant_survey(seed=7)


def test_table2_geant(benchmark):
    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    text = outcome.render()
    print()
    print(text)
    write_artifact("table2_geant.txt", text)

    rows = outcome.report.distribution_rows()
    assert sum(rows["orgl"].values()) == 271
    assert 0.45 <= outcome.exact_match_rate <= 0.65
    assert outcome.observable_exact_match_rate >= 0.92
    # The defining gap of Table 2: unresponsiveness, not tracenet, drives
    # the raw rate down.
    unresponsive_misses = rows["miss\\unrs"]
    assert sum(unresponsive_misses.values()) >= 80
