"""Figure 2 — the overlay-path case study.

On the figure's 9-router network, traceroute's view makes P1 (A->D) and
P3 (B->C) look node- and link-disjoint, while both actually cross one
multi-access LAN; tracenet's subnet annotations expose the shared link.
"""

from conftest import write_artifact
from repro import experiments


def test_fig2_disjoint_paths(benchmark):
    outcome = benchmark.pedantic(experiments.run_disjoint_paths,
                                 rounds=1, iterations=1)
    text = outcome.render()
    print()
    print(text)
    write_artifact("fig2_disjoint_paths.txt", text)

    assert outcome.traceroute_concludes_disjoint      # the wrong conclusion
    assert outcome.tracenet_sees_shared_lan           # tracenet prevents it
    t1 = outcome.details["t1"]
    t3 = outcome.details["t3"]
    shared = {s.prefix for s in t1.subnets} & {s.prefix for s in t3.subnets}
    assert outcome.shared_lan in shared
