"""Marginal utility of vantage points (the paper's §1 argument via [6]).

"A common goal in most topology discovery studies is to increase the
coverage ... by increasing the number of vantage points ... the utility of
this commonly followed approach was shown to be limited.  One of our
primary goals is to maximize the utility of our data collection process by
focusing on discovering the complete topology of the visited subnets."

Measured: cumulative coverage as vantage points are added, tracenet vs
classic traceroute over the same target set.
"""

from conftest import BENCH_SEED, BENCH_TARGETS_PER_ISP, write_artifact
from repro import experiments


def test_vantage_utility(benchmark, isp_internet):
    outcome = benchmark.pedantic(
        experiments.run_vantage_utility,
        kwargs=dict(seed=BENCH_SEED, per_isp=BENCH_TARGETS_PER_ISP,
                    internet=isp_internet),
        rounds=1, iterations=1)
    text = outcome.render()
    print()
    print(text)
    write_artifact("vantage_utility.txt", text)

    # Diminishing returns: each added vantage helps tracenet less.
    gains = outcome.marginal_gains("tracenet")
    assert gains[0] >= gains[-1]
    assert gains[-1] < 0.25
    # One tracenet vantage already out-collects traceroute from all three
    # vantages combined (addresses).
    assert (outcome.address_curves["tracenet"][0]
            > outcome.address_curves["traceroute"][-1])
