"""Figure 6 — distribution of exactly-matching subnets across the three
PlanetLab vantage points.

Paper: ~60% of a vantage's subnets are observed by all three sites, and
~80% by at least one other site.
"""

from conftest import write_artifact


def test_fig6_crossval_venn(benchmark, isp_internet, crossval_outcome):
    # The shared cross-validation run is the expensive part; benchmark the
    # Venn/agreement computation it feeds.
    def compute():
        return crossval_outcome.venn, crossval_outcome.agreement

    venn, agreement = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = crossval_outcome.render_figure6()
    print()
    print(text)
    write_artifact("fig6_crossval_venn.txt", text)

    assert sum(venn.values()) > 100
    triple = venn.get(frozenset(crossval_outcome.collections), 0)
    assert triple > 0
    for site, rates in agreement.items():
        # Paper shape: around 60% seen by all, roughly 80% seen by >= 1.
        assert 0.40 <= rates["all"] <= 0.90, (site, rates)
        assert 0.65 <= rates["shared"] <= 1.0, (site, rates)
        assert rates["shared"] >= rates["all"]
