"""Section 3.7 — path fluctuations.

Classic traceroute's per-probe flow rotation scatters its hop lists across
a per-flow load balancer; tracenet, built on the stable-ingress-router
concept with flow-stable ICMP probes, keeps returning the same subnet.
"""

from conftest import write_artifact
from repro import experiments


def test_path_fluctuations(benchmark):
    outcome = benchmark.pedantic(experiments.run_fluctuation_experiment,
                                 kwargs=dict(runs=12, seed=3),
                                 rounds=1, iterations=1)
    text = outcome.render()
    print()
    print(text)
    write_artifact("path_fluctuations.txt", text)

    assert outcome.traceroute_path_variants > 1
    assert outcome.tracenet_subnet_variants == 1
