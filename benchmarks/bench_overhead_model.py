"""Section 3.6 — probing overhead: measured cost vs the analytic bounds.

Paper: exploring an on-path point-to-point subnet costs as little as 4
probes; the worst case for a multi-access LAN is ``7|S| + 7``.  Measured
costs (which additionally pay for silence retries and boundary probes) must
stay within the model.
"""

from conftest import write_artifact
from repro import experiments
from repro.core import overhead

SIZES = (2, 4, 6, 8, 10, 14, 22, 30, 60)


def test_overhead_model(benchmark):
    outcome = benchmark.pedantic(experiments.run_overhead_sweep,
                                 kwargs=dict(sizes=SIZES),
                                 rounds=1, iterations=1)
    text = outcome.render()
    print()
    print(text)
    write_artifact("overhead_model.txt", text)

    assert all(point.within_model for point in outcome.points)
    # Cost grows roughly linearly in |S| (the model's 7|S|+7 shape): the
    # per-member cost stays bounded as subnets grow.
    big = outcome.points[-1]
    small = next(p for p in outcome.points if p.subnet_size >= 4)
    per_member_big = big.measured_probes / big.subnet_size
    per_member_small = small.measured_probes / small.subnet_size
    assert per_member_big <= per_member_small * 1.5
    # The worst-case layout the upper bound guards against is rare.
    assert overhead.worst_case_probability(8) < 1e-3
