"""Section 3.6 — probing overhead: measured cost vs the analytic bounds.

Paper: exploring an on-path point-to-point subnet costs as little as 4
probes; the worst case for a multi-access LAN is ``7|S| + 7``.  Measured
costs (which additionally pay for silence retries and boundary probes) must
stay within the model.

The sweep runs with the live probe-economy auditor attached, so the bench
doubles as an auditor regression: these tame single-LAN topologies must
audit clean (``overhead_violations_total == 0``).  Results — the per-size
points plus the full metrics-registry snapshot — land in
``BENCH_overhead_model.json`` at the repo root for machine consumption.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro import experiments
from repro.core import overhead
from repro.metrics import MetricsRegistry

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULT_PATH = os.path.join(REPO_ROOT, "BENCH_overhead_model.json")

SIZES = (2, 4, 6, 8, 10, 14, 22, 30, 60)


def run(sizes=SIZES):
    """One instrumented sweep; returns (outcome, registry, result dict)."""
    registry = MetricsRegistry()
    outcome = experiments.run_overhead_sweep(sizes=sizes, metrics=registry)
    result = {
        "bench": "overhead_model",
        "sizes": list(sizes),
        "points": [
            {
                "subnet_size": point.subnet_size,
                "measured_probes": point.measured_probes,
                "lower_bound": point.lower_bound,
                "upper_bound": point.upper_bound,
                "within_model": point.within_model,
            }
            for point in outcome.points
        ],
        "all_within_model": all(p.within_model for p in outcome.points),
        "overhead_checks": registry.value("overhead_checks_total"),
        "overhead_violations": registry.value("overhead_violations_total"),
        "worst_case_probability_s8": overhead.worst_case_probability(8),
        "metrics": registry.full_snapshot(),
    }
    return outcome, registry, result


def write_result(result: dict) -> str:
    with open(RESULT_PATH, "w") as handle:
        json.dump(result, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return RESULT_PATH


def check(outcome, registry) -> None:
    assert all(point.within_model for point in outcome.points)
    # Cost grows roughly linearly in |S| (the model's 7|S|+7 shape): the
    # per-member cost stays bounded as subnets grow.
    big = outcome.points[-1]
    small = next(p for p in outcome.points if p.subnet_size >= 4)
    per_member_big = big.measured_probes / big.subnet_size
    per_member_small = small.measured_probes / small.subnet_size
    assert per_member_big <= per_member_small * 1.5
    # The worst-case layout the upper bound guards against is rare.
    assert overhead.worst_case_probability(8) < 1e-3
    # The live auditor saw every explored subnet and flagged none.
    assert registry.value("overhead_checks_total") == len(outcome.points)
    assert registry.value("overhead_violations_total") == 0


def test_overhead_model(benchmark):
    from conftest import write_artifact

    outcome, registry, result = benchmark.pedantic(
        run, rounds=1, iterations=1)
    text = outcome.render()
    print()
    print(text)
    write_artifact("overhead_model.txt", text)
    write_result(result)
    check(outcome, registry)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", default=",".join(str(s) for s in SIZES),
                        help="comma-separated subnet sizes")
    args = parser.parse_args(argv)
    sizes = tuple(int(part) for part in args.sizes.split(",") if part)
    outcome, registry, result = run(sizes=sizes)
    path = write_result(result)
    check(outcome, registry)
    print(outcome.render())
    print(f"auditor: {result['overhead_checks']} subnets checked, "
          f"{result['overhead_violations']} violations")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
