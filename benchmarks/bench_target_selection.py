"""Destination-selection strategies (the related-work §2 theme).

Rocketfuel and AROMA argue that destination choice decides coverage.  This
bench runs the same probe budget through four strategies over the
Internet2 network and compares subnet discovery.
"""

from conftest import write_artifact
from repro.core import TraceNET
from repro.evaluation import Category, collected_prefixes, match_subnets
from repro.netsim import Engine
from repro.targets import STRATEGIES, coverage_of, select
from repro.topogen import internet2

BUDGET = 120


def run_strategies(seed=7):
    network = internet2.build(seed=seed)
    rows = {}
    for name in STRATEGIES:
        targets = select(name, network, seed=seed, budget=BUDGET)
        tool = TraceNET(Engine(network.topology, policy=network.policy),
                        "utdallas")
        tool.trace_many(targets)
        report = match_subnets(network.ground_truth,
                               collected_prefixes(tool.collected_subnets))
        rows[name] = {
            "targets": len(targets),
            "target_coverage": coverage_of(targets, network),
            "exact": report.count(Category.EXACT),
            "probes": tool.prober.stats.sent,
        }
    return network, rows


def test_target_selection(benchmark):
    network, rows = benchmark.pedantic(run_strategies, rounds=1, iterations=1)
    lines = [f"Target selection strategies (budget {BUDGET} destinations, "
             f"{len(network.ground_truth)} ground-truth subnets)",
             f"{'strategy':<16} {'targets':>8} {'tgt-coverage':>13} "
             f"{'exact subnets':>14} {'probes':>8}"]
    for name, row in rows.items():
        lines.append(f"{name:<16} {row['targets']:>8} "
                     f"{row['target_coverage']:>13.1%} {row['exact']:>14} "
                     f"{row['probes']:>8}")
    text = "\n".join(lines)
    print()
    print(text)
    write_artifact("target_selection.txt", text)

    # The per-subnet recipe the paper uses dominates address-blind sweeps
    # at equal destination budgets.
    assert rows["per-subnet"]["exact"] >= rows["uniform"]["exact"]
    assert rows["per-subnet"]["exact"] >= rows["census-blocks"]["exact"]
    # Stratification recovers most of the informed strategy's coverage.
    assert rows["stratified"]["exact"] >= rows["uniform"]["exact"]
