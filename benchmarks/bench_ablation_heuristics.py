"""Ablation — what each heuristic family buys (Section 3.5).

On tree-like topologies the fringe rules are mostly redundant with H2 +
H1's stop-and-shrink; their accuracy value appears on dense address plans
where *equidistant* subnets occupy sibling CIDR blocks.  The adversarial
gauntlet isolates them:

* disabling H6 merges the foreign-entry motifs;
* disabling H3+H4 merges the same-ingress sibling-LAN motifs;
* reducing the pipeline to H2+H5 merges both families;
* H7 is probe economy: with it off the far-fringe motifs still resolve
  exactly (H2 catches the absorbed members' far neighbours and H1 shrinks)
  but the stop comes later.
"""

from conftest import write_artifact
from repro.core import TraceNET
from repro.netsim import Engine
from repro.topogen.adversarial import build_gauntlet

VARIANTS = (
    ("full pipeline", frozenset()),
    ("no H6", frozenset({"H6"})),
    ("no H3+H4", frozenset({"H3", "H4"})),
    ("no H7", frozenset({"H7"})),
    ("H2+H5 only", frozenset({"H3", "H4", "H6", "H7", "H8"})),
)


def run_gauntlet_ablation(seed=3, motifs_per_kind=4):
    gauntlet = build_gauntlet(seed=seed, motifs_per_kind=motifs_per_kind)
    results = {}
    for name, disabled in VARIANTS:
        engine = Engine(gauntlet.network.topology,
                        policy=gauntlet.network.policy)
        tool = TraceNET(engine, "vantage", disabled_rules=disabled)
        tool.trace_many(gauntlet.targets)
        per_kind = {}
        for motif in gauntlet.motifs:
            views = [s for s in tool.collected_subnets
                     if s.size > 1 and s.prefix.overlaps(motif.probed_lan)]
            exact = any(s.prefix == motif.probed_lan for s in views)
            merged = any(s.prefix.length < motif.probed_lan.length
                         for s in views)
            bucket = per_kind.setdefault(motif.kind,
                                         {"exact": 0, "merged": 0})
            bucket["exact"] += int(exact and not merged)
            bucket["merged"] += int(merged)
        results[name] = {"per_kind": per_kind,
                         "probes": tool.prober.stats.sent}
    return gauntlet, results


def test_ablation_heuristics(benchmark):
    gauntlet, results = benchmark.pedantic(run_gauntlet_ablation,
                                           rounds=1, iterations=1)
    kinds = sorted(gauntlet.counts())
    lines = ["Ablation: heuristic families on the adversarial gauntlet "
             f"({gauntlet.counts()})",
             f"{'variant':<16} " + " ".join(f"{k:>22}" for k in kinds)
             + f" {'probes':>8}"]
    for name, result in results.items():
        cells = []
        for kind in kinds:
            bucket = result["per_kind"][kind]
            cells.append(f"exact {bucket['exact']} merged {bucket['merged']}")
        lines.append(f"{name:<16} " + " ".join(f"{c:>22}" for c in cells)
                     + f" {result['probes']:>8}")
    text = "\n".join(lines)
    print()
    print(text)
    write_artifact("ablation_heuristics.txt", text)

    per_kind = lambda name: results[name]["per_kind"]
    n = gauntlet.counts()["sibling-lan"]

    # Full pipeline: every motif resolved exactly.
    for kind in kinds:
        assert per_kind("full pipeline")[kind]["exact"] == n, kind
        assert per_kind("full pipeline")[kind]["merged"] == 0, kind
    # H6 uniquely guards the foreign-entry motifs.
    assert per_kind("no H6")["foreign-entry"]["merged"] == n
    assert per_kind("no H6")["sibling-lan"]["merged"] == 0
    # H3/H4 uniquely guard the same-ingress sibling motifs.
    assert per_kind("no H3+H4")["sibling-lan"]["merged"] == n
    assert per_kind("no H3+H4")["foreign-entry"]["merged"] == 0
    # H7 off: far-fringe motifs still exact — H2 + shrink recover — so H7
    # is probe economy, not accuracy, on this substrate.
    assert per_kind("no H7")["far-fringe"]["exact"] == n
    # The bare pipeline merges both accuracy-critical families.
    assert per_kind("H2+H5 only")["sibling-lan"]["merged"] == n
    assert per_kind("H2+H5 only")["foreign-entry"]["merged"] == n
