"""Ablation — the probe-economy design choices of the implementation.

The paper notes its implementation "is optimized to collect the subnets
with the least number of probes" (merged heuristics, response reuse).  This
bench quantifies the three mechanisms our implementation uses on the
Internet2 survey:

* response caching in the prober (merged heuristics share probes);
* cross-trace subnet reuse in TraceNET (a subnet met on an earlier path is
  not re-explored);
* the retry-on-silence policy of Section 3.8 (costs probes, buys coverage).
"""

from conftest import write_artifact
from repro.core import TraceNET
from repro.netsim import Engine
from repro.topogen import internet2


def survey_probes(use_cache: bool, reuse_subnets: bool, retries: int = 1,
                  seed: int = 7):
    network = internet2.build(seed=seed)
    engine = Engine(network.topology, policy=network.policy)
    tool = TraceNET(engine, "utdallas", reuse_subnets=reuse_subnets)
    tool.prober.use_cache = use_cache
    tool.prober.retries = retries
    tool.trace_many(internet2.targets(network, seed=seed))
    collected = sum(1 for s in tool.collected_subnets if s.size >= 2)
    return tool.prober.stats.sent, collected


def run_ablation():
    variants = {
        "full (cache + reuse + retry)": survey_probes(True, True, 1),
        "no response cache": survey_probes(False, True, 1),
        "no subnet reuse": survey_probes(True, False, 1),
        "no cache + no reuse": survey_probes(False, False, 1),
        "no retry on silence": survey_probes(True, True, 0),
    }
    return variants


def test_ablation_probe_economy(benchmark):
    variants = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    lines = ["Ablation: probe cost of the Internet2 survey (179 targets)",
             f"{'variant':<32} {'probes':>8} {'subnets':>8}"]
    for name, (probes, subnets) in variants.items():
        lines.append(f"{name:<32} {probes:>8} {subnets:>8}")
    text = "\n".join(lines)
    print()
    print(text)
    write_artifact("ablation_probe_economy.txt", text)

    full_probes, full_subnets = variants["full (cache + reuse + retry)"]
    # Dropping the cache costs probes without finding more subnets.
    no_cache_probes, no_cache_subnets = variants["no response cache"]
    assert no_cache_probes > full_probes
    assert no_cache_subnets <= full_subnets + 2
    # With the cache still on, dropping subnet reuse costs little: the
    # re-exploration is answered from the cache.  Dropping both re-pays
    # the full exploration along every shared path prefix.
    no_reuse_probes, _ = variants["no subnet reuse"]
    neither_probes, _ = variants["no cache + no reuse"]
    assert no_reuse_probes >= full_probes
    assert neither_probes > full_probes * 3
    assert neither_probes > no_cache_probes
    # Dropping the retry saves probes (every silent address costs one
    # instead of two) at equal-or-worse coverage on this quiet topology.
    no_retry_probes, no_retry_subnets = variants["no retry on silence"]
    assert no_retry_probes < full_probes
    assert no_retry_subnets <= full_subnets + 2
