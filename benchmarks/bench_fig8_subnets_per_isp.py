"""Figure 8 — subnet counts per ISP at each PlanetLab site.

Paper: subnet counts per ISP agree closely across the three vantage
points; Sprintlink yields the most subnets and NTT America the fewest —
the inversion against Figure 7 (NTT has the most subnetized addresses)
because a few large subnets host more addresses than many small ones.
"""

from conftest import write_artifact


def test_fig8_subnets_per_isp(benchmark, crossval_outcome):
    counts = benchmark.pedantic(crossval_outcome.subnet_counts,
                                rounds=1, iterations=1)
    text = crossval_outcome.render_figure8()
    print()
    print(text)
    write_artifact("fig8_subnets_per_isp.txt", text)

    for site, per_isp in counts.items():
        assert per_isp["sprintlink"] == max(per_isp.values()), site
        assert per_isp["ntt"] == min(per_isp.values()), site
    # Cross-vantage coherence: per-ISP counts within 2x of each other.
    for isp in ("sprintlink", "ntt", "level3", "abovenet"):
        values = [counts[site][isp] for site in counts]
        assert max(values) <= 2 * max(1, min(values)), (isp, values)
