"""Figure 7 — target / subnetized / un-subnetized IP addresses per ISP at
each PlanetLab site.

Paper: Sprintlink is the least responsive ISP (most un-subnetized
addresses); NTT America is the most responsive and, hosting /20-/22 LANs,
accounts for the most subnetized addresses.
"""

from collections import defaultdict

from conftest import write_artifact


def test_fig7_ip_accounting(benchmark, crossval_outcome):
    rows = benchmark.pedantic(crossval_outcome.accounting,
                              rounds=1, iterations=1)
    text = crossval_outcome.render_figure7()
    print()
    print(text)
    write_artifact("fig7_ip_accounting.txt", text)

    subnetized = defaultdict(int)
    unsubnetized = defaultdict(int)
    for row in rows:
        subnetized[row.group] += row.subnetized
        unsubnetized[row.group] += row.unsubnetized

    # NTT's large LANs make it the top subnetized-address contributor.
    assert subnetized["ntt"] == max(subnetized.values())
    # Sprintlink's rate limiting and silent interfaces make it the top
    # un-subnetized contributor.
    assert unsubnetized["sprintlink"] == max(unsubnetized.values())
    assert unsubnetized["sprintlink"] > unsubnetized["ntt"]
