"""Survey throughput: serial walk vs fast path vs batched pipeline vs shards.

Tracks the perf trajectory of the collection pipeline on the Internet2
topology in three groups of lanes:

* **engine probe rate** — the same TTL-sweep probe workload pushed through
  one engine three ways: per-probe ``send`` with the resolved-path cache
  off (every probe re-walks the routed path), per-probe ``send`` with the
  cache on, and ``send_many`` batches over the cached engine.  The probe
  objects are built once outside the timed region for every lane, so the
  lanes compare dispatch cost, not packet allocation.  Gates: fastpath
  >= 2x serial, batched >= 5x serial (full runs).
* **survey rate** — full tracenet surveys (trace + positioning +
  exploration) serial with cache off/on, instrumented, batched
  (``batch_window=1``: every ladder probe rides the transport batch API
  with a probe stream byte-identical to the serial path), stop-set
  (Doubletree suppression: fewer probes, equivalent archive), and sharded
  over worker processes.
* **parallel accounting** — the sharded lane reports both a *cold* rate
  (probes / total wall clock, including per-shard engine builds and the
  merge) and a *warm* rate (probes / slowest shard's survey loop alone),
  so per-shard startup cost is visible instead of silently dragging the
  headline number.

Results land in ``BENCH_survey_throughput.json`` at the repo root so every
subsequent PR can diff probes/sec.  ``--smoke`` (or the pytest run) uses a
reduced target set for CI.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import random
import sys
import time

from repro.core import TraceNET
from repro.mapping.store import archive_to_dict
from repro.metrics import MetricsRegistry
from repro.netsim import Engine
from repro.netsim.packet import Probe
from repro.parallel import ShardedSurveyRunner, archives_equivalent
from repro.probing import StopSet
from repro.runner import SurveyRunner
from repro.topogen import internet2
from repro.transport import collect_backend_metrics

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULT_PATH = os.path.join(REPO_ROOT, "BENCH_survey_throughput.json")

SEED = 7
TTL_SWEEP = 12  # TTLs probed per destination in the engine lane
BATCH_CHUNK = 256  # probes per send_many dispatch in the batched lane


def engine_probe_rates(network, targets, reps: int = 5) -> dict:
    """Push a survey-shaped (dst, ttl) workload through three engines:
    per-probe sends with the resolved-path cache off and on, and
    ``send_many`` batches over a cached engine.

    The probe list is built once, outside every timed region — all three
    lanes dispatch the *same* prebuilt objects, so the comparison isolates
    engine dispatch cost.  One un-timed warmup pass per engine populates
    the lazily-built routing table and, on the cached engines, the path
    memo.  The sweep is then timed ``reps`` times per engine with the
    lanes *interleaved* — serial rep, fastpath rep, batched rep, serial
    rep, ... — so a systematic slowdown mid-bench (CPU throttling, a noisy
    neighbour) hits every lane equally instead of whichever ran last.
    Each lane reports its fastest rep, the noise-robust steady-state
    figure, exactly as ``timeit`` does; GC is paused inside the timed
    regions for the same reason.
    """
    from repro.netsim import EngineStats

    src = network.topology.hosts["utdallas"].address
    probes = [Probe(src=src, dst=dst, ttl=ttl)
              for dst in targets for ttl in range(1, TTL_SWEEP + 1)]
    engines = {
        "serial": Engine(network.topology, policy=network.policy,
                         path_cache=False),
        "fastpath": Engine(network.topology, policy=network.policy,
                           path_cache=True),
        "batched": Engine(network.topology, policy=network.policy,
                          path_cache=True),
    }

    def sweep_serial(engine):
        send = engine.send
        for probe in probes:
            send(probe)

    def sweep_batched(engine):
        send_many = engine.send_many
        for start in range(0, len(probes), BATCH_CHUNK):
            send_many(probes[start:start + BATCH_CHUNK])

    sweeps = {"serial": sweep_serial, "fastpath": sweep_serial,
              "batched": sweep_batched}

    rep_seconds = {lane: [] for lane in engines}
    gc_was_enabled = gc.isenabled()
    for lane, engine in engines.items():
        sweeps[lane](engine)  # warmup: routing BFS + (when enabled) memo
    for _ in range(reps):
        for lane, engine in engines.items():
            engine.stats = EngineStats()
            gc.collect()
            gc.disable()
            started = time.perf_counter()
            sweeps[lane](engine)
            rep_seconds[lane].append(time.perf_counter() - started)
            if gc_was_enabled:
                gc.enable()
    lanes = {}
    for lane, engine in engines.items():
        elapsed = min(rep_seconds[lane])
        sent = engine.stats.probes_sent  # identical across reps
        lanes[lane] = {
            "probes": sent,
            "seconds": round(elapsed, 4),
            "rep_seconds": [round(s, 4) for s in rep_seconds[lane]],
            "probes_per_sec": round(sent / elapsed, 1),
            "path_cache_hits": engine.stats.path_cache_hits,
            "path_cache_misses": engine.stats.path_cache_misses,
            "hit_rate": round(engine.stats.path_cache_hits / max(1, sent), 4),
        }
        if lane == "batched":
            lanes[lane]["batches"] = engine.stats.batches
            lanes[lane]["batched_probes"] = engine.stats.batched_probes
            lanes[lane]["batch_chunk"] = BATCH_CHUNK
    return lanes


def serial_survey(network, targets, path_cache: bool, metrics=None,
                  batch_window: int = 0, stop_set=None):
    engine = Engine(network.topology, policy=network.policy,
                    path_cache=path_cache)
    tool = TraceNET(engine, "utdallas", batch_window=batch_window,
                    stop_set=stop_set)
    runner = SurveyRunner(tool, metrics=metrics)
    started = time.perf_counter()
    runner.run(targets)
    elapsed = time.perf_counter() - started
    if metrics is not None:
        collect_backend_metrics(metrics.backend, tool.transport)
    sent = tool.prober.stats.sent
    lane = {
        "probes": sent,
        "seconds": round(elapsed, 4),
        "probes_per_sec": round(sent / elapsed, 1),
        "targets": len(targets),
        "path_cache": path_cache,
        "engine_path_cache_hits": engine.stats.path_cache_hits,
    }
    if batch_window:
        lane["batch_window"] = batch_window
        lane["engine_batches"] = engine.stats.batches
        lane["engine_batched_probes"] = engine.stats.batched_probes
    if stop_set is not None:
        lane["suppressed"] = tool.prober.stats.suppressed
        lane["stop_set"] = stop_set.counters()
    return lane, runner.archive


def parallel_survey(network, targets, workers: int):
    runner = ShardedSurveyRunner.from_network(
        network.topology, network.policy, "utdallas", workers=workers)
    started = time.perf_counter()
    outcome = runner.run(targets)
    elapsed = time.perf_counter() - started
    sent = outcome.stats.sent
    slowest = max((s.build_seconds + s.survey_seconds
                   for s in outcome.shards), default=elapsed)
    # Warm rate: the survey loops alone, per-shard engine builds excluded.
    # That is the steady-state shard throughput a long survey converges to;
    # the cold rate charges the full wall clock (spec + builds + merge).
    slowest_survey = max((s.survey_seconds for s in outcome.shards),
                         default=elapsed)
    startup = sum(s.build_seconds for s in outcome.shards)
    lane = {
        "workers": outcome.workers,
        "executed_inline": outcome.executed_inline,
        "probes": sent,
        "seconds": round(elapsed, 4),
        "cold_probes_per_sec": round(sent / elapsed, 1),
        "warm_probes_per_sec": round(sent / max(1e-9, slowest_survey), 1),
        "shard_build_seconds_total": round(startup, 4),
        "slowest_shard_seconds": round(slowest, 4),
        "slowest_shard_survey_seconds": round(slowest_survey, 4),
        "shards": [
            {
                "shard": s.shard_index,
                "targets": len(s.targets),
                "probes": s.stats.sent,
                "build_seconds": round(s.build_seconds, 4),
                "survey_seconds": round(s.survey_seconds, 4),
            }
            for s in outcome.shards
        ],
    }
    # Back-compat alias: "probes_per_sec" stays the cold (wall-clock) rate.
    lane["probes_per_sec"] = lane["cold_probes_per_sec"]
    return lane, outcome.archive


def archive_bytes(archive) -> str:
    """The canonical serialized archive, for byte-identity gates."""
    return json.dumps(archive_to_dict(archive), sort_keys=True)


def run(smoke: bool = False, workers: int = 2) -> dict:
    network = internet2.build(seed=SEED)
    if smoke:
        targets = internet2.targets(network, seed=SEED)[:20]
    else:
        targets = network.pick_targets(random.Random(SEED ^ 0x5EED),
                                       per_subnet=5)

    engine_lanes = engine_probe_rates(network, targets)
    engine_serial = engine_lanes["serial"]
    engine_fast = engine_lanes["fastpath"]
    engine_batched = engine_lanes["batched"]
    survey_slow, _ = serial_survey(network, targets, path_cache=False)
    survey_fast, serial_archive = serial_survey(network, targets,
                                                path_cache=True)
    # Same fastpath configuration with the metrics registry + auditor
    # attached: the rate delta against the bare lane is the measured cost
    # of event emission, and the registry snapshot lands in the artifact.
    registry = MetricsRegistry()
    survey_metered, metered_archive = serial_survey(network, targets,
                                                    path_cache=True,
                                                    metrics=registry)
    # Batched pipeline, exact mode: batch_window=1 routes every ladder
    # probe through send_many without changing the probe stream, so the
    # archive must serialize byte-for-byte equal to the serial lane's.
    survey_batched, batched_archive = serial_survey(network, targets,
                                                    path_cache=True,
                                                    batch_window=1)
    # Stop-set mode: probe-economy-changing by design (probes only go
    # down), map-equal on the reference networks.
    stop_set = StopSet()
    survey_stopset, stopset_archive = serial_survey(network, targets,
                                                    path_cache=True,
                                                    stop_set=stop_set)
    survey_parallel, parallel_archive = parallel_survey(network, targets,
                                                        workers=workers)
    parallel_equal = archives_equivalent(serial_archive, parallel_archive)
    metered_equal = archives_equivalent(serial_archive, metered_archive)
    batched_bytes_equal = (archive_bytes(serial_archive)
                           == archive_bytes(batched_archive))
    stopset_equal = archives_equivalent(serial_archive, stopset_archive)
    instrumentation_overhead = round(
        1 - (survey_metered["probes_per_sec"]
             / max(1e-9, survey_fast["probes_per_sec"])), 4)

    speedup = (engine_fast["probes_per_sec"]
               / max(1e-9, engine_serial["probes_per_sec"]))
    batched_speedup = (engine_batched["probes_per_sec"]
                       / max(1e-9, engine_serial["probes_per_sec"]))
    result = {
        "bench": "survey_throughput",
        "topology": "internet2",
        "seed": SEED,
        "smoke": smoke,
        "targets": len(targets),
        "ttl_sweep": TTL_SWEEP,
        "probes_per_sec": {
            "serial": engine_serial["probes_per_sec"],
            "fastpath": engine_fast["probes_per_sec"],
            "batched": engine_batched["probes_per_sec"],
            "parallel": survey_parallel["cold_probes_per_sec"],
            "parallel_warm": survey_parallel["warm_probes_per_sec"],
        },
        "fastpath_speedup": round(speedup, 2),
        "batched_speedup": round(batched_speedup, 2),
        "engine": {"serial": engine_serial, "fastpath": engine_fast,
                   "batched": engine_batched},
        "survey": {
            "serial": survey_slow,
            "fastpath": survey_fast,
            "instrumented": survey_metered,
            "batched": survey_batched,
            "stopset": survey_stopset,
            "parallel": survey_parallel,
        },
        "parallel_equals_serial": parallel_equal,
        "instrumented_equals_serial": metered_equal,
        # batch_window=1 must preserve the probe stream exactly: the
        # serialized archives (probe counts included) are compared as bytes.
        "batched_equals_serial_bytes": batched_bytes_equal,
        # Stop sets change the probe economy, not the map.
        "stopset_equals_serial": stopset_equal,
        "stopset_probes_saved": (survey_fast["probes"]
                                 - survey_stopset["probes"]),
        # Fractional survey-rate cost of attaching the registry + auditor.
        "instrumentation_overhead": instrumentation_overhead,
        # Full registry of the instrumented lane: session metrics
        # (counters/histograms from the event stream, auditor included)
        # plus the engine's backend counters and timing spans.
        "metrics": registry.full_snapshot(),
        "overhead_violations": registry.value("overhead_violations_total"),
    }
    return result


def write_result(result: dict) -> str:
    with open(RESULT_PATH, "w") as handle:
        json.dump(result, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return RESULT_PATH


def check(result: dict, smoke: bool) -> None:
    assert result["parallel_equals_serial"], (
        "parallel archive diverged from the serial archive")
    assert result["instrumented_equals_serial"], (
        "attaching metrics changed the collected archive")
    assert result["batched_equals_serial_bytes"], (
        "batch_window=1 changed the probe stream: batched archive is not "
        "byte-identical to the serial archive")
    assert result["stopset_equals_serial"], (
        "stop sets changed the collected map, not just the probe economy")
    assert result["stopset_probes_saved"] > 0, (
        "stop sets sent no fewer probes than the serial survey "
        f"(saved {result['stopset_probes_saved']})")
    assert result["engine"]["fastpath"]["hit_rate"] > 0, (
        "fast path never hit — cache not engaged")
    assert result["engine"]["batched"]["batches"] > 0, (
        "batched lane never dispatched through send_many")
    assert result["overhead_violations"] == 0, (
        "the reference survey tripped the probe-economy auditor")
    session = result["metrics"]["metrics"]["counters"]
    backend = result["metrics"]["backend"]["gauges"]
    assert session["probes_sent_total"] == backend["engine_probes_sent"], (
        "event-stream probe count diverged from the engine's own counter")
    assert result["batched_speedup"] > 1.0, (
        f"send_many is not faster than per-probe send "
        f"({result['batched_speedup']}x)")
    if not smoke:
        assert result["fastpath_speedup"] >= 2.0, (
            f"fast path is only {result['fastpath_speedup']}x serial")
        assert result["batched_speedup"] >= 5.0, (
            f"batched dispatch is only {result['batched_speedup']}x serial")


def test_survey_throughput():
    """Smoke lane for CI: tiny target set, correctness gates only."""
    result = run(smoke=True)
    write_result(result)
    check(result, smoke=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny target set (CI)")
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args(argv)
    result = run(smoke=args.smoke, workers=args.workers)
    path = write_result(result)
    check(result, smoke=args.smoke)
    rates = result["probes_per_sec"]
    print(f"targets: {result['targets']}  (smoke={result['smoke']})")
    print(f"engine probes/sec: serial {rates['serial']:.0f} "
          f"-> fastpath {rates['fastpath']:.0f} "
          f"({result['fastpath_speedup']}x) "
          f"-> batched {rates['batched']:.0f} "
          f"({result['batched_speedup']}x)")
    print(f"survey probes/sec: serial "
          f"{result['survey']['serial']['probes_per_sec']:.0f} "
          f"-> fastpath {result['survey']['fastpath']['probes_per_sec']:.0f} "
          f"-> batched {result['survey']['batched']['probes_per_sec']:.0f}")
    print(f"parallel probes/sec: cold {rates['parallel']:.0f} "
          f"-> warm {rates['parallel_warm']:.0f} "
          f"({result['survey']['parallel']['workers']} workers, "
          f"{result['survey']['parallel']['shard_build_seconds_total']:.2f}s "
          f"shard startup)")
    stopset = result["survey"]["stopset"]
    print(f"stop sets: {stopset['suppressed']} probes suppressed, "
          f"{result['stopset_probes_saved']} fewer on the wire "
          f"(archive equivalent: {result['stopset_equals_serial']})")
    print(f"instrumented survey: "
          f"{result['survey']['instrumented']['probes_per_sec']:.0f} "
          f"probes/sec ({result['instrumentation_overhead']:.1%} metrics "
          f"overhead), {result['overhead_violations']} auditor violations")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
