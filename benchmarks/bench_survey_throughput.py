"""Survey throughput: serial walk vs engine fast path vs sharded workers.

Tracks the perf trajectory of the collection pipeline on the Internet2
topology in three lanes:

* **engine probe rate** — the same TTL-sweep probe workload pushed through
  one engine with the resolved-path cache off (every probe re-walks the
  routed path) and on (every repeat probe answers from the memoized path).
  This is where the fast path lives; the acceptance gate is >= 2x.
* **survey rate** — full tracenet surveys (trace + positioning +
  exploration) serial with cache off, serial with cache on, and sharded
  over worker processes.  The parallel archive must be content-equal to
  the serial one.

Results land in ``BENCH_survey_throughput.json`` at the repo root so every
subsequent PR can diff probes/sec.  ``--smoke`` (or the pytest run) uses a
reduced target set for CI.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import random
import sys
import time

from repro.core import TraceNET
from repro.metrics import MetricsRegistry
from repro.netsim import Engine
from repro.netsim.packet import Probe
from repro.parallel import ShardedSurveyRunner, archives_equivalent
from repro.runner import SurveyRunner
from repro.topogen import internet2
from repro.transport import collect_backend_metrics

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULT_PATH = os.path.join(REPO_ROOT, "BENCH_survey_throughput.json")

SEED = 7
TTL_SWEEP = 12  # TTLs probed per destination in the engine lane


def engine_probe_rates(network, targets, reps: int = 5) -> dict:
    """Push a survey-shaped (dst, ttl) workload through two engines, one
    with the resolved-path cache off and one with it on.

    One un-timed warmup pass per engine populates the lazily-built routing
    table (a fixed cost amortized over any survey) and, on the cached
    engine, the path memo.  The sweep is then timed ``reps`` times per
    engine with the lanes *interleaved* — serial rep, fastpath rep, serial
    rep, ... — so a systematic slowdown mid-bench (CPU throttling, a
    noisy neighbour) hits both lanes equally instead of whichever ran
    second.  Each lane reports its fastest rep, the noise-robust
    steady-state figure, exactly as ``timeit`` does; GC is paused inside
    the timed regions for the same reason.  The cache-off lane still
    re-walks every probe in every rep.
    """
    from repro.netsim import EngineStats

    src = network.topology.hosts["utdallas"].address
    engines = {
        "serial": Engine(network.topology, policy=network.policy,
                         path_cache=False),
        "fastpath": Engine(network.topology, policy=network.policy,
                           path_cache=True),
    }

    def sweep(engine):
        for dst in targets:
            for ttl in range(1, TTL_SWEEP + 1):
                engine.send(Probe(src=src, dst=dst, ttl=ttl))

    rep_seconds = {lane: [] for lane in engines}
    gc_was_enabled = gc.isenabled()
    for engine in engines.values():
        sweep(engine)  # warmup: routing BFS + (when enabled) path memo
    for _ in range(reps):
        for lane, engine in engines.items():
            engine.stats = EngineStats()
            gc.collect()
            gc.disable()
            started = time.perf_counter()
            sweep(engine)
            rep_seconds[lane].append(time.perf_counter() - started)
            if gc_was_enabled:
                gc.enable()
    lanes = {}
    for lane, engine in engines.items():
        elapsed = min(rep_seconds[lane])
        sent = engine.stats.probes_sent  # identical across reps
        lanes[lane] = {
            "probes": sent,
            "seconds": round(elapsed, 4),
            "rep_seconds": [round(s, 4) for s in rep_seconds[lane]],
            "probes_per_sec": round(sent / elapsed, 1),
            "path_cache_hits": engine.stats.path_cache_hits,
            "path_cache_misses": engine.stats.path_cache_misses,
            "hit_rate": round(engine.stats.path_cache_hits / max(1, sent), 4),
        }
    return lanes


def serial_survey(network, targets, path_cache: bool, metrics=None):
    engine = Engine(network.topology, policy=network.policy,
                    path_cache=path_cache)
    tool = TraceNET(engine, "utdallas")
    runner = SurveyRunner(tool, metrics=metrics)
    started = time.perf_counter()
    runner.run(targets)
    elapsed = time.perf_counter() - started
    if metrics is not None:
        collect_backend_metrics(metrics.backend, tool.transport)
    sent = tool.prober.stats.sent
    lane = {
        "probes": sent,
        "seconds": round(elapsed, 4),
        "probes_per_sec": round(sent / elapsed, 1),
        "targets": len(targets),
        "path_cache": path_cache,
        "engine_path_cache_hits": engine.stats.path_cache_hits,
    }
    return lane, runner.archive


def parallel_survey(network, targets, workers: int):
    runner = ShardedSurveyRunner.from_network(
        network.topology, network.policy, "utdallas", workers=workers)
    started = time.perf_counter()
    outcome = runner.run(targets)
    elapsed = time.perf_counter() - started
    sent = outcome.stats.sent
    slowest = max((s.build_seconds + s.survey_seconds
                   for s in outcome.shards), default=elapsed)
    lane = {
        "workers": outcome.workers,
        "executed_inline": outcome.executed_inline,
        "probes": sent,
        "seconds": round(elapsed, 4),
        "probes_per_sec": round(sent / elapsed, 1),
        "slowest_shard_seconds": round(slowest, 4),
        "shards": [
            {
                "shard": s.shard_index,
                "targets": len(s.targets),
                "probes": s.stats.sent,
                "build_seconds": round(s.build_seconds, 4),
                "survey_seconds": round(s.survey_seconds, 4),
            }
            for s in outcome.shards
        ],
    }
    return lane, outcome.archive


def run(smoke: bool = False, workers: int = 2) -> dict:
    network = internet2.build(seed=SEED)
    if smoke:
        targets = internet2.targets(network, seed=SEED)[:20]
    else:
        targets = network.pick_targets(random.Random(SEED ^ 0x5EED),
                                       per_subnet=5)

    engine_lanes = engine_probe_rates(network, targets)
    engine_serial = engine_lanes["serial"]
    engine_fast = engine_lanes["fastpath"]
    survey_slow, _ = serial_survey(network, targets, path_cache=False)
    survey_fast, serial_archive = serial_survey(network, targets,
                                                path_cache=True)
    # Same fastpath configuration with the metrics registry + auditor
    # attached: the rate delta against the bare lane is the measured cost
    # of event emission, and the registry snapshot lands in the artifact.
    registry = MetricsRegistry()
    survey_metered, metered_archive = serial_survey(network, targets,
                                                    path_cache=True,
                                                    metrics=registry)
    survey_parallel, parallel_archive = parallel_survey(network, targets,
                                                        workers=workers)
    parallel_equal = archives_equivalent(serial_archive, parallel_archive)
    metered_equal = archives_equivalent(serial_archive, metered_archive)
    instrumentation_overhead = round(
        1 - (survey_metered["probes_per_sec"]
             / max(1e-9, survey_fast["probes_per_sec"])), 4)

    speedup = (engine_fast["probes_per_sec"]
               / max(1e-9, engine_serial["probes_per_sec"]))
    result = {
        "bench": "survey_throughput",
        "topology": "internet2",
        "seed": SEED,
        "smoke": smoke,
        "targets": len(targets),
        "ttl_sweep": TTL_SWEEP,
        "probes_per_sec": {
            "serial": engine_serial["probes_per_sec"],
            "fastpath": engine_fast["probes_per_sec"],
            "parallel": survey_parallel["probes_per_sec"],
        },
        "fastpath_speedup": round(speedup, 2),
        "engine": {"serial": engine_serial, "fastpath": engine_fast},
        "survey": {
            "serial": survey_slow,
            "fastpath": survey_fast,
            "instrumented": survey_metered,
            "parallel": survey_parallel,
        },
        "parallel_equals_serial": parallel_equal,
        "instrumented_equals_serial": metered_equal,
        # Fractional survey-rate cost of attaching the registry + auditor.
        "instrumentation_overhead": instrumentation_overhead,
        # Full registry of the instrumented lane: session metrics
        # (counters/histograms from the event stream, auditor included)
        # plus the engine's backend counters and timing spans.
        "metrics": registry.full_snapshot(),
        "overhead_violations": registry.value("overhead_violations_total"),
    }
    return result


def write_result(result: dict) -> str:
    with open(RESULT_PATH, "w") as handle:
        json.dump(result, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return RESULT_PATH


def check(result: dict, smoke: bool) -> None:
    assert result["parallel_equals_serial"], (
        "parallel archive diverged from the serial archive")
    assert result["instrumented_equals_serial"], (
        "attaching metrics changed the collected archive")
    assert result["engine"]["fastpath"]["hit_rate"] > 0, (
        "fast path never hit — cache not engaged")
    assert result["overhead_violations"] == 0, (
        "the reference survey tripped the probe-economy auditor")
    session = result["metrics"]["metrics"]["counters"]
    backend = result["metrics"]["backend"]["gauges"]
    assert session["probes_sent_total"] == backend["engine_probes_sent"], (
        "event-stream probe count diverged from the engine's own counter")
    if not smoke:
        assert result["fastpath_speedup"] >= 2.0, (
            f"fast path is only {result['fastpath_speedup']}x serial")


def test_survey_throughput():
    """Smoke lane for CI: tiny target set, correctness gates only."""
    result = run(smoke=True)
    write_result(result)
    check(result, smoke=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny target set (CI)")
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args(argv)
    result = run(smoke=args.smoke, workers=args.workers)
    path = write_result(result)
    check(result, smoke=args.smoke)
    rates = result["probes_per_sec"]
    print(f"targets: {result['targets']}  (smoke={result['smoke']})")
    print(f"engine probes/sec: serial {rates['serial']:.0f} "
          f"-> fastpath {rates['fastpath']:.0f} "
          f"({result['fastpath_speedup']}x)")
    print(f"survey probes/sec: serial "
          f"{result['survey']['serial']['probes_per_sec']:.0f} "
          f"-> fastpath {result['survey']['fastpath']['probes_per_sec']:.0f} "
          f"-> parallel {rates['parallel']:.0f} "
          f"({result['survey']['parallel']['workers']} workers)")
    print(f"instrumented survey: "
          f"{result['survey']['instrumented']['probes_per_sec']:.0f} "
          f"probes/sec ({result['instrumentation_overhead']:.1%} metrics "
          f"overhead), {result['overhead_violations']} auditor violations")
    print(f"parallel archive equals serial: "
          f"{result['parallel_equals_serial']}")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
