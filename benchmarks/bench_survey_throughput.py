"""Survey throughput: serial walk vs fast path vs batched pipeline vs shards.

Tracks the perf trajectory of the collection pipeline on the Internet2
topology in three groups of lanes:

* **engine probe rate** — the same TTL-sweep probe workload pushed through
  one engine four ways: per-probe ``send`` with the resolved-path cache
  off (every probe re-walks the routed path), per-probe ``send`` with the
  cache on, legacy ``send_many`` batches (``vector_path=False``), and
  vectorized bulk ``send_many`` batches served from the packed-key flow
  index.  The probe objects are built once outside the timed region for
  every lane, so the lanes compare dispatch cost, not packet allocation.
  Gates: fastpath >= 2x serial, batched >= 5x serial, bulk >= 1.5x
  batched and >= 10x serial (full runs).
* **counters-only overhead** — the same fastpath survey with no sinks
  vs a single :class:`CounterSink` subscribed (every producer takes the
  type-only ``tally`` path, no event objects constructed) vs counters
  plus a clocked span tracer (full event construction + tree upkeep),
  interleaved best-of-reps.  Gates: <= 0.25 counters-only, <= 0.30
  counters+tracing (full runs).
* **scale lanes** — million-interface topologies from
  ``topogen.isp.scale_profiles`` built and surveyed in subprocesses
  (clean per-lane ``ru_maxrss``), recording build seconds, probes/sec,
  BFS count, and peak RSS at each budget in ``SCALE_LANES``.  Full runs
  only; ``--scale-smoke`` runs a 10^5-interface CI gate instead.
* **survey rate** — full tracenet surveys (trace + positioning +
  exploration) serial with cache off/on, instrumented, batched
  (``batch_window=1``: every ladder probe rides the transport batch API
  with a probe stream byte-identical to the serial path), stop-set
  (Doubletree suppression: fewer probes, equivalent archive), and sharded
  over worker processes.
* **parallel accounting** — the sharded lane reports both a *cold* rate
  (probes / total wall clock, including per-shard engine builds and the
  merge) and a *warm* rate (probes / slowest shard's survey loop alone),
  so per-shard startup cost is visible instead of silently dragging the
  headline number.

Results land in ``BENCH_survey_throughput.json`` at the repo root so every
subsequent PR can diff probes/sec.  ``--smoke`` (or the pytest run) uses a
reduced target set for CI.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import random
import resource
import subprocess
import sys
import time

from repro.core import TraceNET
from repro.events import CounterSink
from repro.mapping.store import archive_to_dict
from repro.metrics import MetricsRegistry
from repro.netsim import Engine
from repro.netsim.packet import Probe
from repro.parallel import ShardedSurveyRunner, archives_equivalent
from repro.probing import StopSet
from repro.runner import SurveyRunner
from repro.topogen import internet2
from repro.topogen.isp import build_internet, scale_profiles
from repro.transport import collect_backend_metrics

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULT_PATH = os.path.join(REPO_ROOT, "BENCH_survey_throughput.json")
SCALE_SMOKE_PATH = os.path.join(REPO_ROOT, "BENCH_scale_smoke.json")

SEED = 7
TTL_SWEEP = 12  # TTLs probed per destination in the engine lane
# Probes per send_many dispatch in the batched engine lanes.  The
# vectorized bulk path pays a fixed per-batch cost (array packing, one
# index query) that it amortizes over the batch; 1024 is the large-survey
# dispatch size it is designed for, where the amortization is complete.
# The legacy per-probe loop is chunk-insensitive, so the comparison stays
# fair at any chunk.
BATCH_CHUNK = 1024
# The engine sweeps finish in milliseconds on the faster lanes — too
# short to time reliably.  Each timed rep repeats the sweep enough times
# to stretch the region to tens of milliseconds; rates are normalized by
# the actual probe count, so lanes with different loop counts compare
# directly.
LANE_LOOPS = {"serial": 1, "fastpath": 3, "batched": 8, "bulk": 8}
SCALE_LANES = (100_000, 1_000_000)  # interface budgets, full runs only


def peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes.

    ``ru_maxrss`` is reported in kilobytes on Linux and in bytes on macOS
    — normalize so the persisted artifact is platform-independent.
    """
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return usage if sys.platform == "darwin" else usage * 1024


def engine_probe_rates(network, targets, reps: int = 5) -> dict:
    """Push a survey-shaped (dst, ttl) workload through four engines:
    per-probe sends with the resolved-path cache off and on, legacy
    ``send_many`` batches (``vector_path=False``), and vectorized bulk
    ``send_many`` batches over the packed-key flow index.

    The probe list is built once, outside every timed region — all four
    lanes dispatch the *same* prebuilt objects, so the comparison isolates
    engine dispatch cost.  One un-timed warmup pass per engine populates
    the lazily-built routing table and, on the cached engines, the path
    memo (and, on the bulk engine, the packed-key index).  The sweep is
    then timed ``reps`` times per engine with the lanes *interleaved* —
    serial rep, fastpath rep, batched rep, bulk rep, serial rep, ... — so
    a systematic slowdown mid-bench (CPU throttling, a noisy neighbour)
    hits every lane equally instead of whichever ran last.  The fast
    lanes finish a single sweep in milliseconds, so each timed rep runs
    the sweep ``LANE_LOOPS[lane]`` times and rates are normalized by the
    probes actually sent.  Each lane reports its fastest rep, the
    noise-robust steady-state figure, exactly as ``timeit`` does; GC is
    paused inside the timed regions for the same reason.
    """
    from repro.netsim import EngineStats

    src = network.topology.hosts["utdallas"].address
    probes = [Probe(src=src, dst=dst, ttl=ttl)
              for dst in targets for ttl in range(1, TTL_SWEEP + 1)]
    engines = {
        "serial": Engine(network.topology, policy=network.policy,
                         path_cache=False),
        "fastpath": Engine(network.topology, policy=network.policy,
                           path_cache=True),
        "batched": Engine(network.topology, policy=network.policy,
                          path_cache=True, vector_path=False),
        "bulk": Engine(network.topology, policy=network.policy,
                       path_cache=True),
    }

    def sweep_serial(engine, loops):
        send = engine.send
        for _ in range(loops):
            for probe in probes:
                send(probe)

    def sweep_batched(engine, loops):
        send_many = engine.send_many
        for _ in range(loops):
            for start in range(0, len(probes), BATCH_CHUNK):
                send_many(probes[start:start + BATCH_CHUNK])

    sweeps = {"serial": sweep_serial, "fastpath": sweep_serial,
              "batched": sweep_batched, "bulk": sweep_batched}

    rep_seconds = {lane: [] for lane in engines}
    gc_was_enabled = gc.isenabled()
    for lane, engine in engines.items():
        sweeps[lane](engine, 1)  # warmup: routing BFS + (if enabled) memo
    for _ in range(reps):
        for lane, engine in engines.items():
            engine.stats = EngineStats()
            gc.collect()
            gc.disable()
            started = time.perf_counter()
            sweeps[lane](engine, LANE_LOOPS[lane])
            rep_seconds[lane].append(time.perf_counter() - started)
            if gc_was_enabled:
                gc.enable()
    lanes = {}
    for lane, engine in engines.items():
        elapsed = min(rep_seconds[lane])
        sent = engine.stats.probes_sent  # identical across reps
        lanes[lane] = {
            "probes": sent,
            "seconds": round(elapsed, 4),
            "rep_seconds": [round(s, 4) for s in rep_seconds[lane]],
            "probes_per_sec": round(sent / elapsed, 1),
            "path_cache_hits": engine.stats.path_cache_hits,
            "path_cache_misses": engine.stats.path_cache_misses,
            "hit_rate": round(engine.stats.path_cache_hits / max(1, sent), 4),
        }
        if lane in ("batched", "bulk"):
            lanes[lane]["batches"] = engine.stats.batches
            lanes[lane]["batched_probes"] = engine.stats.batched_probes
            lanes[lane]["batch_chunk"] = BATCH_CHUNK
        if lane == "bulk":
            lanes[lane]["bulk_lookup_hits"] = engine.stats.bulk_lookup_hits
            lanes[lane]["bulk_lookup_misses"] = (
                engine.stats.bulk_lookup_misses)
    return lanes


def serial_survey(network, targets, path_cache: bool, metrics=None,
                  batch_window: int = 0, stop_set=None,
                  vantage: str = "utdallas"):
    engine = Engine(network.topology, policy=network.policy,
                    path_cache=path_cache)
    tool = TraceNET(engine, vantage, batch_window=batch_window,
                    stop_set=stop_set)
    runner = SurveyRunner(tool, metrics=metrics)
    started = time.perf_counter()
    runner.run(targets)
    elapsed = time.perf_counter() - started
    if metrics is not None:
        collect_backend_metrics(metrics.backend, tool.transport)
    sent = tool.prober.stats.sent
    lane = {
        "probes": sent,
        "seconds": round(elapsed, 4),
        "probes_per_sec": round(sent / elapsed, 1),
        "targets": len(targets),
        "path_cache": path_cache,
        "engine_path_cache_hits": engine.stats.path_cache_hits,
    }
    if batch_window:
        lane["batch_window"] = batch_window
        lane["engine_batches"] = engine.stats.batches
        lane["engine_batched_probes"] = engine.stats.batched_probes
    if stop_set is not None:
        lane["suppressed"] = tool.prober.stats.suppressed
        lane["stop_set"] = stop_set.counters()
    return lane, runner.archive


def parallel_survey(network, targets, workers: int):
    runner = ShardedSurveyRunner.from_network(
        network.topology, network.policy, "utdallas", workers=workers)
    started = time.perf_counter()
    outcome = runner.run(targets)
    elapsed = time.perf_counter() - started
    sent = outcome.stats.sent
    slowest = max((s.build_seconds + s.survey_seconds
                   for s in outcome.shards), default=elapsed)
    # Warm rate: the survey loops alone, per-shard engine builds excluded.
    # That is the steady-state shard throughput a long survey converges to;
    # the cold rate charges the full wall clock (spec + builds + merge).
    slowest_survey = max((s.survey_seconds for s in outcome.shards),
                         default=elapsed)
    startup = sum(s.build_seconds for s in outcome.shards)
    lane = {
        "workers": outcome.workers,
        "executed_inline": outcome.executed_inline,
        "probes": sent,
        "seconds": round(elapsed, 4),
        "cold_probes_per_sec": round(sent / elapsed, 1),
        "warm_probes_per_sec": round(sent / max(1e-9, slowest_survey), 1),
        "shard_build_seconds_total": round(startup, 4),
        "slowest_shard_seconds": round(slowest, 4),
        "slowest_shard_survey_seconds": round(slowest_survey, 4),
        "shards": [
            {
                "shard": s.shard_index,
                "targets": len(s.targets),
                "probes": s.stats.sent,
                "build_seconds": round(s.build_seconds, 4),
                "survey_seconds": round(s.survey_seconds, 4),
            }
            for s in outcome.shards
        ],
    }
    # Back-compat alias: "probes_per_sec" stays the cold (wall-clock) rate.
    lane["probes_per_sec"] = lane["cold_probes_per_sec"]
    return lane, outcome.archive


def archive_bytes(archive) -> str:
    """The canonical serialized archive, for byte-identity gates."""
    return json.dumps(archive_to_dict(archive), sort_keys=True)


def counters_overhead(network, targets, reps: int = 5) -> dict:
    """Measured cost of counter-only and counters+tracing subscription.

    Runs the same fastpath survey three ways: no sinks attached, a single
    :class:`CounterSink` subscribed, and the counter sink plus a clocked
    :class:`SpanBuilder`.  The counter sink declares payload interest only
    in ``HeuristicFired``, so every hot-path producer takes the bus's
    type-only ``tally`` branch and never constructs an event object — that
    lane measures the dispatch-mask bookkeeping itself.  The tracing arm
    forces full event construction (the span builder consumes payloads for
    most types) plus per-event tree maintenance and a ``perf_counter``
    stamp per structural boundary, so it bounds the cost of running a
    survey with ``--spans-out`` live.

    The three arms are *interleaved* ``reps`` times and each reports its
    fastest rep before the overhead ratios are taken.  That is essential
    on a shared box: a single pair of runs can swing ±30% with noise,
    dwarfing the few-percent signal, while best-of-reps converges on the
    steady-state rate for every arm.
    """
    from repro.tracing import SpanBuilder

    def one_survey(mode: str):
        engine = Engine(network.topology, policy=network.policy,
                        path_cache=True)
        tool = TraceNET(engine, "utdallas")
        sink = None
        if mode in ("counters", "tracing"):
            sink = CounterSink()
            tool.events.subscribe(sink)
        tracer = None
        if mode == "tracing":
            tracer = SpanBuilder(clock=time.perf_counter)
            tool.events.subscribe(tracer)
        runner = SurveyRunner(tool)
        gc.collect()
        gc.disable()
        started = time.perf_counter()
        runner.run(targets)
        elapsed = time.perf_counter() - started
        gc.enable()
        if tracer is not None:
            tracer.finish()
        return tool.prober.stats.sent / elapsed, sink

    rates = {"plain": [], "counters": [], "tracing": []}
    counts = {}
    for _ in range(reps):
        for mode in ("plain", "counters", "tracing"):
            rate, sink = one_survey(mode)
            rates[mode].append(rate)
            if mode == "counters":
                counts = dict(sink.counts)  # identical across reps
    overhead = 1 - max(rates["counters"]) / max(rates["plain"])
    tracing_overhead = 1 - max(rates["tracing"]) / max(rates["plain"])
    return {
        "reps": reps,
        "plain_probes_per_sec": [round(r, 1) for r in rates["plain"]],
        "counter_probes_per_sec": [round(r, 1) for r in rates["counters"]],
        "tracing_probes_per_sec": [round(r, 1) for r in rates["tracing"]],
        "best_plain": round(max(rates["plain"]), 1),
        "best_counters": round(max(rates["counters"]), 1),
        "best_tracing": round(max(rates["tracing"]), 1),
        "overhead": round(overhead, 4),
        "tracing_overhead": round(tracing_overhead, 4),
        "event_counts": counts,
    }


def scale_lane(interfaces: int, target_count: int = 50,
               seed: int = SEED) -> dict:
    """Build an ``interfaces``-budget internet and survey 50 targets.

    Exercises the scale path end to end: array-backed topology
    construction (``validate=False`` skips the O(interfaces) flood fill —
    the same profiles are validated once by the scale smoke), the
    interned lazy routing table (one BFS per destination subnet,
    LRU-bounded), and the exact batched collection pipeline.  Reports
    build and survey wall clock, probes/sec, BFS count, and the process
    peak RSS.
    """
    build_started = time.perf_counter()
    network = build_internet(seed=seed, profiles=scale_profiles(interfaces),
                             validate=False)
    build_seconds = time.perf_counter() - build_started
    topology = network.topology
    built = sum(len(subnet.addresses) for subnet in topology.subnets.values())
    grouped = network.targets_proportional(seed=seed, total=target_count)
    targets = sorted(address for addresses in grouped.values()
                     for address in addresses)[:target_count]
    vantage = sorted(network.vantages)[0]
    engine = Engine(topology, policy=network.policy, path_cache=True)
    tool = TraceNET(engine, vantage, batch_window=1)
    runner = SurveyRunner(tool)
    survey_started = time.perf_counter()
    runner.run(targets)
    survey_seconds = time.perf_counter() - survey_started
    sent = tool.prober.stats.sent
    return {
        "interfaces_requested": interfaces,
        "interfaces_built": built,
        "routers": len(topology.routers),
        "subnets": len(topology.subnets),
        "targets": len(targets),
        "build_seconds": round(build_seconds, 2),
        "survey_seconds": round(survey_seconds, 2),
        "probes": sent,
        "probes_per_sec": round(sent / max(1e-9, survey_seconds), 1),
        "subnets_collected": len(runner.archive.subnets),
        "bfs_runs": engine.routing.bfs_runs,
        "peak_rss_bytes": peak_rss_bytes(),
    }


def scale_lane_subprocess(interfaces: int) -> dict:
    """Run :func:`scale_lane` in a child interpreter and parse its JSON.

    ``ru_maxrss`` is a process-lifetime high-water mark: after the 10^6
    build, the parent's peak would contaminate every smaller lane.  Each
    scale lane therefore gets its own process and reports on stdout.
    """
    env = dict(os.environ)
    src_path = os.path.join(REPO_ROOT, "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (src_path if not existing
                         else src_path + os.pathsep + existing)
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__),
         "--scale-lane", str(interfaces)],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT)
    if proc.returncode != 0:
        raise RuntimeError(
            f"scale lane {interfaces} failed:\n{proc.stdout}\n{proc.stderr}")
    return json.loads(proc.stdout.splitlines()[-1])


def scale_smoke(interfaces: int = 100_000, target_count: int = 50,
                seed: int = SEED) -> dict:
    """CI-sized scale gate: 10^5-interface build, equivalence-checked survey.

    Builds the smaller scale profile (structural validation *on* — this is
    the lane that proves the generated topology is well-formed), surveys
    the same 50 targets serially and through the exact batched pipeline
    (window=1, metrics registry + probe-economy auditor attached), and
    asserts the two archives serialize to the same bytes with a clean
    auditor.  The result lands in ``BENCH_scale_smoke.json`` for CI to
    archive.
    """
    build_started = time.perf_counter()
    network = build_internet(seed=seed, profiles=scale_profiles(interfaces))
    build_seconds = time.perf_counter() - build_started
    grouped = network.targets_proportional(seed=seed, total=target_count)
    targets = sorted(address for addresses in grouped.values()
                     for address in addresses)[:target_count]
    vantage = sorted(network.vantages)[0]
    serial_lane, serial_archive = serial_survey(
        network, targets, path_cache=True, vantage=vantage)
    registry = MetricsRegistry()
    batched_lane, batched_archive = serial_survey(
        network, targets, path_cache=True, metrics=registry,
        batch_window=1, vantage=vantage)
    result = {
        "bench": "scale_smoke",
        "seed": seed,
        "interfaces_requested": interfaces,
        "routers": len(network.topology.routers),
        "subnets": len(network.topology.subnets),
        "build_seconds": round(build_seconds, 2),
        "targets": len(targets),
        "survey": {"serial": serial_lane, "batched": batched_lane},
        "batched_equals_serial_bytes": (archive_bytes(serial_archive)
                                        == archive_bytes(batched_archive)),
        "overhead_violations": registry.value("overhead_violations_total"),
        "engine_bulk_lookup_hits": registry.backend.value(
            "engine_bulk_lookup_hits"),
        "peak_rss_bytes": peak_rss_bytes(),
    }
    with open(SCALE_SMOKE_PATH, "w") as handle:
        json.dump(result, handle, indent=1, sort_keys=True)
        handle.write("\n")
    assert result["batched_equals_serial_bytes"], (
        "scale smoke: batched archive is not byte-identical to serial")
    assert result["overhead_violations"] == 0, (
        "scale smoke: the probe-economy auditor flagged the batched survey")
    return result


def run(smoke: bool = False, workers: int = 2) -> dict:
    network = internet2.build(seed=SEED)
    if smoke:
        targets = internet2.targets(network, seed=SEED)[:20]
    else:
        targets = network.pick_targets(random.Random(SEED ^ 0x5EED),
                                       per_subnet=5)

    engine_lanes = engine_probe_rates(network, targets)
    engine_serial = engine_lanes["serial"]
    engine_fast = engine_lanes["fastpath"]
    engine_batched = engine_lanes["batched"]
    engine_bulk = engine_lanes["bulk"]
    counters = counters_overhead(network, targets)
    survey_slow, _ = serial_survey(network, targets, path_cache=False)
    survey_fast, serial_archive = serial_survey(network, targets,
                                                path_cache=True)
    # Same fastpath configuration with the metrics registry + auditor
    # attached: the rate delta against the bare lane is the measured cost
    # of event emission, and the registry snapshot lands in the artifact.
    registry = MetricsRegistry()
    survey_metered, metered_archive = serial_survey(network, targets,
                                                    path_cache=True,
                                                    metrics=registry)
    # Batched pipeline, exact mode: batch_window=1 routes every ladder
    # probe through send_many without changing the probe stream, so the
    # archive must serialize byte-for-byte equal to the serial lane's.
    survey_batched, batched_archive = serial_survey(network, targets,
                                                    path_cache=True,
                                                    batch_window=1)
    # Stop-set mode: probe-economy-changing by design (probes only go
    # down), map-equal on the reference networks.
    stop_set = StopSet()
    survey_stopset, stopset_archive = serial_survey(network, targets,
                                                    path_cache=True,
                                                    stop_set=stop_set)
    survey_parallel, parallel_archive = parallel_survey(network, targets,
                                                        workers=workers)
    parallel_equal = archives_equivalent(serial_archive, parallel_archive)
    metered_equal = archives_equivalent(serial_archive, metered_archive)
    batched_bytes_equal = (archive_bytes(serial_archive)
                           == archive_bytes(batched_archive))
    stopset_equal = archives_equivalent(serial_archive, stopset_archive)
    instrumentation_overhead = round(
        1 - (survey_metered["probes_per_sec"]
             / max(1e-9, survey_fast["probes_per_sec"])), 4)

    speedup = (engine_fast["probes_per_sec"]
               / max(1e-9, engine_serial["probes_per_sec"]))
    batched_speedup = (engine_batched["probes_per_sec"]
                       / max(1e-9, engine_serial["probes_per_sec"]))
    bulk_speedup = (engine_bulk["probes_per_sec"]
                    / max(1e-9, engine_serial["probes_per_sec"]))
    bulk_over_batched = (engine_bulk["probes_per_sec"]
                         / max(1e-9, engine_batched["probes_per_sec"]))
    result = {
        "bench": "survey_throughput",
        "topology": "internet2",
        "seed": SEED,
        "smoke": smoke,
        "targets": len(targets),
        "ttl_sweep": TTL_SWEEP,
        "probes_per_sec": {
            "serial": engine_serial["probes_per_sec"],
            "fastpath": engine_fast["probes_per_sec"],
            "batched": engine_batched["probes_per_sec"],
            "bulk": engine_bulk["probes_per_sec"],
            "parallel": survey_parallel["cold_probes_per_sec"],
            "parallel_warm": survey_parallel["warm_probes_per_sec"],
        },
        "fastpath_speedup": round(speedup, 2),
        "batched_speedup": round(batched_speedup, 2),
        "bulk_speedup": round(bulk_speedup, 2),
        "bulk_over_batched": round(bulk_over_batched, 2),
        "engine": {"serial": engine_serial, "fastpath": engine_fast,
                   "batched": engine_batched, "bulk": engine_bulk},
        "counters_only": counters,
        # Fractional rate cost when only counter sinks are subscribed:
        # every producer takes the type-only tally path.
        "counters_only_overhead": counters["overhead"],
        # Counter sink + clocked SpanBuilder: full event construction and
        # span-tree maintenance — the live cost of `survey --spans-out`.
        "counters_tracing_overhead": counters["tracing_overhead"],
        "survey": {
            "serial": survey_slow,
            "fastpath": survey_fast,
            "instrumented": survey_metered,
            "batched": survey_batched,
            "stopset": survey_stopset,
            "parallel": survey_parallel,
        },
        "parallel_equals_serial": parallel_equal,
        "instrumented_equals_serial": metered_equal,
        # batch_window=1 must preserve the probe stream exactly: the
        # serialized archives (probe counts included) are compared as bytes.
        "batched_equals_serial_bytes": batched_bytes_equal,
        # Stop sets change the probe economy, not the map.
        "stopset_equals_serial": stopset_equal,
        "stopset_probes_saved": (survey_fast["probes"]
                                 - survey_stopset["probes"]),
        # Fractional survey-rate cost of attaching the registry + auditor.
        "instrumentation_overhead": instrumentation_overhead,
        # Full registry of the instrumented lane: session metrics
        # (counters/histograms from the event stream, auditor included)
        # plus the engine's backend counters and timing spans.
        "metrics": registry.full_snapshot(),
        "overhead_violations": registry.value("overhead_violations_total"),
    }
    if not smoke:
        # Scale lanes are isolated in child interpreters so each reports
        # its own peak RSS; see scale_lane_subprocess.
        result["scale"] = {str(budget): scale_lane_subprocess(budget)
                           for budget in SCALE_LANES}
    return result


def write_result(result: dict) -> str:
    with open(RESULT_PATH, "w") as handle:
        json.dump(result, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return RESULT_PATH


def check(result: dict, smoke: bool) -> None:
    assert result["parallel_equals_serial"], (
        "parallel archive diverged from the serial archive")
    assert result["instrumented_equals_serial"], (
        "attaching metrics changed the collected archive")
    assert result["batched_equals_serial_bytes"], (
        "batch_window=1 changed the probe stream: batched archive is not "
        "byte-identical to the serial archive")
    assert result["stopset_equals_serial"], (
        "stop sets changed the collected map, not just the probe economy")
    assert result["stopset_probes_saved"] > 0, (
        "stop sets sent no fewer probes than the serial survey "
        f"(saved {result['stopset_probes_saved']})")
    assert result["engine"]["fastpath"]["hit_rate"] > 0, (
        "fast path never hit — cache not engaged")
    assert result["engine"]["batched"]["batches"] > 0, (
        "batched lane never dispatched through send_many")
    assert result["overhead_violations"] == 0, (
        "the reference survey tripped the probe-economy auditor")
    session = result["metrics"]["metrics"]["counters"]
    backend = result["metrics"]["backend"]["gauges"]
    assert session["probes_sent_total"] == backend["engine_probes_sent"], (
        "event-stream probe count diverged from the engine's own counter")
    assert result["batched_speedup"] > 1.0, (
        f"send_many is not faster than per-probe send "
        f"({result['batched_speedup']}x)")
    bulk = result["engine"]["bulk"]
    assert bulk["batches"] > 0, (
        "bulk lane never dispatched through send_many")
    assert (bulk["bulk_lookup_hits"] + bulk["bulk_lookup_misses"]
            == bulk["batched_probes"]), (
        "bulk-lookup counters do not reconcile: "
        f"{bulk['bulk_lookup_hits']} hits + {bulk['bulk_lookup_misses']} "
        f"misses != {bulk['batched_probes']} batched probes")
    if not smoke:
        assert result["fastpath_speedup"] >= 2.0, (
            f"fast path is only {result['fastpath_speedup']}x serial")
        assert result["batched_speedup"] >= 5.0, (
            f"batched dispatch is only {result['batched_speedup']}x serial")
        assert result["bulk_over_batched"] >= 1.5, (
            f"bulk dispatch is only {result['bulk_over_batched']}x the "
            f"legacy batched lane")
        assert result["bulk_speedup"] >= 10.0, (
            f"bulk dispatch is only {result['bulk_speedup']}x cache-off "
            f"serial")
        assert result["counters_only_overhead"] <= 0.25, (
            f"counter-only instrumentation costs "
            f"{result['counters_only_overhead']:.1%} of survey rate")
        assert result["counters_tracing_overhead"] <= 0.30, (
            f"counters + span tracing costs "
            f"{result['counters_tracing_overhead']:.1%} of survey rate")
        for budget, lane in result["scale"].items():
            assert lane["probes"] > 0 and lane["subnets_collected"] > 0, (
                f"scale lane {budget} collected nothing")
            assert lane["peak_rss_bytes"] > 0, (
                f"scale lane {budget} reported no peak RSS")


def test_survey_throughput():
    """Smoke lane for CI: tiny target set, correctness gates only."""
    result = run(smoke=True)
    write_result(result)
    check(result, smoke=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny target set (CI)")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--scale-lane", type=int, default=None, metavar="N",
                        help="run one N-interface scale lane, print JSON "
                             "(used by the parent bench via subprocess)")
    parser.add_argument("--scale-smoke", action="store_true",
                        help="10^5-interface CI gate; writes "
                             "BENCH_scale_smoke.json")
    args = parser.parse_args(argv)
    if args.scale_lane:
        print(json.dumps(scale_lane(args.scale_lane), sort_keys=True))
        return 0
    if args.scale_smoke:
        result = scale_smoke()
        print(f"scale smoke: {result['interfaces_requested']} interfaces, "
              f"{result['routers']} routers built in "
              f"{result['build_seconds']}s; batched survey sent "
              f"{result['survey']['batched']['probes']} probes "
              f"(archive bytes equal: "
              f"{result['batched_equals_serial_bytes']}, "
              f"auditor violations: {result['overhead_violations']})")
        print(f"wrote {SCALE_SMOKE_PATH}")
        return 0
    result = run(smoke=args.smoke, workers=args.workers)
    path = write_result(result)
    check(result, smoke=args.smoke)
    rates = result["probes_per_sec"]
    print(f"targets: {result['targets']}  (smoke={result['smoke']})")
    print(f"engine probes/sec: serial {rates['serial']:.0f} "
          f"-> fastpath {rates['fastpath']:.0f} "
          f"({result['fastpath_speedup']}x) "
          f"-> batched {rates['batched']:.0f} "
          f"({result['batched_speedup']}x) "
          f"-> bulk {rates['bulk']:.0f} "
          f"({result['bulk_speedup']}x serial, "
          f"{result['bulk_over_batched']}x batched)")
    print(f"survey probes/sec: serial "
          f"{result['survey']['serial']['probes_per_sec']:.0f} "
          f"-> fastpath {result['survey']['fastpath']['probes_per_sec']:.0f} "
          f"-> batched {result['survey']['batched']['probes_per_sec']:.0f}")
    print(f"parallel probes/sec: cold {rates['parallel']:.0f} "
          f"-> warm {rates['parallel_warm']:.0f} "
          f"({result['survey']['parallel']['workers']} workers, "
          f"{result['survey']['parallel']['shard_build_seconds_total']:.2f}s "
          f"shard startup)")
    stopset = result["survey"]["stopset"]
    print(f"stop sets: {stopset['suppressed']} probes suppressed, "
          f"{result['stopset_probes_saved']} fewer on the wire "
          f"(archive equivalent: {result['stopset_equals_serial']})")
    print(f"instrumented survey: "
          f"{result['survey']['instrumented']['probes_per_sec']:.0f} "
          f"probes/sec ({result['instrumentation_overhead']:.1%} metrics "
          f"overhead), {result['overhead_violations']} auditor violations")
    print(f"counters-only overhead: "
          f"{result['counters_only_overhead']:.1%}, "
          f"counters+tracing: {result['counters_tracing_overhead']:.1%} "
          f"(best-of-{result['counters_only']['reps']} interleaved)")
    for budget, lane in sorted(result.get("scale", {}).items(),
                               key=lambda item: int(item[0])):
        print(f"scale {budget}: {lane['interfaces_built']} interfaces "
              f"built in {lane['build_seconds']}s, survey "
              f"{lane['probes_per_sec']:.0f} probes/sec "
              f"({lane['bfs_runs']} BFS, "
              f"{lane['peak_rss_bytes'] / 2**30:.2f} GiB peak RSS)")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
