"""Section 1's cost-effectiveness claim.

"Taking into account that acquiring similar information with traceroute
requires extensive tracing conducted from many vantage points and a careful
post processing, tracenet can be regarded as a cost effective solution in
terms of bandwidth and computation."

This bench pits one tracenet vantage against classic traceroute run from
*every* vantage point over the same target set and compares the address
yield per byte on the wire.
"""

from conftest import BENCH_SEED, BENCH_TARGETS_PER_ISP, write_artifact
from repro import experiments


def test_bandwidth_economy(benchmark, isp_internet):
    outcome = benchmark.pedantic(
        experiments.run_bandwidth_comparison,
        kwargs=dict(seed=BENCH_SEED, per_isp=BENCH_TARGETS_PER_ISP,
                    internet=isp_internet),
        rounds=1, iterations=1)
    text = outcome.render()
    print()
    print(text)
    write_artifact("bandwidth_economy.txt", text)

    # One tracenet vantage discovers more addresses than traceroute from
    # all three vantages combined...
    assert outcome.tracenet_addresses > outcome.traceroute_addresses
    # ...at a comparable or better per-address wire cost.
    assert (outcome.tracenet_bytes_per_address
            <= outcome.traceroute_bytes_per_address * 1.5)
