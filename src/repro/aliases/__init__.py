"""IP alias resolution: analytical pairs from tracenet data plus
Ally-style IP-ID verification, with ground-truth evaluation."""

from .ally import AliasVerdict, AllyResolver, AllyResult
from .analytical import (
    AliasPair,
    alias_sets,
    analytical_pairs,
    negative_pairs,
    pair_keys,
)
from .evaluate import (
    AliasAccuracy,
    ground_truth_pairs,
    pairs_from_sets,
    score_pairs,
)
from .unionfind import UnionFind, groups_from_pairs

__all__ = [
    "AliasAccuracy",
    "AliasPair",
    "AliasVerdict",
    "AllyResolver",
    "AllyResult",
    "UnionFind",
    "alias_sets",
    "analytical_pairs",
    "negative_pairs",
    "ground_truth_pairs",
    "groups_from_pairs",
    "pair_keys",
    "pairs_from_sets",
    "score_pairs",
]
