"""Analytical alias resolution from tracenet's own data.

Router-level maps need interfaces grouped into routers (the paper's
introduction: "router level maps group the interfaces hosted by the same
router into a single unit (via alias resolution)").  Classic resolution
probes address pairs; tracenet's collection structure yields alias pairs
*without any additional probing*:

* a subnet's **ingress interface** (obtained by expiring a probe one hop
  short of the pivot) and its **contra-pivot** (the member one hop closer
  than every other member) both sit on the ingress router;
* the **trace entry** ``u`` — the address the ingress router reported in
  trace-collection mode — sits on that same router whenever the subnet is
  on the trace path.

These are exactly the relations the authors exploit in their follow-on
work on subnet-centric alias resolution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Set, Tuple

from ..core.results import ObservedSubnet
from .unionfind import UnionFind


@dataclass(frozen=True)
class AliasPair:
    """Two addresses believed to sit on one router, plus the evidence."""

    first: int
    second: int
    evidence: str

    def normalized(self) -> Tuple[int, int]:
        return (self.first, self.second) if self.first <= self.second else \
            (self.second, self.first)


def analytical_pairs(subnets: Iterable[ObservedSubnet]) -> List[AliasPair]:
    """Extract alias pairs implied by observed-subnet structure."""
    pairs: List[AliasPair] = []
    for subnet in subnets:
        if subnet.contra_pivot is None:
            continue
        if subnet.ingress is not None and subnet.ingress != subnet.contra_pivot:
            pairs.append(AliasPair(subnet.ingress, subnet.contra_pivot,
                                   evidence="ingress+contra-pivot"))
        # The trace entry u sits on the ingress router only when the pivot
        # is the trace-observed address itself: when positioning promoted
        # v's mate, u is the hop *before* the ingress router and the
        # relation does not hold.
        if (subnet.on_trace_path
                and subnet.trace_address == subnet.pivot
                and subnet.trace_entry is not None
                and subnet.trace_entry not in (subnet.contra_pivot,
                                               subnet.ingress)):
            pairs.append(AliasPair(subnet.trace_entry, subnet.contra_pivot,
                                   evidence="trace-entry+contra-pivot"))
    return pairs


def negative_pairs(subnets: Iterable[ObservedSubnet]) -> Set[Tuple[int, int]]:
    """Same-subnet address pairs — guaranteed *non*-aliases.

    Interfaces on one LAN belong to different routers (a router attaches to
    a subnet through exactly one interface), so every member pair of an
    observed subnet is a negative constraint for alias resolution.  This is
    the complementary gift of subnet-level collection: resolvers can prune
    their candidate space before spending any probes.
    """
    negatives: Set[Tuple[int, int]] = set()
    for subnet in subnets:
        members = sorted(subnet.members)
        for i, first in enumerate(members):
            for second in members[i + 1:]:
                negatives.add((first, second))
    return negatives


def alias_sets(pairs: Iterable[AliasPair]) -> List[Set[int]]:
    """Close the pairwise relation into router interface groups."""
    structure = UnionFind()
    for pair in pairs:
        structure.union(pair.first, pair.second)
    return structure.groups()


def pair_keys(pairs: Iterable[AliasPair]) -> Set[Tuple[int, int]]:
    """Deduplicated, order-normalized pair set (for evaluation)."""
    return {pair.normalized() for pair in pairs}
