"""Ally-style IP-ID alias resolution (Rocketfuel's technique, paper ref [21]).

Many routers stamp every packet they originate from one shared, increasing
IP-ID counter.  Probing two addresses in quick alternation and observing
interleaved, close-together IDs is then strong evidence the addresses share
a router; far-apart or non-monotonic IDs are evidence against.  Routers
that randomize the ID field (modern stacks) are detected and reported as
inconclusive rather than non-aliases.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from ..probing.prober import Prober

PHASE_ALLY = "alias-ally"

#: Maximum ID advance (mod 2^16) between consecutive replies of one counter.
DEFAULT_TOLERANCE = 220
#: Gap treated as "wrapped/random", beyond which ordering says nothing.
RANDOM_GAP = 20_000


class AliasVerdict(enum.Enum):
    ALIASES = "aliases"
    NOT_ALIASES = "not-aliases"
    UNKNOWN = "unknown"


@dataclass
class AllyResult:
    """Outcome of one pairwise test, with the observed ID sequence."""

    first: int
    second: int
    verdict: AliasVerdict
    ids: List[Optional[int]]
    reason: str = ""


class AllyResolver:
    """Pairwise IP-ID alias tester bound to one prober.

    Args:
        prober: probe transport (budget/caching rules apply; the resolver
            disables response caching implicitly by using distinct flow
            ids, since repeated IDs from a cache would fake a shared
            counter).
        tolerance: maximum credible counter advance between our packets.
    """

    def __init__(self, prober: Prober, tolerance: int = DEFAULT_TOLERANCE):
        self.prober = prober
        self.tolerance = tolerance
        self._flow = 7_000_000  # distinct flow ids bypass the probe cache
        self.tests_run = 0

    def are_aliases(self, first: int, second: int) -> AllyResult:
        """Probe first/second/first/second and judge the ID interleaving."""
        self.tests_run += 1
        ids: List[Optional[int]] = []
        for address in (first, second, first, second):
            response = self.prober.probe(address, ttl=64, phase=PHASE_ALLY,
                                         flow_id=self._next_flow())
            ids.append(response.ip_id
                       if response is not None and response.is_alive_signal
                       else None)
        if any(value is None for value in ids):
            return AllyResult(first, second, AliasVerdict.UNKNOWN, ids,
                              reason="unresponsive address")
        # Self-consistency first: the two replies from one address must look
        # like one counter, otherwise the stack randomizes its IDs and the
        # test can prove nothing either way.
        for start in (0, 1):
            if self._advance(ids[start], ids[start + 2]) > 3 * self.tolerance:
                return AllyResult(first, second, AliasVerdict.UNKNOWN, ids,
                                  reason="randomized ip-ids")
        deltas = [self._advance(a, b) for a, b in zip(ids, ids[1:])]
        if all(delta <= self.tolerance for delta in deltas):
            return AllyResult(first, second, AliasVerdict.ALIASES, ids,
                              reason="interleaved shared counter")
        return AllyResult(first, second, AliasVerdict.NOT_ALIASES, ids,
                          reason="independent counters")

    def verify_pairs(self, pairs) -> List[AllyResult]:
        """Test a batch of (first, second) pairs."""
        return [self.are_aliases(first, second) for first, second in pairs]

    def _next_flow(self) -> int:
        self._flow += 1
        return self._flow

    @staticmethod
    def _advance(a: int, b: int) -> int:
        """Forward distance from id ``a`` to ``b`` on the mod-2^16 circle."""
        return (b - a) % 65536
