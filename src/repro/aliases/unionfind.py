"""A small union-find for grouping interface addresses into routers."""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Set


class UnionFind:
    """Disjoint sets with path compression and union by size."""

    def __init__(self):
        self._parent: Dict[Hashable, Hashable] = {}
        self._size: Dict[Hashable, int] = {}

    def add(self, item: Hashable) -> None:
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1

    def find(self, item: Hashable) -> Hashable:
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Hashable, b: Hashable) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]

    def together(self, a: Hashable, b: Hashable) -> bool:
        return self.find(a) == self.find(b)

    def groups(self) -> List[Set[Hashable]]:
        """All disjoint sets, largest first."""
        by_root: Dict[Hashable, Set[Hashable]] = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), set()).add(item)
        return sorted(by_root.values(), key=len, reverse=True)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._parent

    def __len__(self) -> int:
        return len(self._parent)


def groups_from_pairs(pairs: Iterable) -> List[Set[Hashable]]:
    """Union-find over an iterable of 2-tuples."""
    structure = UnionFind()
    for a, b in pairs:
        structure.union(a, b)
    return structure.groups()
