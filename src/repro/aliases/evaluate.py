"""Evaluating alias inference against simulator ground truth."""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, List, Set, Tuple

from ..netsim.topology import Topology


@dataclass
class AliasAccuracy:
    """Precision/recall of an inferred alias pair set."""

    true_positives: int
    false_positives: int
    ground_truth_pairs: int

    @property
    def inferred_pairs(self) -> int:
        return self.true_positives + self.false_positives

    @property
    def precision(self) -> float:
        if not self.inferred_pairs:
            return 1.0
        return self.true_positives / self.inferred_pairs

    @property
    def recall(self) -> float:
        if not self.ground_truth_pairs:
            return 1.0
        return self.true_positives / self.ground_truth_pairs

    def describe(self) -> str:
        return (f"{self.inferred_pairs} pairs inferred: "
                f"precision {self.precision:.1%}, recall {self.recall:.1%} "
                f"(of {self.ground_truth_pairs} true pairs)")


def ground_truth_pairs(topology: Topology,
                       restrict_to: Iterable[int] = None) -> Set[Tuple[int, int]]:
    """All same-router address pairs, optionally restricted to a set of
    observed addresses (recall should not punish unseen interfaces)."""
    wanted = set(restrict_to) if restrict_to is not None else None
    pairs: Set[Tuple[int, int]] = set()
    for router in topology.routers.values():
        addresses = sorted(router.addresses)
        if wanted is not None:
            addresses = [a for a in addresses if a in wanted]
        for a, b in combinations(addresses, 2):
            pairs.add((a, b))
    return pairs


def score_pairs(inferred: Iterable[Tuple[int, int]],
                truth: Set[Tuple[int, int]]) -> AliasAccuracy:
    """Precision/recall of normalized inferred pairs against truth."""
    normalized = {(min(a, b), max(a, b)) for a, b in inferred}
    true_positives = len(normalized & truth)
    return AliasAccuracy(
        true_positives=true_positives,
        false_positives=len(normalized) - true_positives,
        ground_truth_pairs=len(truth),
    )


def pairs_from_sets(alias_sets: Iterable[Set[int]]) -> List[Tuple[int, int]]:
    """Expand alias sets into their implied pairwise relation."""
    pairs: List[Tuple[int, int]] = []
    for group in alias_sets:
        pairs.extend(combinations(sorted(group), 2))
    return pairs
