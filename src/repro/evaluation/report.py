"""ASCII renderers that print the paper's tables and figures.

Every bench regenerates its artifact through one of these so the output can
be compared row by row against the paper.
"""

from __future__ import annotations

import math
from typing import FrozenSet, Iterable, List, Mapping, Sequence

from .crossval import IPAccounting
from .matching import MatchReport

ROW_ORDER = ("orgl", "exmt", "miss", "miss\\unrs", "undes", "undes\\unrs",
             "ovres", "splt", "merg")


def render_distribution_table(report: MatchReport, title: str) -> str:
    """Tables 1–2: original vs collected subnet distribution."""
    rows = report.distribution_rows()
    lengths = sorted(rows["orgl"])
    table: List[List[str]] = [
        [""] + [f"/{length}" for length in lengths] + ["total"]
    ]
    for name in ROW_ORDER:
        cells = [name] + [str(rows[name][length]) for length in lengths]
        cells.append(str(sum(rows[name].values())))
        table.append(cells)
    lines = [title]
    lines.extend(_render_rows(table))
    lines.append("")
    lines.append(
        f"exact match rate (incl. unresponsive): "
        f"{report.exact_match_rate():.1%}"
    )
    lines.append(
        f"exact match rate (excl. unresponsive): "
        f"{report.exact_match_rate(exclude_unresponsive=True):.1%}"
    )
    return "\n".join(lines)


def render_protocol_table(counts: Mapping[str, Mapping[str, int]],
                          protocols: Sequence[str] = ("icmp", "udp", "tcp"),
                          title: str = "Table 3: subnets per probing protocol"
                          ) -> str:
    """Table 3: subnets collected per ISP under each probing protocol."""
    table: List[List[str]] = [[""] + [p.upper() for p in protocols]]
    totals = {protocol: 0 for protocol in protocols}
    for group in counts:
        row = [group]
        for protocol in protocols:
            value = counts[group].get(protocol, 0)
            totals[protocol] += value
            row.append(str(value))
        table.append(row)
    table.append(["Total"] + [str(totals[p]) for p in protocols])
    return "\n".join([title] + _render_rows(table))


def render_venn(regions: Mapping[FrozenSet[str], int],
                names: Sequence[str],
                title: str = "Figure 6: exact-match subnets per vantage set"
                ) -> str:
    """Figure 6: exclusive Venn region counts."""
    lines = [title]
    ordered = sorted(regions.items(), key=lambda kv: (len(kv[0]), sorted(kv[0])))
    for observers, count in ordered:
        label = " & ".join(sorted(observers)) if observers else "(none)"
        lines.append(f"  {label:<28} {count}")
    return "\n".join(lines)


def render_ip_accounting(rows: Iterable[IPAccounting],
                         title: str = "Figure 7: IP address accounting"
                         ) -> str:
    """Figure 7: target / subnetized / un-subnetized bars as a table."""
    table: List[List[str]] = [["vantage", "group", "target",
                               "subnetized", "un-subnetized"]]
    for row in rows:
        table.append([row.vantage, row.group, str(row.targets),
                      str(row.subnetized), str(row.unsubnetized)])
    return "\n".join([title] + _render_rows(table))


def render_group_counts(counts: Mapping[str, Mapping[str, int]],
                        title: str = "Figure 8: subnets per ISP per vantage"
                        ) -> str:
    """Figure 8: subnet frequency per group (columns) per vantage (rows)."""
    groups: List[str] = sorted({g for per in counts.values() for g in per})
    table: List[List[str]] = [["vantage"] + groups]
    for vantage in sorted(counts):
        table.append([vantage] + [str(counts[vantage].get(g, 0))
                                  for g in groups])
    return "\n".join([title] + _render_rows(table))


def render_histogram(histograms: Mapping[str, Mapping[int, int]],
                     title: str = "Figure 9: subnet prefix length distribution",
                     log_bars: bool = True) -> str:
    """Figure 9: per-vantage prefix-length frequencies with log-scale bars."""
    lengths = sorted({length for h in histograms.values() for length in h})
    table: List[List[str]] = [["prefix"] + sorted(histograms)]
    for length in lengths:
        row = [f"/{length}"]
        for vantage in sorted(histograms):
            row.append(str(histograms[vantage].get(length, 0)))
        table.append(row)
    lines = [title] + _render_rows(table)
    if log_bars:
        lines.append("")
        for vantage in sorted(histograms):
            lines.append(f"  {vantage}:")
            for length in lengths:
                count = histograms[vantage].get(length, 0)
                bar = "#" * int(round(4 * math.log10(count))) if count else ""
                lines.append(f"    /{length:<3} {count:>6} {bar}")
    return "\n".join(lines)


def render_similarity(name: str, prefix_sim: float, size_sim: float) -> str:
    """Section 4.1.2's similarity summary lines."""
    return (f"{name}: prefix-length similarity {prefix_sim:.3f}, "
            f"subnet-size similarity {size_sim:.3f}")


def _render_rows(rows: Sequence[Sequence[str]]) -> List[str]:
    """Align rows column-wise: first column left, the rest right."""
    columns = max(len(row) for row in rows)
    widths = [
        max((len(row[i]) for row in rows if i < len(row)), default=0)
        for i in range(columns)
    ]
    lines = []
    for row in rows:
        cells = [row[0].ljust(widths[0])]
        cells.extend(cell.rjust(widths[i + 1] + 2)
                     for i, cell in enumerate(row[1:]))
        lines.append("".join(cells).rstrip())
    return lines
