"""Router-level map accuracy.

The paper's introduction lays out the map hierarchy: IP-level maps list
addresses, router-level maps group them into routers (via alias
resolution), subnet-level maps add the "being on the same LAN" relation.
This module closes the loop: given tracenet's collected subnets and an
alias grouping, build the inferred router-level graph and score it against
the simulator's ground truth.

Nodes are routers (inferred: alias groups + singleton addresses); edges are
router adjacencies (two routers sharing a subnet).  Scoring separates
*grouping* quality (are same-router interfaces together?) from *link*
quality (are the inferred adjacencies real?).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from ..core.results import ObservedSubnet
from ..netsim.topology import Topology


@dataclass
class RouterLevelMap:
    """An inferred router-level graph."""

    #: each node is a frozenset of interface addresses believed co-located
    nodes: List[FrozenSet[int]]
    #: edges between node indices
    edges: Set[Tuple[int, int]]

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def edge_count(self) -> int:
        return len(self.edges)

    def node_of(self, address: int) -> int:
        for index, node in enumerate(self.nodes):
            if address in node:
                return index
        return -1

    def summary(self) -> str:
        grouped = sum(1 for node in self.nodes if len(node) > 1)
        return (f"router-level map: {self.node_count} routers "
                f"({grouped} multi-interface), {self.edge_count} links")


def build_router_level_map(subnets: Iterable[ObservedSubnet],
                           alias_groups: Iterable[Set[int]]
                           ) -> RouterLevelMap:
    """Assemble the router graph from subnets plus alias groups.

    Every address in an alias group maps to that group's node; addresses
    not covered by any group become singleton routers.  Each multi-member
    subnet contributes edges between the nodes of its members (they share
    the LAN), and between the contra-pivot's node and the other members'
    nodes only — we keep it conservative: a LAN proves pairwise adjacency
    between every pair of attached routers.
    """
    groups = [frozenset(group) for group in alias_groups if group]
    claimed: Dict[int, int] = {}
    for index, group in enumerate(groups):
        for address in group:
            claimed.setdefault(address, index)

    nodes: List[FrozenSet[int]] = list(groups)
    subnet_list = [s for s in subnets if s.size >= 2]
    for subnet in subnet_list:
        for address in subnet.members:
            if address not in claimed:
                claimed[address] = len(nodes)
                nodes.append(frozenset([address]))

    edges: Set[Tuple[int, int]] = set()
    for subnet in subnet_list:
        member_nodes = sorted({claimed[m] for m in subnet.members
                               if m in claimed})
        for a, b in combinations(member_nodes, 2):
            edges.add((a, b))
    return RouterLevelMap(nodes=nodes, edges=edges)


@dataclass
class RouterLevelAccuracy:
    """Grouping and link accuracy of an inferred router-level map."""

    grouping_precision: float
    grouping_recall: float
    link_precision: float
    link_recall: float
    inferred_routers: int
    true_routers_observed: int

    def describe(self) -> str:
        return (f"grouping precision {self.grouping_precision:.1%} / "
                f"recall {self.grouping_recall:.1%}; "
                f"links precision {self.link_precision:.1%} / "
                f"recall {self.link_recall:.1%} "
                f"({self.inferred_routers} inferred vs "
                f"{self.true_routers_observed} observed true routers)")


def score_router_level_map(inferred: RouterLevelMap,
                           topology: Topology) -> RouterLevelAccuracy:
    """Score grouping (same-router pairs) and links (router adjacencies)."""
    observed_addresses = {a for node in inferred.nodes for a in node}

    # Grouping: pairwise same-router relation over observed addresses.
    inferred_pairs: Set[Tuple[int, int]] = set()
    for node in inferred.nodes:
        for a, b in combinations(sorted(node), 2):
            inferred_pairs.add((a, b))
    true_pairs: Set[Tuple[int, int]] = set()
    for router in topology.routers.values():
        addresses = sorted(a for a in router.addresses
                           if a in observed_addresses)
        for a, b in combinations(addresses, 2):
            true_pairs.add((a, b))
    grouping_tp = len(inferred_pairs & true_pairs)
    grouping_precision = (grouping_tp / len(inferred_pairs)
                          if inferred_pairs else 1.0)
    grouping_recall = grouping_tp / len(true_pairs) if true_pairs else 1.0

    # Links: inferred node adjacency vs true router adjacency, both
    # projected onto the observed world.
    def true_router_of(address: int) -> str:
        iface = topology.interface_at(address)
        return iface.router_id if iface is not None else f"host:{address}"

    inferred_links: Set[FrozenSet[str]] = set()
    for a, b in inferred.edges:
        routers_a = {true_router_of(addr) for addr in inferred.nodes[a]}
        routers_b = {true_router_of(addr) for addr in inferred.nodes[b]}
        # The inferred link is judged by its dominant mapping: take the
        # pairing of each node's (single, if correctly grouped) router.
        for ra in routers_a:
            for rb in routers_b:
                if ra != rb:
                    inferred_links.add(frozenset((ra, rb)))

    observed_routers = {true_router_of(a) for a in observed_addresses}
    true_links: Set[FrozenSet[str]] = set()
    for subnet in topology.subnets.values():
        attached = [r for r in subnet.router_ids if r in observed_routers]
        for a, b in combinations(sorted(attached), 2):
            true_links.add(frozenset((a, b)))
    link_tp = len(inferred_links & true_links)
    link_precision = link_tp / len(inferred_links) if inferred_links else 1.0
    link_recall = link_tp / len(true_links) if true_links else 1.0

    return RouterLevelAccuracy(
        grouping_precision=grouping_precision,
        grouping_recall=grouping_recall,
        link_precision=link_precision,
        link_recall=link_recall,
        inferred_routers=inferred.node_count,
        true_routers_observed=len(observed_routers),
    )
