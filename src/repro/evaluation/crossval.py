"""Multi-vantage cross-validation (paper Section 4.2, Figures 6–8).

Commercial ISP ground truth is proprietary, so the paper validates tracenet
by agreement: the same target set traced from three PlanetLab sites, then
the per-vantage collected subnet sets are intersected.  This module computes
the Venn regions of Figure 6, the per-vantage agreement rates the paper
quotes (~60% seen by all three, ~80% seen by at least one other), and the
target / subnetized / un-subnetized IP accounting of Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set

from ..core.results import ObservedSubnet
from ..netsim.addressing import Prefix


@dataclass
class VantageCollection:
    """Everything one vantage point collected over the common target set."""

    vantage: str
    subnets: List[ObservedSubnet] = field(default_factory=list)
    targets: List[int] = field(default_factory=list)

    @property
    def prefixes(self) -> Set[Prefix]:
        """Distinct multi-member subnet blocks this vantage observed."""
        return {s.prefix for s in self.subnets if s.size >= 2}

    @property
    def subnetized_addresses(self) -> Set[int]:
        """Addresses placed into a subnet larger than /32."""
        placed: Set[int] = set()
        for subnet in self.subnets:
            if subnet.size >= 2:
                placed.update(subnet.members)
        return placed

    @property
    def unsubnetized_addresses(self) -> Set[int]:
        """Addresses found alive but never placed into a subnet (Figure 7)."""
        placed = self.subnetized_addresses
        return {
            s.pivot for s in self.subnets if s.size == 1 and s.pivot not in placed
        }


def venn_regions(collections: Dict[str, Set[Prefix]]
                 ) -> Dict[FrozenSet[str], int]:
    """Exclusive Venn region sizes over per-vantage subnet sets (Figure 6).

    Keys are frozensets of vantage names; the value counts subnets observed
    by *exactly* that set of vantages.
    """
    names = sorted(collections)
    regions: Dict[FrozenSet[str], int] = {}
    universe: Set[Prefix] = set()
    for subnet_set in collections.values():
        universe |= subnet_set
    for block in universe:
        observers = frozenset(n for n in names if block in collections[n])
        regions[observers] = regions.get(observers, 0) + 1
    return regions


def agreement_rates(collections: Dict[str, Set[Prefix]]) -> Dict[str, Dict[str, float]]:
    """Per-vantage agreement fractions the paper quotes.

    For each vantage: ``all`` — the fraction of its subnets seen by every
    other vantage (~60% in the paper); ``shared`` — the fraction seen by at
    least one other (~80%).
    """
    names = sorted(collections)
    rates: Dict[str, Dict[str, float]] = {}
    for name in names:
        own = collections[name]
        if not own:
            rates[name] = {"all": 0.0, "shared": 0.0}
            continue
        others = [collections[other] for other in names if other != name]
        seen_by_all = sum(1 for block in own
                          if all(block in other for other in others))
        seen_by_any = sum(1 for block in own
                          if any(block in other for other in others))
        rates[name] = {
            "all": seen_by_all / len(own),
            "shared": seen_by_any / len(own),
        }
    return rates


def pairwise_overlap(collections: Dict[str, Set[Prefix]]
                     ) -> Dict[FrozenSet[str], int]:
    """|A ∩ B| for every vantage pair (inclusive, unlike venn_regions)."""
    overlap: Dict[FrozenSet[str], int] = {}
    for a, b in combinations(sorted(collections), 2):
        overlap[frozenset((a, b))] = len(collections[a] & collections[b])
    return overlap


@dataclass
class IPAccounting:
    """One Figure 7 bar group: target / subnetized / un-subnetized."""

    vantage: str
    group: str
    targets: int
    subnetized: int
    unsubnetized: int


def ip_accounting(collection: VantageCollection,
                  group_of: Callable[[int], Optional[str]],
                  groups: Iterable[str]) -> List[IPAccounting]:
    """Figure 7 accounting, grouped (per ISP in the paper).

    ``group_of`` maps an address to its group (e.g.
    :meth:`~repro.topogen.isp.MultiISPNetwork.isp_of`); addresses mapping to
    None (transit space) are excluded.
    """
    rows: List[IPAccounting] = []
    subnetized = collection.subnetized_addresses
    unsubnetized = collection.unsubnetized_addresses
    for group in groups:
        rows.append(IPAccounting(
            vantage=collection.vantage,
            group=group,
            targets=sum(1 for a in collection.targets if group_of(a) == group),
            subnetized=sum(1 for a in subnetized if group_of(a) == group),
            unsubnetized=sum(1 for a in unsubnetized if group_of(a) == group),
        ))
    return rows


def subnets_per_group(collection: VantageCollection,
                      group_of: Callable[[Prefix], Optional[str]],
                      groups: Iterable[str]) -> Dict[str, int]:
    """Figure 8: distinct subnet count per group for one vantage."""
    counts = {group: 0 for group in groups}
    for block in collection.prefixes:
        group = group_of(block)
        if group in counts:
            counts[group] += 1
    return counts


def prefix_length_histogram(collection: VantageCollection,
                            lengths: Iterable[int] = range(20, 32)
                            ) -> Dict[int, int]:
    """Figure 9: subnet frequency by prefix length for one vantage."""
    histogram = {length: 0 for length in lengths}
    for block in collection.prefixes:
        if block.length in histogram:
            histogram[block.length] += 1
    return histogram
