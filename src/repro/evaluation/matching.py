"""Classify collected subnets against ground truth (Tables 1 and 2).

The paper buckets every *original* subnet into: exactly matched (``exmt``),
missing (``miss``), underestimated (``undes``), overestimated (``ovres``),
split (``splt``) or merged (``merg``) — and splits the missing and
underestimated rows by whether unresponsiveness (firewalls, silent
interfaces), rather than tracenet, caused the degradation (``\\unrs``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..netsim.addressing import Prefix
from ..topogen.spec import SubnetRecord


class Category(enum.Enum):
    """The paper's per-original-subnet outcome buckets."""

    EXACT = "exmt"
    MISS = "miss"
    UNDER = "undes"
    OVER = "ovres"
    SPLIT = "splt"
    MERGED = "merg"


@dataclass
class OriginalOutcome:
    """How one ground-truth subnet fared."""

    original: Prefix
    category: Category
    collected: List[Prefix] = field(default_factory=list)
    #: set by annotate_unresponsive: degradation caused by response policy
    unresponsive: bool = False

    @property
    def best_collected(self) -> Optional[Prefix]:
        """The collected block the distance functions compare against."""
        if not self.collected:
            return None
        if self.category == Category.SPLIT:
            # Equation (1) uses max{s^c_i} for split subnets.
            return max(self.collected, key=lambda p: p.length)
        if self.category in (Category.OVER, Category.MERGED):
            return min(self.collected, key=lambda p: p.length)
        return self.collected[0]


@dataclass
class MatchReport:
    """Outcome of matching one collected topology against ground truth."""

    outcomes: List[OriginalOutcome]
    extras: List[Prefix] = field(default_factory=list)

    def by_category(self, category: Category,
                    unresponsive: Optional[bool] = None
                    ) -> List[OriginalOutcome]:
        return [
            outcome for outcome in self.outcomes
            if outcome.category == category
            and (unresponsive is None or outcome.unresponsive == unresponsive)
        ]

    def count(self, category: Category,
              unresponsive: Optional[bool] = None) -> int:
        return len(self.by_category(category, unresponsive))

    def exact_match_rate(self, exclude_unresponsive: bool = False) -> float:
        """The paper's headline metric.

        ``exclude_unresponsive=False`` gives the "including unresponsive
        subnets" rate (73.7% / 53.5%); True excludes both totally and
        partially unresponsive subnets (94.9% / 97.3%).
        """
        exact = self.count(Category.EXACT)
        total = len(self.outcomes)
        if exclude_unresponsive:
            total -= sum(1 for outcome in self.outcomes if outcome.unresponsive)
        if total <= 0:
            return 0.0
        return exact / total

    def distribution_rows(self) -> Dict[str, Dict[int, int]]:
        """The rows of Tables 1–2: row name -> {prefix length: count}."""
        lengths = sorted({outcome.original.length for outcome in self.outcomes})
        rows: Dict[str, Dict[int, int]] = {
            name: {length: 0 for length in lengths}
            for name in ("orgl", "exmt", "miss", "miss\\unrs",
                         "undes", "undes\\unrs", "ovres", "splt", "merg")
        }
        for outcome in self.outcomes:
            length = outcome.original.length
            rows["orgl"][length] += 1
            if outcome.category == Category.EXACT:
                rows["exmt"][length] += 1
            elif outcome.category == Category.MISS:
                key = "miss\\unrs" if outcome.unresponsive else "miss"
                rows[key][length] += 1
            elif outcome.category == Category.UNDER:
                key = "undes\\unrs" if outcome.unresponsive else "undes"
                rows[key][length] += 1
            elif outcome.category == Category.OVER:
                rows["ovres"][length] += 1
            elif outcome.category == Category.SPLIT:
                rows["splt"][length] += 1
            elif outcome.category == Category.MERGED:
                rows["merg"][length] += 1
        return rows


def match_subnets(original: Sequence[Prefix],
                  collected: Iterable[Prefix]) -> MatchReport:
    """Match collected blocks to ground-truth blocks.

    Collected /32 singletons are ignored — they are un-subnetized addresses
    (Figure 7), not subnets.
    """
    collected_blocks = sorted(
        {block for block in collected if block.length < 32},
        key=lambda p: (p.network, p.length),
    )
    exact_set = set(collected_blocks)

    overlaps: Dict[Prefix, List[Prefix]] = {o: [] for o in original}
    covered_by: Dict[Prefix, List[Prefix]] = {c: [] for c in collected_blocks}
    for block in collected_blocks:
        for o in original:
            if block.overlaps(o):
                overlaps[o].append(block)
                covered_by[block].append(o)

    outcomes: List[OriginalOutcome] = []
    for o in original:
        blocks = overlaps[o]
        if not blocks:
            outcomes.append(OriginalOutcome(o, Category.MISS))
        elif o in exact_set:
            outcomes.append(OriginalOutcome(o, Category.EXACT, [o]))
        else:
            containing = [c for c in blocks if c.length < o.length]
            if containing:
                widest = min(containing, key=lambda p: p.length)
                # Originals whose only coverage is this over-wide block:
                # two or more of them were merged; a lone one was merely
                # overestimated (the paper's Sab rule).
                sole = [
                    other for other in covered_by[widest]
                    if other not in exact_set
                    and all(c.length < other.length for c in overlaps[other])
                ]
                category = Category.MERGED if len(sole) >= 2 else Category.OVER
                outcomes.append(OriginalOutcome(o, category, containing))
            else:
                inside = [c for c in blocks if c.length > o.length]
                category = Category.UNDER if len(inside) == 1 else Category.SPLIT
                outcomes.append(OriginalOutcome(o, category, inside))

    extras = [c for c in collected_blocks if not covered_by[c]]
    return MatchReport(outcomes=outcomes, extras=extras)


def annotate_unresponsive(report: MatchReport,
                          records: Iterable[SubnetRecord]) -> MatchReport:
    """Mark outcomes degraded by the response policy (the ``\\unrs`` split).

    The authors produced this split by re-probing every address of the
    missed/underestimated subnets; we read it off the ground truth instead:
    a firewalled subnet is totally unresponsive, a subnet with silenced
    interfaces partially so.
    """
    by_prefix = {record.prefix: record for record in records}
    for outcome in report.outcomes:
        record = by_prefix.get(outcome.original)
        if record is None:
            continue
        if outcome.category in (Category.MISS, Category.UNDER):
            outcome.unresponsive = record.unresponsive
    return report


def collected_prefixes(subnets, minimum_size: int = 2) -> List[Prefix]:
    """Extract comparable blocks from ObservedSubnet results."""
    return [subnet.prefix for subnet in subnets if subnet.size >= minimum_size]
