"""Topology similarity in euclidean space (paper Section 4.1.2, eqs. 1–5).

Each ground-truth subnet is a dimension; its value is the subnet's prefix
length (equations 1–3) or its size ``2^(32-p)`` (equations 4–5).  A
category-aware distance factor measures how far the collected topology
deviates along each dimension, and the normalized Minkowski distance of
order 1 becomes a similarity in [0, 1].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from .matching import Category, MatchReport, OriginalOutcome


@dataclass(frozen=True)
class PrefixBounds:
    """pu / pl: the extreme prefix values found in either topology."""

    upper: int  # pu — numerically largest prefix length (smallest subnet)
    lower: int  # pl — numerically smallest prefix length (largest subnet)


def prefix_bounds(report: MatchReport) -> PrefixBounds:
    """Bounds over the original and collected prefix values (paper: "upper
    and lower prefix values found in the original or collected topology")."""
    values = [outcome.original.length for outcome in report.outcomes]
    for outcome in report.outcomes:
        values.extend(block.length for block in outcome.collected)
    values.extend(block.length for block in report.extras)
    return PrefixBounds(upper=max(values), lower=min(values))


# -- equation (1): prefix distance factor -------------------------------------


def prefix_distance_factor(outcome: OriginalOutcome,
                           bounds: PrefixBounds) -> int:
    """d(S_i) of equation (1)."""
    so = outcome.original.length
    if outcome.category == Category.EXACT:
        return 0
    if outcome.category == Category.MISS:
        return max(abs(so - bounds.upper), abs(so - bounds.lower))
    sc = outcome.best_collected
    if sc is None:
        return max(abs(so - bounds.upper), abs(so - bounds.lower))
    return abs(so - sc.length)


# -- equation (4): size distance factor ---------------------------------------


def _size(prefix_length: int) -> int:
    return 1 << (32 - prefix_length)


def size_distance_factor(outcome: OriginalOutcome,
                         bounds: PrefixBounds) -> int:
    """d̂(S_i) of equation (4)."""
    so = outcome.original.length
    if outcome.category == Category.EXACT:
        return 0
    if outcome.category == Category.MISS:
        return max(_size(bounds.lower) - _size(so), _size(so) - _size(bounds.upper))
    sc = outcome.best_collected
    if sc is None:
        return max(_size(bounds.lower) - _size(so), _size(so) - _size(bounds.upper))
    if outcome.category == Category.SPLIT:
        # Equation (4) compares against the *largest* collected piece.
        largest = min(outcome.collected, key=lambda p: p.length)
        return abs(_size(so) - _size(largest.length))
    return abs(_size(so) - _size(sc.length))


# -- equation (2): Minkowski distance ------------------------------------------


def minkowski_distance(distances: Sequence[float], order: int = 1) -> float:
    """Equation (2): the Minkowski distance of order k over the factors."""
    if order < 1:
        raise ValueError("Minkowski order must be >= 1")
    return sum(d ** order for d in distances) ** (1.0 / order)


# -- equations (3) and (5): normalized similarities ------------------------------


def prefix_similarity(report: MatchReport,
                      bounds: Optional[PrefixBounds] = None) -> float:
    """Equation (3): 1 − Σd(Si) / Σ max(so−pl, pu−so)."""
    if not report.outcomes:
        return 1.0
    if bounds is None:
        bounds = prefix_bounds(report)
    numerator = sum(prefix_distance_factor(o, bounds) for o in report.outcomes)
    denominator = sum(
        max(o.original.length - bounds.lower, bounds.upper - o.original.length)
        for o in report.outcomes
    )
    if denominator == 0:
        return 1.0 if numerator == 0 else 0.0
    return 1.0 - numerator / denominator


def size_similarity(report: MatchReport,
                    bounds: Optional[PrefixBounds] = None) -> float:
    """Equation (5): the size-weighted analogue of equation (3)."""
    if not report.outcomes:
        return 1.0
    if bounds is None:
        bounds = prefix_bounds(report)
    numerator = sum(size_distance_factor(o, bounds) for o in report.outcomes)
    denominator = sum(
        max(_size(bounds.lower) - _size(o.original.length),
            _size(o.original.length) - _size(bounds.upper))
        for o in report.outcomes
    )
    if denominator == 0:
        return 1.0 if numerator == 0 else 0.0
    return 1.0 - numerator / denominator


def similarity_summary(report: MatchReport,
                       exclude_unresponsive: bool = False
                       ) -> Tuple[float, float]:
    """(prefix similarity, size similarity) — the paper's §4.1.2 numbers.

    ``exclude_unresponsive=True`` restricts the feature space to subnets
    the response policy left observable.  We report both variants: with a
    large unresponsive population (GEANT: 45% of subnets) the inclusive
    similarity is dominated by misses no collector could avoid.
    """
    if exclude_unresponsive:
        report = MatchReport(
            outcomes=[o for o in report.outcomes if not o.unresponsive],
            extras=list(report.extras),
        )
    if not report.outcomes:
        return (1.0, 1.0)
    bounds = prefix_bounds(report)
    return (prefix_similarity(report, bounds), size_similarity(report, bounds))
