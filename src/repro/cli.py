"""Command-line front end.

Because the live Internet is replaced by the simulator, every invocation
names a scenario topology to probe:

* ``tracenet trace --scenario figure2 --source A --dest D`` — one session,
  traceroute-style output with subnet annotations;
* ``tracenet survey --network internet2`` — the Table 1/2 experiment:
  trace one target per ground-truth subnet, print the distribution table
  and similarity rates;
* ``tracenet crossval`` — the Section 4.2 experiment: three vantages over
  the four-ISP internet (Figures 6–9);
* ``tracenet protocols`` — Table 3: ICMP vs UDP vs TCP;
* ``tracenet radar --network geant --churn-count 4`` — continuous
  re-surveys over a network mutating under the collector, incremental
  dirty-prefix re-probing, per-round archive diffs;
* ``tracenet diff old.json new.json`` — the offline archive diff (bit
  identical to the radar's in-run diffs).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from typing import List, Optional

from .baselines import Traceroute
from .core import TraceNET
from .evaluation import (
    VantageCollection,
    agreement_rates,
    annotate_unresponsive,
    collected_prefixes,
    match_subnets,
    prefix_length_histogram,
    render_distribution_table,
    render_histogram,
    render_protocol_table,
    render_similarity,
    render_venn,
    similarity_summary,
    subnets_per_group,
    venn_regions,
)
from .events import JsonlEventSink, ProgressSink
from .metrics import (
    MetricsRegistry,
    instrument,
    render_prometheus,
    stats_from_journal,
)
from .netsim import Engine, Protocol, format_ip, ip
from .topogen import build_internet, figures, geant, internet2
from .transport import (
    RecordingTransport,
    ReplayTransport,
    SimulatorTransport,
    collect_backend_metrics,
)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``tracenet`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    return args.handler(args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tracenet",
        description="TraceNET (IMC 2010) reproduction on a network simulator",
    )
    subparsers = parser.add_subparsers(dest="command")
    parser.set_defaults(command=None)

    trace = subparsers.add_parser("trace", help="one tracenet session")
    trace.add_argument("--scenario", choices=("figure2", "figure3"),
                       default="figure3")
    trace.add_argument("--source", default=None,
                       help="vantage host id (default: the scenario's first)")
    trace.add_argument("--dest", default=None,
                       help="destination IP (default: a far interface)")
    trace.add_argument("--protocol", choices=("icmp", "udp", "tcp"),
                       default="icmp")
    trace.add_argument("--compare-traceroute", action="store_true",
                       help="also print the plain traceroute view")
    trace.add_argument("--json", action="store_true", dest="as_json")
    _add_transport_options(trace)
    trace.set_defaults(handler=cmd_trace)

    survey = subparsers.add_parser(
        "survey", help="Table 1/2: accuracy over Internet2 or GEANT")
    survey.add_argument("--network", choices=("internet2", "geant"),
                        default="internet2")
    survey.add_argument("--seed", type=int, default=7)
    survey.add_argument("--workers", type=int, default=1,
                        help="shard the target list over N worker processes "
                             "(default: 1, serial)")
    survey.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                        help="per-shard checkpoint directory; a re-run with "
                             "the same targets and workers resumes")
    survey.add_argument("--progress", action="store_true",
                        help="render a progress bar on stderr (serial mode)")
    _add_transport_options(survey)
    survey.set_defaults(handler=cmd_survey)

    crossval = subparsers.add_parser(
        "crossval", help="Figures 6-9: three vantages over four ISPs")
    crossval.add_argument("--seed", type=int, default=42)
    crossval.add_argument("--scale", type=float, default=0.4)
    crossval.add_argument("--targets-per-isp", type=int, default=60)
    crossval.set_defaults(handler=cmd_crossval)

    protocols = subparsers.add_parser(
        "protocols", help="Table 3: ICMP vs UDP vs TCP probing")
    protocols.add_argument("--seed", type=int, default=42)
    protocols.add_argument("--scale", type=float, default=0.4)
    protocols.add_argument("--targets-per-isp", type=int, default=60)
    protocols.set_defaults(handler=cmd_protocols)

    map_cmd = subparsers.add_parser(
        "map", help="collect, merge and print a subnet-level topology map")
    map_cmd.add_argument("--scenario", choices=("figure2", "figure3"),
                         default="figure2")
    map_cmd.add_argument("--dot", action="store_true",
                         help="emit GraphViz instead of the adjacency list")
    map_cmd.add_argument("--save", default=None, metavar="PATH",
                         help="also save the per-vantage archives as JSON")
    map_cmd.set_defaults(handler=cmd_map)

    overhead_cmd = subparsers.add_parser(
        "overhead", help="Section 3.6: measured probe cost vs the model")
    overhead_cmd.add_argument("--sizes", default="2,4,6,10,14,22",
                              help="comma-separated subnet sizes")
    overhead_cmd.set_defaults(handler=cmd_overhead)

    export_cmd = subparsers.add_parser(
        "export", help="export a ground-truth scenario (topology + policy) "
                       "as JSON")
    export_cmd.add_argument("--network", choices=("internet2", "geant"),
                            default="internet2")
    export_cmd.add_argument("--seed", type=int, default=7)
    export_cmd.add_argument("--out", required=True, metavar="PATH")
    export_cmd.set_defaults(handler=cmd_export)

    submit = subparsers.add_parser(
        "submit", help="queue a survey job for the distributed service")
    submit.add_argument("--queue", required=True, metavar="DIR",
                        help="service directory (holds queue.jsonl and "
                             "per-job artifacts)")
    submit.add_argument("--network", choices=("internet2", "geant"),
                        default="internet2")
    submit.add_argument("--seed", type=int, default=7)
    submit.add_argument("--shards", type=int, default=2,
                        help="split the target list into N shard leases")
    submit.add_argument("--limit", type=int, default=None, metavar="N",
                        help="survey only the first N targets")
    submit.add_argument("--checkpoint-every", type=int, default=25,
                        metavar="N", help="shard checkpoint cadence")
    submit.add_argument("--max-attempts", type=int, default=3, metavar="N",
                        help="lease attempts per shard before the job fails")
    submit.add_argument("--tenant", default="default")
    submit.add_argument("--batch-window", type=int, default=0, metavar="N",
                        help="per-shard probe batching window")
    submit.add_argument("--stop-sets", action="store_true",
                        help="enable Doubletree stop sets per shard")
    submit.add_argument("--radar", action="store_true",
                        help="queue a radar job: continuous re-surveys "
                             "(runs as one shard; --shards is ignored)")
    submit.add_argument("--rounds", type=int, default=3,
                        help="radar rounds (with --radar)")
    submit.add_argument("--churn-count", type=int, default=4, metavar="N",
                        help="radar mutation count (0 = no churn)")
    submit.add_argument("--churn-seed", type=int, default=7)
    submit.add_argument("--churn-start", type=int, default=200,
                        metavar="PROBES")
    submit.add_argument("--churn-interval", type=int, default=400,
                        metavar="PROBES")
    submit.add_argument("--drop-rate", type=float, default=0.0,
                        help="radar fault-injection loss rate")
    submit.add_argument("--fault-seed", type=int, default=0)
    submit.set_defaults(handler=cmd_submit)

    serve = subparsers.add_parser(
        "serve", help="run the survey service: drain the queue with a "
                      "fleet of vantage workers")
    serve.add_argument("--queue", required=True, metavar="DIR",
                       help="service directory written by 'tracenet submit'")
    serve.add_argument("--workers", type=int, default=2,
                       help="vantage workers in the fleet (default: 2)")
    serve.add_argument("--heartbeat-timeout", type=float, default=5.0,
                       metavar="SECONDS",
                       help="re-lease a shard after this long without a "
                            "worker heartbeat")
    serve.add_argument("--timeout", type=float, default=300.0,
                       metavar="SECONDS",
                       help="abort the fleet after this wall-clock budget")
    serve.add_argument("--stream-every", type=int, default=64, metavar="N",
                       help="worker event-stream flush cadence")
    serve.add_argument("--kill-worker-after", type=int, default=None,
                       metavar="N",
                       help="fault injection: the first worker dies "
                            "silently after N survey targets (exercises "
                            "re-lease + checkpoint resume)")
    serve.add_argument("--health-out", default=None, metavar="PATH",
                       help="publish fleet health telemetry (queue depth, "
                            "lease ages, heartbeat lag) as Prometheus text "
                            "to this file on every fleet tick")
    serve.set_defaults(handler=cmd_serve)

    radar = subparsers.add_parser(
        "radar", help="continuous re-surveys over a churning network with "
                      "incremental dirty-prefix re-probing")
    radar.add_argument("--network", choices=("internet2", "geant"),
                       default="geant")
    radar.add_argument("--seed", type=int, default=7)
    radar.add_argument("--rounds", type=int, default=3,
                       help="total rounds including the initial full survey")
    radar.add_argument("--limit", type=int, default=None, metavar="N",
                       help="survey only the first N targets")
    radar.add_argument("--full", action="store_true",
                       help="re-probe every target every round instead of "
                            "only the dirty prefixes")
    radar.add_argument("--churn-count", type=int, default=4, metavar="N",
                       help="mutations in the seeded schedule (0 disables "
                            "churn entirely)")
    radar.add_argument("--churn-seed", type=int, default=7)
    radar.add_argument("--churn-start", type=int, default=200,
                       metavar="PROBES",
                       help="probe count at which the first mutation fires")
    radar.add_argument("--churn-interval", type=int, default=400,
                       metavar="PROBES", help="probes between mutations")
    radar.add_argument("--drop-rate", type=float, default=0.0,
                       help="seeded uniform response loss on the live path")
    radar.add_argument("--fault-seed", type=int, default=0)
    radar.add_argument("--out", default=None, metavar="DIR",
                       help="save per-round archives, diffs and the radar "
                            "summary there")
    radar.add_argument("--json", action="store_true", dest="as_json",
                       help="emit the radar summary as JSON")
    _add_transport_options(radar)
    radar.set_defaults(handler=cmd_radar)

    diff_cmd = subparsers.add_parser(
        "diff", help="diff two collection archives offline (radar rounds, "
                     "checkpoints, service results)")
    diff_cmd.add_argument("old", metavar="OLD", help="earlier archive JSON")
    diff_cmd.add_argument("new", metavar="NEW", help="later archive JSON")
    diff_cmd.add_argument("--json", action="store_true", dest="as_json",
                          help="emit the full diff as JSON instead of the "
                               "summary paragraph")
    diff_cmd.add_argument("--out", default=None, metavar="PATH",
                          help="also write the diff JSON there")
    diff_cmd.set_defaults(handler=cmd_diff)

    jobs_cmd = subparsers.add_parser(
        "jobs", help="list the jobs in a service queue")
    jobs_cmd.add_argument("--queue", required=True, metavar="DIR")
    jobs_cmd.set_defaults(handler=cmd_jobs)

    stats_cmd = subparsers.add_parser(
        "stats", help="replay a probe or event journal offline and print "
                      "its metrics")
    stats_cmd.add_argument("journal", metavar="JOURNAL",
                           help="a JSONL probe journal written by --record, "
                                "or a session-event journal written by "
                                "--events / the survey service")
    stats_cmd.add_argument("--source", default=None,
                           help="vantage host id (default: from the journal)")
    stats_cmd.add_argument("--dest", default=None,
                           help="destination IP override (default: from the "
                                "journal metadata)")
    stats_cmd.add_argument("--format", choices=("json", "prometheus"),
                           default="json", dest="metrics_format")
    stats_cmd.add_argument("--out", default=None, metavar="PATH",
                           help="write the metrics there instead of stdout")
    stats_cmd.add_argument("--heuristics", action="store_true",
                           help="also print the per-rule H1-H9 attribution "
                                "table (fires, probes charged, verdicts, "
                                "subnet-growth outcomes)")
    stats_cmd.set_defaults(handler=cmd_stats)

    spans_cmd = subparsers.add_parser(
        "spans", help="derive a journal's deterministic span tree offline "
                      "(probe, event, or service job journals)")
    spans_cmd.add_argument("journal", metavar="JOURNAL",
                           help="a probe journal (--record), session-event "
                                "journal (--events), or a service job's "
                                "committed events.jsonl")
    spans_cmd.add_argument("--source", default=None,
                           help="vantage host id override (probe journals)")
    spans_cmd.add_argument("--dest", default=None,
                           help="destination IP override (probe journals)")
    spans_cmd.add_argument("--json", action="store_true", dest="as_json",
                           help="emit the tree as JSON instead of the "
                                "critical-path / heuristics report")
    spans_cmd.add_argument("--out", default=None, metavar="PATH",
                           help="write the JSON tree there (implies --json)")
    spans_cmd.add_argument("--chrome-out", default=None, metavar="PATH",
                           help="write a Chrome trace-event document "
                                "(empty for untimed offline trees)")
    spans_cmd.set_defaults(handler=cmd_spans)
    return parser


def _maybe_time(registry: Optional[MetricsRegistry], name: str):
    """A timing span when metrics are on, a no-op context otherwise."""
    from contextlib import nullcontext

    return registry.time(name) if registry is not None else nullcontext()


def _write_metrics(registry: MetricsRegistry, path: str, fmt: str) -> None:
    """Render a registry as JSON or Prometheus text, to a file or stdout."""
    if fmt == "prometheus":
        payload = render_prometheus(registry)
    else:
        payload = json.dumps(registry.full_snapshot(), indent=2,
                             sort_keys=True) + "\n"
    if path == "-":
        sys.stdout.write(payload)
    else:
        with open(path, "w", encoding="utf-8") as fp:
            fp.write(payload)


def _add_transport_options(command: argparse.ArgumentParser) -> None:
    """The transport-seam options every collection command shares."""
    command.add_argument("--record", default=None, metavar="JOURNAL",
                         help="journal every probe/response exchange to "
                              "this JSONL file")
    command.add_argument("--replay", default=None, metavar="JOURNAL",
                         help="re-serve a recorded journal instead of "
                              "probing the simulator")
    command.add_argument("--events", default=None, metavar="PATH",
                         help="write the session-event stream to this "
                              "JSONL file")
    command.add_argument("--metrics-out", default=None, metavar="PATH",
                         help="write the run's metrics registry there "
                              "('-' for stdout)")
    command.add_argument("--metrics-format", choices=("json", "prometheus"),
                         default="json",
                         help="metrics file format (default: json)")
    command.add_argument("--batch-window", type=int, default=0,
                         metavar="N",
                         help="dispatch ladder/sweep probes through the "
                              "transport batch API, up to N per batch "
                              "(1 keeps the probe stream identical to the "
                              "serial path, > 1 is speculative; default: "
                              "0, serial per-probe loop)")
    command.add_argument("--stop-sets", action="store_true",
                         help="Doubletree stop sets: suppress re-probing of "
                              "path prefixes already traced this session "
                              "(fewer probes, same map)")
    command.add_argument("--spans-out", default=None, metavar="PATH",
                         help="write the run's deterministic span tree "
                              "there as JSON ('-' for stdout); the same "
                              "tree 'tracenet spans' derives offline")
    command.add_argument("--chrome-out", default=None, metavar="PATH",
                         help="write a Chrome trace-event JSON flamegraph "
                              "of the run (timing plane)")


def _maybe_tracer(args):
    """A clocked SpanBuilder when --spans-out/--chrome-out ask for one.

    The clock feeds only the quarantined timing plane: the JSON written by
    ``--spans-out`` is the deterministic serialization, bit-identical to
    what ``tracenet spans`` derives from the matching journal offline.
    """
    if not (getattr(args, "spans_out", None)
            or getattr(args, "chrome_out", None)):
        return None
    from time import perf_counter

    from .tracing import SpanBuilder

    return SpanBuilder(clock=perf_counter)


def _write_spans(tracer, args) -> None:
    """Flush a finished tracer to --spans-out / --chrome-out."""
    if tracer is None:
        return
    root = tracer.finish()
    if args.spans_out:
        payload = json.dumps(root.to_dict(), indent=1, sort_keys=True) + "\n"
        if args.spans_out == "-":
            sys.stdout.write(payload)
        else:
            with open(args.spans_out, "w", encoding="utf-8") as fp:
                fp.write(payload)
            print(f"wrote span tree to {args.spans_out}", file=sys.stderr)
    if args.chrome_out:
        from .tracing import chrome_trace, write_chrome_trace

        write_chrome_trace(args.chrome_out, chrome_trace(root))
        print(f"wrote Chrome trace to {args.chrome_out}", file=sys.stderr)


def _collector_options(args) -> dict:
    """The probe-pipeline options shared by trace/survey (journal metadata)."""
    options = {}
    window = getattr(args, "batch_window", 0) or 0
    if window >= 1:
        options["batch_window"] = window
    if getattr(args, "stop_sets", False):
        options["stop_sets"] = True
    return options


def _collector_kwargs(options: dict) -> dict:
    """TraceNET keyword arguments for a :func:`_collector_options` payload."""
    kwargs = {}
    if options.get("batch_window"):
        kwargs["batch_window"] = options["batch_window"]
    if options.get("stop_sets"):
        from .probing import StopSet

        kwargs["stop_set"] = StopSet()
    return kwargs


def cmd_trace(args) -> int:
    if args.record and args.replay:
        print("--record and --replay are mutually exclusive", file=sys.stderr)
        return 2
    if args.replay:
        transport = ReplayTransport(args.replay)
        source = args.source or transport.metadata.get("source")
        dest_text = args.dest or transport.metadata.get("destination")
        if source is None or dest_text is None:
            print("the journal names no source/destination; pass --source "
                  "and --dest explicitly", file=sys.stderr)
            return 2
        destination = ip(dest_text)
        scenario = None
    else:
        scenario = (figures.figure2_network() if args.scenario == "figure2"
                    else figures.figure3_network())
        source = args.source or next(iter(scenario.hosts))
        if source not in scenario.topology.hosts:
            print(f"unknown source host {source!r}", file=sys.stderr)
            return 2
        destination = _resolve_destination(scenario, source, args.dest)
        transport = SimulatorTransport(scenario.engine())
        if args.record:
            metadata = {
                "scenario": args.scenario,
                "source": source,
                "destination": format_ip(destination),
                "protocol": args.protocol,
            }
            options = _collector_options(args)
            if options:
                metadata["collector"] = options
            transport = RecordingTransport(transport, args.record,
                                           metadata=metadata)
    tool = TraceNET(transport, source, protocol=Protocol(args.protocol),
                    **_collector_kwargs(_collector_options(args)))
    event_sink = None
    if args.events:
        event_sink = tool.events.subscribe(JsonlEventSink(args.events))
    tracer = _maybe_tracer(args)
    if tracer is not None:
        tool.events.subscribe(tracer)
    registry = None
    if args.metrics_out:
        registry = MetricsRegistry()
        instrument(tool.events, registry=registry)
    try:
        with _maybe_time(registry, "collection_seconds"):
            result = tool.trace(destination)
        if registry is not None:
            collect_backend_metrics(registry.backend, transport)
    finally:
        if event_sink is not None:
            event_sink.close()
        transport.close()
    if registry is not None:
        _write_metrics(registry, args.metrics_out, args.metrics_format)
    _write_spans(tracer, args)
    if args.as_json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(result.describe())
    if args.compare_traceroute:
        if scenario is None:
            print("(--compare-traceroute needs the simulator; "
                  "skipped under --replay)", file=sys.stderr)
        else:
            baseline = Traceroute(scenario.engine(), source,
                                  protocol=Protocol(args.protocol))
            print()
            print("traceroute view:")
            for hop in baseline.trace(destination).hops:
                addr = (format_ip(hop.address)
                        if hop.address is not None else "*")
                print(f"{hop.ttl:3d}  {addr}")
    return 0


def cmd_survey(args) -> int:
    if args.record and args.replay:
        print("--record and --replay are mutually exclusive", file=sys.stderr)
        return 2
    sharded = args.workers > 1 or args.checkpoint_dir is not None
    if sharded and (args.record or args.replay or args.events
                    or args.spans_out or args.chrome_out):
        print("--record/--replay/--events/--spans-out/--chrome-out need "
              "the serial path (drop --workers/--checkpoint-dir)",
              file=sys.stderr)
        return 2
    module = internet2 if args.network == "internet2" else geant
    network = module.build(seed=args.seed)
    target_list = module.targets(network, seed=args.seed)
    if sharded:
        from .parallel import ShardedSurveyRunner

        runner = ShardedSurveyRunner.from_network(
            network.topology, network.policy, "utdallas",
            workers=max(1, args.workers),
            checkpoint_dir=args.checkpoint_dir,
            batch_window=max(0, args.batch_window),
            use_stop_sets=args.stop_sets)
        outcome = runner.run(target_list)
        subnets = outcome.archive.subnets
        probes_sent = outcome.stats.sent
        mode = (f"{outcome.workers} shard(s)"
                + (", inline" if outcome.executed_inline else ""))
        if args.metrics_out:
            # The merged view: per-shard registries summed in shard order.
            _write_metrics(outcome.metrics, args.metrics_out,
                           args.metrics_format)
    else:
        if args.replay:
            # The journal stands in for the network: no Engine at all.
            transport = ReplayTransport(args.replay)
            mode = "replay"
        else:
            engine = Engine(network.topology, policy=network.policy)
            transport = SimulatorTransport(engine)
            mode = "serial"
            if args.record:
                metadata = {
                    "network": args.network,
                    "seed": args.seed,
                    "vantage": "utdallas",
                }
                options = _collector_options(args)
                if options:
                    metadata["collector"] = options
                transport = RecordingTransport(transport, args.record,
                                               metadata=metadata)
                mode = "serial, recording"
        tool = TraceNET(transport, "utdallas",
                        **_collector_kwargs(_collector_options(args)))
        sinks = []
        if args.events:
            sinks.append(tool.events.subscribe(JsonlEventSink(args.events)))
        if args.progress:
            sinks.append(tool.events.subscribe(ProgressSink()))
        registry = MetricsRegistry() if args.metrics_out else None
        tracer = _maybe_tracer(args)
        try:
            from .runner import SurveyRunner

            SurveyRunner(tool, metrics=registry,
                         tracer=tracer).run(target_list)
            if registry is not None:
                collect_backend_metrics(registry.backend, transport)
        finally:
            for sink in sinks:
                sink.close()
            transport.close()
        if registry is not None:
            _write_metrics(registry, args.metrics_out, args.metrics_format)
        _write_spans(tracer, args)
        subnets = tool.collected_subnets
        probes_sent = tool.prober.stats.sent
    report = match_subnets(network.ground_truth,
                           collected_prefixes(subnets))
    annotate_unresponsive(report, network.records)
    title = ("Table 1: Internet2, original and collected subnet distribution"
             if args.network == "internet2"
             else "Table 2: GEANT, original and collected subnet distribution")
    print(render_distribution_table(report, title))
    print(render_similarity(f"{args.network} (incl. unresponsive)",
                            *similarity_summary(report)))
    print(render_similarity(f"{args.network} (excl. unresponsive)",
                            *similarity_summary(report, exclude_unresponsive=True)))
    print(f"probes sent: {probes_sent} ({mode})")
    return 0


def cmd_crossval(args) -> int:
    internet = build_internet(seed=args.seed, scale=args.scale)
    targets = internet.targets(seed=args.seed, per_isp=args.targets_per_isp)
    flat_targets = [t for group in targets.values() for t in group]
    collections = {}
    for site in sorted(internet.vantages):
        engine = Engine(internet.topology, policy=internet.policy)
        tool = TraceNET(engine, site)
        tool.trace_many(flat_targets)
        collections[site] = VantageCollection(
            vantage=site, subnets=tool.collected_subnets, targets=flat_targets)
    prefix_sets = {site: c.prefixes for site, c in collections.items()}
    print(render_venn(venn_regions(prefix_sets), sorted(prefix_sets)))
    print()
    for site, rates in agreement_rates(prefix_sets).items():
        print(f"  {site}: seen-by-all {rates['all']:.0%}, "
              f"seen-by-another {rates['shared']:.0%}")
    print()
    groups = sorted(internet.isps)
    counts = {site: subnets_per_group(c, internet.isp_of_prefix, groups)
              for site, c in collections.items()}
    from .evaluation import render_group_counts
    print(render_group_counts(counts))
    print()
    histograms = {site: prefix_length_histogram(c)
                  for site, c in collections.items()}
    print(render_histogram(histograms, log_bars=False))
    return 0


def cmd_protocols(args) -> int:
    internet = build_internet(seed=args.seed, scale=args.scale)
    targets = internet.targets(seed=args.seed, per_isp=args.targets_per_isp)
    counts = {name: {} for name in sorted(internet.isps)}
    for protocol in (Protocol.ICMP, Protocol.UDP, Protocol.TCP):
        engine = Engine(internet.topology, policy=internet.policy)
        tool = TraceNET(engine, "rice", protocol=protocol)
        for group in targets.values():
            tool.trace_many(group)
        for name in counts:
            counts[name][protocol.value] = sum(
                1 for s in tool.collected_subnets
                if s.size >= 2 and internet.isp_of(s.pivot) == name
            )
    print(render_protocol_table(counts))
    return 0


def cmd_map(args) -> int:
    from .mapping import (
        CollectionArchive,
        map_from_collections,
        render_adjacency,
        save_archive,
    )

    scenario = (figures.figure2_network() if args.scenario == "figure2"
                else figures.figure3_network())
    collections = {}
    traces = []
    host_ids = sorted(scenario.hosts)
    for source in host_ids:
        tool = TraceNET(scenario.engine(), source)
        destinations = [scenario.topology.hosts[other].address
                        for other in host_ids if other != source]
        if not destinations:
            # Single-vantage scenario: trace toward every router instead.
            destinations = sorted(
                min(router.addresses)
                for router in scenario.topology.routers.values())
        for destination in destinations:
            traces.append(tool.trace(destination))
        collections[source] = tool.collected_subnets
    topo_map = map_from_collections(collections, traces)
    print(topo_map.summary())
    print()
    if args.dot:
        print(topo_map.to_dot(name=args.scenario))
    else:
        print(render_adjacency(topo_map))
    if args.save is not None:
        for vantage, subnets in collections.items():
            archive = CollectionArchive(vantage=vantage, subnets=list(subnets),
                                        metadata={"scenario": args.scenario})
            path = f"{args.save.rstrip('/')}/{args.scenario}-{vantage}.json"
            save_archive(path, archive)
            print(f"saved {path}")
    return 0


def cmd_overhead(args) -> int:
    from . import experiments

    sizes = tuple(int(part) for part in args.sizes.split(",") if part)
    outcome = experiments.run_overhead_sweep(sizes=sizes)
    print(outcome.render())
    return 0


def cmd_export(args) -> int:
    from .netsim import save_scenario

    module = internet2 if args.network == "internet2" else geant
    network = module.build(seed=args.seed)
    save_scenario(args.out, network.topology, network.policy)
    print(f"exported {args.network} (seed {args.seed}) to {args.out}")
    print(f"  {network.topology.summary()}")
    print(f"  {network.policy.describe()}")
    return 0


def _service_queue(directory: str):
    """The service directory's durable job queue."""
    import os

    from .service import JobQueue

    return JobQueue(os.path.join(directory, "queue.jsonl"))


def cmd_submit(args) -> int:
    from .parallel import ShardSpec
    from .service import SurveyJob

    module = internet2 if args.network == "internet2" else geant
    network = module.build(seed=args.seed)
    target_list = module.targets(network, seed=args.seed)
    if args.limit is not None:
        target_list = target_list[:max(0, args.limit)]
    if not target_list:
        print("no targets to survey (check --limit)", file=sys.stderr)
        return 2
    spec = ShardSpec.from_network(
        network.topology, network.policy, "utdallas",
        batch_window=max(0, args.batch_window),
        use_stop_sets=args.stop_sets)
    radar = None
    if args.radar:
        radar = {
            "rounds": max(1, args.rounds),
            "churn_count": max(0, args.churn_count),
            "churn_seed": args.churn_seed,
            "churn_start": args.churn_start,
            "churn_interval": args.churn_interval,
            "drop_rate": args.drop_rate,
            "fault_seed": args.fault_seed,
            "incremental": True,
        }
    queue = _service_queue(args.queue)
    job = queue.submit(SurveyJob(
        job_id=queue.next_job_id(),
        spec=spec,
        targets=list(target_list),
        shards=max(1, args.shards),
        checkpoint_every=max(1, args.checkpoint_every),
        tenant=args.tenant,
        max_attempts=max(1, args.max_attempts),
        metadata={"network": args.network, "seed": args.seed},
        radar=radar,
    ))
    if radar is not None:
        print(f"queued {job.job_id}: radar over {args.network} "
              f"seed {args.seed}, {len(target_list)} targets, "
              f"{radar['rounds']} rounds, churn {radar['churn_count']}")
    else:
        print(f"queued {job.job_id}: {args.network} seed {args.seed}, "
              f"{len(target_list)} targets over {job.shards} shard(s)")
    return 0


def cmd_serve(args) -> int:
    import dataclasses
    import os

    from .mapping import archive_to_dict
    from .service import (
        Coordinator,
        JobState,
        ServiceFleet,
        VantageWorker,
        shard_attempt_summary,
    )

    queue = _service_queue(args.queue)
    if not queue.jobs:
        print("queue is empty; nothing to serve", file=sys.stderr)
        return 0
    coordinator = Coordinator(queue=queue, work_dir=args.queue,
                              heartbeat_timeout=args.heartbeat_timeout)
    pending = [job.job_id for job in queue.unfinished()]
    if not pending:
        print("every job is already terminal; nothing to serve",
              file=sys.stderr)
        return 0
    workers = []
    for index in range(max(1, args.workers)):
        fail_after = (args.kill_worker_after
                      if index == 0 and args.kill_worker_after else None)
        workers.append(VantageWorker(
            f"worker-{index}", coordinator,
            stream_every=max(1, args.stream_every),
            fail_after_targets=fail_after))
    on_tick = None
    if args.health_out:
        def on_tick(path=args.health_out):
            payload = render_prometheus(coordinator.health_registry())
            tmp_path = path + ".tmp"
            with open(tmp_path, "w", encoding="utf-8") as fp:
                fp.write(payload)
            os.replace(tmp_path, path)
    ServiceFleet(coordinator, workers).run(timeout=args.timeout,
                                           on_tick=on_tick)
    crashed = sum(1 for worker in workers if worker.crashed)
    print(f"fleet of {len(workers)} worker(s) drained "
          f"{len(pending)} job(s)"
          + (f" ({crashed} worker death(s) survived)" if crashed else ""))
    failures = 0
    for job_id in pending:
        job = queue.get(job_id)
        if job.state is not JobState.DONE:
            failures += 1
            print(f"  {job_id}: {job.state.value} — {job.error}")
            continue
        result = coordinator.result(job_id)
        job_dir = os.path.join(args.queue, job_id)
        os.makedirs(job_dir, exist_ok=True)
        archive_path = os.path.join(job_dir, "archive.json")
        with open(archive_path, "w", encoding="utf-8") as fp:
            json.dump(archive_to_dict(result.archive), fp, indent=1)
        spans_path = chrome_path = None
        if result.spans is not None:
            from .tracing import chrome_trace_for_service, write_chrome_trace

            spans_path = os.path.join(job_dir, "spans.json")
            with open(spans_path, "w", encoding="utf-8") as fp:
                json.dump(result.spans.to_dict(), fp, indent=1,
                          sort_keys=True)
                fp.write("\n")
            chrome_path = os.path.join(job_dir, "trace.chrome.json")
            write_chrome_trace(chrome_path, chrome_trace_for_service(
                result.spans, result.worker_spans))
        radar_path = None
        if result.radar is not None:
            radar_path = os.path.join(job_dir, "radar.json")
            with open(radar_path, "w", encoding="utf-8") as fp:
                json.dump(result.radar, fp, indent=1, sort_keys=True)
                fp.write("\n")
        result_path = os.path.join(job_dir, "result.json")
        with open(result_path, "w", encoding="utf-8") as fp:
            json.dump({
                "job": job.to_dict(),
                "radar_path": radar_path,
                "attempts": {str(k): v
                             for k, v in sorted(result.attempts.items())},
                "stats": dataclasses.asdict(result.stats),
                "metrics": result.metrics.full_snapshot(),
                "event_counts": dict(sorted(result.event_counts.items())),
                "events_path": result.events_path,
                "archive_path": archive_path,
                "spans_path": spans_path,
                "chrome_trace_path": chrome_path,
                "stop_set": (result.stop_set.to_dict()
                             if result.stop_set is not None else None),
                "dedupe": coordinator.store.counters(),
            }, fp, indent=1, sort_keys=True)
        print(f"  {job_id}: done — {len(result.archive.subnets)} subnets, "
              f"{result.stats.sent} probes, "
              f"{shard_attempt_summary(result.attempts)} "
              f"-> {result_path}")
    return 1 if failures else 0


def cmd_radar(args) -> int:
    import os

    from .events import EventBus
    from .mapping import save_archive
    from .netsim import MutationSchedule, NetworkDynamics
    from .radar import RadarRunner
    from .transport import FaultInjectingTransport, MutatingTransport

    if args.record and args.replay:
        print("--record and --replay are mutually exclusive", file=sys.stderr)
        return 2
    module = internet2 if args.network == "internet2" else geant
    network = module.build(seed=args.seed)
    target_list = module.targets(network, seed=args.seed)
    if args.limit is not None:
        target_list = target_list[:max(0, args.limit)]
    if not target_list:
        print("no targets to survey (check --limit)", file=sys.stderr)
        return 2

    # The schedule derives from (topology, seed) alone, so a replay run
    # regenerates the identical mutation stream without an engine.
    schedule = None
    if args.churn_count > 0:
        schedule = MutationSchedule.generate(
            network.topology, seed=args.churn_seed,
            start=max(1, args.churn_start),
            interval=max(1, args.churn_interval),
            count=args.churn_count)

    bus = EventBus()
    if args.replay:
        transport = ReplayTransport(args.replay)
        if schedule is not None:
            transport = MutatingTransport(transport, schedule,
                                          dynamics=None, events=bus)
        mode = "replay"
    else:
        engine = Engine(network.topology, policy=network.policy)
        transport = SimulatorTransport(engine)
        if args.drop_rate > 0.0:
            transport = FaultInjectingTransport(transport,
                                                drop_rate=args.drop_rate,
                                                seed=args.fault_seed)
        if schedule is not None:
            dynamics = NetworkDynamics(engine, schedule)
            transport = MutatingTransport(transport, schedule,
                                          dynamics=dynamics, events=bus)
        mode = "live"
        if args.record:
            metadata = {
                "network": args.network,
                "seed": args.seed,
                "vantage": "utdallas",
                "radar": {
                    "rounds": args.rounds,
                    "churn_seed": args.churn_seed,
                    "churn_count": args.churn_count,
                    "churn_start": args.churn_start,
                    "churn_interval": args.churn_interval,
                    "drop_rate": args.drop_rate,
                    "fault_seed": args.fault_seed,
                    "incremental": not args.full,
                },
            }
            options = _collector_options(args)
            if options:
                metadata["collector"] = options
            transport = RecordingTransport(transport, args.record,
                                           metadata=metadata)
            mode = "live, recording"

    tool = TraceNET(transport, "utdallas", events=bus,
                    **_collector_kwargs(_collector_options(args)))
    event_sink = None
    if args.events:
        event_sink = bus.subscribe(JsonlEventSink(args.events))
    tracer = _maybe_tracer(args)
    if tracer is not None:
        bus.subscribe(tracer)
    registry = None
    if args.metrics_out:
        registry = MetricsRegistry()
        instrument(bus, registry=registry)
    try:
        with _maybe_time(registry, "collection_seconds"):
            outcome = RadarRunner(tool, target_list,
                                  rounds=max(1, args.rounds),
                                  incremental=not args.full).run()
        if registry is not None:
            collect_backend_metrics(registry.backend, transport)
    finally:
        if event_sink is not None:
            event_sink.close()
        transport.close()
    if registry is not None:
        _write_metrics(registry, args.metrics_out, args.metrics_format)
    _write_spans(tracer, args)

    if args.out:
        os.makedirs(args.out, exist_ok=True)
        for rnd in outcome.rounds:
            save_archive(os.path.join(args.out, f"round-{rnd.index}.json"),
                         rnd.archive)
            if rnd.diff is not None:
                diff_path = os.path.join(
                    args.out, f"diff-{rnd.index - 1}-{rnd.index}.json")
                with open(diff_path, "w", encoding="utf-8") as fp:
                    json.dump(rnd.diff.to_dict(), fp, indent=1,
                              sort_keys=True)
                    fp.write("\n")
        summary_path = os.path.join(args.out, "radar.json")
        with open(summary_path, "w", encoding="utf-8") as fp:
            json.dump(outcome.to_dict(), fp, indent=1, sort_keys=True)
            fp.write("\n")
        print(f"saved {len(outcome.rounds)} round archive(s) to {args.out}",
              file=sys.stderr)

    if args.as_json:
        print(json.dumps(outcome.to_dict(), indent=2, sort_keys=True))
        return 0
    print(f"radar over {args.network} (seed {args.seed}): "
          f"{len(target_list)} targets, {len(outcome.rounds)} rounds, "
          f"{'churn ' + str(args.churn_count) if schedule else 'no churn'} "
          f"({mode})")
    for rnd in outcome.rounds:
        degraded = sum(1 for t in rnd.archive.traces if t.degraded)
        line = (f"round {rnd.index}: "
                f"{'full survey' if rnd.full else 'incremental'}, "
                f"probed {len(rnd.probed_targets)}/{len(target_list)}, "
                f"{len(rnd.archive.subnets)} subnets, "
                f"{rnd.mutations_seen} mutation(s) absorbed"
                + (f", {degraded} degraded" if degraded else ""))
        print(line)
        if rnd.diff is not None and not rnd.diff.is_empty:
            for text in rnd.diff.describe().splitlines():
                print(f"    {text}")
    return 0


def cmd_diff(args) -> int:
    from .mapping import diff_archives, load_archive

    try:
        old = load_archive(args.old)
        new = load_archive(args.new)
    except (OSError, ValueError, KeyError) as exc:
        print(f"diff failed: {exc}", file=sys.stderr)
        return 2
    diff = diff_archives(old, new)
    payload = json.dumps(diff.to_dict(), indent=1, sort_keys=True) + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fp:
            fp.write(payload)
        print(f"wrote diff to {args.out}", file=sys.stderr)
    if args.as_json:
        sys.stdout.write(payload)
    else:
        print(diff.describe())
    return 0


def cmd_jobs(args) -> int:
    queue = _service_queue(args.queue)
    if not queue.jobs:
        print("(queue is empty)")
        return 0
    for job in queue.jobs.values():
        line = (f"{job.job_id}  {job.state.value:8s}  "
                f"{len(job.targets)} targets / {job.shards} shard(s)  "
                f"tenant={job.tenant}")
        if job.metadata.get("network"):
            line += (f"  [{job.metadata['network']}"
                     f" seed {job.metadata.get('seed')}]")
        if job.error:
            line += f"  error: {job.error}"
        print(line)
    return 0


def cmd_stats(args) -> int:
    from .metrics import journal_kind, stats_from_events

    builder = None
    if args.heuristics:
        from .tracing import SpanBuilder

        builder = SpanBuilder()
    try:
        if journal_kind(args.journal) == "events":
            stats = stats_from_events(args.journal)
            if builder is not None:
                from .events import replay_events

                for event in replay_events(args.journal):
                    builder(event)
        else:
            stats = _probe_journal_stats(args, builder)
    except (OSError, ValueError) as exc:
        print(f"stats failed: {exc}", file=sys.stderr)
        return 2
    print(stats.describe(), file=sys.stderr)
    if args.out:
        _write_metrics(stats.registry, args.out, args.metrics_format)
        print(f"wrote {args.metrics_format} metrics to {args.out}",
              file=sys.stderr)
    else:
        _write_metrics(stats.registry, "-", args.metrics_format)
    if builder is not None:
        from .tracing import render_heuristics_table

        print(render_heuristics_table(builder.finish()))
    return 0


def _probe_journal_stats(args, builder=None):
    return stats_from_journal(
        args.journal,
        vantage=args.source,
        destination=ip(args.dest) if args.dest else None,
        extra_sinks=(builder,) if builder is not None else (),
    )


def cmd_spans(args) -> int:
    from .tracing import (
        chrome_trace,
        per_trace_table,
        render_report,
        span_tree_from_journal,
        write_chrome_trace,
    )

    try:
        root = span_tree_from_journal(
            args.journal,
            vantage=args.source,
            destination=ip(args.dest) if args.dest else None)
    except (OSError, ValueError) as exc:
        print(f"spans failed: {exc}", file=sys.stderr)
        return 2
    if args.as_json or args.out:
        payload = json.dumps(root.to_dict(), indent=1, sort_keys=True) + "\n"
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fp:
                fp.write(payload)
            print(f"wrote span tree to {args.out}", file=sys.stderr)
        else:
            sys.stdout.write(payload)
    else:
        print(render_report(root))
        print()
        print(per_trace_table(root))
    if args.chrome_out:
        write_chrome_trace(args.chrome_out, chrome_trace(root))
        print(f"wrote Chrome trace to {args.chrome_out}", file=sys.stderr)
    return 0


def _resolve_destination(scenario, source: str, dest: Optional[str]) -> int:
    """Pick the user's destination, or the farthest interface by default."""
    if dest is not None:
        return ip(dest)
    engine = scenario.engine()
    addresses = scenario.topology.all_interface_addresses
    rng = random.Random(0)
    return max(addresses,
               key=lambda a: (engine.hop_distance(source, a) or 0,
                              rng.random()))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
