"""Batch survey runner with checkpointing.

Survey-scale collection (the paper traces 34 084 targets) needs the
operational wrapper every real measurement tool grows: walk a target list,
persist results incrementally, survive interruption, and resume without
re-probing finished targets.  :class:`SurveyRunner` wraps a
:class:`~repro.core.tracenet.TraceNET` instance with exactly that.

The checkpoint is a :class:`~repro.mapping.store.CollectionArchive` JSON
document; a resumed run reloads it, seeds the tool's subnet registry from
the archived subnets (so reuse keeps working across restarts), and skips
targets whose traces are already recorded.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Set

from .core.results import TraceResult
from .core.tracenet import TraceNET
from .events import CheckpointWritten, SurveyProgressed
from .mapping.store import CollectionArchive, load_archive, save_archive
from .probing.budget import ProbeBudgetExceeded


@dataclass
class SurveyProgress:
    """Progress counters reported to the caller (and the progress hook)."""

    total_targets: int = 0
    completed: int = 0
    reached: int = 0
    skipped: int = 0
    probes_sent: int = 0

    @property
    def remaining(self) -> int:
        return self.total_targets - self.completed - self.skipped

    def describe(self) -> str:
        return (f"{self.completed + self.skipped}/{self.total_targets} targets "
                f"({self.skipped} resumed, {self.reached} reached, "
                f"{self.probes_sent} probes)")


class SurveyRunner:
    """Drives a TraceNET instance over a target list with checkpoints.

    Args:
        tool: the collector (owns vantage, protocol, budget...).
        checkpoint_path: JSON file written every ``checkpoint_every``
            completed targets and at the end.  None disables persistence.
        checkpoint_every: flush cadence.
        progress: optional callback invoked with the updated
            :class:`SurveyProgress` after every target.  Implemented as a
            thin adapter over the tool's session-event bus: the runner
            emits :class:`~repro.events.SurveyProgressed` events and the
            adapter translates them back into callback invocations, so bus
            sinks and legacy hooks observe the identical stream.
        metrics: optional :class:`repro.metrics.MetricsRegistry`.  When
            given, a metrics sink and probe-economy auditor are attached to
            the tool's event bus for the lifetime of this runner, and
            ``run()`` records a ``survey_run_seconds`` timing span.
        tracer: optional :class:`repro.tracing.SpanBuilder`.  Subscribed
            to the tool's event bus before the metrics sinks so its span
            attribution sees the same stream order a bare journal records;
            ``run()`` finishes the tree when the survey ends.
    """

    def __init__(self, tool: TraceNET,
                 checkpoint_path: Optional[str] = None,
                 checkpoint_every: int = 25,
                 progress: Optional[Callable[[SurveyProgress], None]] = None,
                 metrics=None, tracer=None):
        self.tool = tool
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = max(1, checkpoint_every)
        self.progress_hook = progress
        if progress is not None:
            self.tool.events.subscribe(self._hook_adapter)
        self.tracer = tracer
        if tracer is not None:
            self.tool.events.subscribe(tracer)
        self.metrics = metrics
        self._instrumentation = None
        if metrics is not None:
            # Lazy import: runner sits below the metrics facade in the
            # import graph (metrics.analytics drives collectors), so the
            # dependency must stay one-way at module-import time.
            from .metrics import instrument

            self._instrumentation = instrument(self.tool.events,
                                               registry=metrics)
        self.progress = SurveyProgress()
        self.traces: List[TraceResult] = []
        self._done_targets: Set[int] = set()
        self._resume()

    # -- public API -----------------------------------------------------

    def run(self, targets: Sequence[int]) -> SurveyProgress:
        """Trace every target not already covered by the checkpoint.

        Each call gets fresh per-run counters: re-running (e.g. resuming
        with a second target list) must not inherit ``completed``/``skipped``
        from the previous call, or ``remaining`` goes negative.
        """
        try:
            if self.metrics is not None:
                with self.metrics.time("survey_run_seconds"):
                    return self._run(targets)
            return self._run(targets)
        finally:
            if self.tracer is not None:
                self.tracer.finish()

    def _run(self, targets: Sequence[int]) -> SurveyProgress:
        self.progress = SurveyProgress(total_targets=len(targets))
        # Per-run delta, not the instance's lifetime total: a prober that
        # already sent probes (an earlier run() call, a warm-up trace) must
        # not inflate this run's count.
        sent_before_run = self.tool.prober.stats.sent
        since_flush = 0
        try:
            for target in targets:
                if target in self._done_targets:
                    self.progress.skipped += 1
                    self._report()
                    continue
                result = self.tool.trace(target)
                self.traces.append(result)
                self._done_targets.add(target)
                self.progress.completed += 1
                self.progress.reached += int(result.reached)
                self.progress.probes_sent = (
                    self.tool.prober.stats.sent - sent_before_run)
                self._report()
                since_flush += 1
                if since_flush >= self.checkpoint_every:
                    self.flush()
                    since_flush = 0
        except ProbeBudgetExceeded:
            # Budget exhaustion is an expected end condition for metered
            # surveys; persist what we have and report.
            self.flush()
            raise
        self.flush()
        return self.progress

    def flush(self) -> None:
        """Write the checkpoint archive (no-op without a path)."""
        if self.checkpoint_path is None:
            return
        archive = CollectionArchive(
            vantage=self.tool.vantage_host_id,
            subnets=list(self.tool.collected_subnets),
            traces=list(self.traces),
            metadata={"done_targets": sorted(self._done_targets)},
        )
        tmp_path = self.checkpoint_path + ".tmp"
        save_archive(tmp_path, archive)
        os.replace(tmp_path, self.checkpoint_path)
        if self.tool.events:
            self.tool.events.emit(CheckpointWritten(
                path=self.checkpoint_path,
                completed_targets=len(self._done_targets),
                traces=len(self.traces),
            ))

    @property
    def archive(self) -> CollectionArchive:
        """The current collection as an archive (without writing it)."""
        return CollectionArchive(
            vantage=self.tool.vantage_host_id,
            subnets=list(self.tool.collected_subnets),
            traces=list(self.traces),
            metadata={"done_targets": sorted(self._done_targets)},
        )

    # -- internals ----------------------------------------------------------

    def _resume(self) -> None:
        if self.checkpoint_path is None or not os.path.exists(self.checkpoint_path):
            return
        archive = load_archive(self.checkpoint_path)
        if archive.vantage != self.tool.vantage_host_id:
            raise ValueError(
                f"checkpoint belongs to vantage {archive.vantage!r}, "
                f"not {self.tool.vantage_host_id!r}"
            )
        self.traces = list(archive.traces)
        self._done_targets = set(archive.metadata.get("done_targets", []))
        for subnet in archive.subnets:
            self.tool.register_subnet(subnet)

    def _report(self) -> None:
        if self.tool.events:
            self.tool.events.emit(SurveyProgressed(
                total_targets=self.progress.total_targets,
                completed=self.progress.completed,
                skipped=self.progress.skipped,
                reached=self.progress.reached,
                probes_sent=self.progress.probes_sent,
            ))

    def _hook_adapter(self, event) -> None:
        """Bus → legacy callback: SurveyProgressed drives ``progress``."""
        if isinstance(event, SurveyProgressed) and self.progress_hook is not None:
            self.progress_hook(self.progress)


def run_survey_with_checkpoints(tool: TraceNET, targets: Sequence[int],
                                checkpoint_path: str,
                                checkpoint_every: int = 25) -> CollectionArchive:
    """Convenience wrapper: run (or resume) and return the final archive."""
    runner = SurveyRunner(tool, checkpoint_path=checkpoint_path,
                          checkpoint_every=checkpoint_every)
    runner.run(targets)
    return runner.archive
