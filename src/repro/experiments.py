"""Reusable experiment runners — one per table/figure of the paper.

The benchmark harness, the examples and the CLI all drive the experiments
through these functions, so a bench's measured run is exactly the run whose
output is printed.  Every runner returns a structured outcome object with a
``render()`` producing the paper-style table/figure text.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .baselines import Traceroute
from .core import TraceNET, overhead
from .core.results import ObservedSubnet
from .evaluation import (
    IPAccounting,
    MatchReport,
    VantageCollection,
    agreement_rates,
    annotate_unresponsive,
    collected_prefixes,
    ip_accounting,
    match_subnets,
    prefix_length_histogram,
    render_distribution_table,
    render_group_counts,
    render_histogram,
    render_ip_accounting,
    render_protocol_table,
    render_similarity,
    render_venn,
    similarity_summary,
    subnets_per_group,
    venn_regions,
)
from .netsim import Engine, LoadBalancer, LoadBalancingMode, Prefix, Protocol
from .probing import Prober
from .topogen import MultiISPNetwork, build_internet, figures, geant, internet2
from .topogen.spec import GeneratedNetwork


# ---------------------------------------------------------------------------
# Tables 1-2 + Section 4.1.2 (accuracy over Internet2 / GEANT)
# ---------------------------------------------------------------------------


@dataclass
class SurveyOutcome:
    """Result of a Table 1/2 accuracy survey."""

    name: str
    network: GeneratedNetwork
    report: MatchReport
    probes_sent: int
    collected: List[ObservedSubnet]

    @property
    def exact_match_rate(self) -> float:
        return self.report.exact_match_rate()

    @property
    def observable_exact_match_rate(self) -> float:
        return self.report.exact_match_rate(exclude_unresponsive=True)

    def similarity(self, exclude_unresponsive: bool = False) -> Tuple[float, float]:
        return similarity_summary(self.report,
                                  exclude_unresponsive=exclude_unresponsive)

    def render(self) -> str:
        title = (f"Table: {self.name}, original and collected subnet "
                 f"distribution ({self.probes_sent} probes)")
        lines = [render_distribution_table(self.report, title)]
        lines.append(render_similarity(f"{self.name} (incl. unresponsive)",
                                       *self.similarity()))
        lines.append(render_similarity(
            f"{self.name} (excl. unresponsive)",
            *self.similarity(exclude_unresponsive=True)))
        return "\n".join(lines)


def run_survey(network: GeneratedNetwork, targets: List[int],
               vantage: str, name: str,
               protocol: Protocol = Protocol.ICMP,
               disabled_rules: frozenset = frozenset()) -> SurveyOutcome:
    """Trace every target from one vantage and classify the collection."""
    engine = Engine(network.topology, policy=network.policy)
    tool = TraceNET(engine, vantage, protocol=protocol,
                    disabled_rules=disabled_rules)
    tool.trace_many(targets)
    report = match_subnets(network.ground_truth,
                           collected_prefixes(tool.collected_subnets))
    annotate_unresponsive(report, network.records)
    return SurveyOutcome(
        name=name,
        network=network,
        report=report,
        probes_sent=tool.prober.stats.sent,
        collected=tool.collected_subnets,
    )


def run_internet2_survey(seed: int = 7) -> SurveyOutcome:
    """Table 1: tracenet accuracy over the Internet2-like topology."""
    network = internet2.build(seed=seed)
    return run_survey(network, internet2.targets(network, seed=seed),
                      "utdallas", "Internet2")


def run_geant_survey(seed: int = 7) -> SurveyOutcome:
    """Table 2: tracenet accuracy over the GEANT-like topology."""
    network = geant.build(seed=seed)
    return run_survey(network, geant.targets(network, seed=seed),
                      "utdallas", "GEANT")


# ---------------------------------------------------------------------------
# Section 4.2 (cross-validation over four ISPs; Figures 6-9, Table 3)
# ---------------------------------------------------------------------------


@dataclass
class CrossValidationOutcome:
    """Result of the three-vantage ISP experiment."""

    internet: MultiISPNetwork
    collections: Dict[str, VantageCollection]
    targets: List[int]

    @property
    def prefix_sets(self) -> Dict[str, Set[Prefix]]:
        return {site: c.prefixes for site, c in self.collections.items()}

    @property
    def venn(self) -> Dict[FrozenSet[str], int]:
        return venn_regions(self.prefix_sets)

    @property
    def agreement(self) -> Dict[str, Dict[str, float]]:
        return agreement_rates(self.prefix_sets)

    def accounting(self) -> List[IPAccounting]:
        rows: List[IPAccounting] = []
        groups = sorted(self.internet.isps)
        for site in sorted(self.collections):
            rows.extend(ip_accounting(self.collections[site],
                                      self.internet.isp_of, groups))
        return rows

    def subnet_counts(self) -> Dict[str, Dict[str, int]]:
        groups = sorted(self.internet.isps)
        return {
            site: subnets_per_group(collection,
                                    self.internet.isp_of_prefix, groups)
            for site, collection in self.collections.items()
        }

    def histograms(self) -> Dict[str, Dict[int, int]]:
        return {site: prefix_length_histogram(collection)
                for site, collection in self.collections.items()}

    def render_figure6(self) -> str:
        lines = [render_venn(self.venn, sorted(self.collections))]
        for site, rates in sorted(self.agreement.items()):
            lines.append(f"  {site}: seen-by-all {rates['all']:.0%}, "
                         f"seen-by-another {rates['shared']:.0%}")
        return "\n".join(lines)

    def render_figure7(self) -> str:
        return render_ip_accounting(self.accounting())

    def render_figure8(self) -> str:
        return render_group_counts(self.subnet_counts())

    def render_figure9(self) -> str:
        return render_histogram(self.histograms())

    def render(self) -> str:
        return "\n\n".join([self.render_figure6(), self.render_figure7(),
                            self.render_figure8(), self.render_figure9()])


def run_cross_validation(seed: int = 42, scale: float = 0.4,
                         per_isp: Optional[int] = 60,
                         internet: Optional[MultiISPNetwork] = None
                         ) -> CrossValidationOutcome:
    """Figures 6-9: one common target set traced from three vantages."""
    if internet is None:
        internet = build_internet(seed=seed, scale=scale)
    total = None if per_isp is None else per_isp * len(internet.isps)
    grouped = (internet.targets(seed=seed) if total is None
               else internet.targets_proportional(seed=seed, total=total))
    targets = [t for group in grouped.values() for t in group]
    collections: Dict[str, VantageCollection] = {}
    for site in sorted(internet.vantages):
        engine = Engine(internet.topology, policy=internet.policy)
        tool = TraceNET(engine, site)
        tool.trace_many(targets)
        collections[site] = VantageCollection(
            vantage=site, subnets=tool.collected_subnets, targets=targets)
    return CrossValidationOutcome(internet=internet, collections=collections,
                                  targets=targets)


@dataclass
class ProtocolComparisonOutcome:
    """Result of the Table 3 protocol comparison."""

    counts: Dict[str, Dict[str, int]]
    vantage: str

    def totals(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for per_isp in self.counts.values():
            for protocol, count in per_isp.items():
                totals[protocol] = totals.get(protocol, 0) + count
        return totals

    def render(self) -> str:
        return render_protocol_table(
            self.counts,
            title=f"Table 3: subnets per probing protocol (vantage {self.vantage})")


def run_protocol_comparison(seed: int = 42, scale: float = 0.4,
                            per_isp: Optional[int] = 60,
                            vantage: str = "rice",
                            internet: Optional[MultiISPNetwork] = None
                            ) -> ProtocolComparisonOutcome:
    """Table 3: the same targets probed with ICMP, UDP and TCP."""
    if internet is None:
        internet = build_internet(seed=seed, scale=scale)
    total = None if per_isp is None else per_isp * len(internet.isps)
    grouped = (internet.targets(seed=seed) if total is None
               else internet.targets_proportional(seed=seed, total=total))
    counts: Dict[str, Dict[str, int]] = {name: {} for name in sorted(internet.isps)}
    for protocol in (Protocol.ICMP, Protocol.UDP, Protocol.TCP):
        engine = Engine(internet.topology, policy=internet.policy)
        tool = TraceNET(engine, vantage, protocol=protocol)
        for group in grouped.values():
            tool.trace_many(group)
        for name in counts:
            counts[name][protocol.value] = sum(
                1 for s in tool.collected_subnets
                if s.size >= 2 and internet.isp_of(s.pivot) == name)
    return ProtocolComparisonOutcome(counts=counts, vantage=vantage)


# ---------------------------------------------------------------------------
# Section 3.6 (probing overhead model)
# ---------------------------------------------------------------------------


@dataclass
class OverheadPoint:
    subnet_size: int
    measured_probes: int
    lower_bound: int
    upper_bound: int

    @property
    def within_model(self) -> bool:
        return self.measured_probes <= self.upper_bound * 1.25


@dataclass
class OverheadOutcome:
    points: List[OverheadPoint]

    def render(self) -> str:
        lines = ["Section 3.6: measured probes vs analytic bounds",
                 f"{'|S|':>5} {'measured':>9} {'lower':>7} {'upper':>7} ok"]
        for point in self.points:
            lines.append(
                f"{point.subnet_size:>5} {point.measured_probes:>9} "
                f"{point.lower_bound:>7} {point.upper_bound:>7} "
                f"{'yes' if point.within_model else 'NO'}")
        return "\n".join(lines)


def run_overhead_sweep(sizes=(2, 4, 6, 8, 10, 14, 22, 30),
                       metrics=None) -> OverheadOutcome:
    """Explore single LANs of growing size and meter the probe cost.

    ``metrics`` (a :class:`repro.metrics.MetricsRegistry`) attaches the
    metrics sink and probe-economy auditor to every per-size prober, so a
    sweep doubles as an auditor regression: topologies this tame must
    produce zero ``overhead_violations_total``.
    """
    from .core.exploration import explore_subnet
    from .core.positioning import position_subnet
    from .netsim import TopologyBuilder

    points: List[OverheadPoint] = []
    for size in sizes:
        if size <= 2:
            length = 30
        elif size <= 6:
            length = 29
        elif size <= 14:
            length = 28
        elif size <= 30:
            length = 27
        else:
            length = 26
        builder = TopologyBuilder(f"overhead-{size}")
        builder.link("R1", "R2")
        members = ["R2"] + [f"M{i}" for i in range(size - 1)]
        lan = builder.lan(members, length=length)
        builder.edge_host("v", "R1")
        topology = builder.build()
        engine = Engine(topology)
        prober = Prober(engine, "v")
        if metrics is not None:
            from .metrics import instrument

            instrument(prober.events, registry=metrics)
        pivot = topology.routers[members[1]].interface_on(lan.subnet_id).address
        entry = [i.address for i in topology.routers["R2"].interfaces
                 if i.subnet_id != lan.subnet_id][0]
        position = position_subnet(prober, entry, pivot, 3)
        assert position is not None
        subnet = explore_subnet(prober, position)
        points.append(OverheadPoint(
            subnet_size=subnet.size,
            measured_probes=subnet.probes_used,
            lower_bound=overhead.lower_bound(max(2, subnet.size)),
            upper_bound=overhead.upper_bound(max(2, subnet.size)),
        ))
    return OverheadOutcome(points=points)


# ---------------------------------------------------------------------------
# Alias resolution from tracenet data (the paper's router-level-map motif)
# ---------------------------------------------------------------------------


@dataclass
class AliasResolutionOutcome:
    """Accuracy of analytical and Ally-filtered alias inference."""

    analytical_precision: float
    analytical_recall: float
    filtered_precision: float
    filtered_recall: float
    analytical_pairs: int
    confirmed_pairs: int
    negative_constraints: int
    ally_tests: int
    extra_probes: int
    router_map_summary: str = ""
    router_map_accuracy: str = ""

    def render(self) -> str:
        lines = [
            "Alias resolution from tracenet data (Internet2 survey)",
            f"{'method':<34} {'pairs':>7} {'precision':>10} {'recall':>8} "
            f"{'extra probes':>13}",
            f"{'analytical (free)':<34} {self.analytical_pairs:>7} "
            f"{self.analytical_precision:>10.1%} "
            f"{self.analytical_recall:>8.1%} {0:>13}",
            f"{'analytical + Ally verification':<34} "
            f"{self.confirmed_pairs:>7} {self.filtered_precision:>10.1%} "
            f"{self.filtered_recall:>8.1%} {self.extra_probes:>13}",
            f"negative (non-alias) constraints from subnets: "
            f"{self.negative_constraints}",
        ]
        if self.router_map_summary:
            lines.append(self.router_map_summary)
            lines.append(f"  {self.router_map_accuracy}")
        return "\n".join(lines)


def run_alias_resolution(seed: int = 7) -> AliasResolutionOutcome:
    """Infer alias pairs from an Internet2 survey and verify them with Ally.

    The paper's introduction places alias resolution on the critical path
    to router-level maps; tracenet's positioning data (ingress +
    contra-pivot on the ingress router) yields pairs without extra probes,
    and same-subnet membership yields negative constraints.
    """
    from .aliases import (
        AliasVerdict,
        AllyResolver,
        analytical_pairs,
        ground_truth_pairs,
        negative_pairs,
        pair_keys,
        score_pairs,
    )

    network = internet2.build(seed=seed)
    engine = Engine(network.topology, policy=network.policy)
    tool = TraceNET(engine, "utdallas")
    tool.trace_many(internet2.targets(network, seed=seed))

    pairs = pair_keys(analytical_pairs(tool.collected_subnets))
    negatives = negative_pairs(tool.collected_subnets)
    observed = tool.collected_addresses
    truth = ground_truth_pairs(network.topology, restrict_to=observed)
    analytical_accuracy = score_pairs(pairs, truth)

    prober = Prober(engine, "utdallas")
    before = prober.stats_snapshot()
    resolver = AllyResolver(prober)
    confirmed = [
        (result.first, result.second)
        for result in resolver.verify_pairs(sorted(pairs))
        if result.verdict == AliasVerdict.ALIASES
    ]
    filtered_accuracy = score_pairs(confirmed, truth)

    from .aliases import groups_from_pairs
    from .evaluation import build_router_level_map, score_router_level_map
    router_map = build_router_level_map(tool.collected_subnets,
                                        groups_from_pairs(confirmed))
    router_accuracy = score_router_level_map(router_map, network.topology)

    return AliasResolutionOutcome(
        analytical_precision=analytical_accuracy.precision,
        analytical_recall=analytical_accuracy.recall,
        filtered_precision=filtered_accuracy.precision,
        filtered_recall=filtered_accuracy.recall,
        analytical_pairs=len(pairs),
        confirmed_pairs=len(confirmed),
        negative_constraints=len(negatives),
        ally_tests=resolver.tests_run,
        extra_probes=prober.stats.sent - before.sent,
        router_map_summary=router_map.summary(),
        router_map_accuracy=router_accuracy.describe(),
    )


# ---------------------------------------------------------------------------
# Marginal utility of vantage points (the paper's [6] motif, §1)
# ---------------------------------------------------------------------------


@dataclass
class VantageUtilityOutcome:
    """Coverage growth as vantage points are added, per strategy."""

    #: strategy -> cumulative structure counts (tracenet: distinct
    #: subnets; traceroute: distinct hop-adjacency links) for 1..k vantages
    subnet_curves: Dict[str, List[int]]
    #: strategy -> list of cumulative distinct-address counts
    address_curves: Dict[str, List[int]]
    vantage_order: List[str]

    def marginal_gains(self, strategy: str) -> List[float]:
        """Fractional subnet-coverage gain of each added vantage."""
        curve = self.subnet_curves[strategy]
        gains = []
        for previous, current in zip(curve, curve[1:]):
            gains.append((current - previous) / max(1, previous))
        return gains

    def render(self) -> str:
        lines = ["Marginal utility of vantage points",
                 f"{'strategy':<14} " + " ".join(
                     f"{'+' + site:>12}" for site in self.vantage_order)
                 + "   (cumulative subnets / links)"]
        for strategy, curve in self.subnet_curves.items():
            lines.append(f"{strategy:<14} "
                         + " ".join(f"{value:>12}" for value in curve))
        lines.append("")
        lines.append(f"{'strategy':<14} " + " ".join(
            f"{'+' + site:>12}" for site in self.vantage_order)
            + "   (cumulative distinct addresses)")
        for strategy, curve in self.address_curves.items():
            lines.append(f"{strategy:<14} "
                         + " ".join(f"{value:>12}" for value in curve))
        return "\n".join(lines)


def run_vantage_utility(seed: int = 42, scale: float = 0.4,
                        per_isp: Optional[int] = 60,
                        internet: Optional[MultiISPNetwork] = None
                        ) -> VantageUtilityOutcome:
    """Coverage vs number of vantage points, tracenet against traceroute.

    The paper's introduction argues that piling on vantage points has
    limited utility [6] and that exploring each visited subnet in full is
    the better lever; this experiment measures both curves.
    """
    if internet is None:
        internet = build_internet(seed=seed, scale=scale)
    total = None if per_isp is None else per_isp * len(internet.isps)
    grouped = (internet.targets(seed=seed) if total is None
               else internet.targets_proportional(seed=seed, total=total))
    targets = [t for group in grouped.values() for t in group]
    vantage_order = sorted(internet.vantages)

    subnet_curves: Dict[str, List[int]] = {"tracenet": [], "traceroute": []}
    address_curves: Dict[str, List[int]] = {"tracenet": [], "traceroute": []}

    tracenet_blocks: Set[Prefix] = set()
    tracenet_addresses: Set[int] = set()
    traceroute_addresses: Set[int] = set()
    traceroute_links: Set[tuple] = set()
    for site in vantage_order:
        tool = TraceNET(Engine(internet.topology, policy=internet.policy),
                        site)
        tool.trace_many(targets)
        tracenet_blocks |= {s.prefix for s in tool.collected_subnets
                            if s.size > 1}
        tracenet_addresses |= tool.collected_addresses
        subnet_curves["tracenet"].append(len(tracenet_blocks))
        address_curves["tracenet"].append(len(tracenet_addresses))

        tracer = Traceroute(Engine(internet.topology, policy=internet.policy),
                            site, vary_flow=False)
        for target in targets:
            result = tracer.trace(target)
            hops = [a for a in result.path_addresses if a is not None]
            traceroute_addresses.update(hops)
            traceroute_links.update(zip(hops, hops[1:]))
        subnet_curves["traceroute"].append(len(traceroute_links))
        address_curves["traceroute"].append(len(traceroute_addresses))

    return VantageUtilityOutcome(subnet_curves=subnet_curves,
                                 address_curves=address_curves,
                                 vantage_order=vantage_order)


# ---------------------------------------------------------------------------
# Section 1's cost-effectiveness claim: tracenet from one vantage vs
# traceroute from many
# ---------------------------------------------------------------------------


@dataclass
class BandwidthOutcome:
    """Address yield and wire cost of the two collection strategies."""

    tracenet_addresses: int
    tracenet_probes: int
    tracenet_bytes: int
    traceroute_addresses: int
    traceroute_probes: int
    traceroute_bytes: int
    traceroute_vantages: int

    @property
    def tracenet_bytes_per_address(self) -> float:
        return self.tracenet_bytes / max(1, self.tracenet_addresses)

    @property
    def traceroute_bytes_per_address(self) -> float:
        return self.traceroute_bytes / max(1, self.traceroute_addresses)

    def render(self) -> str:
        return "\n".join([
            "Section 1: bandwidth economy — tracenet (1 vantage) vs "
            f"traceroute ({self.traceroute_vantages} vantages)",
            f"{'strategy':<28} {'addresses':>10} {'probes':>8} "
            f"{'bytes':>10} {'bytes/addr':>11}",
            f"{'tracenet, 1 vantage':<28} {self.tracenet_addresses:>10} "
            f"{self.tracenet_probes:>8} {self.tracenet_bytes:>10} "
            f"{self.tracenet_bytes_per_address:>11.1f}",
            f"{'traceroute, all vantages':<28} "
            f"{self.traceroute_addresses:>10} {self.traceroute_probes:>8} "
            f"{self.traceroute_bytes:>10} "
            f"{self.traceroute_bytes_per_address:>11.1f}",
        ])


def run_bandwidth_comparison(seed: int = 42, scale: float = 0.4,
                             per_isp: Optional[int] = 60,
                             internet: Optional[MultiISPNetwork] = None
                             ) -> BandwidthOutcome:
    """Compare address yield per byte: one tracenet vantage against classic
    traceroute run from every available vantage point."""
    from .netsim.packet import wire_bytes

    if internet is None:
        internet = build_internet(seed=seed, scale=scale)
    total = None if per_isp is None else per_isp * len(internet.isps)
    grouped = (internet.targets(seed=seed) if total is None
               else internet.targets_proportional(seed=seed, total=total))
    targets = [t for group in grouped.values() for t in group]

    first_site = sorted(internet.vantages)[0]
    tracenet_tool = TraceNET(
        Engine(internet.topology, policy=internet.policy), first_site)
    tracenet_tool.trace_many(targets)
    tracenet_addresses = len(tracenet_tool.collected_addresses)
    tracenet_probes = tracenet_tool.prober.stats.sent

    traceroute_addresses: set = set()
    traceroute_probes = 0
    for site in sorted(internet.vantages):
        tracer = Traceroute(
            Engine(internet.topology, policy=internet.policy), site,
            vary_flow=False)
        for target in targets:
            result = tracer.trace(target)
            traceroute_addresses.update(
                a for a in result.path_addresses if a is not None)
        traceroute_probes += tracer.prober.stats.sent

    return BandwidthOutcome(
        tracenet_addresses=tracenet_addresses,
        tracenet_probes=tracenet_probes,
        tracenet_bytes=wire_bytes(Protocol.ICMP, tracenet_probes),
        traceroute_addresses=len(traceroute_addresses),
        traceroute_probes=traceroute_probes,
        traceroute_bytes=wire_bytes(Protocol.ICMP, traceroute_probes),
        traceroute_vantages=len(internet.vantages),
    )


# ---------------------------------------------------------------------------
# Heuristic ablation (Section 3.5: what each rule family buys)
# ---------------------------------------------------------------------------


@dataclass
class HeuristicAblationOutcome:
    """Accuracy of the Internet2 survey with rule families disabled."""

    variants: Dict[str, SurveyOutcome]

    def render(self) -> str:
        lines = ["Ablation: heuristic families on the Internet2 survey",
                 f"{'variant':<26} {'exact':>7} {'ovres':>6} {'merg':>6} "
                 f"{'undes':>6} {'probes':>8}"]
        from .evaluation import Category
        for name, outcome in self.variants.items():
            report = outcome.report
            lines.append(
                f"{name:<26} {report.exact_match_rate():>7.1%} "
                f"{report.count(Category.OVER):>6} "
                f"{report.count(Category.MERGED):>6} "
                f"{report.count(Category.UNDER):>6} "
                f"{outcome.probes_sent:>8}")
        return "\n".join(lines)


def run_heuristic_ablation(seed: int = 7) -> HeuristicAblationOutcome:
    """Re-run the Table 1 survey with heuristic families switched off.

    * no H6 (fixed entry points): equidistant foreign subnets leak in;
    * no H7+H8 (router contiguity): far/close fringe interfaces leak in;
    * no H3+H4 (contra-pivot discipline): ingress fringe leaks in.
    """
    variants: Dict[str, SurveyOutcome] = {}
    for name, disabled in (
            ("full pipeline", frozenset()),
            ("no H6", frozenset({"H6"})),
            ("no H7+H8", frozenset({"H7", "H8"})),
            ("no H3+H4", frozenset({"H3", "H4"})),
            ("no H6+H7+H8", frozenset({"H6", "H7", "H8"})),
    ):
        network = internet2.build(seed=seed)
        variants[name] = run_survey(
            network, internet2.targets(network, seed=seed), "utdallas",
            f"Internet2[{name}]", disabled_rules=disabled)
    return HeuristicAblationOutcome(variants=variants)


# ---------------------------------------------------------------------------
# Figure 2 (disjoint-path case study) and Section 3.7 (path fluctuations)
# ---------------------------------------------------------------------------


@dataclass
class DisjointPathOutcome:
    traceroute_concludes_disjoint: bool
    tracenet_sees_shared_lan: bool
    shared_lan: Prefix
    details: Dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        lines = ["Figure 2: overlay path disjointness case study",
                 f"  shared multi-access LAN (ground truth): {self.shared_lan}",
                 f"  traceroute concludes P1/P3 link-disjoint: "
                 f"{'yes (wrong)' if self.traceroute_concludes_disjoint else 'no'}",
                 f"  tracenet reveals the shared LAN on both paths: "
                 f"{'yes' if self.tracenet_sees_shared_lan else 'no'}"]
        return "\n".join(lines)


def run_disjoint_paths() -> DisjointPathOutcome:
    """Figure 2: do P1 (A->D) and P3 (B->C) share a link?"""
    net = figures.figure2_network()
    lan = net.topology.subnets[net.landmarks["shared_lan"]]
    d = net.hosts["D"].address
    c = net.hosts["C"].address

    p1 = Traceroute(net.engine(), "A", vary_flow=False).trace(d)
    p3 = Traceroute(net.engine(), "B", vary_flow=False).trace(c)
    p1_links = {a for a in p1.path_addresses if a is not None}
    p3_links = {a for a in p3.path_addresses if a is not None}
    traceroute_disjoint = not (p1_links & p3_links)

    t1 = TraceNET(net.engine(), "A").trace(d)
    t3 = TraceNET(net.engine(), "B").trace(c)
    lan_seen = (lan.prefix in {s.prefix for s in t1.subnets}
                and lan.prefix in {s.prefix for s in t3.subnets})
    return DisjointPathOutcome(
        traceroute_concludes_disjoint=traceroute_disjoint,
        tracenet_sees_shared_lan=lan_seen,
        shared_lan=lan.prefix,
        details={"p1": p1, "p3": p3, "t1": t1, "t3": t3},
    )


@dataclass
class FluctuationOutcome:
    traceroute_path_variants: int
    tracenet_subnet_variants: int
    runs: int

    def render(self) -> str:
        return "\n".join([
            "Section 3.7: behaviour under per-flow load balancing "
            f"({self.runs} repetitions)",
            f"  distinct classic-traceroute hop sequences: "
            f"{self.traceroute_path_variants}",
            f"  distinct tracenet views of the target subnet: "
            f"{self.tracenet_subnet_variants}",
        ])


def run_fluctuation_experiment(runs: int = 8, seed: int = 3) -> FluctuationOutcome:
    """Section 3.7: stable-ingress tracenet vs classic traceroute under ECMP."""
    from .netsim import TopologyBuilder

    builder = TopologyBuilder("ecmp")
    builder.link("A", "B1")
    builder.link("A", "B2")
    builder.link("B1", "C")
    builder.link("B2", "C")
    lan = builder.lan(["C", "D", "E"], length=29)
    builder.edge_host("v", "A")
    topology = builder.build()
    target = topology.routers["E"].interface_on(lan.subnet_id).address

    trace_paths = set()
    subnet_views = set()
    rng = random.Random(seed)
    balancer = LoadBalancer(LoadBalancingMode.PER_FLOW, seed=seed)
    # One classic tracer across all runs: its per-probe flow rotation is
    # exactly what per-flow balancers scatter.
    tracer = Traceroute(Engine(topology, balancer=balancer), "v",
                        vary_flow=True)
    for _ in range(runs):
        trace_paths.add(tuple(tracer.trace(target).path_addresses))
        tool = TraceNET(
            Engine(topology, balancer=LoadBalancer(
                LoadBalancingMode.PER_FLOW, seed=rng.randrange(1 << 30))),
            "v")
        subnet = tool.trace(target).subnet_for(target)
        assert subnet is not None
        subnet_views.add((subnet.prefix, frozenset(subnet.members)))
    return FluctuationOutcome(
        traceroute_path_variants=len(trace_paths),
        tracenet_subnet_variants=len(subnet_views),
        runs=runs,
    )
