"""Probe journals: record every exchange, replay it without a network.

A journal is a JSONL file — one header line, then one line per vantage
resolution and per probe/response exchange, in wire order.  Recording makes
a collection run fully auditable ("A Radar for the Internet": repeated
measurements are only comparable when each run's probe stream is recorded);
replaying re-serves the journal deterministically with zero simulator (or
network) involvement, so a collection can be re-run, unit-tested, and
debugged offline.  Replay is strict: a probe that does not match the next
journaled exchange fails loudly instead of returning a plausible answer.
"""

from __future__ import annotations

import json
from typing import Dict, IO, List, Optional, Sequence, Union

from ..netsim.addressing import format_ip, parse_ip
from ..netsim.packet import Probe, Response, ResponseType
from .base import ProbeTransport, TransportCapabilities, send_batch

JOURNAL_FORMAT = "tracenet-journal"
JOURNAL_VERSION = 1

#: The probe fields replay matches on.  ``probe_id`` is deliberately not
#: one of them: it is a process-global counter with no wire meaning.
MATCHED_PROBE_FIELDS = ("src", "dst", "ttl", "protocol", "flow_id",
                       "record_route")


class JournalError(RuntimeError):
    """A malformed journal file."""


class ReplayMismatch(RuntimeError):
    """A replayed probe diverged from the recorded exchange stream."""


class ReplayExhausted(ReplayMismatch):
    """More probes were sent than the journal recorded."""


# -- wire representation ------------------------------------------------------


def probe_to_dict(probe: Probe) -> Dict:
    return {
        "src": format_ip(probe.src),
        "dst": format_ip(probe.dst),
        "ttl": probe.ttl,
        "protocol": probe.protocol.value,
        "flow_id": probe.flow_id,
        "record_route": probe.record_route,
        "probe_id": probe.probe_id,
    }


def response_to_dict(response: Response) -> Dict:
    return {
        "kind": response.kind.value,
        "source": format_ip(response.source),
        "responder": response.responder,
        "ip_id": response.ip_id,
        "record_route": [format_ip(stamp) for stamp in response.record_route],
    }


def response_from_dict(payload: Dict, probe: Probe) -> Response:
    """Rebuild a recorded response, bound to the probe being replayed."""
    return Response(
        kind=ResponseType(payload["kind"]),
        source=parse_ip(payload["source"]),
        probe=probe,
        responder=payload.get("responder"),
        ip_id=payload.get("ip_id"),
        record_route=tuple(parse_ip(stamp)
                           for stamp in payload.get("record_route", [])),
    )


def _match_key(payload: Dict) -> tuple:
    return tuple(payload[field] for field in MATCHED_PROBE_FIELDS)


# -- recording ----------------------------------------------------------------


class RecordingTransport:
    """Wraps any transport and journals every exchange through it."""

    def __init__(self, inner: ProbeTransport, destination: Union[str, IO],
                 metadata: Optional[Dict] = None):
        self.inner = inner
        if isinstance(destination, str):
            self._fp: IO = open(destination, "w", encoding="utf-8")
            self._owns_fp = True
        else:
            self._fp = destination
            self._owns_fp = False
        self.exchanges = 0
        self.batches = 0
        self.batched_probes = 0
        self._known_vantages: Dict[str, int] = {}
        self._write({
            "kind": "header",
            "format": JOURNAL_FORMAT,
            "version": JOURNAL_VERSION,
            "inner": inner.capabilities().name,
            "metadata": dict(metadata or {}),
        })

    @property
    def engine(self):
        """The wrapped engine, when the inner transport exposes one."""
        return getattr(self.inner, "engine", None)

    def send(self, probe: Probe) -> Optional[Response]:
        response = self.inner.send(probe)
        self.exchanges += 1
        self._write({
            "kind": "exchange",
            "seq": self.exchanges,
            "probe": probe_to_dict(probe),
            "response": (response_to_dict(response)
                         if response is not None else None),
        })
        return response

    def send_many(self, probes: Sequence[Probe]
                  ) -> List[Optional[Response]]:
        """Journal a batch as its equivalent sequence of exchange records.

        Batches are a pipelining detail, not a wire-format concern: the
        journal stays a flat in-order exchange stream, so a batched run's
        journal replays under a serial collector and vice versa.
        """
        self.batches += 1
        self.batched_probes += len(probes)
        responses = send_batch(self.inner, probes)
        for probe, response in zip(probes, responses):
            self.exchanges += 1
            self._write({
                "kind": "exchange",
                "seq": self.exchanges,
                "probe": probe_to_dict(probe),
                "response": (response_to_dict(response)
                             if response is not None else None),
            })
        return responses

    def capabilities(self) -> TransportCapabilities:
        inner = self.inner.capabilities()
        return TransportCapabilities(
            name=f"recording({inner.name})",
            deterministic=inner.deterministic,
            supports_record_route=inner.supports_record_route,
            live_network=inner.live_network,
        )

    def source_address(self, host_id: str) -> int:
        address = self.inner.source_address(host_id)
        if self._known_vantages.get(host_id) != address:
            self._known_vantages[host_id] = address
            self._write({
                "kind": "vantage",
                "host": host_id,
                "address": format_ip(address),
            })
        return address

    def backend_metrics(self) -> Dict:
        """Journal accounting, folded over the inner backend's."""
        from .base import backend_metrics

        metrics = backend_metrics(self.inner)
        metrics["journal_exchanges_recorded"] = self.exchanges
        metrics["journal_batches_recorded"] = self.batches
        metrics["journal_batched_probes"] = self.batched_probes
        return metrics

    def close(self) -> None:
        self._fp.flush()
        if self._owns_fp:
            self._fp.close()
        self.inner.close()

    def __enter__(self) -> "RecordingTransport":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _write(self, payload: Dict) -> None:
        self._fp.write(json.dumps(payload, sort_keys=True))
        self._fp.write("\n")


# -- replay -------------------------------------------------------------------


class ReplayTransport:
    """Re-serves a recorded journal, exchange by exchange, with no network.

    Probes must arrive in the recorded order and match the recorded header
    fields exactly — any divergence raises :class:`ReplayMismatch` (or
    :class:`ReplayExhausted` past the end) rather than inventing an answer.
    """

    def __init__(self, source: Union[str, IO]):
        if isinstance(source, str):
            with open(source, "r", encoding="utf-8") as fp:
                records = _parse_journal(fp)
        else:
            records = _parse_journal(source)
        self.header, self._vantages, self._exchanges = records
        self.cursor = 0
        self.batches = 0

    @property
    def metadata(self) -> Dict:
        return self.header.get("metadata", {})

    @property
    def remaining(self) -> int:
        return len(self._exchanges) - self.cursor

    def send(self, probe: Probe) -> Optional[Response]:
        if self.cursor >= len(self._exchanges):
            raise ReplayExhausted(
                f"journal exhausted after {len(self._exchanges)} exchanges; "
                f"unexpected probe {probe.describe()}")
        expected = self._exchanges[self.cursor]
        sent = probe_to_dict(probe)
        if _match_key(sent) != _match_key(expected["probe"]):
            raise ReplayMismatch(
                f"probe #{self.cursor + 1} diverged from the journal: "
                f"sent {sent!r}, recorded {expected['probe']!r}")
        self.cursor += 1
        payload = expected["response"]
        if payload is None:
            return None
        return response_from_dict(payload, probe)

    def send_many(self, probes: Sequence[Probe]
                  ) -> List[Optional[Response]]:
        """Serve a batch from the flat exchange stream, strictly in order."""
        self.batches += 1
        return [self.send(probe) for probe in probes]

    def capabilities(self) -> TransportCapabilities:
        return TransportCapabilities(
            name="replay",
            deterministic=True,
            supports_record_route=True,
            live_network=False,
            replayed=True,
        )

    def source_address(self, host_id: str) -> int:
        if host_id not in self._vantages:
            raise ValueError(
                f"unknown vantage host {host_id!r} (journal knows "
                f"{sorted(self._vantages) or 'none'})")
        return self._vantages[host_id]

    def backend_metrics(self) -> Dict:
        """Replay cursor accounting (no engine behind this backend).

        The bulk-lookup gauges are pinned to zero so the metric inventory
        matches the live backends': a replayed run serves every response
        from the journal, never from the engine's resolved-path index.
        """
        return {
            "replay_exchanges_served": self.cursor,
            "replay_exchanges_remaining": self.remaining,
            "replay_batches_served": self.batches,
            "engine_bulk_lookup_hits": 0,
            "engine_bulk_lookup_misses": 0,
        }

    def close(self) -> None:
        """Journals are fully loaded up front; nothing to release."""

    def assert_drained(self) -> None:
        """Fail when the collection sent fewer probes than were recorded."""
        if self.remaining:
            raise ReplayMismatch(
                f"{self.remaining} recorded exchange(s) were never replayed")


def _parse_journal(fp: IO):
    header: Optional[Dict] = None
    vantages: Dict[str, int] = {}
    exchanges: List[Dict] = []
    for lineno, line in enumerate(fp, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise JournalError(f"journal line {lineno} is not JSON: {exc}")
        kind = record.get("kind")
        if kind == "header":
            if record.get("format") != JOURNAL_FORMAT:
                raise JournalError(
                    f"not a {JOURNAL_FORMAT} file (line {lineno})")
            if record.get("version") != JOURNAL_VERSION:
                raise JournalError(
                    f"unsupported journal version {record.get('version')!r}")
            header = record
        elif kind == "vantage":
            vantages[record["host"]] = parse_ip(record["address"])
        elif kind == "exchange":
            exchanges.append(record)
        else:
            raise JournalError(
                f"unknown journal record kind {kind!r} (line {lineno})")
    if header is None:
        raise JournalError("journal has no header line")
    return header, vantages, exchanges
