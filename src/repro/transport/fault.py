"""Seeded fault injection at the transport seam.

Robustness tests need to answer "what does the collector do when the
network misbehaves *more*?" without hand-crafting a hostile topology every
time.  :class:`FaultInjectingTransport` wraps any backend and drops
responses — uniformly at a seeded rate, in Gilbert–Elliott loss bursts,
for specific blackholed destinations, or on per-destination intermittent
duty cycles — before the prober sees them.  Because the drops happen above
the backend, the same faults can be injected into a simulator run, a
recorded journal, or (eventually) a live transport.

Determinism contract: with only ``drop_rate``/``blackholes`` configured,
the RNG draw sequence is exactly the legacy one (one draw per non-None
response when ``drop_rate > 0``), so pre-existing seeded runs reproduce
byte for byte.  Burst mode adds one chain-transition draw per non-
blackholed probe *only when enabled*; intermittent mode is counter-based
and consumes no randomness at all.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..netsim.packet import Probe, Response
from .base import ProbeTransport, TransportCapabilities, send_batch


class FaultInjectingTransport:
    """Drops responses on top of an inner transport, deterministically.

    Args:
        inner: the real backend.
        drop_rate: probability (seeded) that any response is swallowed
            outside a loss burst.
        blackholes: destination addresses whose probes never get answers —
            the probe still reaches the inner backend (it is "sent"), only
            the answer is suppressed, like a filtering middlebox.
        seed: RNG seed; identical seeds give identical drop sequences.
        burst_enter: per-probe probability of entering the Gilbert–Elliott
            bad state (0 disables burst mode entirely — and skips its RNG
            draws, preserving legacy streams).
        burst_exit: per-probe probability of leaving the bad state.
        burst_drop_rate: drop probability while in the bad state (1.0
            models total outage bursts).
        intermittent: per-destination duty cycles — ``{dst: (up, down)}``
            answers the first ``up`` probes of every ``up + down`` window
            toward ``dst`` and swallows the rest, with no RNG involved.
    """

    def __init__(self, inner: ProbeTransport, drop_rate: float = 0.0,
                 blackholes: Iterable[int] = (), seed: int = 0,
                 burst_enter: float = 0.0, burst_exit: float = 0.5,
                 burst_drop_rate: float = 1.0,
                 intermittent: Optional[Mapping[int, Tuple[int, int]]] = None):
        for name, value in (("drop_rate", drop_rate),
                            ("burst_enter", burst_enter),
                            ("burst_exit", burst_exit),
                            ("burst_drop_rate", burst_drop_rate)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        self.inner = inner
        self.drop_rate = drop_rate
        self.blackholes = frozenset(blackholes)
        self.burst_enter = burst_enter
        self.burst_exit = burst_exit
        self.burst_drop_rate = burst_drop_rate
        self.intermittent: Dict[int, Tuple[int, int]] = {}
        if intermittent:
            for dst, (up, down) in intermittent.items():
                if up < 1 or down < 1:
                    raise ValueError(
                        f"intermittent duty cycle for {dst} needs "
                        f"up >= 1 and down >= 1, got ({up}, {down})")
                self.intermittent[dst] = (up, down)
        self._intermittent_counts: Dict[int, int] = {}
        self._rng = random.Random(seed)
        self._in_burst = False
        self.sends = 0
        self.batches = 0
        self.batched_probes = 0
        self.injected_drops = 0
        self.blackholed = 0
        self.responses_suppressed = 0
        self.bursts = 0
        self.burst_drops = 0
        self.intermittent_drops = 0

    @property
    def engine(self):
        """The wrapped engine, when the inner transport exposes one."""
        return getattr(self.inner, "engine", None)

    def send(self, probe: Probe) -> Optional[Response]:
        response = self.inner.send(probe)
        self.sends += 1
        return self._apply_faults(probe, response)

    def send_many(self, probes: Sequence[Probe]) -> List[Optional[Response]]:
        """Batch through the inner backend, then inject faults per probe.

        Faults are applied in probe order so the RNG draw sequence — and
        therefore which responses get swallowed — is identical to sending
        the same probes one at a time with the same seed.
        """
        self.batches += 1
        self.batched_probes += len(probes)
        responses = send_batch(self.inner, probes)
        self.sends += len(probes)
        return [self._apply_faults(probe, response)
                for probe, response in zip(probes, responses)]

    def _apply_faults(self, probe: Probe,
                      response: Optional[Response]) -> Optional[Response]:
        if probe.dst in self.blackholes:
            self.blackholed += 1
            if response is not None:
                self.responses_suppressed += 1
            return None
        if self.intermittent:
            cycle = self.intermittent.get(probe.dst)
            if cycle is not None:
                count = self._intermittent_counts.get(probe.dst, 0)
                self._intermittent_counts[probe.dst] = count + 1
                up, down = cycle
                if count % (up + down) >= up:
                    self.intermittent_drops += 1
                    if response is not None:
                        self.responses_suppressed += 1
                    return None
        if self.burst_enter > 0.0:
            # Gilbert–Elliott two-state chain: one transition draw per
            # probe, whether or not the inner backend answered, so the
            # burst trajectory depends only on probe order and the seed.
            if self._in_burst:
                if self._rng.random() < self.burst_exit:
                    self._in_burst = False
            elif self._rng.random() < self.burst_enter:
                self._in_burst = True
                self.bursts += 1
            if self._in_burst and response is not None \
                    and (self.burst_drop_rate >= 1.0
                         or self._rng.random() < self.burst_drop_rate):
                self.burst_drops += 1
                self.responses_suppressed += 1
                return None
        if response is not None and self.drop_rate > 0.0 \
                and self._rng.random() < self.drop_rate:
            self.injected_drops += 1
            self.responses_suppressed += 1
            return None
        return response

    def backend_metrics(self) -> dict:
        """Fault-injection accounting, folded over the inner backend's.

        ``fault_responses_suppressed`` counts answers that existed and were
        swallowed; ``fault_blackholed`` counts probes to blackholed
        destinations whether or not the inner backend would have answered;
        ``fault_bursts_total`` counts entries into the Gilbert–Elliott bad
        state (not the per-probe drops, which land in
        ``fault_burst_drops``).
        """
        from .base import backend_metrics

        metrics = backend_metrics(self.inner)
        metrics.update({
            "fault_sends": self.sends,
            "fault_batches": self.batches,
            "fault_batched_probes": self.batched_probes,
            "fault_injected_drops": self.injected_drops,
            "fault_blackholed": self.blackholed,
            "fault_responses_suppressed": self.responses_suppressed,
            "fault_bursts_total": self.bursts,
            "fault_burst_drops": self.burst_drops,
            "fault_intermittent_drops": self.intermittent_drops,
        })
        return metrics

    def capabilities(self) -> TransportCapabilities:
        inner = self.inner.capabilities()
        return TransportCapabilities(
            name=f"fault({inner.name})",
            deterministic=inner.deterministic,
            supports_record_route=inner.supports_record_route,
            live_network=inner.live_network,
            replayed=inner.replayed,
        )

    def source_address(self, host_id: str) -> int:
        return self.inner.source_address(host_id)

    def idle(self, ticks: int = 1) -> None:
        """Forward retry-backoff idling to the inner backend."""
        idle = getattr(self.inner, "idle", None)
        if idle is not None:
            idle(ticks)

    def close(self) -> None:
        self.inner.close()
