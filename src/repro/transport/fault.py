"""Seeded fault injection at the transport seam.

Robustness tests need to answer "what does the collector do when the
network misbehaves *more*?" without hand-crafting a hostile topology every
time.  :class:`FaultInjectingTransport` wraps any backend and drops
responses — uniformly at a seeded rate, or for specific blackholed
destinations — before the prober sees them.  Because the drops happen above
the backend, the same faults can be injected into a simulator run, a
recorded journal, or (eventually) a live transport.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence

from ..netsim.packet import Probe, Response
from .base import ProbeTransport, TransportCapabilities, send_batch


class FaultInjectingTransport:
    """Drops responses on top of an inner transport, deterministically.

    Args:
        inner: the real backend.
        drop_rate: probability (seeded) that any response is swallowed.
        blackholes: destination addresses whose probes never get answers —
            the probe still reaches the inner backend (it is "sent"), only
            the answer is suppressed, like a filtering middlebox.
        seed: RNG seed; identical seeds give identical drop sequences.
    """

    def __init__(self, inner: ProbeTransport, drop_rate: float = 0.0,
                 blackholes: Iterable[int] = (), seed: int = 0):
        if not 0.0 <= drop_rate <= 1.0:
            raise ValueError(f"drop_rate must be in [0, 1], got {drop_rate}")
        self.inner = inner
        self.drop_rate = drop_rate
        self.blackholes = frozenset(blackholes)
        self._rng = random.Random(seed)
        self.sends = 0
        self.batches = 0
        self.batched_probes = 0
        self.injected_drops = 0
        self.blackholed = 0
        self.responses_suppressed = 0

    @property
    def engine(self):
        """The wrapped engine, when the inner transport exposes one."""
        return getattr(self.inner, "engine", None)

    def send(self, probe: Probe) -> Optional[Response]:
        response = self.inner.send(probe)
        self.sends += 1
        return self._apply_faults(probe, response)

    def send_many(self, probes: Sequence[Probe]) -> List[Optional[Response]]:
        """Batch through the inner backend, then inject faults per probe.

        Faults are applied in probe order so the RNG draw sequence — and
        therefore which responses get swallowed — is identical to sending
        the same probes one at a time with the same seed.
        """
        self.batches += 1
        self.batched_probes += len(probes)
        responses = send_batch(self.inner, probes)
        self.sends += len(probes)
        return [self._apply_faults(probe, response)
                for probe, response in zip(probes, responses)]

    def _apply_faults(self, probe: Probe,
                      response: Optional[Response]) -> Optional[Response]:
        if probe.dst in self.blackholes:
            self.blackholed += 1
            if response is not None:
                self.responses_suppressed += 1
            return None
        if response is not None and self.drop_rate > 0.0 \
                and self._rng.random() < self.drop_rate:
            self.injected_drops += 1
            self.responses_suppressed += 1
            return None
        return response

    def backend_metrics(self) -> dict:
        """Fault-injection accounting, folded over the inner backend's.

        ``fault_responses_suppressed`` counts answers that existed and were
        swallowed; ``fault_blackholed`` counts probes to blackholed
        destinations whether or not the inner backend would have answered.
        """
        from .base import backend_metrics

        metrics = backend_metrics(self.inner)
        metrics.update({
            "fault_sends": self.sends,
            "fault_batches": self.batches,
            "fault_batched_probes": self.batched_probes,
            "fault_injected_drops": self.injected_drops,
            "fault_blackholed": self.blackholed,
            "fault_responses_suppressed": self.responses_suppressed,
        })
        return metrics

    def capabilities(self) -> TransportCapabilities:
        inner = self.inner.capabilities()
        return TransportCapabilities(
            name=f"fault({inner.name})",
            deterministic=inner.deterministic,
            supports_record_route=inner.supports_record_route,
            live_network=inner.live_network,
            replayed=inner.replayed,
        )

    def source_address(self, host_id: str) -> int:
        return self.inner.source_address(host_id)

    def close(self) -> None:
        self.inner.close()
