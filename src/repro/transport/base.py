"""The ProbeTransport seam: probe in, response out, backend unspecified.

Everything above this line — the prober, tracenet, every baseline — sees
the network exclusively through :class:`ProbeTransport`.  The simulator is
one implementation; a raw-socket or scapy backend, a recorded journal, or
a fault-injecting wrapper are others, and the algorithms cannot tell them
apart.  This is the contract that makes collected data replayable and the
collectors backend-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol as TypingProtocol, Sequence, \
    runtime_checkable

from ..netsim.packet import Probe, Response


@dataclass(frozen=True)
class TransportCapabilities:
    """What a transport backend can and cannot do.

    Collectors consult this instead of sniffing concrete types: DisCarte
    checks ``supports_record_route``, tests check ``deterministic``, and
    tooling labels journals with ``name``.
    """

    name: str
    deterministic: bool = True
    supports_record_route: bool = True
    live_network: bool = False
    replayed: bool = False


@runtime_checkable
class ProbeTransport(TypingProtocol):
    """Structural interface every probe backend satisfies."""

    def send(self, probe: Probe) -> Optional[Response]:
        """Emit one probe; return the response seen at the vantage, or None."""
        ...

    def send_many(self, probes: Sequence[Probe]) -> List[Optional[Response]]:
        """Emit a batch of probes; responses positionally, None for silence.

        Semantically identical to ``[self.send(p) for p in probes]`` — the
        batch is a *pipelining* hint, not a reordering license: backends
        must process probes in order so that journals, fault-injection RNG
        draws, and simulator clocks match the serial path exactly.
        """
        ...

    def capabilities(self) -> TransportCapabilities:
        """Describe this backend."""
        ...

    def source_address(self, host_id: str) -> int:
        """The IP address probes from ``host_id`` carry as their source.

        Raises ``ValueError`` for a vantage this backend does not know.
        """
        ...

    def close(self) -> None:
        """Release backend resources (files, sockets); idempotent."""
        ...


def send_batch(transport, probes: Sequence[Probe]) -> List[Optional[Response]]:
    """Dispatch a probe batch through ``send_many`` when the backend has it.

    Third-party transports predating the batch API (anything with just
    ``send``) degrade to a per-probe loop with identical semantics, so
    callers batch unconditionally and never sniff capabilities.
    """
    many = getattr(transport, "send_many", None)
    if callable(many):
        return list(many(probes))
    return [transport.send(probe) for probe in probes]


def backend_metrics(transport) -> dict:
    """Flat implementation-detail counters of a transport stack.

    Transports may implement ``backend_metrics() -> Dict[str, int]``
    (wrappers fold their inner transport's dict in); backends without the
    hook report nothing.  These counters are *not* part of the
    deterministic session metrics — a simulator run reports engine
    path-cache figures, a replay run reports journal cursors — which is
    exactly why they live behind this seam-level hook instead of inside
    ``repro.metrics`` (which never imports the engine).
    """
    collect = getattr(transport, "backend_metrics", None)
    return dict(collect()) if callable(collect) else {}


def collect_backend_metrics(registry, transport) -> None:
    """Capture a transport stack's backend counters into a registry scope.

    ``registry`` is duck-typed (anything with ``set_gauge``), normally the
    ``backend`` scope of a :class:`repro.metrics.MetricsRegistry`.  Gauges,
    not counters: the hook reports absolute totals, and re-capturing after
    a longer run must overwrite, not double.
    """
    if registry is None:
        return
    for name, value in sorted(backend_metrics(transport).items()):
        registry.set_gauge(name, value)


def as_transport(network) -> ProbeTransport:
    """Coerce an Engine-or-transport argument onto the seam.

    Every collector constructor funnels its first argument through here, so
    legacy ``Tool(engine, ...)`` call sites keep working while new code
    passes any :class:`ProbeTransport` implementation directly.
    """
    if isinstance(network, ProbeTransport) and not isinstance(network, type):
        return network
    # Engine-shaped: has send() and a topology, but no capabilities().
    if hasattr(network, "send") and hasattr(network, "topology"):
        from .simulator import SimulatorTransport

        return SimulatorTransport(network)
    # Transport-shaped but pre-batch-API: a send/capabilities/source_address
    # trio without send_many (send_batch degrades to a loop for these).
    if not isinstance(network, type) and hasattr(network, "send") \
            and hasattr(network, "capabilities") \
            and hasattr(network, "source_address"):
        return network
    raise TypeError(
        f"expected a ProbeTransport or a netsim Engine, got {type(network).__name__}")
