"""The churn seam: a transport that mutates the network at probe epochs.

:class:`MutatingTransport` wraps any inner transport and counts the probes
flowing through it.  When the cumulative count crosses a
:class:`~repro.netsim.dynamics.MutationSchedule` epoch, the due mutations
fire *before* the next probe is answered: against a live simulator the
attached :class:`~repro.netsim.dynamics.NetworkDynamics` applies them to
the engine (version bumps invalidate every engine cache), and in every
mode a :class:`~repro.events.TopologyMutated` event is emitted per
mutation, derived purely from the schedule.

That derivation rule is the replay contract: a journal replay wraps
:class:`~repro.transport.journal.ReplayTransport` in a
``MutatingTransport`` with the *same schedule and no dynamics* — the
canned responses already reflect the mutated network — and emits the
byte-identical event stream at the byte-identical positions.

Collectors watch :attr:`MutatingTransport.mutation_epoch` (a counter of
fired mutations) to detect mid-trace churn; because the counter advances
identically live and replayed, degradation marking replays exactly too.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..events import EventBus, TopologyMutated
from ..netsim.dynamics import MutationSchedule, NetworkDynamics
from ..netsim.packet import Probe, Response
from .base import TransportCapabilities, backend_metrics, send_batch


class MutatingTransport:
    """Applies a seeded mutation schedule at probe-count epochs.

    Args:
        inner: the transport actually answering probes.
        schedule: the mutation schedule (epochs are cumulative probe
            counts *through this transport*).
        dynamics: the engine applier for live runs; None on replay (the
            journal already reflects the mutated network).
        events: bus for :class:`~repro.events.TopologyMutated` emission;
            None emits nothing (the schedule still applies).
    """

    def __init__(self, inner, schedule: MutationSchedule,
                 dynamics: Optional[NetworkDynamics] = None,
                 events: Optional[EventBus] = None):
        self.inner = inner
        self.schedule = schedule
        self.dynamics = dynamics
        self.events = events
        #: Probes dispatched through this transport so far.
        self.probes = 0
        #: Fired-mutation counter — the staleness signal collectors watch.
        self.mutation_epoch = 0
        self._cursor = 0

    # -- the epoch check ---------------------------------------------------

    def _advance(self) -> None:
        """Fire every mutation due at the current probe count."""
        mutations = self.schedule.mutations
        if self._cursor >= len(mutations) \
                or mutations[self._cursor].epoch > self.probes:
            return
        if self.dynamics is not None:
            self.dynamics.advance(self.probes)
        while self._cursor < len(mutations) \
                and mutations[self._cursor].epoch <= self.probes:
            mutation = mutations[self._cursor]
            self._cursor += 1
            self.mutation_epoch += 1
            if self.events:
                self.events.emit(TopologyMutated(
                    epoch=mutation.epoch, sequence=mutation.sequence,
                    kind=mutation.kind, target=mutation.target,
                    detail=dict(mutation.detail) or None))

    def _next_boundary(self) -> Optional[int]:
        """Probe count at which the next mutation fires (None when done)."""
        if self._cursor >= len(self.schedule.mutations):
            return None
        return self.schedule.mutations[self._cursor].epoch

    # -- ProbeTransport ----------------------------------------------------

    def send(self, probe: Probe) -> Optional[Response]:
        self._advance()
        self.probes += 1
        return self.inner.send(probe)

    def send_many(self, probes: Sequence[Probe]
                  ) -> List[Optional[Response]]:
        """Batch dispatch, split at epoch boundaries.

        A mutation due mid-batch fires between the two probes it falls
        between — exactly where a serial probe loop would have fired it —
        so batched and serial runs see the identical mutated network.
        """
        responses: List[Optional[Response]] = []
        start = 0
        total = len(probes)
        while start < total:
            self._advance()
            boundary = self._next_boundary()
            if boundary is None:
                stop = total
            else:
                stop = min(total, start + max(1, boundary - self.probes))
            chunk = probes[start:stop]
            self.probes += len(chunk)
            responses.extend(send_batch(self.inner, chunk))
            start = stop
        return responses

    def capabilities(self) -> TransportCapabilities:
        inner_caps = self.inner.capabilities()
        return TransportCapabilities(
            name=f"churn({inner_caps.name})",
            deterministic=inner_caps.deterministic,
            supports_record_route=inner_caps.supports_record_route,
            live_network=inner_caps.live_network,
            replayed=inner_caps.replayed,
        )

    def source_address(self, host_id: str) -> int:
        return self.inner.source_address(host_id)

    def idle(self, ticks: int = 1) -> None:
        """Forward retry-backoff idling (no probes, no epoch advance)."""
        idle = getattr(self.inner, "idle", None)
        if idle is not None:
            idle(ticks)

    def backend_metrics(self) -> dict:
        metrics = backend_metrics(self.inner)
        metrics.update({
            "churn_probes": self.probes,
            "churn_mutations_fired": self.mutation_epoch,
            "churn_mutations_scheduled": len(self.schedule.mutations),
        })
        return metrics

    def close(self) -> None:
        self.inner.close()


def find_mutating(transport) -> Optional[MutatingTransport]:
    """The :class:`MutatingTransport` in a wrapper chain, if any.

    Collectors use this to watch :attr:`MutatingTransport.mutation_epoch`
    through recording/fault wrappers (e.g. ``record(churn(fault(sim)))``).
    """
    seen = set()
    while transport is not None and id(transport) not in seen:
        seen.add(id(transport))
        if isinstance(transport, MutatingTransport):
            return transport
        transport = getattr(transport, "inner", None)
    return None


__all__ = ["MutatingTransport", "find_mutating"]
