"""The probe-transport layer: the seam between collectors and the network.

Collectors speak :class:`~repro.transport.base.ProbeTransport` —
``send(Probe) -> Optional[Response]`` plus a capability descriptor — and
never name a backend.  Shipped backends:

* :class:`SimulatorTransport` — the deterministic forwarding engine;
* :class:`RecordingTransport` — journals every exchange to JSONL;
* :class:`ReplayTransport` — re-serves a journal with no network at all;
* :class:`FaultInjectingTransport` — seeded drops/blackholes/loss bursts;
* :class:`MutatingTransport` — fires seeded topology mutations at probe
  epochs (the radar churn seam).
"""

from .base import (
    ProbeTransport,
    TransportCapabilities,
    as_transport,
    backend_metrics,
    collect_backend_metrics,
    send_batch,
)
from .churn import MutatingTransport
from .fault import FaultInjectingTransport
from .journal import (
    JournalError,
    RecordingTransport,
    ReplayExhausted,
    ReplayMismatch,
    ReplayTransport,
)
from .simulator import SimulatorTransport

__all__ = [
    "FaultInjectingTransport",
    "JournalError",
    "MutatingTransport",
    "ProbeTransport",
    "RecordingTransport",
    "ReplayExhausted",
    "ReplayMismatch",
    "ReplayTransport",
    "SimulatorTransport",
    "TransportCapabilities",
    "as_transport",
    "backend_metrics",
    "collect_backend_metrics",
    "send_batch",
]
