"""The simulator backend: a ProbeTransport over :class:`~repro.netsim.engine.Engine`.

This is the only module above the seam that touches the engine; collectors
built from an ``Engine`` are silently wrapped in a
:class:`SimulatorTransport` by :func:`~repro.transport.base.as_transport`,
which keeps probe counts and archives bit-identical to the pre-seam code
path (the wrapper adds nothing but the capability descriptor).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..netsim.engine import Engine
from ..netsim.packet import Probe, Response
from .base import TransportCapabilities

_SIMULATOR_CAPS = TransportCapabilities(
    name="simulator",
    deterministic=True,
    supports_record_route=True,
    live_network=False,
)


class SimulatorTransport:
    """Adapts the deterministic forwarding engine onto the transport seam."""

    def __init__(self, engine: Engine):
        self.engine = engine
        self.batches = 0
        self.batched_probes = 0

    def send(self, probe: Probe) -> Optional[Response]:
        return self.engine.send(probe)

    def send_many(self, probes: Sequence[Probe]) -> List[Optional[Response]]:
        """Batch-serve memoized response plans in one engine call."""
        self.batches += 1
        self.batched_probes += len(probes)
        return self.engine.send_many(probes)

    def capabilities(self) -> TransportCapabilities:
        return _SIMULATOR_CAPS

    def idle(self, ticks: int = 1) -> None:
        """Advance the engine clock without probing (retry backoff)."""
        self.engine.idle(ticks)

    def source_address(self, host_id: str) -> int:
        hosts = self.engine.topology.hosts
        if host_id not in hosts:
            raise ValueError(f"unknown vantage host {host_id!r}")
        return hosts[host_id].address

    def backend_metrics(self) -> dict:
        """Engine counters, fast-path accounting included — the only route
        by which ``engine.stats`` reaches the metrics layer (which is
        sealed off from ``netsim.engine``)."""
        metrics = self.engine.stats.snapshot()
        metrics["transport_batches"] = self.batches
        metrics["transport_batched_probes"] = self.batched_probes
        return metrics

    def close(self) -> None:
        """The engine holds no external resources."""
