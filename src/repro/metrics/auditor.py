"""The live probe-economy auditor (paper Section 3.6).

The analytic model bounds the probe cost of growing one subnet: 4 probes
for an on-path point-to-point link, ``7|S| + 7`` for a hostile off-path
LAN.  Before this module those bounds were only checked after the fact by
``benchmarks/bench_overhead_model.py``; the auditor checks them *live*, as
each subnet completes, which is what turns a silently degraded probe
economy (the failure mode "Misleading Stars" warns about) into an
observable signal.

The auditor is an :class:`~repro.events.EventBus` sink: on every
:class:`~repro.events.SubnetGrown` it compares the event's ``probes_used``
(with its per-phase attribution) against
:func:`repro.core.overhead.estimate` and, on a violation, emits an
:class:`~repro.events.OverheadViolation` back onto the *same* bus.

The bound is taken over ``max(size, candidates_tested)``: the analytic
``7|S| + 7`` assumes every candidate inside the explored block is a
member, so a mostly-silent block (common in the reference networks, whose
response policies mute many interfaces) is charged the worst case over
the candidates the algorithm actually touched rather than the handful
that answered.  A subnet exceeding even that spent more than a fully
hostile LAN of the same explored scope could justify — the "silently
degraded probe economy" signal this auditor exists to raise.  The
violation therefore reaches every other sink — the metrics registry counts
``overhead_violations_total``, a JSONL event log records it durably, and a
replayed run re-derives the identical violation because the auditor is as
deterministic as the events that feed it.
"""

from __future__ import annotations

from ..core.overhead import estimate
from ..events import EventBus, OverheadViolation, SessionEvent, SubnetGrown

#: Measured costs absorb retries-on-silence and boundary probes that the
#: analytic model excludes by assumption; this matches the slack the
#: overhead bench has always granted (`OverheadEstimate.contains`).
DEFAULT_SLACK = 1.25


class ProbeEconomyAuditor:
    """Checks every completed subnet against the ``7|S| + 7`` bound.

    Args:
        bus: the session-event bus to re-emit violations onto (normally the
            same bus this sink is subscribed to).
        slack: multiplier on the upper bound before a cost counts as a
            violation; 1.0 audits the literal analytic bound.
    """

    #: Dispatch-mask hint: the bus only routes subnet completions here, so
    #: an attached auditor adds zero cost to the per-probe event stream.
    interests = (SubnetGrown,)

    def __init__(self, bus: EventBus, slack: float = DEFAULT_SLACK):
        if slack <= 0:
            raise ValueError(f"slack must be positive, got {slack}")
        self.bus = bus
        self.slack = slack
        self.checked = 0
        self.violations = 0

    def __call__(self, event: SessionEvent) -> None:
        if not isinstance(event, SubnetGrown):
            return
        self.checked += 1
        bound = estimate(max(1, event.size, event.candidates_tested))
        if bound.contains(event.probes_used, slack=self.slack):
            return
        self.violations += 1
        self.bus.emit(OverheadViolation(
            pivot=event.pivot,
            prefix=event.prefix,
            size=event.size,
            probes_used=event.probes_used,
            upper_bound=bound.upper,
            slack=self.slack,
            phase_probes=event.phase_probes,
        ))
