"""Offline journal analytics: rebuild a live run's metrics from its journal.

A probe journal (``--record``) is a complete transcript of one collection
session.  Replaying it through the *real* collector — the same
:class:`~repro.core.tracenet.TraceNET`, the same prober, the same event
stream, just a :class:`~repro.transport.ReplayTransport` instead of a
network — reproduces the exact session-event sequence of the original run,
and therefore the exact metrics registry.  That is what ``tracenet stats``
does: every archived journal becomes a queryable measurement artifact,
years after the run, with no simulator (or network) involved.

The run shape is resolved from the journal header metadata written by the
CLI: a ``destination`` entry means a single trace session, a ``network`` +
``seed`` entry means a survey whose target list is regenerated from the
named scenario module.  Both can be overridden by the caller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, IO, Iterable, List, Optional, Sequence, Union

from ..core.tracenet import TraceNET
from ..events import EventBus, SessionEvent
from ..runner import SurveyRunner
from ..transport import ProbeTransport, ReplayTransport
from ..transport.base import collect_backend_metrics
from .auditor import DEFAULT_SLACK, ProbeEconomyAuditor
from .registry import MetricsRegistry
from .sink import MetricsSink, collect_bus_metrics


def registry_from_events(events: Iterable[SessionEvent],
                         audit: bool = False,
                         slack: float = DEFAULT_SLACK) -> MetricsRegistry:
    """Metrics from an already-captured event stream (e.g. ``--events``).

    ``audit=True`` re-runs the probe-economy auditor over the stream; only
    enable it for streams recorded *without* an auditor attached, or
    violations are counted twice.
    """
    registry = MetricsRegistry()
    bus = EventBus()
    bus.subscribe(MetricsSink(registry))
    if audit:
        bus.subscribe(ProbeEconomyAuditor(bus, slack=slack))
    for event in events:
        bus.emit(event)
    return registry


def instrumented_collection(transport: ProbeTransport, vantage: str,
                            destination: Optional[int] = None,
                            targets: Optional[Sequence[int]] = None,
                            registry: Optional[MetricsRegistry] = None,
                            slack: float = DEFAULT_SLACK,
                            collector_options: Optional[Dict] = None,
                            extra_sinks: Sequence = ()
                            ) -> MetricsRegistry:
    """Run one collection (trace or survey) with full instrumentation.

    Exactly one of ``destination`` (a single tracenet session) and
    ``targets`` (a survey) must be given.  The transport's backend counters
    are captured into the registry's backend scope after the run.
    ``collector_options`` (``batch_window``, ``stop_sets``,
    ``stop_prefix_length``) rebuilds the collector the journal was recorded
    with — a batched or stop-set journal replays only under the same
    options, since they change the probe stream.  ``extra_sinks`` are
    subscribed before the metrics pipeline — e.g. a
    :class:`~repro.tracing.SpanBuilder` riding along an offline replay.
    """
    if (destination is None) == (targets is None):
        raise ValueError("pass exactly one of destination= or targets=")
    registry = registry if registry is not None else MetricsRegistry()
    tool = TraceNET(transport, vantage,
                    **_collector_kwargs(collector_options))
    for sink in extra_sinks:
        tool.events.subscribe(sink)
    tool.events.subscribe(MetricsSink(registry))
    tool.events.subscribe(ProbeEconomyAuditor(tool.events, slack=slack))
    with registry.time("collection_seconds"):
        if destination is not None:
            tool.trace(destination)
        else:
            SurveyRunner(tool).run(list(targets))
    collect_backend_metrics(registry.backend, transport)
    collect_bus_metrics(registry.backend, tool.events)
    return registry


def _collector_kwargs(options: Optional[Dict]) -> Dict:
    """TraceNET keyword arguments from a journal's ``collector`` metadata."""
    if not options:
        return {}
    kwargs: Dict = {}
    window = options.get("batch_window")
    if window:
        kwargs["batch_window"] = int(window)
    if options.get("stop_sets"):
        from ..probing.stopset import StopSet

        prefix_length = options.get("stop_prefix_length")
        kwargs["stop_set"] = (StopSet(prefix_length=int(prefix_length))
                              if prefix_length else StopSet())
    return kwargs


@dataclass
class JournalStats:
    """What ``tracenet stats`` computed for one journal."""

    registry: MetricsRegistry
    mode: str                      # "trace" or "survey"
    vantage: str
    metadata: Dict
    destination: Optional[int] = None
    targets: List[int] = field(default_factory=list)
    exchanges_served: int = 0
    exchanges_remaining: int = 0

    def describe(self) -> str:
        if self.mode == "events":
            return (f"replayed {self.exchanges_served} session events "
                    f"through the metrics pipeline")
        what = ("1 trace" if self.mode == "trace"
                else f"{len(self.targets)} survey targets")
        return (f"replayed {what} from vantage {self.vantage!r}: "
                f"{self.exchanges_served} journaled exchanges served, "
                f"{self.exchanges_remaining} unused")


def stats_from_journal(source: Union[str, IO],
                       vantage: Optional[str] = None,
                       destination: Optional[int] = None,
                       targets: Optional[Sequence[int]] = None,
                       slack: float = DEFAULT_SLACK,
                       extra_sinks: Sequence = ()) -> JournalStats:
    """Replay a recorded probe journal offline and rebuild its registry.

    Overrides win over journal metadata; with neither, the journal must
    have been recorded by ``tracenet trace --record`` (names its
    destination) or ``tracenet survey --record`` (names network + seed, so
    the target list is regenerated deterministically).
    """
    transport = ReplayTransport(source)
    metadata = transport.metadata
    vantage = vantage or metadata.get("source") or metadata.get("vantage")
    if vantage is None:
        raise ValueError("the journal names no vantage; pass vantage=")
    if destination is None and targets is None:
        destination, targets = _resolve_run_shape(metadata)
    registry = instrumented_collection(
        transport, vantage, destination=destination, targets=targets,
        slack=slack, collector_options=metadata.get("collector"),
        extra_sinks=extra_sinks)
    return JournalStats(
        registry=registry,
        mode="trace" if destination is not None else "survey",
        vantage=vantage,
        metadata=dict(metadata),
        destination=destination,
        targets=list(targets or []),
        exchanges_served=transport.cursor,
        exchanges_remaining=transport.remaining,
    )


def stats_from_events(source: Union[str, IO],
                      audit: bool = False,
                      slack: float = DEFAULT_SLACK) -> JournalStats:
    """Rebuild a registry from a session-event journal (``--events``).

    The cheaper sibling of :func:`stats_from_journal`: an event journal
    already *is* the session-event sequence, so no collector re-run is
    needed — the events are fed straight through a fresh
    :class:`MetricsSink`.  This is also the offline half of the survey
    service's parity contract: replaying a job's committed event journal
    must reproduce the coordinator's streamed registry exactly.  Keep
    ``audit=False`` for journals recorded with an auditor attached (the
    live auditor's violations are already in the stream).
    """
    from ..events import replay_events

    events = replay_events(source)
    registry = registry_from_events(events, audit=audit, slack=slack)
    return JournalStats(
        registry=registry,
        mode="events",
        vantage="",
        metadata={},
        exchanges_served=len(events),
    )


def journal_kind(source: str) -> str:
    """``"events"`` for a session-event journal, ``"probes"`` otherwise.

    Event journals carry an ``"event"`` key on every record; probe
    journals start with a header record.  An empty file counts as a probe
    journal (ReplayTransport gives the clearer error).
    """
    import json as _json

    with open(source, "r", encoding="utf-8") as fp:
        for line in fp:
            line = line.strip()
            if not line:
                continue
            try:
                record = _json.loads(line)
            except ValueError:
                return "probes"
            return ("events" if isinstance(record, dict)
                    and "event" in record else "probes")
    return "probes"


def _resolve_run_shape(metadata: Dict):
    """(destination, targets) from journal metadata, one of them None."""
    dest_text = metadata.get("destination")
    if dest_text is not None:
        from ..netsim.addressing import parse_ip

        return parse_ip(dest_text), None
    network_name = metadata.get("network")
    if network_name is not None:
        from ..topogen import geant, internet2

        modules = {"internet2": internet2, "geant": geant}
        module = modules.get(network_name)
        if module is None:
            raise ValueError(
                f"journal names unknown network {network_name!r}; pass "
                f"targets= explicitly")
        seed = metadata.get("seed", 7)
        network = module.build(seed=seed)
        return None, module.targets(network, seed=seed)
    raise ValueError(
        "journal metadata names neither a destination nor a network; "
        "pass destination= or targets= explicitly")
