"""Prometheus text-exposition rendering of a metrics registry.

Renders the 0.0.4 text format (the one every Prometheus scraper and
``promtool`` accepts): ``# HELP``/``# TYPE`` headers per metric family,
label sets rendered inline, histograms expanded into cumulative
``_bucket{le=...}`` series plus ``_sum``/``_count``.  Backend-scope metrics
are exposed too (prefixed ``backend_``) — exposition is an operational
surface, not an archival payload, so replay parity does not constrain it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .registry import Counter, Gauge, Histogram, LabelItems, MetricsRegistry

#: Every exposed metric name is prefixed with this namespace.
NAMESPACE = "tracenet"


def _escape_label_value(value: str) -> str:
    """0.0.4 label values: backslash, double quote and newline escape."""
    return (str(value).replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _escape_help(value: str) -> str:
    """0.0.4 HELP text: only backslash and newline escape — a quote in
    help prose stays raw (escaping it renders literal ``\\"`` in every
    scraper's metadata view)."""
    return str(value).replace("\\", r"\\").replace("\n", r"\n")


def _labels_text(labels: LabelItems, extra: Optional[Dict] = None) -> str:
    items = [(k, v) for k, v in labels]
    if extra:
        items.extend(extra.items())
    if not items:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in items)
    return f"{{{inner}}}"


def _format_bound(bound: float) -> str:
    text = repr(float(bound))
    return text[:-2] if text.endswith(".0") else text


def render_prometheus(registry: MetricsRegistry,
                      namespace: str = NAMESPACE) -> str:
    """The registry (session + backend scope) as Prometheus text format."""
    lines: List[str] = []
    _render_scope(lines, registry, namespace, registry.help_text)
    if registry.backend is not None:
        _render_scope(lines, registry.backend, f"{namespace}_backend",
                      registry.backend.help_text)
    for name, span in sorted(registry.timings.items()):
        full = f"{namespace}_timing_{name}"
        lines.append(f"# TYPE {full}_seconds gauge")
        lines.append(f"{full}_seconds {_format_value(span['seconds'])}")
        lines.append(f"# TYPE {full}_count gauge")
        lines.append(f"{full}_count {span['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def _format_value(value) -> str:
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return str(value)


def _render_scope(lines: List[str], registry: MetricsRegistry,
                  namespace: str, help_of) -> None:
    families: Dict[str, List] = {}
    for metric in registry.series():
        families.setdefault(metric.name, []).append(metric)
    for name in sorted(families):
        metrics = families[name]
        kind = metrics[0].kind
        full = f"{namespace}_{name}"
        help_text = help_of(name)
        if help_text:
            lines.append(f"# HELP {full} {_escape_help(help_text)}")
        lines.append(f"# TYPE {full} {kind}")
        for metric in metrics:
            if isinstance(metric, (Counter, Gauge)):
                lines.append(f"{full}{_labels_text(metric.labels)} "
                             f"{_format_value(metric.value)}")
            elif isinstance(metric, Histogram):
                cumulative = 0
                for bound, count in zip(metric.bounds, metric.counts):
                    cumulative += count
                    labels = _labels_text(metric.labels,
                                          {"le": _format_bound(bound)})
                    lines.append(f"{full}_bucket{labels} {cumulative}")
                cumulative += metric.overflow
                labels = _labels_text(metric.labels, {"le": "+Inf"})
                lines.append(f"{full}_bucket{labels} {cumulative}")
                lines.append(f"{full}_sum{_labels_text(metric.labels)} "
                             f"{_format_value(metric.sum)}")
                lines.append(f"{full}_count{_labels_text(metric.labels)} "
                             f"{metric.count}")
