"""repro.metrics — the first-class metrics layer over the session-event bus.

One :class:`MetricsRegistry` per collection run, fed by:

* :class:`MetricsSink` — every typed session event becomes counters,
  gauges and fixed-bucket histograms (deterministic, replay-safe);
* :class:`ProbeEconomyAuditor` — checks each completed subnet against the
  paper's ``7|S| + 7`` probe bound and emits
  :class:`~repro.events.OverheadViolation` events live;
* backend capture — engine fast-path and transport counters land in the
  quarantined ``registry.backend`` scope via
  :func:`repro.transport.base.collect_backend_metrics`.

Exposed three ways: ``--metrics-out`` JSON snapshots on ``tracenet
trace``/``survey``, :func:`render_prometheus` text exposition, and
``tracenet stats <journal>`` offline analytics
(:func:`stats_from_journal`).  See ``docs/OBSERVABILITY.md``.

Layering: this package must never import ``repro.netsim.engine``
(enforced by ``tests/test_layering.py``); engine counters reach it only
through the transport seam's ``backend_metrics()`` hook.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..events import EventBus
from .analytics import (
    JournalStats,
    instrumented_collection,
    journal_kind,
    registry_from_events,
    stats_from_events,
    stats_from_journal,
)
from .auditor import DEFAULT_SLACK, ProbeEconomyAuditor
from .prometheus import render_prometheus
from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .sink import MetricsSink, collect_bus_metrics


@dataclass
class Instrumentation:
    """One instrumented bus: the registry plus the attached sinks."""

    registry: MetricsRegistry
    bus: EventBus
    sink: MetricsSink
    auditor: Optional[ProbeEconomyAuditor] = None

    def detach(self) -> None:
        """Unsubscribe everything this instrumentation attached."""
        self.bus.unsubscribe(self.sink)
        if self.auditor is not None:
            self.bus.unsubscribe(self.auditor)


def instrument(bus: EventBus, registry: Optional[MetricsRegistry] = None,
               audit: bool = True,
               slack: float = DEFAULT_SLACK) -> Instrumentation:
    """Attach the metrics layer to a session-event bus.

    Subscribes a :class:`MetricsSink` (and, unless ``audit=False``, a
    :class:`ProbeEconomyAuditor`) to ``bus``; returns the live
    :class:`Instrumentation` whose registry accumulates for as long as the
    sinks stay attached.
    """
    registry = registry if registry is not None else MetricsRegistry()
    sink = MetricsSink(registry)
    bus.subscribe(sink)
    auditor = None
    if audit:
        auditor = ProbeEconomyAuditor(bus, slack=slack)
        bus.subscribe(auditor)
    return Instrumentation(registry=registry, bus=bus, sink=sink,
                           auditor=auditor)


__all__ = [
    "Counter",
    "DEFAULT_SLACK",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "JournalStats",
    "MetricsRegistry",
    "MetricsSink",
    "ProbeEconomyAuditor",
    "collect_bus_metrics",
    "instrument",
    "instrumented_collection",
    "journal_kind",
    "registry_from_events",
    "render_prometheus",
    "stats_from_events",
    "stats_from_journal",
]
