"""A deterministic metrics registry: counters, gauges, fixed-bucket histograms.

Design constraints, in order of importance:

1. **Replay parity.**  Everything in the default :meth:`MetricsRegistry.snapshot`
   payload must be a pure function of the session-event stream, so a live
   run, a :class:`~repro.transport.ReplayTransport` replay of its journal,
   and ``tracenet stats`` over the same journal produce *identical*
   snapshots.  Wall-clock material is quarantined: monotonic timing spans
   live in :attr:`MetricsRegistry.timings` and backend implementation
   counters (engine path cache, transport internals) in
   :attr:`MetricsRegistry.backend`; both appear only in
   :meth:`MetricsRegistry.full_snapshot`.
2. **Mergeability.**  Parallel sharded surveys produce one registry per
   worker process; :meth:`MetricsRegistry.merge` folds them into one
   survey-wide view (counters and histograms sum; gauges sum too, so
   per-shard totals add up; timings sum, modelling total worker-seconds).
3. **No dependencies.**  Plain dicts in, plain dicts out —
   :meth:`to_dict`/:meth:`from_dict` cross process boundaries without
   custom pickling, exactly like :class:`~repro.parallel.ShardSpec`.

Metric identity is ``(name, labels)``; a name maps to exactly one metric
kind (creating ``x`` as a counter and again as a gauge raises).  Histograms
use fixed upper-bound buckets with Prometheus ``le`` semantics: a value
lands in the first bucket whose bound is >= the value, values above the
last bound land in the implicit overflow (``+Inf``) bucket.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: Dict[str, str]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _series_key(name: str, labels: LabelItems) -> str:
    """The flat snapshot key: ``name`` or ``name{a="x",b="y"}``."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing integer."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        self.value += amount


class Gauge:
    """A value that can be set to anything (last write wins)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def inc(self, amount=1) -> None:
        self.value += amount


class Histogram:
    """Fixed-bucket histogram: per-bucket counts plus sum and count.

    ``bounds`` are inclusive upper bounds in strictly increasing order; an
    implicit overflow bucket catches everything above the last bound.
    Counts are stored per bucket (non-cumulative); the Prometheus formatter
    accumulates them into ``le`` series at exposition time.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "bounds", "counts", "sum", "count")

    def __init__(self, name: str, labels: LabelItems,
                 bounds: Sequence[float]):
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"histogram {name} bounds must strictly increase: {bounds}")
        self.name = name
        self.labels = labels
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)  # + overflow
        self.sum = 0
        self.count = 0

    def observe(self, value) -> None:
        self.counts[self.bucket_index(value)] += 1
        self.sum += value
        self.count += 1

    def bucket_index(self, value) -> int:
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                return index
        return len(self.bounds)

    @property
    def overflow(self) -> int:
        """Observations above the last bound (the ``+Inf`` bucket)."""
        return self.counts[-1]


class MetricsRegistry:
    """Holds every metric of one collection run.

    ``registry.backend`` is a nested registry for implementation-detail
    counters (engine path cache, transport internals) that legitimately
    differ between a live run and a journal replay; it is excluded from the
    deterministic :meth:`snapshot`.  ``registry.timings`` holds monotonic
    timing spans recorded by :meth:`time`, likewise excluded.
    """

    def __init__(self, _nested: bool = False):
        self._metrics: Dict[Tuple[str, LabelItems], object] = {}
        self._kinds: Dict[str, str] = {}
        self._help: Dict[str, str] = {}
        self.timings: Dict[str, Dict[str, float]] = {}
        self.backend: Optional[MetricsRegistry] = (
            None if _nested else MetricsRegistry(_nested=True))

    # -- creation / lookup ---------------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str, buckets: Optional[Sequence[float]] = None,
                  **labels) -> Histogram:
        metric = self._metrics.get((name, _label_items(labels)))
        if metric is not None:
            if not isinstance(metric, Histogram):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}")
            return metric
        if self._kinds.get(name, "histogram") != "histogram":
            raise ValueError(
                f"metric {name!r} already registered as {self._kinds[name]}")
        if buckets is None:
            raise ValueError(f"first use of histogram {name!r} must name "
                             f"its buckets")
        metric = Histogram(name, _label_items(labels), buckets)
        self._metrics[(name, metric.labels)] = metric
        self._kinds[name] = "histogram"
        return metric

    def _get_or_create(self, cls, name: str, labels: Dict) -> object:
        key = (name, _label_items(labels))
        metric = self._metrics.get(key)
        if metric is None:
            if self._kinds.get(name, cls.kind) != cls.kind:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{self._kinds[name]}")
            metric = cls(name, key[1])
            self._metrics[key] = metric
            self._kinds[name] = cls.kind
        elif not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}")
        return metric

    # -- convenience mutators ------------------------------------------------

    def inc(self, name: str, amount: int = 1, **labels) -> None:
        self.counter(name, **labels).inc(amount)

    def set_gauge(self, name: str, value, **labels) -> None:
        self.gauge(name, **labels).set(value)

    def observe(self, name: str, value,
                buckets: Optional[Sequence[float]] = None, **labels) -> None:
        self.histogram(name, buckets=buckets, **labels).observe(value)

    @contextmanager
    def time(self, name: str) -> Iterator[None]:
        """Record a monotonic-clock span under ``timings`` (never in the
        deterministic snapshot — wall clocks break record→replay parity)."""
        started = time.perf_counter()
        try:
            yield
        finally:
            span = self.timings.setdefault(name, {"seconds": 0.0, "count": 0})
            span["seconds"] += time.perf_counter() - started
            span["count"] += 1

    def describe(self, name: str, help_text: str) -> None:
        """Attach a help string (used by the Prometheus exposition)."""
        self._help[name] = help_text

    def help_text(self, name: str) -> Optional[str]:
        return self._help.get(name)

    # -- reading -------------------------------------------------------------

    def value(self, name: str, default=0, **labels):
        """Current value of a counter/gauge series (``default`` if absent)."""
        metric = self._metrics.get((name, _label_items(labels)))
        if metric is None:
            return default
        if isinstance(metric, Histogram):
            raise ValueError(f"{name!r} is a histogram; read series()")
        return metric.value

    def series(self) -> List[object]:
        """Every metric object, in deterministic (name, labels) order."""
        return [self._metrics[key] for key in sorted(self._metrics)]

    def snapshot(self) -> Dict:
        """The deterministic payload: session-scope metrics only.

        Identical for a live run, a journal replay, and ``tracenet stats``
        over the same recorded session — the parity contract of
        ``tests/test_metrics_determinism.py``.
        """
        counters: Dict[str, int] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict] = {}
        for metric in self.series():
            key = _series_key(metric.name, metric.labels)
            if isinstance(metric, Counter):
                counters[key] = metric.value
            elif isinstance(metric, Gauge):
                gauges[key] = metric.value
            else:
                histograms[key] = {
                    "buckets": list(metric.bounds),
                    "counts": list(metric.counts),
                    "sum": metric.sum,
                    "count": metric.count,
                }
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def full_snapshot(self) -> Dict:
        """Everything: deterministic metrics + backend scope + timings."""
        payload = {"metrics": self.snapshot()}
        if self.backend is not None:
            payload["backend"] = self.backend.snapshot()
        payload["timings"] = {
            name: {"seconds": round(span["seconds"], 6),
                   "count": span["count"]}
            for name, span in sorted(self.timings.items())
        }
        return payload

    # -- IPC / merging -------------------------------------------------------

    def to_dict(self) -> Dict:
        """JSON-able representation, invertible by :meth:`from_dict`."""
        return self.full_snapshot()

    @classmethod
    def from_dict(cls, payload: Dict) -> "MetricsRegistry":
        registry = cls()
        registry._load_scope(payload.get("metrics", {}))
        if registry.backend is not None:
            registry.backend._load_scope(payload.get("backend", {}))
        for name, span in payload.get("timings", {}).items():
            registry.timings[name] = {"seconds": float(span["seconds"]),
                                      "count": int(span["count"])}
        return registry

    def _load_scope(self, scope: Dict) -> None:
        for key, value in scope.get("counters", {}).items():
            name, labels = _parse_series_key(key)
            self.counter(name, **labels).value = value
        for key, value in scope.get("gauges", {}).items():
            name, labels = _parse_series_key(key)
            self.gauge(name, **labels).set(value)
        for key, data in scope.get("histograms", {}).items():
            name, labels = _parse_series_key(key)
            histogram = self.histogram(name, buckets=data["buckets"], **labels)
            histogram.counts = list(data["counts"])
            histogram.sum = data["sum"]
            histogram.count = data["count"]

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry (shard → survey aggregation)."""
        for metric in other.series():
            labels = dict(metric.labels)
            if isinstance(metric, Counter):
                self.counter(metric.name, **labels).inc(metric.value)
            elif isinstance(metric, Gauge):
                self.gauge(metric.name, **labels).inc(metric.value)
            else:
                mine = self.histogram(metric.name, buckets=metric.bounds,
                                      **labels)
                if mine.bounds != metric.bounds:
                    raise ValueError(
                        f"histogram {metric.name!r} bucket mismatch: "
                        f"{mine.bounds} vs {metric.bounds}")
                for index, count in enumerate(metric.counts):
                    mine.counts[index] += count
                mine.sum += metric.sum
                mine.count += metric.count
        if self.backend is not None and other.backend is not None:
            self.backend.merge(other.backend)
        for name, span in other.timings.items():
            mine = self.timings.setdefault(name, {"seconds": 0.0, "count": 0})
            mine["seconds"] += span["seconds"]
            mine["count"] += span["count"]
        return self


def _parse_series_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Inverse of :func:`_series_key` for :meth:`MetricsRegistry.from_dict`."""
    if "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    labels: Dict[str, str] = {}
    for part in rest.rstrip("}").split(","):
        if not part:
            continue
        label, _, value = part.partition("=")
        labels[label] = value.strip('"')
    return name, labels
