"""The event → metrics bridge: one bus sink feeding one registry.

Every metric written here is a pure function of the session-event stream,
which is the whole point: attach a :class:`MetricsSink` to a live run, to a
journal replay, or to ``tracenet stats`` and the resulting
:meth:`~repro.metrics.registry.MetricsRegistry.snapshot` payloads are
identical.  The metric-name inventory lives in ``docs/OBSERVABILITY.md``;
keep the two in sync.
"""

from __future__ import annotations

from ..events import (
    CacheHit,
    CheckpointWritten,
    DegradedResult,
    HeuristicFired,
    HopObserved,
    OverheadViolation,
    ProbeBatchSent,
    ProbeRetried,
    ProbeSent,
    ProbeSuppressed,
    SessionEvent,
    SubnetGrown,
    SubnetPositioned,
    SubnetRetracted,
    SubnetShrunk,
    SurveyProgressed,
    TopologyMutated,
    TraceFinished,
    TraceInconsistent,
    TraceStarted,
)
from .registry import MetricsRegistry

#: Fixed histogram buckets (inclusive upper bounds; +Inf overflow implied).
TTL_BUCKETS = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32)
SUBNET_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128)
SUBNET_PROBE_BUCKETS = (4, 8, 16, 32, 64, 128, 256, 512)
TRACE_HOP_BUCKETS = (1, 2, 4, 8, 12, 16, 24, 32)
TRACE_PROBE_BUCKETS = (8, 16, 32, 64, 128, 256, 512, 1024)
BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64)

_HELP = {
    "probes_sent_total": "Wire probes sent (reconciles with Engine.stats.probes_sent)",
    "probe_cache_hits_total": "Probes answered from the prober response cache",
    "probes_suppressed_total": "Probes never sent (stop-set redundancy elimination)",
    "probe_batches_total": "Transport batches dispatched through send_many",
    "probe_batch_size": "Wire probes per transport batch",
    "probe_responses_total": "Wire probes that got an answer",
    "probe_silent_total": "Wire probes that got silence",
    "probe_phase_total": "Wire probes by algorithm phase",
    "probe_protocol_total": "Wire probes by transport protocol",
    "probe_response_kind_total": "Responses by ICMP kind",
    "probe_ttl": "TTL distribution of wire probes",
    "hops_observed_total": "Trace-collection hop classifications by kind",
    "subnet_positionings_total": "Algorithm 2 outcomes (positioned / unpositioned)",
    "heuristic_fired_total": "H2-H8 judgements by rule",
    "heuristic_verdict_total": "H2-H8 judgements by verdict",
    "subnet_shrunk_total": "Stop-and-shrink / half-utilization cuts by rule",
    "subnets_grown_total": "Subnets that finished Algorithm 1",
    "subnet_stop_total": "Subnet growth stop reasons",
    "subnet_phase_probes_total": "Per-subnet probe cost attributed by phase",
    "subnet_size": "Observed subnet sizes",
    "subnet_probes_used": "Wire probes spent growing each subnet",
    "overhead_checks_total": "Subnets checked against the 7|S|+7 bound",
    "overhead_violations_total": "Subnets that exceeded the Section 3.6 bound",
    "overhead_violation_probes_total": "Wire probes spent inside violating subnets",
    "traces_started_total": "tracenet sessions started",
    "traces_finished_total": "tracenet sessions finished",
    "traces_reached_total": "tracenet sessions that reached the destination",
    "trace_cache_hits_total": "Cache hits attributed to finished traces",
    "trace_hops": "Hops per finished trace",
    "trace_probes": "Wire probes per finished trace",
    "checkpoints_written_total": "Survey checkpoints persisted",
    "survey_progress_events_total": "Per-target survey progress updates",
    "survey_targets": "Targets in the current survey run",
    "survey_completed": "Targets completed in the current survey run",
    "survey_skipped": "Targets skipped (resumed from checkpoint)",
    "survey_reached": "Targets whose trace reached the destination",
    "survey_probes_sent": "Wire probes sent by the current survey run",
    "topology_mutations_total": "Network mutations fired mid-survey, by kind",
    "trace_inconsistencies_total": "Hop contradictions against cached paths",
    "subnets_retracted_total": "Previously-mapped subnets no longer observed",
    "degraded_traces_total": "Traces marked degraded by mid-trace churn",
    "probe_retries_total": "Silent probes re-sent under the retry policy",
}


class MetricsSink:
    """Feeds a :class:`MetricsRegistry` from the session-event stream.

    Dispatch is a per-type handler table instead of an isinstance chain,
    and the hot-path handlers hold their metric objects directly (the
    registry returns the same object for the same name + labels, so this
    is pure lookup elision — snapshots are unchanged).
    """

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        for name, text in _HELP.items():
            registry.describe(name, text)
        # Label-free metrics the per-probe handlers touch, resolved once.
        self._probes_sent = registry.counter("probes_sent_total")
        self._responses = registry.counter("probe_responses_total")
        self._silent = registry.counter("probe_silent_total")
        self._cache_hits = registry.counter("probe_cache_hits_total")
        self._batches = registry.counter("probe_batches_total")
        self._ttl_hist = registry.histogram("probe_ttl", buckets=TTL_BUCKETS)
        self._batch_hist = registry.histogram("probe_batch_size",
                                              buckets=BATCH_SIZE_BUCKETS)
        # Labelled counters the per-probe handlers touch, cached by value.
        self._proto_counters: dict = {}
        self._phase_counters: dict = {}
        self._kind_counters: dict = {}
        self._handlers = {
            ProbeSent: self._on_probe_sent,
            CacheHit: self._on_cache_hit,
            ProbeSuppressed: self._on_probe_suppressed,
            ProbeBatchSent: self._on_probe_batch,
            HopObserved: self._on_hop_observed,
            SubnetPositioned: self._on_subnet_positioned,
            HeuristicFired: self._on_heuristic_fired,
            SubnetShrunk: self._on_subnet_shrunk,
            SubnetGrown: self._on_subnet_grown,
            OverheadViolation: self._on_overhead_violation,
            TraceStarted: self._on_trace_started,
            TraceFinished: self._on_trace_finished,
            CheckpointWritten: self._on_checkpoint,
            SurveyProgressed: self._on_survey_progressed,
            TopologyMutated: self._on_topology_mutated,
            TraceInconsistent: self._on_trace_inconsistent,
            SubnetRetracted: self._on_subnet_retracted,
            DegradedResult: self._on_degraded_result,
            ProbeRetried: self._on_probe_retried,
        }

    def __call__(self, event: SessionEvent) -> None:
        handler = self._handlers.get(event.__class__)
        if handler is None:
            # Unknown concrete type: honour subclassing once, then memoize
            # (None for types this sink does not consume).
            for base in type(event).__mro__:
                handler = self._handlers.get(base)
                if handler is not None:
                    break
            self._handlers[event.__class__] = handler
            if handler is None:
                return
        handler(event)

    # -- per-type handlers --------------------------------------------------

    def _on_probe_sent(self, event: ProbeSent) -> None:
        self._probes_sent.inc()
        proto = self._proto_counters.get(event.protocol)
        if proto is None:
            proto = self._proto_counters[event.protocol] = (
                self.registry.counter("probe_protocol_total",
                                      protocol=event.protocol))
        proto.inc()
        if event.phase is not None:
            phase = self._phase_counters.get(event.phase)
            if phase is None:
                phase = self._phase_counters[event.phase] = (
                    self.registry.counter("probe_phase_total",
                                          phase=event.phase))
            phase.inc()
        if event.answered:
            self._responses.inc()
            if event.response_kind is not None:
                kind = self._kind_counters.get(event.response_kind)
                if kind is None:
                    kind = self._kind_counters[event.response_kind] = (
                        self.registry.counter("probe_response_kind_total",
                                              kind=event.response_kind))
                kind.inc()
        else:
            self._silent.inc()
        self._ttl_hist.observe(event.ttl)

    def _on_cache_hit(self, event: CacheHit) -> None:
        self._cache_hits.inc()

    def _on_probe_suppressed(self, event: ProbeSuppressed) -> None:
        self.registry.inc("probes_suppressed_total", reason=event.reason)

    def _on_probe_batch(self, event: ProbeBatchSent) -> None:
        self._batches.inc()
        self._batch_hist.observe(event.size)

    def _on_hop_observed(self, event: HopObserved) -> None:
        self.registry.inc("hops_observed_total", kind=event.kind)

    def _on_subnet_positioned(self, event: SubnetPositioned) -> None:
        outcome = "positioned" if event.positioned else "unpositioned"
        self.registry.inc("subnet_positionings_total", outcome=outcome)

    def _on_heuristic_fired(self, event: HeuristicFired) -> None:
        self.registry.inc("heuristic_fired_total", rule=event.rule)
        self.registry.inc("heuristic_verdict_total", verdict=event.verdict)

    def _on_subnet_shrunk(self, event: SubnetShrunk) -> None:
        self.registry.inc("subnet_shrunk_total", rule=event.rule)

    def _on_subnet_grown(self, event: SubnetGrown) -> None:
        registry = self.registry
        registry.inc("subnets_grown_total")
        registry.inc("subnet_stop_total", reason=event.stop_reason)
        registry.inc("overhead_checks_total")
        registry.observe("subnet_size", event.size,
                         buckets=SUBNET_SIZE_BUCKETS)
        registry.observe("subnet_probes_used", event.probes_used,
                         buckets=SUBNET_PROBE_BUCKETS)
        for phase, count in (event.phase_probes or {}).items():
            registry.inc("subnet_phase_probes_total", count, phase=phase)

    def _on_overhead_violation(self, event: OverheadViolation) -> None:
        self.registry.inc("overhead_violations_total")
        self.registry.inc("overhead_violation_probes_total", event.probes_used)

    def _on_trace_started(self, event: TraceStarted) -> None:
        self.registry.inc("traces_started_total")

    def _on_trace_finished(self, event: TraceFinished) -> None:
        registry = self.registry
        registry.inc("traces_finished_total")
        if event.reached:
            registry.inc("traces_reached_total")
        registry.inc("trace_cache_hits_total", event.cache_hits)
        registry.observe("trace_hops", event.hops, buckets=TRACE_HOP_BUCKETS)
        registry.observe("trace_probes", event.probes_sent,
                         buckets=TRACE_PROBE_BUCKETS)

    def _on_checkpoint(self, event: CheckpointWritten) -> None:
        self.registry.inc("checkpoints_written_total")

    def _on_topology_mutated(self, event: TopologyMutated) -> None:
        self.registry.inc("topology_mutations_total", kind=event.kind)

    def _on_trace_inconsistent(self, event: TraceInconsistent) -> None:
        self.registry.inc("trace_inconsistencies_total", reason=event.reason)

    def _on_subnet_retracted(self, event: SubnetRetracted) -> None:
        self.registry.inc("subnets_retracted_total", reason=event.reason)

    def _on_degraded_result(self, event: DegradedResult) -> None:
        self.registry.inc("degraded_traces_total")

    def _on_probe_retried(self, event: ProbeRetried) -> None:
        self.registry.inc("probe_retries_total")

    def _on_survey_progressed(self, event: SurveyProgressed) -> None:
        registry = self.registry
        registry.inc("survey_progress_events_total")
        registry.set_gauge("survey_targets", event.total_targets)
        registry.set_gauge("survey_completed", event.completed)
        registry.set_gauge("survey_skipped", event.skipped)
        registry.set_gauge("survey_reached", event.reached)
        registry.set_gauge("survey_probes_sent", event.probes_sent)


def collect_bus_metrics(registry, bus) -> None:
    """Capture the bus's sink-failure tallies into a registry scope.

    ``registry`` is duck-typed (anything with ``set_gauge``), normally the
    quarantined ``backend`` scope: sink failures are operational facts
    about one process, not part of the deterministic event stream, so they
    must never reach ``snapshot()``.  Gauges, not counters — re-capturing
    after a longer run overwrites rather than doubles, matching
    :func:`repro.transport.base.collect_backend_metrics`.
    """
    if registry is None:
        return
    registry.set_gauge("event_sink_errors_total", bus.total_sink_errors)
    for name, count in sorted(bus.sink_errors.items()):
        registry.set_gauge("event_sink_errors", count, sink=name)
