"""The event → metrics bridge: one bus sink feeding one registry.

Every metric written here is a pure function of the session-event stream,
which is the whole point: attach a :class:`MetricsSink` to a live run, to a
journal replay, or to ``tracenet stats`` and the resulting
:meth:`~repro.metrics.registry.MetricsRegistry.snapshot` payloads are
identical.  The metric-name inventory lives in ``docs/OBSERVABILITY.md``;
keep the two in sync.
"""

from __future__ import annotations

from ..events import (
    CacheHit,
    CheckpointWritten,
    HeuristicFired,
    HopObserved,
    OverheadViolation,
    ProbeBatchSent,
    ProbeSent,
    ProbeSuppressed,
    SessionEvent,
    SubnetGrown,
    SubnetPositioned,
    SubnetShrunk,
    SurveyProgressed,
    TraceFinished,
    TraceStarted,
)
from .registry import MetricsRegistry

#: Fixed histogram buckets (inclusive upper bounds; +Inf overflow implied).
TTL_BUCKETS = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32)
SUBNET_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128)
SUBNET_PROBE_BUCKETS = (4, 8, 16, 32, 64, 128, 256, 512)
TRACE_HOP_BUCKETS = (1, 2, 4, 8, 12, 16, 24, 32)
TRACE_PROBE_BUCKETS = (8, 16, 32, 64, 128, 256, 512, 1024)
BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64)

_HELP = {
    "probes_sent_total": "Wire probes sent (reconciles with Engine.stats.probes_sent)",
    "probe_cache_hits_total": "Probes answered from the prober response cache",
    "probes_suppressed_total": "Probes never sent (stop-set redundancy elimination)",
    "probe_batches_total": "Transport batches dispatched through send_many",
    "probe_batch_size": "Wire probes per transport batch",
    "probe_responses_total": "Wire probes that got an answer",
    "probe_silent_total": "Wire probes that got silence",
    "probe_phase_total": "Wire probes by algorithm phase",
    "probe_protocol_total": "Wire probes by transport protocol",
    "probe_response_kind_total": "Responses by ICMP kind",
    "probe_ttl": "TTL distribution of wire probes",
    "hops_observed_total": "Trace-collection hop classifications by kind",
    "subnet_positionings_total": "Algorithm 2 outcomes (positioned / unpositioned)",
    "heuristic_fired_total": "H2-H8 judgements by rule",
    "heuristic_verdict_total": "H2-H8 judgements by verdict",
    "subnet_shrunk_total": "Stop-and-shrink / half-utilization cuts by rule",
    "subnets_grown_total": "Subnets that finished Algorithm 1",
    "subnet_stop_total": "Subnet growth stop reasons",
    "subnet_phase_probes_total": "Per-subnet probe cost attributed by phase",
    "subnet_size": "Observed subnet sizes",
    "subnet_probes_used": "Wire probes spent growing each subnet",
    "overhead_checks_total": "Subnets checked against the 7|S|+7 bound",
    "overhead_violations_total": "Subnets that exceeded the Section 3.6 bound",
    "overhead_violation_probes_total": "Wire probes spent inside violating subnets",
    "traces_started_total": "tracenet sessions started",
    "traces_finished_total": "tracenet sessions finished",
    "traces_reached_total": "tracenet sessions that reached the destination",
    "trace_cache_hits_total": "Cache hits attributed to finished traces",
    "trace_hops": "Hops per finished trace",
    "trace_probes": "Wire probes per finished trace",
    "checkpoints_written_total": "Survey checkpoints persisted",
    "survey_progress_events_total": "Per-target survey progress updates",
    "survey_targets": "Targets in the current survey run",
    "survey_completed": "Targets completed in the current survey run",
    "survey_skipped": "Targets skipped (resumed from checkpoint)",
    "survey_reached": "Targets whose trace reached the destination",
    "survey_probes_sent": "Wire probes sent by the current survey run",
}


class MetricsSink:
    """Feeds a :class:`MetricsRegistry` from the session-event stream."""

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        for name, text in _HELP.items():
            registry.describe(name, text)

    def __call__(self, event: SessionEvent) -> None:
        registry = self.registry
        if isinstance(event, ProbeSent):
            registry.inc("probes_sent_total")
            registry.inc("probe_protocol_total", protocol=event.protocol)
            if event.phase is not None:
                registry.inc("probe_phase_total", phase=event.phase)
            if event.answered:
                registry.inc("probe_responses_total")
                if event.response_kind is not None:
                    registry.inc("probe_response_kind_total",
                                 kind=event.response_kind)
            else:
                registry.inc("probe_silent_total")
            registry.observe("probe_ttl", event.ttl, buckets=TTL_BUCKETS)
        elif isinstance(event, CacheHit):
            registry.inc("probe_cache_hits_total")
        elif isinstance(event, ProbeSuppressed):
            registry.inc("probes_suppressed_total", reason=event.reason)
        elif isinstance(event, ProbeBatchSent):
            registry.inc("probe_batches_total")
            registry.observe("probe_batch_size", event.size,
                             buckets=BATCH_SIZE_BUCKETS)
        elif isinstance(event, HopObserved):
            registry.inc("hops_observed_total", kind=event.kind)
        elif isinstance(event, SubnetPositioned):
            outcome = "positioned" if event.positioned else "unpositioned"
            registry.inc("subnet_positionings_total", outcome=outcome)
        elif isinstance(event, HeuristicFired):
            registry.inc("heuristic_fired_total", rule=event.rule)
            registry.inc("heuristic_verdict_total", verdict=event.verdict)
        elif isinstance(event, SubnetShrunk):
            registry.inc("subnet_shrunk_total", rule=event.rule)
        elif isinstance(event, SubnetGrown):
            registry.inc("subnets_grown_total")
            registry.inc("subnet_stop_total", reason=event.stop_reason)
            registry.inc("overhead_checks_total")
            registry.observe("subnet_size", event.size,
                             buckets=SUBNET_SIZE_BUCKETS)
            registry.observe("subnet_probes_used", event.probes_used,
                             buckets=SUBNET_PROBE_BUCKETS)
            for phase, count in (event.phase_probes or {}).items():
                registry.inc("subnet_phase_probes_total", count, phase=phase)
        elif isinstance(event, OverheadViolation):
            registry.inc("overhead_violations_total")
            registry.inc("overhead_violation_probes_total", event.probes_used)
        elif isinstance(event, TraceStarted):
            registry.inc("traces_started_total")
        elif isinstance(event, TraceFinished):
            registry.inc("traces_finished_total")
            if event.reached:
                registry.inc("traces_reached_total")
            registry.inc("trace_cache_hits_total", event.cache_hits)
            registry.observe("trace_hops", event.hops,
                             buckets=TRACE_HOP_BUCKETS)
            registry.observe("trace_probes", event.probes_sent,
                             buckets=TRACE_PROBE_BUCKETS)
        elif isinstance(event, CheckpointWritten):
            registry.inc("checkpoints_written_total")
        elif isinstance(event, SurveyProgressed):
            registry.inc("survey_progress_events_total")
            registry.set_gauge("survey_targets", event.total_targets)
            registry.set_gauge("survey_completed", event.completed)
            registry.set_gauge("survey_skipped", event.skipped)
            registry.set_gauge("survey_reached", event.reached)
            registry.set_gauge("survey_probes_sent", event.probes_sent)
