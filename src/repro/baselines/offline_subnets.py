"""Offline subnet inference over traceroute data (the paper's reference [7]).

Gunes & Sarac infer the "being on the same LAN" relation as a *post
processing* step over addresses harvested by many traceroute runs.  The
paper positions tracenet against exactly this pipeline: the offline method
only ever sees addresses that happened to appear on some traced path, so it
under-covers subnets, and it must re-derive distance relations from the data
set instead of probing at the moment of discovery.

The inference implemented here follows the published intuition:

1. every candidate CIDR block containing observed addresses is scored;
2. a block is *accepted* when its observed members are hop-consistent (unit
   subnet diameter: max-min distance <= 1, with at most one address on the
   near side — the ingress), and the block is at least half utilized;
3. maximal accepted blocks win (a /29 absorbs its /30 children).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

from ..netsim.addressing import Prefix

MIN_INFERRED_PREFIX = 24


@dataclass(frozen=True)
class InferredSubnet:
    """One offline-inferred subnet: the block plus its observed members."""

    prefix: Prefix
    members: frozenset

    @property
    def size(self) -> int:
        return len(self.members)


def infer_subnets(distances: Dict[int, int],
                  min_prefix_length: int = MIN_INFERRED_PREFIX
                  ) -> List[InferredSubnet]:
    """Group observed addresses into subnets.

    Args:
        distances: observed address -> hop distance from the vantage point
            (addresses with unknown distance should be omitted).
        min_prefix_length: largest block size considered (/24 by default).

    Returns:
        Maximal accepted blocks, sorted by network address.  Addresses that
        join no multi-member block are returned as /32 singletons.
    """
    addresses = sorted(distances)
    placed: Set[int] = set()
    accepted: List[InferredSubnet] = []

    # Widest blocks first so maximal ones claim their addresses early.
    for length in range(min_prefix_length, 32):
        for block in _candidate_blocks(addresses, length):
            members = [a for a in addresses if a in block]
            if len(members) < 2 or any(a in placed for a in members):
                continue
            if _accept(block, members, distances):
                accepted.append(InferredSubnet(prefix=block,
                                               members=frozenset(members)))
                placed.update(members)

    for address in addresses:
        if address not in placed:
            accepted.append(InferredSubnet(
                prefix=Prefix.containing(address, 32),
                members=frozenset([address]),
            ))
    accepted.sort(key=lambda subnet: (subnet.prefix.network, subnet.prefix.length))
    return accepted


def _candidate_blocks(addresses: Iterable[int], length: int) -> List[Prefix]:
    blocks: List[Prefix] = []
    seen: Set[int] = set()
    for address in addresses:
        block = Prefix.containing(address, length)
        if block.network not in seen:
            seen.add(block.network)
            blocks.append(block)
    return blocks


def _accept(block: Prefix, members: List[int],
            distances: Dict[int, int]) -> bool:
    """Hop-consistency (unit subnet diameter) + half-utilization test."""
    member_distances = [distances[a] for a in members]
    far = max(member_distances)
    near = min(member_distances)
    if far - near > 1:
        return False
    if member_distances.count(near) > 1 and near != far:
        # More than one address on the near side: several candidate ingress
        # routers — the paper's ingress-fringe signature, reject.
        return False
    if block.length >= 31:
        return True
    if any(a in block.boundary_addresses() for a in members):
        return False
    return len(members) > block.host_capacity // 2


def completeness(inferred: List[InferredSubnet],
                 truth: List[Prefix]) -> float:
    """Fraction of ground-truth blocks recovered exactly.

    A convenience for the comparison benches; the full evaluation machinery
    lives in :mod:`repro.evaluation`.
    """
    if not truth:
        return 0.0
    inferred_blocks = {subnet.prefix for subnet in inferred}
    return sum(1 for block in truth if block in inferred_blocks) / len(truth)


def offline_dataset_from_traces(trace_results,
                                measured_distances: Optional[Dict[int, int]] = None
                                ) -> Dict[int, int]:
    """Build the address->distance input from traceroute results.

    The offline pipeline's defining weakness is visible right here: only
    addresses that surfaced on a traced path enter the data set.
    """
    dataset: Dict[int, int] = {}
    for result in trace_results:
        for hop in result.hops:
            if hop.address is None:
                continue
            known = dataset.get(hop.address)
            if known is None or hop.ttl < known:
                dataset[hop.address] = hop.ttl
    if measured_distances:
        dataset.update(measured_distances)
    return dataset
