"""DisCarte-style record-route tracing (the paper's reference [20]).

DisCarte sets the IP record-route option on traceroute probes so compliant
routers stamp their *outgoing* interface — yielding up to two addresses per
hop (the TTL-Exceeded source, normally the incoming interface, plus the RR
stamp).  It remains limited to the first 9 hops by the option's size and to
RR-compliant routers; tracenet's subnet exploration has neither limit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from ..netsim.packet import RECORD_ROUTE_SLOTS, Probe, Protocol
from ..transport import as_transport


@dataclass
class RecordRouteHop:
    """One hop of a record-route trace."""

    ttl: int
    source: Optional[int]
    stamps: tuple = ()

    @property
    def addresses(self) -> Set[int]:
        found = set(self.stamps)
        if self.source is not None:
            found.add(self.source)
        return found


@dataclass
class RecordRouteTrace:
    """A DisCarte-style session result."""

    destination: int
    hops: List[RecordRouteHop] = field(default_factory=list)
    reached: bool = False
    probes_sent: int = 0

    @property
    def addresses(self) -> Set[int]:
        collected: Set[int] = set()
        for hop in self.hops:
            collected |= hop.addresses
        return collected


class DisCarte:
    """Record-route tracer bound to one vantage point.

    Requires a transport whose backend honours the record-route option
    (``capabilities().supports_record_route``); refusing up front beats
    silently collecting stampless traces.
    """

    def __init__(self, network, vantage_host_id: str,
                 max_hops: int = 30, gap_limit: int = 3):
        self.transport = as_transport(network)
        if not self.transport.capabilities().supports_record_route:
            raise ValueError(
                f"transport {self.transport.capabilities().name!r} does not "
                f"support the record-route option DisCarte depends on")
        self.vantage_address = self.transport.source_address(vantage_host_id)
        self.vantage_host_id = vantage_host_id
        self.max_hops = max_hops
        self.gap_limit = gap_limit
        self.probes_sent = 0

    @property
    def engine(self):
        """The underlying simulator engine, when the transport has one."""
        return getattr(self.transport, "engine", None)

    def trace(self, destination: int) -> RecordRouteTrace:
        """TTL-scoped probes with the record-route option set."""
        result = RecordRouteTrace(destination=destination)
        anonymous_streak = 0
        for ttl in range(1, self.max_hops + 1):
            self.probes_sent += 1
            result.probes_sent += 1
            response = self.transport.send(Probe(
                src=self.vantage_address,
                dst=destination,
                ttl=ttl,
                protocol=Protocol.ICMP,
                record_route=True,
            ))
            if response is None:
                result.hops.append(RecordRouteHop(ttl=ttl, source=None))
                anonymous_streak += 1
                if anonymous_streak >= self.gap_limit:
                    break
                continue
            anonymous_streak = 0
            result.hops.append(RecordRouteHop(
                ttl=ttl,
                source=response.source,
                stamps=response.record_route[:RECORD_ROUTE_SLOTS],
            ))
            if response.is_alive_signal:
                result.reached = True
                break
        return result
