"""Paris traceroute: flow-stable path tracing.

Paris traceroute [4] keeps the header fields per-flow load balancers hash
constant across a trace, so every probe of a session follows one path and
the returned hop list is internally consistent.  Here that is simply a
:class:`~repro.baselines.traceroute.Traceroute` with a pinned flow identity.
"""

from __future__ import annotations

from ..netsim.packet import Protocol
from .traceroute import Traceroute


class ParisTraceroute(Traceroute):
    """Traceroute variant immune to per-flow load balancing."""

    def __init__(self, network, vantage_host_id: str,
                 protocol: Protocol = Protocol.ICMP,
                 max_hops: int = 30,
                 flow_id: int = 0):
        super().__init__(network, vantage_host_id, protocol=protocol,
                         max_hops=max_hops, vary_flow=False)
        self.prober.flow_id = flow_id
