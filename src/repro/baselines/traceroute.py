"""Classic traceroute — the baseline tracenet is compared against.

Sends TTL-scoped probes toward a destination and records the source address
of each ICMP TTL-Exceeded (paper Section 2).  Classic traceroute varies the
flow-identifying header fields probe by probe, which is exactly what makes
it vulnerable to per-flow load balancers; see
:mod:`repro.baselines.paris` for the fix.
"""

from __future__ import annotations

from typing import Optional

from ..core.collection import collect_hop
from ..core.results import TraceHop, TraceResult
from ..events import EventBus, TraceFinished, TraceStarted
from ..netsim.packet import Protocol
from ..probing.prober import Prober
from ..transport import as_transport

DEFAULT_GAP_LIMIT = 3


class Traceroute:
    """TTL-scoped path tracer returning one address per hop.

    Args:
        network: a :class:`~repro.transport.ProbeTransport` or a bare
            :class:`~repro.netsim.engine.Engine` (wrapped transparently).
        vantage_host_id: probe origin.
        protocol: ICMP / UDP / TCP probes.
        vary_flow: classic behaviour (True) rotates the flow identity per
            probe; False pins it, mimicking Paris traceroute.
    """

    def __init__(self, network, vantage_host_id: str,
                 protocol: Protocol = Protocol.ICMP,
                 max_hops: int = 30,
                 vary_flow: bool = True,
                 gap_limit: int = DEFAULT_GAP_LIMIT,
                 events: EventBus = None):
        self.transport = as_transport(network)
        self.events = events if events is not None else EventBus()
        self.vantage_host_id = vantage_host_id
        self.max_hops = max_hops
        self.vary_flow = vary_flow
        self.gap_limit = gap_limit
        # Classic traceroute cannot cache: every probe's header differs.
        self.prober = Prober(self.transport, vantage_host_id,
                             protocol=protocol, use_cache=not vary_flow,
                             events=self.events)
        self._flow_counter = 0

    @property
    def engine(self):
        """The underlying simulator engine, when the transport has one."""
        return getattr(self.transport, "engine", None)

    def trace(self, destination: int) -> TraceResult:
        """Walk the path toward ``destination`` one TTL at a time."""
        if self.events:
            self.events.emit(TraceStarted(destination=destination))
        before = self.prober.stats_snapshot()
        result = TraceResult(vantage_host_id=self.vantage_host_id,
                             destination=destination)
        anonymous_streak = 0
        for ttl in range(1, self.max_hops + 1):
            flow_id = self._next_flow_id() if self.vary_flow else None
            observation = collect_hop(self.prober, destination, ttl,
                                      flow_id=flow_id)
            result.hops.append(TraceHop(
                ttl=ttl,
                address=observation.address,
                is_destination=observation.reached_destination,
            ))
            if observation.reached_destination:
                result.reached = True
                break
            if observation.is_anonymous:
                anonymous_streak += 1
                if anonymous_streak >= self.gap_limit:
                    break
            else:
                anonymous_streak = 0
        result.probes_sent = self.prober.stats.sent - before.sent
        if self.events:
            self.events.emit(TraceFinished(
                destination=destination, reached=result.reached,
                hops=len(result.hops), probes_sent=result.probes_sent))
        return result

    def _next_flow_id(self) -> Optional[int]:
        self._flow_counter += 1
        return self._flow_counter
