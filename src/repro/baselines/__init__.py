"""Baselines the paper compares against: traceroute (classic and Paris),
ping, and offline post-hoc subnet inference over traceroute data."""

from .offline_subnets import (
    InferredSubnet,
    completeness,
    infer_subnets,
    offline_dataset_from_traces,
)
from .discarte import DisCarte, RecordRouteHop, RecordRouteTrace
from .paris import ParisTraceroute
from .ping import Ping
from .traceroute import Traceroute

__all__ = [
    "DisCarte",
    "InferredSubnet",
    "RecordRouteHop",
    "RecordRouteTrace",
    "ParisTraceroute",
    "Ping",
    "Traceroute",
    "completeness",
    "infer_subnets",
    "offline_dataset_from_traces",
]
