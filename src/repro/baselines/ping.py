"""Ping: direct-probe aliveness testing.

The paper's census-style baseline [11]: direct probes decide whether
addresses are in use.  Useful here for deriving which ground-truth addresses
are observable at all (the ``\\unrs`` splits of Tables 1–2 were produced by
the authors the same way — probing every address of missed subnets).
"""

from __future__ import annotations

from typing import Dict, Iterable

from ..netsim.packet import Protocol
from ..probing.prober import Prober


class Ping:
    """Aliveness tester bound to one vantage point.

    Accepts any :class:`~repro.transport.ProbeTransport` (or a bare
    engine, wrapped transparently) like every other collector.
    """

    def __init__(self, network, vantage_host_id: str,
                 protocol: Protocol = Protocol.ICMP):
        self.prober = Prober(network, vantage_host_id, protocol=protocol)

    def is_alive(self, address: int) -> bool:
        """One direct probe (with the prober's retry-on-silence)."""
        return self.prober.is_alive(address, phase="ping")

    def sweep(self, addresses: Iterable[int]) -> Dict[int, bool]:
        """Census a set of addresses; returns address -> aliveness."""
        return {address: self.is_alive(address) for address in addresses}

    def alive_fraction(self, addresses: Iterable[int]) -> float:
        """Fraction of the given addresses that answered."""
        results = self.sweep(addresses)
        if not results:
            return 0.0
        return sum(results.values()) / len(results)
