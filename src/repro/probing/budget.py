"""Probe accounting and budgets.

Section 3.6 of the paper models tracenet's probing overhead per subnet
(lower bound 4 probes for an on-path point-to-point link, upper bound
``7|S| + 7`` for a hostile off-path LAN).  To check our implementation
against that model we meter every probe, tagged with the phase of the
algorithm that issued it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


class ProbeBudgetExceeded(RuntimeError):
    """Raised when a metered prober exceeds its configured probe budget."""


@dataclass
class ProbeStats:
    """Counters for probes issued through one prober."""

    sent: int = 0
    responses: int = 0
    silent: int = 0
    retries: int = 0
    cache_hits: int = 0
    suppressed: int = 0
    by_phase: Dict[str, int] = field(default_factory=dict)

    def record_sent(self, phase: Optional[str]) -> None:
        self.sent += 1
        if phase is not None:
            self.by_phase[phase] = self.by_phase.get(phase, 0) + 1

    def record_cache_hit(self) -> None:
        """One probe answered from the response cache, not the wire."""
        self.cache_hits += 1

    def record_suppressed(self) -> None:
        """One probe never issued at all (stop-set redundancy elimination).

        Suppressed probes are free: no wire traffic, no budget charge, no
        phase attribution — the counter only exists so probe-economy
        reports can show how much the stop sets saved.
        """
        self.suppressed += 1

    def phase_delta(self, earlier: "ProbeStats") -> Dict[str, int]:
        """Per-phase wire probes spent since ``earlier`` (sorted keys).

        This is the per-subnet attribution carried by
        :class:`~repro.events.SubnetGrown` and audited against the
        Section 3.6 bounds.
        """
        delta = {}
        for phase, count in self.by_phase.items():
            spent = count - earlier.by_phase.get(phase, 0)
            if spent:
                delta[phase] = spent
        return dict(sorted(delta.items()))

    def record_outcome(self, answered: bool) -> None:
        if answered:
            self.responses += 1
        else:
            self.silent += 1

    def snapshot(self) -> Dict[str, int]:
        """A flat copy, convenient for bench reports."""
        flat = {
            "sent": self.sent,
            "responses": self.responses,
            "silent": self.silent,
            "retries": self.retries,
            "cache_hits": self.cache_hits,
            "suppressed": self.suppressed,
        }
        for phase, count in sorted(self.by_phase.items()):
            flat[f"phase:{phase}"] = count
        return flat

    def diff(self, earlier: "ProbeStats") -> "ProbeStats":
        """Stats accumulated since ``earlier`` (used per-subnet by benches)."""
        delta = ProbeStats(
            sent=self.sent - earlier.sent,
            responses=self.responses - earlier.responses,
            silent=self.silent - earlier.silent,
            retries=self.retries - earlier.retries,
            cache_hits=self.cache_hits - earlier.cache_hits,
            suppressed=self.suppressed - earlier.suppressed,
        )
        for phase, count in self.by_phase.items():
            before = earlier.by_phase.get(phase, 0)
            if count != before:
                delta.by_phase[phase] = count - before
        return delta

    def copy(self) -> "ProbeStats":
        return ProbeStats(
            sent=self.sent,
            responses=self.responses,
            silent=self.silent,
            retries=self.retries,
            cache_hits=self.cache_hits,
            suppressed=self.suppressed,
            by_phase=dict(self.by_phase),
        )


@dataclass
class ProbeBudget:
    """A hard cap on probes issued through one prober."""

    limit: int
    used: int = 0

    def charge(self, count: int = 1) -> None:
        """Consume budget; raise :class:`ProbeBudgetExceeded` when spent."""
        if self.used + count > self.limit:
            raise ProbeBudgetExceeded(
                f"probe budget exhausted: {self.used}+{count} > {self.limit}"
            )
        self.used += count

    @property
    def remaining(self) -> int:
        return self.limit - self.used
