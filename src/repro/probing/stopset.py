"""Doubletree-style stop sets: cross-trace redundancy elimination.

Donnet, Huffaker, Friedman & claffy ("Implementation and Deployment of a
Distributed Network Topology Discovery Algorithm") showed that at survey
scale most probes re-discover path prefixes the collector has already seen:
traces toward destinations in the same prefix share almost all of their
early hops.  Doubletree suppresses that redundancy with *stop sets* of
(interface, destination-prefix) pairs consulted before probing.

This module is tracenet's forward-probing adaptation.  A :class:`StopSet`
remembers, per destination prefix, the deepest hop sequence of a trace that
reached a destination inside that prefix.  A later trace toward the same
prefix first *verifies* membership (Doubletree's stop-set membership
check): one probe at the deepest remembered hop, cascading to shallower
remembered hops while routers mismatch.  Routes from a single vantage form
a tree, so a match at any depth validates every hop above it — those are
served from memory, each one a suppressed probe, and live probing resumes
past the verified hop.  A mismatched-router verification is free: the
TTL-Exceeded proves the destination lies deeper, so the ladder reuses the
cached response when it reaches that TTL.  Only a verification answered by
the destination itself can waste a probe, and the cascade stops at the
first one.

A stop set is *local* while one collector fills it during a survey and
becomes *global* when shards are merged in :mod:`repro.parallel` (or when a
survey is seeded from a previous run's serialized set).  Suppression changes
the probe economy by design — counted probes only ever go down — while the
collected map stays equal on the reference networks; the exact contract is
gated by the throughput bench and the stop-set tests.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..netsim.addressing import Prefix, format_ip, parse_ip

#: Destination-prefix granularity of the shared-path assumption.
#: Doubletree deploys /24 at internet scale; the reference networks'
#: subnets are finer than that, and a /24 bucket that lumps several
#: distinct subnets turns most membership checks into cross-subnet
#: rejections.  /28 matches their subnet granularity and measures best on
#: both (internet2 -13.8% probes, geant -9.5%); override per StopSet for
#: coarser deployments.
DEFAULT_STOP_PREFIX_LENGTH = 28

#: A remembered path must reach at least this deep (with a verifiable,
#: non-anonymous hop) before consulting it can save probes: the membership
#: check costs one probe and suppression saves ``depth - 1``.
MIN_REMEMBERED_DEPTH = 2

#: One remembered hop: (ttl, interface address or None for anonymous).
RememberedHop = Tuple[int, Optional[int]]


class StopSet:
    """(interface, destination-prefix) stop set shared across traces.

    Args:
        prefix_length: destination aggregation granularity; destinations in
            the same /``prefix_length`` block are assumed to share their
            path prefix (the Doubletree assumption).
    """

    def __init__(self, prefix_length: int = DEFAULT_STOP_PREFIX_LENGTH):
        if not 0 < prefix_length <= 32:
            raise ValueError(
                f"stop-set prefix length must be in (0, 32], got {prefix_length}")
        self.prefix_length = prefix_length
        self._paths: Dict[int, Tuple[RememberedHop, ...]] = {}
        # Epoch scoping: entries remember the topology epoch they were
        # recorded under and are lazily discarded once the epoch advances
        # (a TopologyMutated event) — a remembered path through a flapped
        # link must not keep hiding what the network looks like now.
        self.epoch = 0
        self._epochs: Dict[int, int] = {}
        # Consultation accounting (merged across shards by merge()).
        self.recorded = 0     # destination prefixes with a remembered path
        self.hits = 0         # membership checks that verified
        self.misses = 0       # consultations with no usable remembered path
        self.rejected = 0     # membership checks that diverged (fell back)
        self.suppressed = 0   # ladder probes served from memory, not the wire
        self.invalidated = 0  # entries discarded by an epoch advance

    def __len__(self) -> int:
        return len(self._paths)

    def __bool__(self) -> bool:
        # An empty stop set is still a live, fillable stop set.
        return True

    def key(self, destination: int) -> int:
        """The destination-prefix bucket ``destination`` aggregates into."""
        return Prefix.containing(destination, self.prefix_length).network

    def advance_epoch(self) -> None:
        """The network changed: stop trusting every remembered path.

        Invalidation is lazy — stale entries are discarded (and counted)
        when next consulted, so an advance costs O(1) regardless of stop-set
        size.  Paths recorded after the advance are trusted again.
        """
        self.epoch += 1

    def lookup(self, destination: int) -> Optional[Tuple[RememberedHop, ...]]:
        """The remembered hop sequence toward ``destination``'s prefix.

        Entries recorded under an earlier topology epoch are stale by
        definition: the path they remember may no longer exist, and
        consulting one could suppress probes that would have discovered
        the post-mutation network.  They are dropped here, lazily.
        """
        key = self.key(destination)
        path = self._paths.get(key)
        if path is not None and self._epochs.get(key, 0) != self.epoch:
            del self._paths[key]
            self._epochs.pop(key, None)
            self.invalidated += 1
            return None
        return path

    def record(self, destination: int,
               hops: Iterable[RememberedHop]) -> bool:
        """Remember the pre-destination hops of a trace that reached.

        ``hops`` is the (ttl, address) ladder strictly before the
        destination hop, anonymous hops as ``address=None``.  The *deepest*
        recorded path per prefix wins — a deeper path verifies deeper and
        suppresses more, and suppressed traces themselves never deepen it
        (their served hops came from this path).  Returns True when the
        path was stored or replaced a shallower one.
        """
        key = self.key(destination)
        path = tuple((int(ttl), address) for ttl, address in hops)
        if not path:
            return False
        existing = self._paths.get(key)
        if existing is not None and self._epochs.get(key, 0) != self.epoch:
            # A stale survivor from before the epoch advance: any fresh
            # path beats it, whatever the depths.
            existing = None
            self.invalidated += 1
        if existing is None:
            if key not in self._paths:
                self.recorded += 1
            self._paths[key] = path
            self._epochs[key] = self.epoch
            return True
        if _verifiable_depth(path) > _verifiable_depth(existing):
            self._paths[key] = path
            self._epochs[key] = self.epoch
            return True
        return False

    def verification_hops(self, destination: int) -> List[RememberedHop]:
        """Membership-check candidates, deepest first.

        Every remembered non-anonymous hop at depth >=
        :data:`MIN_REMEMBERED_DEPTH`, ordered deepest to shallowest.  Routes
        from one vantage form a tree, so a match at any depth validates
        everything above it — the consumer checks candidates in this order
        and suppresses below the first one that verifies.  Empty when there
        is no remembered path for the destination's prefix, or when it is
        too shallow for suppression to pay for the verification probe.
        """
        path = self.lookup(destination)
        if path is None:
            return []
        return [(ttl, address) for ttl, address in reversed(path)
                if address is not None and ttl >= MIN_REMEMBERED_DEPTH]

    def verification_hop(self, destination: int) -> Optional[RememberedHop]:
        """The deepest membership-check candidate, None when there is none."""
        candidates = self.verification_hops(destination)
        return candidates[0] if candidates else None

    def merge(self, other: "StopSet") -> None:
        """Fold another stop set in (global stop set across shards).

        The deepest remembered path per prefix wins, exactly as within one
        collector; the consultation counters sum so a merged set reports
        fleet totals.
        """
        for key, path in other._paths.items():
            if other._epochs.get(key, 0) != other.epoch:
                continue  # stale in the donor — do not resurrect it here
            existing = self._paths.get(key)
            if existing is None or \
                    _verifiable_depth(path) > _verifiable_depth(existing):
                self._paths[key] = path
                self._epochs[key] = self.epoch
        self.recorded = len(self._paths)
        self.hits += other.hits
        self.misses += other.misses
        self.rejected += other.rejected
        self.suppressed += other.suppressed
        self.invalidated += other.invalidated

    # -- serialization (ShardSpec payloads, seeding future surveys) ---------

    def to_dict(self) -> Dict:
        """Plain-JSON payload (crosses process boundaries in ShardSpec)."""
        paths = {}
        for key in sorted(self._paths):
            prefix = Prefix(key, self.prefix_length)
            paths[str(prefix)] = [
                [ttl, format_ip(address) if address is not None else None]
                for ttl, address in self._paths[key]
            ]
        payload = {
            "prefix_length": self.prefix_length,
            "paths": paths,
            "counters": {
                "recorded": self.recorded,
                "hits": self.hits,
                "misses": self.misses,
                "rejected": self.rejected,
                "suppressed": self.suppressed,
                "invalidated": self.invalidated,
            },
        }
        if self.epoch > 0:
            # Epoch fields only appear once the network has actually
            # mutated — static-survey payloads stay byte-identical to
            # pre-epoch archives.
            payload["epoch"] = self.epoch
            payload["path_epochs"] = {
                str(Prefix(key, self.prefix_length)): self._epochs.get(key, 0)
                for key in sorted(self._paths)
            }
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "StopSet":
        stop_set = cls(prefix_length=payload["prefix_length"])
        for prefix_text, hops in payload.get("paths", {}).items():
            network_text = prefix_text.split("/", 1)[0]
            key = parse_ip(network_text)
            stop_set._paths[key] = tuple(
                (int(ttl), parse_ip(address) if address is not None else None)
                for ttl, address in hops
            )
        stop_set.epoch = payload.get("epoch", 0)
        path_epochs = payload.get("path_epochs", {})
        for prefix_text, entry_epoch in path_epochs.items():
            network_text = prefix_text.split("/", 1)[0]
            stop_set._epochs[parse_ip(network_text)] = int(entry_epoch)
        counters = payload.get("counters", {})
        stop_set.recorded = counters.get("recorded", len(stop_set._paths))
        stop_set.hits = counters.get("hits", 0)
        stop_set.misses = counters.get("misses", 0)
        stop_set.rejected = counters.get("rejected", 0)
        stop_set.suppressed = counters.get("suppressed", 0)
        stop_set.invalidated = counters.get("invalidated", 0)
        return stop_set

    def counters(self) -> Dict[str, int]:
        """Flat consultation counters (bench reports, shard payloads)."""
        return {
            "prefixes": len(self._paths),
            "recorded": self.recorded,
            "hits": self.hits,
            "misses": self.misses,
            "rejected": self.rejected,
            "suppressed": self.suppressed,
            "invalidated": self.invalidated,
        }


def _verifiable_depth(path: Sequence[RememberedHop]) -> int:
    """The deepest non-anonymous ttl of a remembered path (0 when none)."""
    for ttl, address in reversed(path):
        if address is not None:
            return ttl
    return 0


def merge_stop_sets(parts: Sequence[StopSet],
                    prefix_length: Optional[int] = None) -> StopSet:
    """One global stop set from many shard-local ones."""
    if prefix_length is None:
        prefix_length = (parts[0].prefix_length if parts
                         else DEFAULT_STOP_PREFIX_LENGTH)
    merged = StopSet(prefix_length=prefix_length)
    for part in parts:
        if part.prefix_length != merged.prefix_length:
            raise ValueError(
                "cannot merge stop sets with different prefix lengths "
                f"({part.prefix_length} vs {merged.prefix_length})")
        merged.merge(part)
    return merged


__all__ = [
    "DEFAULT_STOP_PREFIX_LENGTH",
    "MIN_REMEMBERED_DEPTH",
    "StopSet",
    "merge_stop_sets",
]
