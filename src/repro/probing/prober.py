"""The prober: tracenet's view of the network.

Everything above this layer (tracenet, traceroute, ping) sees the network
exclusively as *probe in, response out* — exactly the contract a raw-socket
or scapy implementation would have.  The prober adds the operational
behaviours the paper describes: one re-probe on silence (Section 3.8),
response caching so merged heuristics don't pay twice for the same answer,
stable ICMP header fields (Paris-style flow identity), and probe metering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..events import CacheHit, EventBus, ProbeBatchSent, ProbeRetried, ProbeSent
from ..netsim.packet import DEFAULT_TTL, Probe, Protocol, Response
from ..transport import as_transport, send_batch
from .budget import ProbeBudget, ProbeStats

CacheKey = Tuple[int, int, Protocol]


@dataclass(frozen=True)
class RetryPolicy:
    """How silence is retried: attempt count plus optional idle backoff.

    ``attempts`` is the number of *re*-probes after the first silent send
    (the paper's implementation re-probes once).  ``backoff_ticks`` idles
    the transport clock before each retry — entry ``i`` before retry
    ``i+1``, the last entry repeating for any further retries.  The default
    policy is budget-identical to the historical bare ``retries=1``: same
    wire probes, same charges, no idling, so existing archives stay byte
    for byte.
    """

    attempts: int = 1
    backoff_ticks: Tuple[int, ...] = ()

    def __post_init__(self):
        if self.attempts < 0:
            raise ValueError(f"attempts must be >= 0, got {self.attempts}")
        if any(t < 0 for t in self.backoff_ticks):
            raise ValueError("backoff_ticks must be non-negative")

    @classmethod
    def coerce(cls, value: Union[int, "RetryPolicy"]) -> "RetryPolicy":
        """Accept a bare retry count (the legacy knob) or a full policy."""
        if isinstance(value, cls):
            return value
        return cls(attempts=int(value))

    def backoff_for(self, attempt: int) -> int:
        """Idle ticks before retry ``attempt`` (1-based); 0 when none."""
        if not self.backoff_ticks:
            return 0
        return self.backoff_ticks[min(attempt - 1, len(self.backoff_ticks) - 1)]


class Prober:
    """Issues direct and indirect probes from one vantage point.

    Args:
        network: any :class:`~repro.transport.ProbeTransport` — or a bare
            :class:`~repro.netsim.engine.Engine`, which is wrapped in a
            :class:`~repro.transport.SimulatorTransport` transparently.
        vantage_host_id: which registered host the probes originate from.
        protocol: probe transport protocol (Section 4.2 compares all three).
        retries: re-probes on silence — a bare int (the paper's
            implementation uses 1) or a :class:`RetryPolicy` adding idle
            backoff between attempts.
        use_cache: memoize (dst, ttl) -> response, including silence.
        budget: optional hard probe cap.
        flow_id: constant flow identity (vary per probe for classic
            traceroute behaviour under per-flow load balancing).
        events: session-event bus; every wire probe emits
            :class:`~repro.events.ProbeSent` when a sink is attached.
    """

    def __init__(self, network, vantage_host_id: str,
                 protocol: Protocol = Protocol.ICMP,
                 retries: Union[int, RetryPolicy] = 1,
                 use_cache: bool = True,
                 budget: Optional[ProbeBudget] = None,
                 flow_id: int = 0,
                 max_ttl: int = 32,
                 events: Optional[EventBus] = None):
        self.transport = as_transport(network)
        self.vantage_address = self.transport.source_address(vantage_host_id)
        self.vantage_host_id = vantage_host_id
        self.protocol = protocol
        self.retry_policy = RetryPolicy.coerce(retries)
        self.retries = self.retry_policy.attempts
        self.use_cache = use_cache
        self.budget = budget
        self.flow_id = flow_id
        self.max_ttl = max_ttl
        self.events = events if events is not None else EventBus()
        self.stats = ProbeStats()
        self._cache: Dict[CacheKey, Optional[Response]] = {}

    @property
    def engine(self):
        """The underlying simulator engine, when the transport has one."""
        return getattr(self.transport, "engine", None)

    # -- raw probe interface ------------------------------------------------

    def probe(self, dst: int, ttl: int, phase: Optional[str] = None,
              flow_id: Optional[int] = None,
              refresh: bool = False) -> Optional[Response]:
        """Send one probe (plus retries on silence); return the response.

        Identical (dst, ttl) probes are answered from the cache when caching
        is enabled — silence is cached too, after the retry has confirmed it.
        ``refresh=True`` bypasses the cache lookup and overwrites the entry
        with the fresh answer — how the pipeline re-validates a hop after
        the network mutated under it.
        """
        if ttl > DEFAULT_TTL:
            # A TTL beyond DEFAULT_TTL used to alias the direct-probe cache
            # entry even though the engine can walk it differently (hop-limit
            # interplay).  Nothing legitimately sends one: direct probes use
            # exactly DEFAULT_TTL, indirect probes must stay below it.
            raise ValueError(
                f"probe TTL {ttl} exceeds DEFAULT_TTL ({DEFAULT_TTL}); "
                f"use direct_probe() for direct probing")
        key = (dst, ttl, self.protocol)
        if self.use_cache and flow_id is None and not refresh \
                and key in self._cache:
            self.stats.record_cache_hit()
            events = self.events
            if events:
                if events.wants(CacheHit):
                    events.emit(CacheHit(dst=dst, ttl=ttl, phase=phase))
                else:
                    events.tally(CacheHit)
            return self._cache[key]
        response = self._send_once(dst, ttl, phase, flow_id)
        attempt = 0
        while response is None and attempt < self.retries:
            attempt += 1
            self.stats.retries += 1
            self._note_retry(dst, ttl, attempt, phase)
            self.backoff(self.retry_policy.backoff_for(attempt))
            response = self._send_once(dst, ttl, phase, flow_id)
        if self.use_cache and flow_id is None:
            self._cache[key] = response
        return response

    def probe_many(self, requests: Sequence[Tuple[int, int]],
                   phase: Optional[str] = None
                   ) -> List[Optional[Response]]:
        """Probe a batch of independent ``(dst, ttl)`` pairs in one dispatch.

        Per-probe semantics are exactly :meth:`probe`'s — the cache is
        consulted (and populated) identically, the same stats counters move,
        per-probe :class:`~repro.events.ProbeSent` / ``CacheHit`` events
        fire, silence is retried up to ``retries`` times, the budget is
        charged per wire probe — but the uncached probes travel to the
        transport together through ``send_many``, and each dispatched wire
        batch additionally emits :class:`~repro.events.ProbeBatchSent`.
        A batch of one is indistinguishable from a :meth:`probe` call plus
        its batch event.
        """
        results: List[Optional[Response]] = [None] * len(requests)
        cacheable = self.use_cache
        pending: List[int] = []
        dup_of: Dict[int, int] = {}
        first_seen: Dict[CacheKey, int] = {}
        for index, (dst, ttl) in enumerate(requests):
            if ttl > DEFAULT_TTL:
                raise ValueError(
                    f"probe TTL {ttl} exceeds DEFAULT_TTL ({DEFAULT_TTL}); "
                    f"use direct_probe() for direct probing")
            key = (dst, ttl, self.protocol)
            if cacheable:
                if key in self._cache:
                    self.stats.record_cache_hit()
                    events = self.events
                    if events:
                        if events.wants(CacheHit):
                            events.emit(
                                CacheHit(dst=dst, ttl=ttl, phase=phase))
                        else:
                            events.tally(CacheHit)
                    results[index] = self._cache[key]
                    continue
                if key in first_seen:
                    # A (dst, ttl) repeated within the batch: the serial
                    # path would answer the repeat from the cache entry the
                    # first occurrence stores — resolve it after the wire.
                    dup_of[index] = first_seen[key]
                    continue
                first_seen[key] = index
            pending.append(index)

        if pending:
            responses = self._send_many_once(
                [requests[i] for i in pending], phase)
            for index, response in zip(pending, responses):
                results[index] = response
            # Re-probe silence, batch-wide, with per-probe retry budgets.
            for attempt in range(1, self.retries + 1):
                silent = [i for i in pending if results[i] is None]
                if not silent:
                    break
                self.stats.retries += len(silent)
                for i in silent:
                    dst, ttl = requests[i]
                    self._note_retry(dst, ttl, attempt, phase)
                self.backoff(self.retry_policy.backoff_for(attempt))
                responses = self._send_many_once(
                    [requests[i] for i in silent], phase)
                for index, response in zip(silent, responses):
                    results[index] = response
            if cacheable:
                for index in pending:
                    dst, ttl = requests[index]
                    self._cache[(dst, ttl, self.protocol)] = results[index]

        for index, primary in dup_of.items():
            self.stats.record_cache_hit()
            events = self.events
            if events:
                if events.wants(CacheHit):
                    dst, ttl = requests[index]
                    events.emit(CacheHit(dst=dst, ttl=ttl, phase=phase))
                else:
                    events.tally(CacheHit)
            results[index] = results[primary]
        return results

    def _send_many_once(self, requests: Sequence[Tuple[int, int]],
                        phase: Optional[str]) -> List[Optional[Response]]:
        """One wire round for a batch: budget, dispatch, stats, events.

        Budget charges happen per probe, in order, *before* the dispatch;
        when the budget runs out mid-batch the prefix already paid for is
        still sent and accounted (matching the serial path, where earlier
        probes have hit the wire before the failing charge), then the
        exception propagates.
        """
        probes: List[Probe] = []
        charge_error: Optional[Exception] = None
        for dst, ttl in requests:
            if self.budget is not None:
                try:
                    self.budget.charge()
                except Exception as exc:
                    charge_error = exc
                    break
            self.stats.record_sent(phase)
            probes.append(Probe(
                src=self.vantage_address,
                dst=dst,
                ttl=ttl,
                protocol=self.protocol,
                flow_id=self.flow_id,
            ))
        responses: List[Optional[Response]] = []
        if probes:
            responses = send_batch(self.transport, probes)
            events = self.events
            # One wants() check per batch: when nobody needs the payload
            # (counters only) the whole batch tallies as two dict adds.
            wants_probe = bool(events) and events.wants(ProbeSent)
            record_outcome = self.stats.record_outcome
            for probe, response in zip(probes, responses):
                record_outcome(response is not None)
                if wants_probe:
                    events.emit(ProbeSent(
                        dst=probe.dst,
                        ttl=probe.ttl,
                        protocol=self.protocol.value,
                        flow_id=probe.flow_id,
                        phase=phase,
                        answered=response is not None,
                        response_kind=(response.kind.value
                                       if response is not None else None),
                        response_source=(response.source
                                         if response is not None else None),
                    ))
            if events:
                if not wants_probe:
                    events.tally(ProbeSent, len(probes))
                if events.wants(ProbeBatchSent):
                    events.emit(
                        ProbeBatchSent(size=len(probes), phase=phase))
                else:
                    events.tally(ProbeBatchSent)
        if charge_error is not None:
            raise charge_error
        return responses

    def _note_retry(self, dst: int, ttl: int, attempt: int,
                    phase: Optional[str]) -> None:
        events = self.events
        if events:
            if events.wants(ProbeRetried):
                events.emit(ProbeRetried(
                    dst=dst, ttl=ttl, attempt=attempt, phase=phase))
            else:
                events.tally(ProbeRetried)

    def backoff(self, ticks: int) -> None:
        """Idle the transport clock between retry attempts (no probes).

        Also used by the hop pipeline before re-validating a contradicted
        hop — transient churn (reconvergence) gets a beat to settle.
        """
        if ticks <= 0:
            return
        idle = getattr(self.transport, "idle", None)
        if idle is not None:
            idle(ticks)

    def direct_probe(self, dst: int, phase: Optional[str] = None
                     ) -> Optional[Response]:
        """Direct probing (Section 3.1(i)): a large-enough TTL, alive test."""
        return self.probe(dst, DEFAULT_TTL, phase=phase)

    def indirect_probe(self, dst: int, ttl: int, phase: Optional[str] = None,
                       flow_id: Optional[int] = None) -> Optional[Response]:
        """Indirect probing (Section 3.1(ii)): TTL-scoped discovery."""
        if ttl >= DEFAULT_TTL:
            raise ValueError("indirect probes need a small TTL")
        return self.probe(dst, ttl, phase=phase, flow_id=flow_id)

    def _send_once(self, dst: int, ttl: int, phase: Optional[str],
                   flow_id: Optional[int]) -> Optional[Response]:
        if self.budget is not None:
            self.budget.charge()
        self.stats.record_sent(phase)
        probe = Probe(
            src=self.vantage_address,
            dst=dst,
            ttl=ttl,
            protocol=self.protocol,
            flow_id=self.flow_id if flow_id is None else flow_id,
        )
        response = self.transport.send(probe)
        self.stats.record_outcome(response is not None)
        events = self.events
        if events:
            if events.wants(ProbeSent):
                events.emit(ProbeSent(
                    dst=dst,
                    ttl=ttl,
                    protocol=self.protocol.value,
                    flow_id=probe.flow_id,
                    phase=phase,
                    answered=response is not None,
                    response_kind=(response.kind.value
                                   if response is not None else None),
                    response_source=(response.source
                                     if response is not None else None),
                ))
            else:
                events.tally(ProbeSent)
        return response

    # -- measured quantities ---------------------------------------------------

    def is_alive(self, dst: int, phase: Optional[str] = None) -> bool:
        """True when a direct probe proves ``dst`` is in use."""
        response = self.direct_probe(dst, phase=phase)
        return response is not None and response.is_alive_signal

    def measure_distance(self, dst: int, hint: int = 1,
                         phase: Optional[str] = None) -> Optional[int]:
        """The direct hop distance dst(l) of Algorithm 2.

        Starting from ``hint`` (the hop at which the address surfaced), walk
        the TTL forward while probes expire short and backward while they
        still reach, until the minimal reaching TTL is found.  Returns None
        for unresponsive addresses.
        """
        ttl = max(1, min(hint, self.max_ttl))
        response = self.probe(dst, ttl, phase=phase)
        if response is not None and response.is_alive_signal:
            while ttl > 1:
                closer = self.probe(dst, ttl - 1, phase=phase)
                if closer is not None and closer.is_alive_signal:
                    ttl -= 1
                else:
                    break
            return ttl
        if response is not None and response.is_ttl_exceeded:
            while ttl < self.max_ttl:
                ttl += 1
                further = self.probe(dst, ttl, phase=phase)
                if further is not None and further.is_alive_signal:
                    return ttl
                if further is None:
                    return None
            return None
        return None

    # -- bookkeeping -------------------------------------------------------------

    def clear_cache(self) -> None:
        """Forget cached responses (e.g. between independent traces)."""
        self._cache.clear()

    def stats_snapshot(self) -> ProbeStats:
        """A copy of the counters, for per-subnet probe-cost diffs."""
        return self.stats.copy()
