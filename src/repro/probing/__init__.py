"""Probing layer: the raw-socket/scapy stand-in used by every tool.

Provides :class:`~repro.probing.prober.Prober` (direct/indirect probes with
retry, caching and metering — one at a time or batched through
``probe_many``), probe budgets and statistics, and the Doubletree-style
:class:`~repro.probing.stopset.StopSet` for cross-trace redundancy
elimination.
"""

from .budget import ProbeBudget, ProbeBudgetExceeded, ProbeStats
from .prober import Prober, RetryPolicy
from .stopset import (
    DEFAULT_STOP_PREFIX_LENGTH,
    StopSet,
    merge_stop_sets,
)

__all__ = [
    "DEFAULT_STOP_PREFIX_LENGTH",
    "ProbeBudget",
    "ProbeBudgetExceeded",
    "ProbeStats",
    "Prober",
    "RetryPolicy",
    "StopSet",
    "merge_stop_sets",
]
