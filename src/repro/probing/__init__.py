"""Probing layer: the raw-socket/scapy stand-in used by every tool.

Provides :class:`~repro.probing.prober.Prober` (direct/indirect probes with
retry, caching and metering) plus probe budgets and statistics.
"""

from .budget import ProbeBudget, ProbeBudgetExceeded, ProbeStats
from .prober import Prober

__all__ = ["ProbeBudget", "ProbeBudgetExceeded", "ProbeStats", "Prober"]
