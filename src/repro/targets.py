"""Destination-selection strategies for topology surveys.

The paper's related work stresses that *where you aim* decides what you
see: Rocketfuel [21] picks sources/destinations so the target AS lies on
the traced paths, AROMA [13] advocates destinations *inside* the targeted
network, and skitter [17] sweeps a fixed global list.  This module offers
the selection strategies as composable functions over a ground-truth
network (or any address pool), so surveys and benches can measure what
each buys.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Sequence

from .netsim.addressing import Prefix
from .topogen.spec import GeneratedNetwork

Strategy = Callable[[GeneratedNetwork, random.Random, int], List[int]]


def per_subnet(network: GeneratedNetwork, rng: random.Random,
               budget: int) -> List[int]:
    """One random responsive address per ground-truth subnet (the paper's
    Internet2/GEANT recipe), truncated or cycled to fit the budget."""
    base = network.pick_targets(rng)
    if budget >= len(base):
        return base
    return sorted(rng.sample(base, budget))


def uniform_addresses(network: GeneratedNetwork, rng: random.Random,
                      budget: int) -> List[int]:
    """Uniform over assigned addresses — the skitter-style global sweep.

    Large subnets soak up most of the budget, so small point-to-point
    links are frequently missed.
    """
    pool = sorted(
        address
        for record in network.records
        for address in network.topology.subnets[record.subnet_id].addresses
    )
    if budget >= len(pool):
        return pool
    return sorted(rng.sample(pool, budget))


def prefix_stratified(network: GeneratedNetwork, rng: random.Random,
                      budget: int) -> List[int]:
    """Split the budget evenly across prefix lengths, then subnets.

    A coverage-oriented compromise: every subnet size class gets probed
    even when one class dominates the address space.
    """
    by_length: Dict[int, List[List[int]]] = {}
    for record in network.records:
        subnet = network.topology.subnets[record.subnet_id]
        by_length.setdefault(record.prefix.length, []).append(
            sorted(subnet.addresses))
    targets: List[int] = []
    lengths = sorted(by_length)
    share = max(1, budget // max(1, len(lengths)))
    for length in lengths:
        groups = by_length[length]
        rng.shuffle(groups)
        for group in groups[:share]:
            if group:
                targets.append(rng.choice(group))
    rng.shuffle(targets)
    return sorted(targets[:budget])


def address_blocks(network: GeneratedNetwork, rng: random.Random,
                   budget: int, block_length: int = 24) -> List[int]:
    """One probe per /``block_length`` — the census-style sweep [11].

    Cheap and unbiased by subnet knowledge, but blind inside dense blocks.
    """
    seen_blocks: Dict[Prefix, List[int]] = {}
    for record in network.records:
        subnet = network.topology.subnets[record.subnet_id]
        for address in subnet.addresses:
            block = Prefix.containing(address, block_length)
            seen_blocks.setdefault(block, []).append(address)
    targets = [rng.choice(sorted(members))
               for _, members in sorted(seen_blocks.items(),
                                        key=lambda kv: kv[0].network)]
    if budget < len(targets):
        targets = rng.sample(targets, budget)
    return sorted(targets)


STRATEGIES: Dict[str, Strategy] = {
    "per-subnet": per_subnet,
    "uniform": uniform_addresses,
    "stratified": prefix_stratified,
    "census-blocks": address_blocks,
}


def select(strategy: str, network: GeneratedNetwork, seed: int,
           budget: int) -> List[int]:
    """Run a named strategy deterministically."""
    try:
        chosen = STRATEGIES[strategy]
    except KeyError:
        raise ValueError(
            f"unknown strategy {strategy!r}; pick one of {sorted(STRATEGIES)}"
        ) from None
    return chosen(network, random.Random(seed), budget)


def coverage_of(targets: Sequence[int], network: GeneratedNetwork) -> float:
    """Fraction of ground-truth subnets containing at least one target."""
    if not network.records:
        return 0.0
    covered = 0
    for record in network.records:
        block = record.prefix
        if any(target in block for target in targets):
            covered += 1
    return covered / len(network.records)
