"""Parallel sharded surveys.

The paper's headline experiment traces 34 084 targets; at that scale one
serial :class:`~repro.runner.SurveyRunner` is the bottleneck.  This module
splits a target list into shards and runs each shard in its own worker
process.  Determinism is preserved by construction: every worker rebuilds
its private :class:`~repro.netsim.engine.Engine` and
:class:`~repro.core.tracenet.TraceNET` from one serialized scenario spec
(topology + response policy + seeds), so a shard's results depend only on
the spec and its target slice, never on scheduling.

The merged result matches a serial run in *content*: the same observed
subnets (keyed by prefix) and the same trace per target.  Probe *counts*
legitimately differ — a serial run reuses subnets across the whole target
list while each shard only reuses within itself — which is exactly the
redundancy the merge deduplicates.  :func:`archive_signature` defines the
content-equality contract used by the tests and the throughput bench.

Each shard checkpoints through the ordinary :class:`SurveyRunner` machinery
into its own file under ``checkpoint_dir``, so an interrupted parallel
survey resumes shard by shard.

This module is deliberately split into **service primitives** and the
legacy one-shot runner.  :func:`run_shard`, :func:`outcome_from_payload`
and :func:`merge_outcomes` are the primitives: one shard in, one plain
payload out, many payloads merged into one survey-wide result.
:class:`ShardedSurveyRunner` composes them over a local process pool;
:mod:`repro.service` composes the same primitives into a long-running
coordinator/worker fleet with leases, heartbeats and re-delivery.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .core.exploration import DEFAULT_MIN_PREFIX_LENGTH
from .core.tracenet import TraceNET
from .events import CounterSink
from .mapping.store import (
    CollectionArchive,
    archive_from_dict,
    archive_to_dict,
    subnet_from_dict,
)
from .netsim.addressing import format_ip
from .netsim.engine import Engine
from .netsim.packet import Protocol
from .netsim.responsiveness import ResponsePolicy
from .netsim.serialize import (
    policy_from_dict,
    policy_to_dict,
    topology_from_dict,
    topology_to_dict,
)
from .netsim.topology import Topology
from .metrics import MetricsRegistry, instrument
from .probing.budget import ProbeStats
from .probing.stopset import (
    DEFAULT_STOP_PREFIX_LENGTH,
    StopSet,
    merge_stop_sets,
)
from .runner import SurveyRunner
from .transport import SimulatorTransport, collect_backend_metrics


class ShardExecutionError(RuntimeError):
    """One shard of a parallel survey failed, with enough context to act.

    Names the shard index, the target slice it was working (first/last
    target and count), and the shard's checkpoint path — so an operator
    knows exactly which ``shard-<i>.json`` file holds the salvageable
    partial work and which targets are affected.  The surviving shards'
    checkpoints are untouched and remain usable for a resumed run.
    """

    def __init__(self, shard_index: int, targets: Sequence[int],
                 checkpoint_path: Optional[str], cause: BaseException):
        self.shard_index = shard_index
        self.targets = list(targets)
        self.checkpoint_path = checkpoint_path
        self.cause = cause
        if self.targets:
            span = (f"{len(self.targets)} targets "
                    f"[{format_ip(self.targets[0])}.."
                    f"{format_ip(self.targets[-1])}]")
        else:
            span = "0 targets"
        where = (f"checkpoint {checkpoint_path}" if checkpoint_path
                 else "no checkpoint")
        super().__init__(
            f"shard {shard_index} failed over {span} ({where}): "
            f"{type(cause).__name__}: {cause}")


@dataclass(frozen=True)
class ShardSpec:
    """Everything a worker needs to rebuild its private collector.

    Plain JSON-able payloads only, so the spec crosses process boundaries
    (and could be written next to an experiment) without custom pickling.
    """

    topology: Dict
    policy: Optional[Dict]
    vantage: str
    protocol: str = Protocol.ICMP.value
    engine_seed: int = 0
    policy_seed: int = 0
    ip_id_noise: int = 8
    path_cache: bool = True
    max_hops: int = 30
    min_prefix_length: int = DEFAULT_MIN_PREFIX_LENGTH
    explore: bool = True
    reuse_subnets: bool = True
    #: Probe batching window for each shard's collector (0 = serial loop,
    #: 1 = batch API with a serial-identical stream, > 1 = speculative).
    batch_window: int = 0
    #: Doubletree stop sets: each shard fills a local set; the merge folds
    #: them into one global set on the result.  Probe-economy-changing.
    use_stop_sets: bool = False
    stop_prefix_length: int = DEFAULT_STOP_PREFIX_LENGTH
    #: Optional serialized :class:`StopSet` seeding every shard (e.g. from
    #: a previous survey's merged global set).
    seed_stop_set: Optional[Dict] = None

    @classmethod
    def from_network(cls, topology: Topology,
                     policy: Optional[ResponsePolicy],
                     vantage: str, **overrides) -> "ShardSpec":
        return cls(
            topology=topology_to_dict(topology),
            policy=policy_to_dict(policy) if policy is not None else None,
            vantage=vantage,
            **overrides,
        )

    def build_tool(self, radar: Optional[Dict] = None) -> TraceNET:
        """Rebuild the collector this spec describes (worker side).

        ``radar`` is a radar-job config dict (``churn_count``,
        ``churn_seed``, ``churn_start``, ``churn_interval``, ``drop_rate``,
        ``fault_seed``): the transport chain gains a seeded
        :class:`~repro.transport.FaultInjectingTransport` and/or
        :class:`~repro.transport.MutatingTransport`, both deterministic
        functions of the spec + config, so every lease attempt of a radar
        shard replays the identical churn.
        """
        topology = topology_from_dict(self.topology)
        topology.validate()
        policy = (policy_from_dict(self.policy, seed=self.policy_seed)
                  if self.policy is not None else None)
        engine = Engine(topology, policy=policy, seed=self.engine_seed,
                        ip_id_noise=self.ip_id_noise,
                        path_cache=self.path_cache)
        stop_set: Optional[StopSet] = None
        if self.use_stop_sets:
            stop_set = (StopSet.from_dict(self.seed_stop_set)
                        if self.seed_stop_set is not None
                        else StopSet(prefix_length=self.stop_prefix_length))
        transport = SimulatorTransport(engine)
        events = None
        if radar:
            from .events import EventBus
            from .netsim.dynamics import MutationSchedule, NetworkDynamics
            from .transport import FaultInjectingTransport, MutatingTransport

            events = EventBus()
            if radar.get("drop_rate", 0.0) > 0.0:
                transport = FaultInjectingTransport(
                    transport, drop_rate=radar["drop_rate"],
                    seed=radar.get("fault_seed", 0))
            if radar.get("churn_count", 0) > 0:
                schedule = MutationSchedule.generate(
                    topology, seed=radar.get("churn_seed", 0),
                    start=max(1, radar.get("churn_start", 200)),
                    interval=max(1, radar.get("churn_interval", 400)),
                    count=radar["churn_count"])
                transport = MutatingTransport(
                    transport, schedule,
                    dynamics=NetworkDynamics(engine, schedule),
                    events=events)
        return TraceNET(transport, self.vantage,
                        protocol=Protocol(self.protocol),
                        max_hops=self.max_hops,
                        min_prefix_length=self.min_prefix_length,
                        explore=self.explore,
                        reuse_subnets=self.reuse_subnets,
                        batch_window=self.batch_window,
                        stop_set=stop_set,
                        events=events)


def shard_targets(targets: Sequence[int], shards: int) -> List[List[int]]:
    """Split targets into ``shards`` contiguous, balanced, non-empty slices.

    Deterministic in (targets, shards) so a resumed parallel survey maps
    every target back to the same shard checkpoint.
    """
    if shards < 1:
        raise ValueError(f"need at least one shard, got {shards}")
    shards = min(shards, max(1, len(targets)))
    quotient, remainder = divmod(len(targets), shards)
    slices: List[List[int]] = []
    start = 0
    for index in range(shards):
        size = quotient + (1 if index < remainder else 0)
        slices.append(list(targets[start:start + size]))
        start += size
    return slices


def run_shard(spec: ShardSpec, shard_index: int, targets: List[int],
              checkpoint_path: Optional[str],
              checkpoint_every: int,
              sinks: Sequence = (),
              seed_subnets: Optional[Sequence[Dict]] = None,
              audit: bool = True,
              spans: bool = False) -> Dict:
    """Worker entry point: rebuild, survey one shard, return plain dicts.

    This is the shard primitive shared by the process-pool runner and the
    :mod:`repro.service` vantage workers:

    * ``sinks`` are extra session-event sinks subscribed before the survey
      starts (service workers stream events to the coordinator this way);
    * ``seed_subnets`` are serialized :class:`ObservedSubnet` payloads
      (:func:`~repro.mapping.store.subnet_to_dict`) registered into the
      collector's reuse registry — the shared-dedupe-store hook that lets
      a shard skip re-exploring prefixes another shard already collected.
      Prefixes already present (e.g. from a resumed checkpoint) are not
      registered twice;
    * ``audit=False`` suppresses the in-shard probe-economy auditor so a
      coordinator can run one auditor over the merged event stream instead
      of double-counting violations;
    * ``spans=True`` attaches a clocked :class:`~repro.tracing.SpanBuilder`
      and ships the worker's *timed* span tree in the payload under
      ``"spans"`` (the deterministic tree is the coordinator's to derive
      from the committed journal — only the local timings need the worker).
    """
    started = time.perf_counter()
    tool = spec.build_tool()
    tracer = None
    if spans:
        from .tracing import SpanBuilder

        tracer = SpanBuilder(clock=time.perf_counter, root_kind="shard",
                             root_name=f"shard-{shard_index}",
                             meta={"shard": shard_index})
        tool.events.subscribe(tracer)
    for sink in sinks:
        tool.events.subscribe(sink)
    events = CounterSink()
    tool.events.subscribe(events)
    registry = MetricsRegistry()
    instrument(tool.events, registry=registry, audit=audit)
    built = time.perf_counter()
    runner = SurveyRunner(tool, checkpoint_path=checkpoint_path,
                          checkpoint_every=checkpoint_every)
    if seed_subnets:
        known = {str(subnet.prefix) for subnet in tool.collected_subnets}
        for payload in seed_subnets:
            if payload["prefix"] in known:
                continue
            tool.register_subnet(subnet_from_dict(payload))
            known.add(payload["prefix"])
    runner.run(targets)
    collect_backend_metrics(registry.backend, tool.transport)
    finished = time.perf_counter()
    return {
        "shard": shard_index,
        "archive": archive_to_dict(runner.archive),
        "stats": tool.prober.stats.snapshot(),
        "events": dict(events.counts),
        "metrics": registry.to_dict(),
        "build_seconds": built - started,
        "survey_seconds": finished - built,
        "stop_set": (tool.stop_set.to_dict()
                     if tool.stop_set is not None else None),
        "spans": (tracer.finish().to_dict(timing=True)
                  if tracer is not None else None),
    }


#: Backwards-compatible alias (the primitive used to be module-private).
_run_shard = run_shard


def run_radar_shard(spec: ShardSpec, shard_index: int, targets: List[int],
                    radar: Dict, sinks: Sequence = (),
                    audit: bool = True, spans: bool = False) -> Dict:
    """Radar-job twin of :func:`run_shard`: repeated re-survey rounds.

    Rebuilds the collector with the radar's churn/fault transport chain
    (:meth:`ShardSpec.build_tool` with the ``radar`` config) and drives a
    :class:`~repro.radar.RadarRunner` over the whole target slice.  The
    payload mirrors :func:`run_shard` — ``archive`` is the *final* round's
    map — plus a ``"radar"`` key holding the per-round summary and diffs.
    Radar jobs run as one shard (rounds are sequential and carry state),
    so there is no checkpoint file; fault recovery re-runs the shard,
    which is deterministic in (spec, radar, targets).
    """
    from .radar import RadarRunner

    started = time.perf_counter()
    tool = spec.build_tool(radar=radar)
    tracer = None
    if spans:
        from .tracing import SpanBuilder

        tracer = SpanBuilder(clock=time.perf_counter, root_kind="shard",
                             root_name=f"radar-shard-{shard_index}",
                             meta={"shard": shard_index})
        tool.events.subscribe(tracer)
    for sink in sinks:
        tool.events.subscribe(sink)
    events = CounterSink()
    tool.events.subscribe(events)
    registry = MetricsRegistry()
    instrument(tool.events, registry=registry, audit=audit)
    built = time.perf_counter()
    outcome = RadarRunner(tool, targets,
                          rounds=max(1, radar.get("rounds", 3)),
                          incremental=radar.get("incremental", True)).run()
    collect_backend_metrics(registry.backend, tool.transport)
    finished = time.perf_counter()
    return {
        "shard": shard_index,
        "archive": archive_to_dict(outcome.final_archive),
        "stats": tool.prober.stats.snapshot(),
        "events": dict(events.counts),
        "metrics": registry.to_dict(),
        "build_seconds": built - started,
        "survey_seconds": finished - built,
        "stop_set": (tool.stop_set.to_dict()
                     if tool.stop_set is not None else None),
        "spans": (tracer.finish().to_dict(timing=True)
                  if tracer is not None else None),
        "radar": outcome.to_dict(),
    }


def _stats_from_snapshot(snapshot: Dict[str, int]) -> ProbeStats:
    """Inverse of :meth:`ProbeStats.snapshot` (flat dict -> counters)."""
    stats = ProbeStats(
        sent=snapshot.get("sent", 0),
        responses=snapshot.get("responses", 0),
        silent=snapshot.get("silent", 0),
        retries=snapshot.get("retries", 0),
        cache_hits=snapshot.get("cache_hits", 0),
        suppressed=snapshot.get("suppressed", 0),
    )
    for key, count in snapshot.items():
        if key.startswith("phase:"):
            stats.by_phase[key[len("phase:"):]] = count
    return stats


def merge_probe_stats(parts: Sequence[ProbeStats]) -> ProbeStats:
    """Sum per-shard probe counters into one survey-wide view."""
    total = ProbeStats()
    for part in parts:
        total.sent += part.sent
        total.responses += part.responses
        total.silent += part.silent
        total.retries += part.retries
        total.cache_hits += part.cache_hits
        total.suppressed += part.suppressed
        for phase, count in part.by_phase.items():
            total.by_phase[phase] = total.by_phase.get(phase, 0) + count
    return total


def merge_shard_archives(vantage: str,
                         archives: Sequence[CollectionArchive],
                         targets: Sequence[int]) -> CollectionArchive:
    """One archive matching a serial run's content.

    Subnets are deduplicated by observed prefix (two shards crossing the
    same link both explore it); traces are reordered to the original target
    order, one per distinct destination — exactly what a serial runner
    records.
    """
    subnets = []
    seen_prefixes = set()
    traces_by_destination = {}
    done: set = set()
    for archive in archives:
        for subnet in archive.subnets:
            key = str(subnet.prefix)
            if key in seen_prefixes:
                continue
            seen_prefixes.add(key)
            subnets.append(subnet)
        for trace in archive.traces:
            traces_by_destination.setdefault(trace.destination, trace)
        done.update(archive.metadata.get("done_targets", []))
    traces = []
    emitted = set()
    for target in targets:
        trace = traces_by_destination.get(target)
        if trace is None or target in emitted:
            continue
        emitted.add(target)
        traces.append(trace)
    return CollectionArchive(
        vantage=vantage,
        subnets=subnets,
        traces=traces,
        metadata={"done_targets": sorted(done), "shards": len(archives)},
    )


# -- content-equality contract -------------------------------------------------


def archive_signature(archive: CollectionArchive) -> Dict:
    """The content a parallel run must reproduce from a serial one.

    Probe-count fields (``probes_used``, ``probes_sent``) are deliberately
    excluded: cross-shard subnet reuse makes them differ while the collected
    topology stays identical.
    """
    return {
        "subnets": sorted(
            (str(subnet.prefix), tuple(sorted(subnet.members)))
            for subnet in archive.subnets
        ),
        "traces": sorted(
            (
                trace.destination,
                trace.reached,
                tuple((hop.ttl, hop.address) for hop in trace.hops),
            )
            for trace in archive.traces
        ),
    }


def archives_equivalent(left: CollectionArchive,
                        right: CollectionArchive) -> bool:
    """True when both archives collected the same subnets and traces."""
    return archive_signature(left) == archive_signature(right)


# -- shard payloads and merging ------------------------------------------------


@dataclass
class ShardOutcome:
    """What one shard produced."""

    shard_index: int
    targets: List[int]
    archive: CollectionArchive
    stats: ProbeStats
    event_counts: Dict[str, int] = field(default_factory=dict)
    metrics: Optional[MetricsRegistry] = None
    build_seconds: float = 0.0
    survey_seconds: float = 0.0
    #: Shard-local stop set, deserialized at merge time like every other
    #: payload field (None when stop sets were off).
    stop_set: Optional[StopSet] = None
    #: Lease attempt that produced this outcome (1 on the first delivery;
    #: > 1 means the shard was re-leased after a worker death).
    attempt: int = 1
    #: Worker-side timed span tree (``Span.to_dict(timing=True)``), kept
    #: in dict form — worker clocks share no timebase with the caller's.
    spans: Optional[Dict] = None
    #: Radar-job round summary + diffs (``RadarResult.to_dict()``); None
    #: for ordinary survey shards.
    radar: Optional[Dict] = None


def outcome_from_payload(shard_index: int, targets: Sequence[int],
                         payload: Dict, attempt: int = 1) -> ShardOutcome:
    """Rehydrate one :func:`run_shard` payload into a typed outcome.

    Every payload field crosses the process (or service) boundary as plain
    JSON and is round-tripped through its own class here: the archive via
    :func:`archive_from_dict`, the counters via :class:`ProbeStats`, the
    registry via :meth:`MetricsRegistry.from_dict`, and the stop set via
    :meth:`StopSet.from_dict`.
    """
    shard_metrics = payload.get("metrics")
    shard_stop_set = payload.get("stop_set")
    return ShardOutcome(
        shard_index=shard_index,
        targets=list(targets),
        archive=archive_from_dict(payload["archive"]),
        stats=_stats_from_snapshot(payload["stats"]),
        event_counts=payload.get("events", {}),
        metrics=(MetricsRegistry.from_dict(shard_metrics)
                 if shard_metrics is not None else None),
        build_seconds=payload.get("build_seconds", 0.0),
        survey_seconds=payload.get("survey_seconds", 0.0),
        stop_set=(StopSet.from_dict(shard_stop_set)
                  if shard_stop_set is not None else None),
        attempt=attempt,
        spans=payload.get("spans"),
        radar=payload.get("radar"),
    )


def merge_outcomes(vantage: str, targets: Sequence[int],
                   outcomes: Sequence[ShardOutcome],
                   ) -> Tuple[CollectionArchive, ProbeStats,
                              MetricsRegistry, Optional[StopSet]]:
    """Fold per-shard outcomes into one survey-wide view.

    The merge half of the shard primitive: archives deduplicate by prefix
    and reorder to the original target order, probe counters and metric
    registries sum, and shard-local stop sets fold into one global set.
    Used by both :class:`ShardedSurveyRunner` and the service coordinator.
    """
    archive = merge_shard_archives(
        vantage, [o.archive for o in outcomes], targets)
    stats = merge_probe_stats([o.stats for o in outcomes])
    metrics = MetricsRegistry()
    for outcome in outcomes:
        if outcome.metrics is not None:
            metrics.merge(outcome.metrics)
    shard_sets = [o.stop_set for o in outcomes if o.stop_set is not None]
    stop_set = merge_stop_sets(shard_sets) if shard_sets else None
    return archive, stats, metrics, stop_set


@dataclass
class ShardedSurveyResult:
    """Merged outcome of a parallel survey."""

    archive: CollectionArchive
    stats: ProbeStats
    shards: List[ShardOutcome] = field(default_factory=list)
    workers: int = 1
    executed_inline: bool = False
    #: Per-shard registries merged into one survey-wide view.  Counters and
    #: histograms sum exactly (each event happened in exactly one shard);
    #: gauges sum too, which turns per-shard totals (``survey_targets``,
    #: engine backend counters) into fleet totals.
    metrics: Optional[MetricsRegistry] = None
    #: The global stop set: every shard-local set merged (first-recorded
    #: path per prefix wins, counters summed).  None when stop sets were
    #: off; ready to seed a future survey via ``ShardSpec.seed_stop_set``.
    stop_set: Optional[StopSet] = None

    @property
    def probes_sent(self) -> int:
        return self.stats.sent

    @property
    def event_counts(self) -> Dict[str, int]:
        """Session events tallied across every shard, by event type."""
        merged: Dict[str, int] = {}
        for shard in self.shards:
            for name, count in shard.event_counts.items():
                merged[name] = merged.get(name, 0) + count
        return merged


class ShardedSurveyRunner:
    """Splits a survey across worker processes and merges the results.

    Args:
        spec: the serialized scenario every worker rebuilds.
        workers: shard/process count; 1 runs inline (no processes).
        checkpoint_dir: when set, shard ``i`` checkpoints into
            ``<dir>/shard-<i>.json`` through the ordinary
            :class:`SurveyRunner`, so a re-run with the same targets and
            worker count resumes each shard.
        checkpoint_every: per-shard checkpoint cadence.
    """

    def __init__(self, spec: ShardSpec, workers: int = 2,
                 checkpoint_dir: Optional[str] = None,
                 checkpoint_every: int = 25):
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.spec = spec
        self.workers = workers
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = max(1, checkpoint_every)

    @classmethod
    def from_network(cls, topology: Topology,
                     policy: Optional[ResponsePolicy],
                     vantage: str, workers: int = 2,
                     checkpoint_dir: Optional[str] = None,
                     checkpoint_every: int = 25,
                     **spec_overrides) -> "ShardedSurveyRunner":
        spec = ShardSpec.from_network(topology, policy, vantage,
                                      **spec_overrides)
        return cls(spec, workers=workers, checkpoint_dir=checkpoint_dir,
                   checkpoint_every=checkpoint_every)

    def shard_checkpoint_path(self, shard_index: int) -> Optional[str]:
        if self.checkpoint_dir is None:
            return None
        return os.path.join(self.checkpoint_dir, f"shard-{shard_index}.json")

    def run(self, targets: Sequence[int]) -> ShardedSurveyResult:
        """Survey every target; returns the merged archive and counters."""
        slices = shard_targets(targets, self.workers)
        if self.checkpoint_dir is not None:
            os.makedirs(self.checkpoint_dir, exist_ok=True)
        jobs: List[Tuple[int, List[int], Optional[str]]] = [
            (index, shard, self.shard_checkpoint_path(index))
            for index, shard in enumerate(slices)
        ]
        executed_inline = len(jobs) == 1
        if executed_inline:
            payloads = [self._run_inline(job) for job in jobs]
        else:
            try:
                pool = ProcessPoolExecutor(max_workers=len(jobs))
            except (ImportError, OSError, PermissionError):
                # No process support in this environment (e.g. a sandboxed
                # CI runner without semaphores): degrade to inline shards.
                executed_inline = True
                payloads = [self._run_inline(job) for job in jobs]
            else:
                with pool:
                    futures = [
                        pool.submit(run_shard, self.spec, index, shard,
                                    checkpoint, self.checkpoint_every)
                        for index, shard, checkpoint in jobs
                    ]
                    payloads = []
                    for (index, shard, checkpoint), future in zip(jobs,
                                                                  futures):
                        try:
                            payloads.append(future.result())
                        except Exception as exc:
                            # Name the failed shard: the exception carries
                            # the shard index, its target slice, and its
                            # checkpoint path, and the surviving shards'
                            # checkpoints stay usable for a resumed run.
                            raise ShardExecutionError(
                                index, shard, checkpoint, exc) from exc
        return self._merge(targets, jobs, payloads, executed_inline)

    # -- internals -------------------------------------------------------

    def _run_inline(self, job: Tuple[int, List[int], Optional[str]]) -> Dict:
        index, shard, checkpoint = job
        try:
            return run_shard(self.spec, index, shard, checkpoint,
                             self.checkpoint_every)
        except Exception as exc:
            raise ShardExecutionError(index, shard, checkpoint, exc) from exc

    def _merge(self, targets: Sequence[int], jobs, payloads,
               executed_inline: bool) -> ShardedSurveyResult:
        outcomes = [
            outcome_from_payload(index, shard, payload)
            for (index, shard, _), payload in zip(jobs, payloads)
        ]
        merged, stats, metrics, stop_set = merge_outcomes(
            self.spec.vantage, targets, outcomes)
        return ShardedSurveyResult(
            archive=merged,
            stats=stats,
            shards=outcomes,
            workers=len(jobs),
            executed_inline=executed_inline,
            metrics=metrics,
            stop_set=stop_set,
        )


def run_sharded_survey(topology: Topology, policy: Optional[ResponsePolicy],
                       vantage: str, targets: Sequence[int],
                       workers: int = 2,
                       checkpoint_dir: Optional[str] = None,
                       **spec_overrides) -> ShardedSurveyResult:
    """Convenience wrapper mirroring :func:`run_survey_with_checkpoints`."""
    runner = ShardedSurveyRunner.from_network(
        topology, policy, vantage, workers=workers,
        checkpoint_dir=checkpoint_dir, **spec_overrides)
    return runner.run(targets)
