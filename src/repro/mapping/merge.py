"""Merging subnet collections from several vantage points.

Section 4.2 observes that "some subnets are inferred to be larger when
collected from another vantage point" — rate limiting and path position
make per-vantage views uneven.  Merging turns the per-vantage collections
into one best-effort subnet map:

* observations whose blocks overlap describe the same physical subnet;
* the merged block is the one most vantages agree on, ties broken toward
  the more complete (shorter-prefix) observation;
* members are unioned over the observations that fit the merged block.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ..core.results import ObservedSubnet
from ..netsim.addressing import Prefix


@dataclass
class MergedSubnet:
    """One subnet of the merged map."""

    prefix: Prefix
    members: Set[int] = field(default_factory=set)
    observers: Set[str] = field(default_factory=set)
    observation_count: int = 0

    @property
    def confirmation(self) -> int:
        """How many vantage points saw this subnet (Figure 6's currency)."""
        return len(self.observers)

    def describe(self) -> str:
        return (f"{self.prefix} [{len(self.members)} ifaces, "
                f"seen by {sorted(self.observers)}]")


def merge_collections(collections: Dict[str, Sequence[ObservedSubnet]],
                      minimum_size: int = 2) -> List[MergedSubnet]:
    """Merge per-vantage observed subnets into one map.

    Args:
        collections: vantage name -> its observed subnets.
        minimum_size: ignore observations smaller than this (the /32
            un-subnetized pivots by default).

    Returns:
        Merged subnets sorted by network address.  Their blocks never
        overlap: overlapping observations are clustered and resolved.
    """
    observations: List[Tuple[str, ObservedSubnet]] = [
        (vantage, subnet)
        for vantage, subnets in collections.items()
        for subnet in subnets
        if subnet.size >= minimum_size
    ]
    clusters = _cluster_by_overlap(observations)
    merged = [_resolve(cluster) for cluster in clusters]
    merged.sort(key=lambda subnet: subnet.prefix.network)
    return merged


def coverage(merged: Iterable[MergedSubnet]) -> Set[int]:
    """Every address placed in the merged map."""
    placed: Set[int] = set()
    for subnet in merged:
        placed.update(subnet.members)
    return placed


def confirmed(merged: Iterable[MergedSubnet], minimum_observers: int = 2
              ) -> List[MergedSubnet]:
    """Subnets corroborated by at least ``minimum_observers`` vantages."""
    return [subnet for subnet in merged
            if subnet.confirmation >= minimum_observers]


# -- internals ----------------------------------------------------------------


def _cluster_by_overlap(observations: List[Tuple[str, ObservedSubnet]]
                        ) -> List[List[Tuple[str, ObservedSubnet]]]:
    """Group observations whose blocks overlap (transitively)."""
    ordered = sorted(observations,
                     key=lambda item: (item[1].prefix.network,
                                       item[1].prefix.length))
    clusters: List[List[Tuple[str, ObservedSubnet]]] = []
    cluster_end = -1
    for vantage, subnet in ordered:
        block = subnet.prefix
        if clusters and block.network <= cluster_end:
            clusters[-1].append((vantage, subnet))
            cluster_end = max(cluster_end, block.broadcast)
        else:
            clusters.append([(vantage, subnet)])
            cluster_end = block.broadcast
    return clusters


def _resolve(cluster: List[Tuple[str, ObservedSubnet]]) -> MergedSubnet:
    """Pick the consensus block for one overlap cluster and union members."""
    votes = Counter(subnet.prefix for _, subnet in cluster)
    best_count = max(votes.values())
    candidates = [block for block, count in votes.items()
                  if count == best_count]
    # Ties break toward the more complete (shorter prefix) observation —
    # the paper's "inferred larger from another vantage point" case.
    block = min(candidates, key=lambda p: p.length)
    merged = MergedSubnet(prefix=block)
    for vantage, subnet in cluster:
        merged.observation_count += 1
        members_inside = {m for m in subnet.members if m in block}
        if members_inside:
            merged.observers.add(vantage)
            merged.members.update(members_inside)
    return merged
