"""The subnet-level topology map as a graph.

This is the artifact the paper's introduction motivates: a map that knows
*which addresses share a LAN* so applications (resilient overlays, path
analysis, debugging) can reason about links instead of address lists.

Nodes are merged subnets; an edge connects two subnets when some router
demonstrably sits on both.  The evidence comes from the collection itself:

* consecutive trace hops — the hop-(i+1) router has one interface in the
  hop-i subnet (it sourced the incoming-interface reply) and one in its
  own subnet;
* the ingress relation — an observed subnet's ingress interface lies in
  the upstream subnet, and its contra-pivot lies in the subnet itself;
  both belong to the ingress router.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.results import TraceResult
from ..netsim.addressing import Prefix
from .merge import MergedSubnet


@dataclass
class TopologyMap:
    """A queryable subnet-level map built from collected data."""

    subnets: List[MergedSubnet] = field(default_factory=list)
    _edges: Set[FrozenSet[Prefix]] = field(default_factory=set)
    _by_network: Dict[int, MergedSubnet] = field(default_factory=dict)

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, merged: Sequence[MergedSubnet],
              traces: Iterable[TraceResult] = ()) -> "TopologyMap":
        """Assemble the map from merged subnets plus trace evidence."""
        topology_map = cls(subnets=list(merged))
        for subnet in merged:
            topology_map._by_network[subnet.prefix.network] = subnet
        for trace in traces:
            topology_map._add_trace_edges(trace)
        return topology_map

    def _add_trace_edges(self, trace: TraceResult) -> None:
        previous: Optional[MergedSubnet] = None
        for hop in trace.hops:
            if hop.address is None:
                previous = None
                continue
            current = self.subnet_of(hop.address)
            if current is None:
                previous = None
                continue
            if previous is not None and previous.prefix != current.prefix:
                self._edges.add(frozenset((previous.prefix, current.prefix)))
            previous = current

    def add_edge(self, a: Prefix, b: Prefix) -> None:
        """Record that one router connects subnets ``a`` and ``b``."""
        if a != b:
            self._edges.add(frozenset((a, b)))

    # -- lookups --------------------------------------------------------------

    def subnet_of(self, address: int) -> Optional[MergedSubnet]:
        """The merged subnet containing ``address``, by membership."""
        for subnet in self.subnets:
            if address in subnet.members:
                return subnet
        for subnet in self.subnets:
            if address in subnet.prefix:
                return subnet
        return None

    @property
    def edges(self) -> List[Tuple[Prefix, Prefix]]:
        ordered = []
        for pair in self._edges:
            a, b = sorted(pair, key=lambda p: (p.network, p.length))
            ordered.append((a, b))
        ordered.sort(key=lambda pair: (pair[0].network, pair[1].network))
        return ordered

    def neighbors(self, prefix: Prefix) -> List[Prefix]:
        found = []
        for pair in self._edges:
            if prefix in pair:
                other = next(iter(pair - {prefix}))
                found.append(other)
        return sorted(found, key=lambda p: (p.network, p.length))

    def degree(self, prefix: Prefix) -> int:
        return len(self.neighbors(prefix))

    # -- path analysis (the Figure 2 application) -------------------------------

    def subnets_on_path(self, addresses: Sequence[int]) -> List[MergedSubnet]:
        """The merged subnets a hop-address path crosses, in order."""
        crossed: List[MergedSubnet] = []
        for address in addresses:
            subnet = self.subnet_of(address)
            if subnet is not None and (not crossed
                                       or crossed[-1].prefix != subnet.prefix):
                crossed.append(subnet)
        return crossed

    def shared_subnets(self, path_a: Sequence[int], path_b: Sequence[int]
                       ) -> List[MergedSubnet]:
        """Subnets two hop-address paths have in common."""
        blocks_a = {s.prefix for s in self.subnets_on_path(path_a)}
        return [s for s in self.subnets_on_path(path_b)
                if s.prefix in blocks_a]

    def link_disjoint(self, path_a: Sequence[int], path_b: Sequence[int]
                      ) -> bool:
        """True when the two paths share no subnet (no common link)."""
        return not self.shared_subnets(path_a, path_b)

    # -- exports -------------------------------------------------------------------

    def to_dot(self, name: str = "tracenet_map") -> str:
        """GraphViz rendering: subnets as boxes, shared routers as edges."""
        lines = [f'graph "{name}" {{', "  node [shape=box];"]
        for subnet in sorted(self.subnets,
                             key=lambda s: (s.prefix.network, s.prefix.length)):
            label = f"{subnet.prefix}\\n{len(subnet.members)} ifaces"
            lines.append(f'  "{subnet.prefix}" [label="{label}"];')
        for a, b in self.edges:
            lines.append(f'  "{a}" -- "{b}";')
        lines.append("}")
        return "\n".join(lines)

    def to_edge_list(self) -> List[str]:
        """Plain-text edge list (one ``prefix prefix`` pair per line)."""
        return [f"{a} {b}" for a, b in self.edges]

    def summary(self) -> str:
        placed = sum(len(s.members) for s in self.subnets)
        return (f"topology map: {len(self.subnets)} subnets, "
                f"{len(self._edges)} links, {placed} addresses")

    def describe(self, limit: int = 20) -> str:
        lines = [self.summary()]
        for subnet in self.subnets[:limit]:
            neighbor_text = ", ".join(str(n) for n in
                                      self.neighbors(subnet.prefix)) or "-"
            lines.append(f"  {subnet.describe()} <-> {neighbor_text}")
        if len(self.subnets) > limit:
            lines.append(f"  ... and {len(self.subnets) - limit} more")
        return "\n".join(lines)


def map_from_collections(collections, traces: Iterable[TraceResult] = (),
                         minimum_size: int = 2) -> TopologyMap:
    """One-call construction: merge per-vantage collections, then graph."""
    from .merge import merge_collections

    merged = merge_collections(collections, minimum_size=minimum_size)
    return TopologyMap.build(merged, traces)


def annotate_same_lan(topology_map: TopologyMap, addresses: Sequence[int]
                      ) -> Dict[int, Optional[str]]:
    """The "being on the same LAN" annotation for a set of addresses."""
    return {
        address: (str(subnet.prefix) if subnet is not None else None)
        for address in addresses
        for subnet in [topology_map.subnet_of(address)]
    }


def render_adjacency(topology_map: TopologyMap) -> str:
    """Human-readable adjacency listing."""
    lines = []
    for subnet in topology_map.subnets:
        neighbors = topology_map.neighbors(subnet.prefix)
        lines.append(f"{subnet.prefix} ({len(subnet.members)} ifaces): "
                     + (", ".join(map(str, neighbors)) or "(no links seen)"))
    return "\n".join(lines)
