"""Persistence for collected topology data.

A topology collector is only half a tool without a durable output format:
the paper's project published its collected data sets, and downstream
studies (alias resolution, subnet-level mapping) consume them offline.
This module serializes observed subnets and trace results to a compact
JSON document and back, losslessly.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import Dict, IO, Iterable, List, Optional, Union

from ..core.results import ObservedSubnet, TraceHop, TraceResult
from ..netsim.addressing import format_ip, parse_ip

FORMAT_VERSION = 1


@dataclass
class CollectionArchive:
    """Everything one vantage point collected, ready for disk."""

    vantage: str
    subnets: List[ObservedSubnet] = field(default_factory=list)
    traces: List[TraceResult] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)


# -- observed subnets ---------------------------------------------------------


def subnet_to_dict(subnet: ObservedSubnet) -> Dict:
    """JSON-ready representation of one observed subnet."""
    return {
        "prefix": str(subnet.prefix),
        "prefix_length": subnet.prefix_length,
        "pivot": format_ip(subnet.pivot),
        "pivot_distance": subnet.pivot_distance,
        "members": sorted(format_ip(m) for m in subnet.members),
        "contra_pivot": (format_ip(subnet.contra_pivot)
                         if subnet.contra_pivot is not None else None),
        "ingress": (format_ip(subnet.ingress)
                    if subnet.ingress is not None else None),
        "trace_entry": (format_ip(subnet.trace_entry)
                        if subnet.trace_entry is not None else None),
        "on_trace_path": subnet.on_trace_path,
        "positioned": subnet.positioned,
        "stop_reason": subnet.stop_reason,
        "probes_used": subnet.probes_used,
        "trace_address": (format_ip(subnet.trace_address)
                          if subnet.trace_address is not None else None),
    }


def subnet_from_dict(payload: Dict) -> ObservedSubnet:
    """Rebuild an observed subnet from its JSON representation."""
    def maybe(value: Optional[str]) -> Optional[int]:
        return parse_ip(value) if value is not None else None

    return ObservedSubnet(
        pivot=parse_ip(payload["pivot"]),
        pivot_distance=payload["pivot_distance"],
        members={parse_ip(m) for m in payload["members"]},
        contra_pivot=maybe(payload.get("contra_pivot")),
        ingress=maybe(payload.get("ingress")),
        trace_entry=maybe(payload.get("trace_entry")),
        on_trace_path=payload.get("on_trace_path"),
        positioned=payload.get("positioned", True),
        stop_reason=payload.get("stop_reason", ""),
        probes_used=payload.get("probes_used", 0),
        prefix_length=payload.get("prefix_length"),
        trace_address=maybe(payload.get("trace_address")),
    )


# -- trace results -------------------------------------------------------------


def trace_to_dict(result: TraceResult) -> Dict:
    """JSON-ready representation of a trace (subnets stored by prefix ref).

    Degradation markers appear only on degraded traces — archives collected
    against a quiescent network serialize byte-identically to format
    version 1 files written before radar mode existed.
    """
    payload = {
        "vantage": result.vantage_host_id,
        "destination": format_ip(result.destination),
        "reached": result.reached,
        "probes_sent": result.probes_sent,
        "hops": [
            {
                "ttl": hop.ttl,
                "address": (format_ip(hop.address)
                            if hop.address is not None else None),
                "is_destination": hop.is_destination,
                "subnet": (str(hop.subnet.prefix)
                           if hop.subnet is not None else None),
            }
            for hop in result.hops
        ],
    }
    if result.degraded:
        payload["degraded"] = True
        payload["confidence"] = result.confidence
        payload["degraded_reasons"] = list(result.degraded_reasons)
    return payload


def trace_from_dict(payload: Dict,
                    subnet_index: Optional[Dict[str, ObservedSubnet]] = None
                    ) -> TraceResult:
    """Rebuild a trace; subnet references resolve through ``subnet_index``."""
    result = TraceResult(
        vantage_host_id=payload["vantage"],
        destination=parse_ip(payload["destination"]),
        reached=payload.get("reached", False),
        probes_sent=payload.get("probes_sent", 0),
        confidence=payload.get("confidence", 1.0),
        degraded=payload.get("degraded", False),
        degraded_reasons=list(payload.get("degraded_reasons", [])),
    )
    for hop_payload in payload["hops"]:
        address = hop_payload.get("address")
        subnet_ref = hop_payload.get("subnet")
        subnet = None
        if subnet_ref is not None and subnet_index is not None:
            subnet = subnet_index.get(subnet_ref)
        result.hops.append(TraceHop(
            ttl=hop_payload["ttl"],
            address=parse_ip(address) if address is not None else None,
            is_destination=hop_payload.get("is_destination", False),
            subnet=subnet,
        ))
    return result


# -- archives -------------------------------------------------------------------


def archive_to_dict(archive: CollectionArchive) -> Dict:
    return {
        "format_version": FORMAT_VERSION,
        "vantage": archive.vantage,
        "metadata": archive.metadata,
        "subnets": [subnet_to_dict(s) for s in archive.subnets],
        "traces": [trace_to_dict(t) for t in archive.traces],
    }


def archive_from_dict(payload: Dict) -> CollectionArchive:
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported archive format version: {version}")
    subnets = [subnet_from_dict(p) for p in payload.get("subnets", [])]
    index = {str(s.prefix): s for s in subnets}
    traces = [trace_from_dict(p, index) for p in payload.get("traces", [])]
    return CollectionArchive(
        vantage=payload["vantage"],
        subnets=subnets,
        traces=traces,
        metadata=payload.get("metadata", {}),
    )


def save_archive(destination: Union[str, IO], archive: CollectionArchive) -> None:
    """Write an archive as JSON to a path or open file object."""
    payload = archive_to_dict(archive)
    if isinstance(destination, str):
        with open(destination, "w") as handle:
            json.dump(payload, handle, indent=1)
    else:
        json.dump(payload, destination, indent=1)


def load_archive(source: Union[str, IO]) -> CollectionArchive:
    """Read an archive from a path or open file object."""
    if isinstance(source, str):
        with open(source) as handle:
            payload = json.load(handle)
    else:
        payload = json.load(source)
    return archive_from_dict(payload)


def archive_from_tool(tool, traces: Iterable[TraceResult] = (),
                      **metadata) -> CollectionArchive:
    """Snapshot a TraceNET instance's collection into an archive."""
    return CollectionArchive(
        vantage=tool.vantage_host_id,
        subnets=list(tool.collected_subnets),
        traces=list(traces),
        metadata=dict(metadata),
    )


# -- the shared dedupe store ----------------------------------------------------


class SubnetDedupeStore:
    """Shared subnet store: discoveries published once, reused fleet-wide.

    The distributed survey service's cross-shard redundancy eliminator:
    when a vantage worker finishes a shard, the coordinator publishes the
    shard's observed subnets here; when a later shard is leased, the
    current snapshot seeds its collector's reuse registry
    (:meth:`TraceNET.register_subnet`), so the shard skips re-exploring
    prefixes the fleet already collected — exactly the cross-shard subnet
    reuse a serial run gets for free.

    Subnets are stored as their plain :func:`subnet_to_dict` payloads,
    keyed by ``(scope, prefix)``.  The ``scope`` partitions tenants:
    subnets may only be shared between surveys of the *same* scenario
    (same topology, policy and seeds — the coordinator keys the scope on a
    fingerprint of the :class:`~repro.parallel.ShardSpec`), because a
    subnet observed on one topology is meaningless — and archive-polluting
    — on another.  First publication of a prefix wins; a duplicate is
    counted and dropped, which is safe because every worker of one
    scenario rebuilds the same deterministic network and therefore
    observes the same members for a given prefix.

    All methods are thread-safe: coordinator and workers share one
    instance across threads.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._scopes: Dict[str, Dict[str, Dict]] = {}
        self.published = 0    # distinct (scope, prefix) entries stored
        self.duplicates = 0   # publications dropped as already-known

    def publish(self, subnet: Union[ObservedSubnet, Dict],
                scope: str = "global") -> bool:
        """Store one subnet; False when its prefix was already published."""
        payload = (subnet if isinstance(subnet, dict)
                   else subnet_to_dict(subnet))
        prefix = payload["prefix"]
        with self._lock:
            entries = self._scopes.setdefault(scope, {})
            if prefix in entries:
                self.duplicates += 1
                return False
            entries[prefix] = payload
            self.published += 1
            return True

    def publish_archive(self, archive: CollectionArchive,
                        scope: str = "global") -> int:
        """Publish every subnet of an archive; returns how many were new."""
        return sum(1 for subnet in archive.subnets
                   if self.publish(subnet, scope=scope))

    def known(self, prefix: str, scope: str = "global") -> bool:
        """True when a subnet with this prefix was already published."""
        with self._lock:
            return prefix in self._scopes.get(scope, {})

    def snapshot(self, scope: str = "global") -> List[Dict]:
        """The scope's subnet payloads, sorted by prefix (seeding order)."""
        with self._lock:
            entries = self._scopes.get(scope, {})
            return [entries[prefix] for prefix in sorted(entries)]

    def subnets(self, scope: str = "global") -> List[ObservedSubnet]:
        """The scope's subnets, rebuilt into :class:`ObservedSubnet`."""
        return [subnet_from_dict(payload)
                for payload in self.snapshot(scope)]

    def size(self, scope: str = "global") -> int:
        with self._lock:
            return len(self._scopes.get(scope, {}))

    def counters(self) -> Dict[str, int]:
        """Flat accounting for service metrics and reports."""
        with self._lock:
            return {
                "scopes": len(self._scopes),
                "prefixes": sum(len(v) for v in self._scopes.values()),
                "published": self.published,
                "duplicates": self.duplicates,
            }
