"""Topology mapping: persistence, multi-vantage merging, archive
differencing (radar mode), and the subnet-level map graph the paper's
introduction motivates."""

from .diff import (
    ArchiveDiff,
    PathChange,
    SubnetChange,
    diff_archives,
    dirty_prefixes,
)
from .graph import (
    TopologyMap,
    annotate_same_lan,
    map_from_collections,
    render_adjacency,
)
from .merge import MergedSubnet, confirmed, coverage, merge_collections
from .store import (
    CollectionArchive,
    SubnetDedupeStore,
    archive_from_dict,
    archive_from_tool,
    archive_to_dict,
    load_archive,
    save_archive,
    subnet_from_dict,
    subnet_to_dict,
    trace_from_dict,
    trace_to_dict,
)

__all__ = [
    "ArchiveDiff",
    "CollectionArchive",
    "MergedSubnet",
    "PathChange",
    "SubnetChange",
    "SubnetDedupeStore",
    "TopologyMap",
    "annotate_same_lan",
    "archive_from_dict",
    "diff_archives",
    "dirty_prefixes",
    "archive_from_tool",
    "archive_to_dict",
    "confirmed",
    "coverage",
    "load_archive",
    "map_from_collections",
    "merge_collections",
    "render_adjacency",
    "save_archive",
    "subnet_from_dict",
    "subnet_to_dict",
    "trace_from_dict",
    "trace_to_dict",
]
