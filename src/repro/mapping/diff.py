"""Archive differencing: what changed between two maps of the same network.

"A Radar for the Internet" (Latapy et al.) frames topology measurement as a
*sequence of maps* whose differences are the signal; tracenet's radar mode
re-surveys on a fixed simulated-epoch cadence and this module computes the
map-to-map deltas: subnets that appeared, vanished, or resized, and
per-destination path churn.

Determinism contract: :func:`diff_archives` reads only archive content
(never wall clocks, never probe economics), and :meth:`ArchiveDiff.to_dict`
sorts every collection — so a live radar run, a journal replay of it, and
an offline ``tracenet diff old.json new.json`` over its round archives all
serialize the bit-identical diff.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..netsim.addressing import format_ip
from .store import CollectionArchive


@dataclass
class SubnetChange:
    """One prefix whose observation changed between rounds."""

    prefix: str
    change: str                       # "appeared" | "vanished" | "resized"
    old_prefix: Optional[str] = None  # for resizes: what it was before
    old_members: int = 0
    new_members: int = 0

    def to_dict(self) -> Dict:
        payload: Dict = {"prefix": self.prefix, "change": self.change}
        if self.old_prefix is not None:
            payload["old_prefix"] = self.old_prefix
        payload["old_members"] = self.old_members
        payload["new_members"] = self.new_members
        return payload


@dataclass
class PathChange:
    """One destination whose trace path differs between rounds."""

    destination: str
    change: str                 # "path-changed" | "appeared" | "vanished"
    old_hops: List[Optional[str]] = field(default_factory=list)
    new_hops: List[Optional[str]] = field(default_factory=list)
    divergence_ttl: Optional[int] = None

    def to_dict(self) -> Dict:
        return {
            "destination": self.destination,
            "change": self.change,
            "old_hops": self.old_hops,
            "new_hops": self.new_hops,
            "divergence_ttl": self.divergence_ttl,
        }


@dataclass
class ArchiveDiff:
    """The full delta between two rounds of the same radar survey."""

    subnet_changes: List[SubnetChange] = field(default_factory=list)
    path_changes: List[PathChange] = field(default_factory=list)
    subnets_before: int = 0
    subnets_after: int = 0
    traces_before: int = 0
    traces_after: int = 0
    degraded_after: int = 0

    @property
    def appeared(self) -> List[SubnetChange]:
        return [c for c in self.subnet_changes if c.change == "appeared"]

    @property
    def vanished(self) -> List[SubnetChange]:
        return [c for c in self.subnet_changes if c.change == "vanished"]

    @property
    def resized(self) -> List[SubnetChange]:
        return [c for c in self.subnet_changes if c.change == "resized"]

    @property
    def path_churn_rate(self) -> float:
        """Fraction of destinations present in both rounds whose path
        changed (0.0 when no destination appears in both)."""
        shared = [c for c in self.path_changes if c.change == "path-changed"]
        both = self._shared_destinations
        return len(shared) / both if both else 0.0

    #: Destinations traced in both rounds (set by diff_archives; needed by
    #: the churn-rate denominator and the summary payload).
    _shared_destinations: int = 0

    @property
    def is_empty(self) -> bool:
        return not self.subnet_changes and not self.path_changes

    def to_dict(self) -> Dict:
        """Deterministic serialization — sorted, content-only, so the
        live / replay / offline renderings are bit-identical."""
        return {
            "summary": {
                "subnets_before": self.subnets_before,
                "subnets_after": self.subnets_after,
                "traces_before": self.traces_before,
                "traces_after": self.traces_after,
                "degraded_after": self.degraded_after,
                "appeared": len(self.appeared),
                "vanished": len(self.vanished),
                "resized": len(self.resized),
                "paths_compared": self._shared_destinations,
                "paths_changed": len([c for c in self.path_changes
                                      if c.change == "path-changed"]),
                "path_churn_rate": round(self.path_churn_rate, 6),
            },
            "subnet_changes": [c.to_dict() for c in sorted(
                self.subnet_changes, key=lambda c: (c.prefix, c.change))],
            "path_changes": [c.to_dict() for c in sorted(
                self.path_changes,
                key=lambda c: (c.destination, c.change))],
        }

    def describe(self) -> str:
        """One-paragraph rendering for the CLI."""
        summary = self.to_dict()["summary"]
        lines = [
            f"subnets: {summary['subnets_before']} -> "
            f"{summary['subnets_after']} "
            f"(+{summary['appeared']} appeared, "
            f"-{summary['vanished']} vanished, "
            f"{summary['resized']} resized)",
            f"paths: {summary['paths_changed']}/{summary['paths_compared']} "
            f"changed (churn rate {summary['path_churn_rate']:.3f}), "
            f"{summary['degraded_after']} degraded traces in the new round",
        ]
        for change in sorted(self.subnet_changes,
                             key=lambda c: (c.prefix, c.change)):
            was = f" (was {change.old_prefix})" if change.old_prefix else ""
            lines.append(f"  {change.change:>8}  {change.prefix}{was}")
        return "\n".join(lines)


def diff_archives(old: CollectionArchive,
                  new: CollectionArchive) -> ArchiveDiff:
    """The delta between two survey rounds over the same target set.

    Subnets are matched by prefix first; an old and a new subnet that share
    no prefix but overlap in members are reported as one ``resized`` change
    (covers both radar resizes and H9-style boundary shifts).  Trace paths
    compare as their (ttl, address) ladders; the first differing TTL is
    reported as the divergence point.
    """
    diff = ArchiveDiff(
        subnets_before=len(old.subnets),
        subnets_after=len(new.subnets),
        traces_before=len(old.traces),
        traces_after=len(new.traces),
        degraded_after=sum(1 for t in new.traces if t.degraded),
    )

    old_by_prefix = {str(s.prefix): s for s in old.subnets}
    new_by_prefix = {str(s.prefix): s for s in new.subnets}

    # Member-overlap matching for prefix-less pairs (resizes/renumbers).
    unmatched_old = {p: s for p, s in old_by_prefix.items()
                     if p not in new_by_prefix}
    unmatched_new = {p: s for p, s in new_by_prefix.items()
                     if p not in old_by_prefix}
    resized_old = set()
    for new_prefix in sorted(unmatched_new):
        new_subnet = unmatched_new[new_prefix]
        match = None
        for old_prefix in sorted(unmatched_old):
            if old_prefix in resized_old:
                continue
            old_subnet = unmatched_old[old_prefix]
            if new_subnet.members & old_subnet.members:
                match = old_prefix
                break
        if match is not None:
            resized_old.add(match)
            diff.subnet_changes.append(SubnetChange(
                prefix=new_prefix, change="resized", old_prefix=match,
                old_members=len(unmatched_old[match].members),
                new_members=len(new_subnet.members)))
        else:
            diff.subnet_changes.append(SubnetChange(
                prefix=new_prefix, change="appeared",
                new_members=len(new_subnet.members)))
    for old_prefix in sorted(unmatched_old):
        if old_prefix in resized_old:
            continue
        diff.subnet_changes.append(SubnetChange(
            prefix=old_prefix, change="vanished",
            old_members=len(unmatched_old[old_prefix].members)))

    old_paths = {t.destination: t for t in old.traces}
    new_paths = {t.destination: t for t in new.traces}
    shared = 0
    for destination in sorted(set(old_paths) | set(new_paths)):
        old_trace = old_paths.get(destination)
        new_trace = new_paths.get(destination)
        if old_trace is None:
            diff.path_changes.append(PathChange(
                destination=format_ip(destination), change="appeared",
                new_hops=_hop_texts(new_trace)))
            continue
        if new_trace is None:
            diff.path_changes.append(PathChange(
                destination=format_ip(destination), change="vanished",
                old_hops=_hop_texts(old_trace)))
            continue
        shared += 1
        old_hops = [(hop.ttl, hop.address) for hop in old_trace.hops]
        new_hops = [(hop.ttl, hop.address) for hop in new_trace.hops]
        if old_hops != new_hops:
            divergence = None
            for (old_ttl, old_addr), (new_ttl, new_addr) in zip(old_hops,
                                                                new_hops):
                if (old_ttl, old_addr) != (new_ttl, new_addr):
                    divergence = min(old_ttl, new_ttl)
                    break
            if divergence is None:
                divergence = min(len(old_hops), len(new_hops)) + 1
            diff.path_changes.append(PathChange(
                destination=format_ip(destination), change="path-changed",
                old_hops=_hop_texts(old_trace),
                new_hops=_hop_texts(new_trace),
                divergence_ttl=divergence))
    diff._shared_destinations = shared
    return diff


def _hop_texts(trace) -> List[Optional[str]]:
    return [format_ip(hop.address) if hop.address is not None else None
            for hop in trace.hops]


def dirty_prefixes(diff: ArchiveDiff) -> List[str]:
    """The prefixes a radar round should re-probe incrementally.

    Everything that appeared, vanished or resized, plus (by caller
    composition) the destinations whose paths changed — the radar runner
    maps these back onto its target list.
    """
    dirty = set()
    for change in diff.subnet_changes:
        dirty.add(change.prefix)
        if change.old_prefix:
            dirty.add(change.old_prefix)
    return sorted(dirty)


__all__ = [
    "ArchiveDiff",
    "PathChange",
    "SubnetChange",
    "diff_archives",
    "dirty_prefixes",
]
