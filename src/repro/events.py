"""Typed session-event stream: every collector decision, observable.

Donnet et al.'s Doubletree deployment and Latapy et al.'s "Radar for the
Internet" both argue that a topology collector is only trustworthy when its
probe stream and per-decision telemetry are fully recorded.  This module is
that operational layer: the collectors emit small frozen dataclass events
(:class:`ProbeSent`, :class:`HopObserved`, :class:`HeuristicFired`, ...)
onto an :class:`EventBus`, and pluggable sinks consume them — an in-memory
counter for metrics, a JSONL writer for durable logs, a progress renderer
for terminals.

The legacy side channels (``ExplorationState.audit`` lists,
``SurveyRunner.progress_hook`` callbacks) are thin adapters over this bus;
nothing in the algorithms depends on any particular sink being attached,
and with no sinks attached event construction is skipped entirely (the
producers guard with ``if bus:``).
"""

from __future__ import annotations

import json
import sys
from contextlib import contextmanager
from dataclasses import asdict, dataclass, fields
from typing import Callable, Dict, IO, List, Optional, Tuple, Type, Union

# -- the event taxonomy -------------------------------------------------------


@dataclass(frozen=True, slots=True)
class SessionEvent:
    """Base class for everything the collectors emit."""


@dataclass(frozen=True, slots=True)
class ProbeSent(SessionEvent):
    """One probe actually put on the wire (cache hits emit :class:`CacheHit`).

    The count of these events reconciles exactly with
    ``Engine.stats.probes_sent`` on a simulator run: every wire probe emits
    one, and only answers served from the prober's response cache do not —
    those emit :class:`CacheHit` instead, so event-derived totals add up to
    the prober's ``sent + cache_hits``.
    """

    dst: int
    ttl: int
    protocol: str
    flow_id: int
    phase: Optional[str]
    answered: bool
    response_kind: Optional[str]
    response_source: Optional[int]


@dataclass(frozen=True, slots=True)
class CacheHit(SessionEvent):
    """A probe answered from the prober's response cache — nothing hit the
    wire.  Without this event, event-derived probe totals undercount the
    prober's view (``ProbeStats.cache_hits``) and offline analytics cannot
    reconcile with live engine counters."""

    dst: int
    ttl: int
    phase: Optional[str]


@dataclass(frozen=True, slots=True)
class ProbeSuppressed(SessionEvent):
    """A probe the collector decided not to send at all.

    Stop-set suppression (Doubletree): the hop was served from a remembered
    path toward the same destination prefix, so nothing hit the wire *and*
    nothing was charged to the budget — unlike :class:`CacheHit`, which
    replays an answer this session already paid for.  ``reason`` names the
    suppression source (currently only ``"stop-set"``); ``address`` is the
    remembered interface when one exists.
    """

    destination: int
    ttl: int
    phase: Optional[str]
    reason: str
    address: Optional[int] = None


@dataclass(frozen=True, slots=True)
class ProbeBatchSent(SessionEvent):
    """One transport batch dispatched via ``send_many`` (wire probes only).

    The per-probe :class:`ProbeSent` events still fire — this event carries
    the batching shape (how many probes shared one transport round-trip)
    for the ``probe_batches_total`` / ``probe_batch_size`` metrics.
    """

    size: int
    phase: Optional[str]


@dataclass(frozen=True, slots=True)
class HopObserved(SessionEvent):
    """Trace-collection mode classified the answer at one TTL."""

    destination: int
    ttl: int
    kind: str
    address: Optional[int]


@dataclass(frozen=True, slots=True)
class SubnetPositioned(SessionEvent):
    """Algorithm 2 finished for one trace address (successfully or not)."""

    trace_address: int
    positioned: bool
    pivot: Optional[int]
    pivot_distance: Optional[int]
    on_trace_path: Optional[bool]


@dataclass(frozen=True, slots=True)
class HeuristicFired(SessionEvent):
    """One H2–H8 judgement on one candidate address."""

    candidate: int
    rule: str
    verdict: str
    detail: str


@dataclass(frozen=True, slots=True)
class SubnetShrunk(SessionEvent):
    """H1 stop-and-shrink (or the half-utilization rule) cut the growth."""

    pivot: int
    rule: str
    prefix_length: int


@dataclass(frozen=True, slots=True)
class SubnetGrown(SessionEvent):
    """Algorithm 1 finished: one observed subnet, ready for the archive.

    ``phase_probes`` attributes the wire probes spent growing this subnet
    to the algorithm phase that issued them (trace-collection, positioning,
    exploration) — the per-subnet probe accounting the Section 3.6 economy
    auditor checks against the ``7|S| + 7`` bound.  ``candidates_tested``
    counts every address the exploration actually probed, members or not:
    a mostly-silent block legitimately costs more than ``7|size| + 7``
    while staying under the worst case over the candidates touched, so the
    auditor bounds against ``max(size, candidates_tested)``.  Both fields
    are absent (``None``/``0``) on event streams recorded before they
    existed.
    """

    pivot: int
    prefix: str
    size: int
    stop_reason: str
    probes_used: int
    phase_probes: Optional[Dict[str, int]] = None
    candidates_tested: int = 0


@dataclass(frozen=True, slots=True)
class TraceStarted(SessionEvent):
    """A tracenet session toward one destination began."""

    destination: int


@dataclass(frozen=True, slots=True)
class TraceFinished(SessionEvent):
    """A tracenet session ended (reached, looped, or gave up).

    ``cache_hits`` counts the probes this trace answered from the prober's
    response cache instead of the wire (0 on pre-field event streams).
    """

    destination: int
    reached: bool
    hops: int
    probes_sent: int
    cache_hits: int = 0


@dataclass(frozen=True, slots=True)
class OverheadViolation(SessionEvent):
    """The probe-economy auditor caught a subnet exceeding the Section 3.6
    bound: growing it cost more than ``slack * (7|S| + 7)`` wire probes.

    Emitted onto the same bus as every other event, so a recorded event
    stream carries its own economy audit and ``overhead_violations_total``
    reproduces offline.
    """

    pivot: int
    prefix: str
    size: int
    probes_used: int
    upper_bound: int
    slack: float
    phase_probes: Optional[Dict[str, int]] = None


@dataclass(frozen=True, slots=True)
class CheckpointWritten(SessionEvent):
    """The survey runner persisted its archive."""

    path: str
    completed_targets: int
    traces: int


@dataclass(frozen=True, slots=True)
class SurveyProgressed(SessionEvent):
    """Per-target survey progress (drives progress bars and hooks)."""

    total_targets: int
    completed: int
    skipped: int
    reached: int
    probes_sent: int


@dataclass(frozen=True, slots=True)
class TopologyMutated(SessionEvent):
    """The network changed under the collector (netsim.dynamics).

    Emitted by the churn seam at the probe-count epoch where the mutation
    fires, *before* the probe that crossed the epoch boundary is answered.
    The payload derives purely from the mutation schedule — never from the
    apply outcome — so a journal replay (which has no engine to mutate)
    emits the byte-identical stream.
    """

    epoch: int
    sequence: int
    kind: str
    target: str
    detail: Optional[Dict] = None


@dataclass(frozen=True, slots=True)
class TraceInconsistent(SessionEvent):
    """A hop contradicted what this trace already believed.

    Raised by the hop pipeline when a mutation epoch advanced mid-trace and
    the re-probe of a buffered/stop-set-served TTL answered differently
    from the pre-mutation observation — the signal that this trace mixes
    epochs and its result must be marked degraded.
    """

    destination: int
    ttl: int
    expected: Optional[int]
    observed: Optional[int]
    reason: str


@dataclass(frozen=True, slots=True)
class SubnetRetracted(SessionEvent):
    """A previously archived subnet vanished from a radar re-survey."""

    prefix: str
    reason: str


@dataclass(frozen=True, slots=True)
class DegradedResult(SessionEvent):
    """A trace completed but cannot be fully trusted (mixed epochs,
    contradicted hops, or retry exhaustion under loss); ``confidence``
    is the fraction of its observations that survived re-validation."""

    destination: int
    reason: str
    confidence: float


@dataclass(frozen=True, slots=True)
class ProbeRetried(SessionEvent):
    """One retry attempt after an unanswered probe (attempt >= 1)."""

    dst: int
    ttl: int
    attempt: int
    phase: Optional[str]


#: Every concrete event type, by class name — the wire vocabulary.
EVENT_TYPES: Dict[str, Type[SessionEvent]] = {
    cls.__name__: cls
    for cls in (
        ProbeSent, CacheHit, ProbeSuppressed, ProbeBatchSent, HopObserved,
        SubnetPositioned, HeuristicFired, SubnetShrunk, SubnetGrown,
        TraceStarted, TraceFinished, CheckpointWritten, SurveyProgressed,
        OverheadViolation, TopologyMutated, TraceInconsistent,
        SubnetRetracted, DegradedResult, ProbeRetried,
    )
}


def event_to_dict(event: SessionEvent) -> Dict:
    """JSON-ready representation: ``{"event": <class>, ...fields}``."""
    payload = {"event": type(event).__name__}
    payload.update(asdict(event))
    return payload


def event_from_dict(payload: Dict) -> SessionEvent:
    """Inverse of :func:`event_to_dict` (unknown kinds fail loudly)."""
    kind = payload.get("event")
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        raise ValueError(f"unknown session event kind {kind!r}")
    names = {f.name for f in fields(cls)}
    return cls(**{k: v for k, v in payload.items() if k in names})


# -- the bus ------------------------------------------------------------------

Sink = Callable[[SessionEvent], None]


class EventBus:
    """Dispatches events to the attached sinks, in subscription order.

    Truthiness reports whether any sink is attached, so producers can skip
    event construction on the hot path::

        if bus:
            bus.emit(ProbeSent(...))

    Two optional sink attributes refine dispatch beyond that all-or-nothing
    guard:

    * ``interests`` — a collection of event classes the sink needs *full
      payloads* for (absent or None means every event, the legacy
      contract).  The bus precomputes a per-event-type dispatch tuple from
      them, so a :class:`ProgressSink` never sees a :class:`ProbeSent`.
    * ``tally(cls, count)`` — a method counting sinks expose to receive
      type-only tallies for events outside their ``interests``.  The bus
      routes every :meth:`emit` to it automatically; hot producers can ask
      :meth:`wants` first and call :meth:`tally` themselves, skipping event
      construction entirely when nobody needs the payload::

          if bus.wants(ProbeSent):
              bus.emit(ProbeSent(...))
          else:
              bus.tally(ProbeSent)

    With only counter sinks subscribed that path costs two dict probes and
    one integer add per event — the "zero-cost emission" contract the
    instrumentation-overhead bench lane gates on.

    **Failure isolation.**  A raising sink must not abort collection: a
    broken progress renderer (or a full disk under a JSONL sink) is an
    observability failure, not a measurement failure.  :meth:`emit`
    therefore catches sink exceptions, counts the dropped delivery in
    :attr:`sink_errors` (surfaced as ``event_sink_errors_total`` in the
    quarantined backend metrics scope), and keeps dispatching to the
    remaining sinks.  Sinks that *are* control flow — the service worker's
    heartbeat/streaming sinks whose :class:`StaleLeaseError` aborts a
    fenced shard, fault-injection sinks — opt out by setting
    ``propagate_errors = True``.
    """

    def __init__(self) -> None:
        self._sinks: List[Sink] = []
        # type -> (payload sinks, counting sinks tallying this type).
        self._dispatch: Dict[Type[SessionEvent],
                             Tuple[Tuple[Sink, ...], Tuple[Sink, ...]]] = {}
        #: Dropped deliveries by sink name (isolated failures only).
        self.sink_errors: Dict[str, int] = {}
        #: The most recent isolated failure, as ``(sink, "Type: message")``.
        self.last_sink_error: Optional[Tuple[str, str]] = None

    def __bool__(self) -> bool:
        return bool(self._sinks)

    def subscribe(self, sink: Sink) -> Sink:
        """Attach a sink; returns it so callers can unsubscribe later."""
        self._sinks.append(sink)
        self._dispatch.clear()
        return sink

    def unsubscribe(self, sink: Sink) -> None:
        """Detach a sink (no-op when it is not attached)."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass
        else:
            self._dispatch.clear()

    @contextmanager
    def subscribed(self, sink: Sink):
        """Scoped subscription: attach for the ``with`` body only."""
        self.subscribe(sink)
        try:
            yield sink
        finally:
            self.unsubscribe(sink)

    def _build_dispatch(self, cls: Type[SessionEvent]
                        ) -> Tuple[Tuple[Sink, ...], Tuple[Sink, ...]]:
        payload: List[Sink] = []
        tallies: List[Sink] = []
        for sink in self._sinks:
            interests = getattr(sink, "interests", None)
            if interests is None or any(
                    issubclass(cls, wanted) for wanted in interests):
                payload.append(sink)
            elif hasattr(sink, "tally"):
                tallies.append(sink)
        entry = (tuple(payload), tuple(tallies))
        self._dispatch[cls] = entry
        return entry

    def wants(self, cls: Type[SessionEvent]) -> bool:
        """Whether any attached sink needs full ``cls`` payloads.

        False means :meth:`emit` would only tally the type — producers may
        call :meth:`tally` directly and skip constructing the event.
        """
        entry = self._dispatch.get(cls)
        if entry is None:
            entry = self._build_dispatch(cls)
        return bool(entry[0])

    def tally(self, cls: Type[SessionEvent], count: int = 1) -> None:
        """Deliver a type-only count to the counting sinks (no payload)."""
        entry = self._dispatch.get(cls)
        if entry is None:
            entry = self._build_dispatch(cls)
        for sink in entry[1]:
            try:
                sink.tally(cls, count)
            except Exception as exc:
                self._sink_failed(sink, exc)

    def emit(self, event: SessionEvent) -> None:
        cls = event.__class__
        entry = self._dispatch.get(cls)
        if entry is None:
            entry = self._build_dispatch(cls)
        payload, tallies = entry
        for sink in payload:
            try:
                sink(event)
            except Exception as exc:
                self._sink_failed(sink, exc)
        for sink in tallies:
            try:
                sink.tally(cls, 1)
            except Exception as exc:
                self._sink_failed(sink, exc)

    def _sink_failed(self, sink: Sink, exc: Exception) -> None:
        """Isolate (and count) a sink failure — or re-raise for sinks
        that use exceptions as control flow (``propagate_errors``)."""
        if getattr(sink, "propagate_errors", False):
            raise exc
        name = getattr(sink, "__name__", None) or type(sink).__name__
        self.sink_errors[name] = self.sink_errors.get(name, 0) + 1
        self.last_sink_error = (name, f"{type(exc).__name__}: {exc}")

    @property
    def total_sink_errors(self) -> int:
        return sum(self.sink_errors.values())


# -- sinks --------------------------------------------------------------------


class CounterSink:
    """In-memory metrics: events tallied by type (and heuristic rule).

    Declares payload interest only in :class:`HeuristicFired` (the one type
    whose *fields* it reads); every other event reaches it through the
    bus's type-only :meth:`tally` path, so a run instrumented with nothing
    but counter sinks never constructs the hot-path events at all.
    """

    interests = (HeuristicFired,)

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}
        self.rules: Dict[str, int] = {}

    def __call__(self, event: SessionEvent) -> None:
        name = type(event).__name__
        self.counts[name] = self.counts.get(name, 0) + 1
        if isinstance(event, HeuristicFired):
            self.rules[event.rule] = self.rules.get(event.rule, 0) + 1

    def tally(self, cls: Type[SessionEvent], count: int = 1) -> None:
        name = cls.__name__
        self.counts[name] = self.counts.get(name, 0) + count

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def snapshot(self) -> Dict[str, int]:
        """Flat copy for reports: ``{"event:<type>": n, "rule:<H>": n}``."""
        flat = {f"event:{k}": v for k, v in sorted(self.counts.items())}
        flat.update({f"rule:{k}": v for k, v in sorted(self.rules.items())})
        return flat


class CollectingSink:
    """Keeps every event (optionally filtered by type) — made for tests."""

    def __init__(self, *types: Type[SessionEvent]) -> None:
        self.types: Optional[Tuple[Type[SessionEvent], ...]] = types or None
        # Mirror the filter as dispatch-mask interests: the bus then never
        # routes other event types here in the first place.
        self.interests = self.types
        self.events: List[SessionEvent] = []

    def __call__(self, event: SessionEvent) -> None:
        if self.types is None or isinstance(event, self.types):
            self.events.append(event)


class JsonlEventSink:
    """Appends one JSON object per event to a file (or open stream)."""

    def __init__(self, destination: Union[str, IO]) -> None:
        if isinstance(destination, str):
            self._fp: IO = open(destination, "w", encoding="utf-8")
            self._owns = True
        else:
            self._fp = destination
            self._owns = False
        self.written = 0

    def __call__(self, event: SessionEvent) -> None:
        self._fp.write(json.dumps(event_to_dict(event), sort_keys=True))
        self._fp.write("\n")
        self.written += 1

    def close(self) -> None:
        self._fp.flush()
        if self._owns:
            self._fp.close()

    def __enter__(self) -> "JsonlEventSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ProgressSink:
    """Renders :class:`SurveyProgressed` events as a one-line progress bar."""

    interests = (SurveyProgressed,)

    def __init__(self, stream: Optional[IO] = None, width: int = 30) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.width = max(1, width)
        self._rendered = False

    def __call__(self, event: SessionEvent) -> None:
        if not isinstance(event, SurveyProgressed):
            return
        done = event.completed + event.skipped
        total = max(1, event.total_targets)
        filled = int(self.width * min(1.0, done / total))
        bar = "#" * filled + "-" * (self.width - filled)
        self.stream.write(
            f"\r[{bar}] {done}/{event.total_targets} targets "
            f"({event.reached} reached, {event.probes_sent} probes)")
        self.stream.flush()
        self._rendered = True

    def close(self) -> None:
        if self._rendered:
            self.stream.write("\n")
            self.stream.flush()
            self._rendered = False


def replay_events(source: Union[str, IO]) -> List[SessionEvent]:
    """Load a JSONL event log back into typed events (for analysis)."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as fp:
            return [event_from_dict(json.loads(line))
                    for line in fp if line.strip()]
    return [event_from_dict(json.loads(line)) for line in source if line.strip()]
