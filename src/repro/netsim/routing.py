"""Shortest-path routing over the router↔subnet graph.

Routing is per destination *subnet* (routers advertise their connected
prefixes): a packet destined to an address in subnet S is forwarded along a
hop-count shortest path until it reaches a router attached to S, which then
delivers across the LAN.  Equal-cost ties produce ECMP next-hop sets; the
:class:`LoadBalancer` decides which member a given packet takes, modelling
the per-flow and per-packet load-balancing behaviours of Section 3.7.
"""

from __future__ import annotations

import enum
import random
import zlib
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .topology import Topology


@dataclass(frozen=True)
class NextHop:
    """One forwarding choice: the neighbor router and the subnet crossed."""

    router_id: str
    via_subnet_id: str


class LoadBalancingMode(enum.Enum):
    """How a router picks among equal-cost next hops."""

    NONE = "none"            # deterministic: always the first candidate
    PER_FLOW = "per-flow"    # hash of flow identity (Paris-stable)
    PER_PACKET = "per-packet"  # random per packet (the hostile case)


@dataclass(frozen=True)
class FlowKey:
    """The header fields a per-flow balancer hashes."""

    src: int
    dst: int
    protocol: str
    flow_id: int


class LoadBalancer:
    """Per-router ECMP tie-breaking policy.

    Deterministic given its seed: per-flow hashing uses CRC32 over the flow
    key, per-packet splitting uses a seeded PRNG stream.
    """

    def __init__(self, default_mode: LoadBalancingMode = LoadBalancingMode.NONE,
                 seed: int = 0):
        self.default_mode = default_mode
        self._per_router: Dict[str, LoadBalancingMode] = {}
        self._rng = random.Random(seed)

    def set_mode(self, router_id: str, mode: LoadBalancingMode) -> None:
        """Override the balancing mode of one router."""
        self._per_router[router_id] = mode

    def mode_of(self, router_id: str) -> LoadBalancingMode:
        return self._per_router.get(router_id, self.default_mode)

    def choose(self, router_id: str, candidates: List[NextHop],
               flow: FlowKey) -> NextHop:
        """Pick the next hop this packet takes at ``router_id``."""
        if not candidates:
            raise ValueError(f"no next-hop candidates at {router_id}")
        if len(candidates) == 1:
            return candidates[0]
        mode = self.mode_of(router_id)
        if mode == LoadBalancingMode.NONE:
            return candidates[0]
        if mode == LoadBalancingMode.PER_FLOW:
            material = f"{router_id}|{flow.src}|{flow.dst}|{flow.protocol}|{flow.flow_id}"
            digest = zlib.crc32(material.encode("ascii"))
            return candidates[digest % len(candidates)]
        return candidates[self._rng.randrange(len(candidates))]

    def choose_stable(self, router_id: str, candidates: List[NextHop],
                      flow: FlowKey) -> Optional[NextHop]:
        """Like :meth:`choose` but side-effect free: returns the hop this
        flow always takes, or None when the choice is per-packet random
        (in which case no PRNG state is consumed)."""
        if not candidates:
            raise ValueError(f"no next-hop candidates at {router_id}")
        if len(candidates) == 1:
            return candidates[0]
        mode = self.mode_of(router_id)
        if mode == LoadBalancingMode.PER_PACKET:
            return None
        return self.choose(router_id, candidates, flow)


class RoutingTable:
    """All-pairs router→subnet distances and ECMP next-hop sets.

    One BFS per *used* destination subnet over the router adjacency graph:
    distance maps and next-hop sets are both derived lazily and cached, so
    building the table is O(topology) and a worker that only routes toward
    its own shard's targets never pays for the rest of the network.
    """

    def __init__(self, topology: Topology):
        self.topology = topology
        # subnet_id -> {router_id: hop distance to a router attached to subnet}
        self._distance: Dict[str, Dict[str, int]] = {}
        self._next_hops: Dict[Tuple[str, str], List[NextHop]] = {}
        # Bipartite adjacency: large multi-access LANs stay O(interfaces)
        # instead of O(members^2) router-pair edges.
        self._router_subnets: Dict[str, List[str]] = {
            router_id: sorted(set(router.subnet_ids))
            for router_id, router in topology.routers.items()
        }
        self._subnet_routers: Dict[str, List[str]] = {
            subnet_id: sorted(subnet.router_ids)
            for subnet_id, subnet in topology.subnets.items()
        }

    def _distances_to(self, subnet_id: str) -> Dict[str, int]:
        cached = self._distance.get(subnet_id)
        if cached is None:
            cached = self._bfs_from_subnet(subnet_id)
            self._distance[subnet_id] = cached
        return cached

    def _bfs_from_subnet(self, start_subnet_id: str) -> Dict[str, int]:
        distances: Dict[str, int] = {}
        expanded_subnets = {start_subnet_id}
        queue: deque = deque()
        for router_id in self._subnet_routers[start_subnet_id]:
            distances[router_id] = 0
            queue.append(router_id)
        while queue:
            current = queue.popleft()
            for subnet_id in self._router_subnets[current]:
                if subnet_id in expanded_subnets:
                    continue
                expanded_subnets.add(subnet_id)
                for neighbor in self._subnet_routers[subnet_id]:
                    if neighbor not in distances:
                        distances[neighbor] = distances[current] + 1
                        queue.append(neighbor)
        return distances

    def distance(self, router_id: str, subnet_id: str) -> Optional[int]:
        """Hops from ``router_id`` to the nearest router attached to ``subnet_id``.

        0 means the router is itself attached; None means unreachable.
        """
        if subnet_id not in self._subnet_routers:
            raise KeyError(subnet_id)
        return self._distances_to(subnet_id).get(router_id)

    def next_hops(self, router_id: str, subnet_id: str) -> List[NextHop]:
        """The ECMP set at ``router_id`` toward ``subnet_id`` (may be empty)."""
        key = (router_id, subnet_id)
        cached = self._next_hops.get(key)
        if cached is not None:
            return cached
        if subnet_id not in self._subnet_routers:
            raise KeyError(subnet_id)
        distances = self._distances_to(subnet_id)
        own = distances.get(router_id)
        candidates: List[NextHop] = []
        if own is not None and own > 0:
            for via in self._router_subnets[router_id]:
                for neighbor in self._subnet_routers[via]:
                    if neighbor != router_id and distances.get(neighbor) == own - 1:
                        candidates.append(NextHop(router_id=neighbor,
                                                  via_subnet_id=via))
        self._next_hops[key] = candidates
        return candidates

    def egress_interface_toward(self, router_id: str, subnet_id: str) -> Optional[int]:
        """Address of ``router_id``'s interface on its path toward ``subnet_id``.

        This is the address a *shortest-path interface* router stamps on its
        TTL-Exceeded replies when the reply target lives in ``subnet_id``.
        """
        router = self.topology.routers[router_id]
        attached = router.interface_on(subnet_id)
        if attached is not None:
            return attached.address
        hops = self.next_hops(router_id, subnet_id)
        if not hops:
            return None
        via = router.interface_on(hops[0].via_subnet_id)
        return via.address if via is not None else None
