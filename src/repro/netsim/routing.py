"""Shortest-path routing over the router↔subnet graph.

Routing is per destination *subnet* (routers advertise their connected
prefixes): a packet destined to an address in subnet S is forwarded along a
hop-count shortest path until it reaches a router attached to S, which then
delivers across the LAN.  Equal-cost ties produce ECMP next-hop sets; the
:class:`LoadBalancer` decides which member a given packet takes, modelling
the per-flow and per-packet load-balancing behaviours of Section 3.7.
"""

from __future__ import annotations

import enum
import random
import zlib
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .topology import Topology

try:  # optional acceleration; the pure-python path behaves identically
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None


@dataclass(frozen=True)
class NextHop:
    """One forwarding choice: the neighbor router and the subnet crossed."""

    router_id: str
    via_subnet_id: str


class LoadBalancingMode(enum.Enum):
    """How a router picks among equal-cost next hops."""

    NONE = "none"            # deterministic: always the first candidate
    PER_FLOW = "per-flow"    # hash of flow identity (Paris-stable)
    PER_PACKET = "per-packet"  # random per packet (the hostile case)


@dataclass(frozen=True)
class FlowKey:
    """The header fields a per-flow balancer hashes."""

    src: int
    dst: int
    protocol: str
    flow_id: int


class LoadBalancer:
    """Per-router ECMP tie-breaking policy.

    Deterministic given its seed: per-flow hashing uses CRC32 over the flow
    key, per-packet splitting uses a seeded PRNG stream.
    """

    def __init__(self, default_mode: LoadBalancingMode = LoadBalancingMode.NONE,
                 seed: int = 0):
        self.default_mode = default_mode
        self._per_router: Dict[str, LoadBalancingMode] = {}
        self._rng = random.Random(seed)
        # Mutation counter: memoized paths bake in per-flow ECMP choices,
        # so a mid-run mode change must invalidate them (engine watches).
        self.version = 0

    def set_mode(self, router_id: str, mode: LoadBalancingMode) -> None:
        """Override the balancing mode of one router."""
        self._per_router[router_id] = mode
        self.version += 1

    def mode_of(self, router_id: str) -> LoadBalancingMode:
        return self._per_router.get(router_id, self.default_mode)

    def choose(self, router_id: str, candidates: List[NextHop],
               flow: FlowKey) -> NextHop:
        """Pick the next hop this packet takes at ``router_id``."""
        if not candidates:
            raise ValueError(f"no next-hop candidates at {router_id}")
        if len(candidates) == 1:
            return candidates[0]
        mode = self.mode_of(router_id)
        if mode == LoadBalancingMode.NONE:
            return candidates[0]
        if mode == LoadBalancingMode.PER_FLOW:
            material = f"{router_id}|{flow.src}|{flow.dst}|{flow.protocol}|{flow.flow_id}"
            digest = zlib.crc32(material.encode("ascii"))
            return candidates[digest % len(candidates)]
        return candidates[self._rng.randrange(len(candidates))]

    def choose_stable(self, router_id: str, candidates: List[NextHop],
                      flow: FlowKey) -> Optional[NextHop]:
        """Like :meth:`choose` but side-effect free: returns the hop this
        flow always takes, or None when the choice is per-packet random
        (in which case no PRNG state is consumed)."""
        if not candidates:
            raise ValueError(f"no next-hop candidates at {router_id}")
        if len(candidates) == 1:
            return candidates[0]
        mode = self.mode_of(router_id)
        if mode == LoadBalancingMode.PER_PACKET:
            return None
        return self.choose(router_id, candidates, flow)


#: Distance maps retained per table: one BFS result is O(routers), so an
#: unbounded cache over a million-interface topology would dominate peak
#: RSS.  128 destination subnets comfortably covers a survey's working set.
DEFAULT_DISTANCE_CACHE = 128


def _gather(ptr, ind, nodes):
    """Concatenate the CSR adjacency rows of ``nodes`` (vectorized)."""
    starts = ptr[nodes]
    counts = ptr[nodes + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return ind[:0]
    before = _np.cumsum(counts) - counts
    return ind[_np.repeat(starts - before, counts) + _np.arange(total)]


class RoutingTable:
    """All-pairs router→subnet distances and ECMP next-hop sets.

    One BFS per *used* destination subnet over the router adjacency graph:
    distance maps and next-hop sets are both derived lazily and cached, so
    a worker that only routes toward its own shard's targets never pays
    for the rest of the network.

    The graph itself is interned on first use: router and subnet ids are
    mapped to dense integer indices (in sorted-id order, which preserves
    the enumeration order — and therefore the ECMP candidate order — of
    the original string-keyed implementation) and the bipartite adjacency
    is stored as CSR index arrays.  BFS then runs level-synchronously over
    numpy arrays when available, or over plain int lists otherwise, with
    identical results; either way a million-interface topology routes
    without string hashing in the inner loop.  Distance maps are held in
    an LRU bounded by ``distance_cache_size`` (each is O(routers)).
    Mutating the topology (its ``version`` counter) invalidates the graph
    and every derived cache.

    Attributes:
        bfs_runs: BFS executions so far — one per distinct destination
            subnet actually routed toward (modulo LRU evictions).
    """

    def __init__(self, topology: Topology,
                 distance_cache_size: int = DEFAULT_DISTANCE_CACHE):
        self.topology = topology
        self.distance_cache_size = max(1, distance_cache_size)
        self.bfs_runs = 0
        self._graph_version: Optional[int] = None
        self._router_ids: List[str] = []
        self._subnet_ids: List[str] = []
        self._r_index: Dict[str, int] = {}
        self._s_index: Dict[str, int] = {}
        self._r2s = None  # CSR (ptr, ind) tuple, or list-of-lists fallback
        self._s2r = None
        # subnet index -> distance array (-1 unreachable), LRU-bounded.
        self._distance: "OrderedDict[int, object]" = OrderedDict()
        self._next_hops: Dict[Tuple[str, str], List[NextHop]] = {}

    # -- graph interning ---------------------------------------------------

    def _ensure_graph(self) -> None:
        version = getattr(self.topology, "version", -1)
        if self._graph_version == version:
            return
        topology = self.topology
        self._router_ids = sorted(topology.routers)
        self._subnet_ids = sorted(topology.subnets)
        self._r_index = {rid: i for i, rid in enumerate(self._router_ids)}
        self._s_index = {sid: j for j, sid in enumerate(self._subnet_ids)}
        r_index = self._r_index
        edge_r: List[int] = []
        edge_s: List[int] = []
        for j, sid in enumerate(self._subnet_ids):
            for rid in topology.subnets[sid].router_ids:
                edge_r.append(r_index[rid])
                edge_s.append(j)
        if _np is not None:
            self._build_csr(edge_r, edge_s)
        else:
            self._build_lists(edge_r, edge_s)
        self._distance.clear()
        self._next_hops.clear()
        self._graph_version = version

    def _build_csr(self, edge_r: List[int], edge_s: List[int]) -> None:
        count = len(edge_r)
        r = _np.fromiter(edge_r, dtype=_np.int64, count=count)
        s = _np.fromiter(edge_s, dtype=_np.int64, count=count)
        # router -> subnets: edges are generated in ascending subnet-index
        # order, so a stable sort by router keeps each row sorted (matching
        # the old sorted(set(router.subnet_ids)) enumeration).
        order = _np.argsort(r, kind="stable")
        r2s_ptr = _np.zeros(len(self._router_ids) + 1, dtype=_np.int64)
        _np.cumsum(_np.bincount(r, minlength=len(self._router_ids)),
                   out=r2s_ptr[1:])
        # subnet -> routers: rows sorted by router index == sorted ids.
        s_order = _np.lexsort((r, s))
        s2r_ptr = _np.zeros(len(self._subnet_ids) + 1, dtype=_np.int64)
        _np.cumsum(_np.bincount(s, minlength=len(self._subnet_ids)),
                   out=s2r_ptr[1:])
        self._r2s = (r2s_ptr, s[order].astype(_np.int32))
        self._s2r = (s2r_ptr, r[s_order].astype(_np.int32))

    def _build_lists(self, edge_r: List[int], edge_s: List[int]) -> None:
        r2s: List[List[int]] = [[] for _ in self._router_ids]
        s2r: List[List[int]] = [[] for _ in self._subnet_ids]
        for r, s in zip(edge_r, edge_s):
            r2s[r].append(s)  # ascending s already
            s2r[s].append(r)
        for row in s2r:
            row.sort()
        self._r2s = r2s
        self._s2r = s2r

    def _row(self, adjacency, node: int) -> List[int]:
        """One adjacency row as a plain int list (both representations)."""
        if isinstance(adjacency, tuple):
            ptr, ind = adjacency
            return ind[ptr[node]:ptr[node + 1]].tolist()
        return adjacency[node]

    # -- distances ---------------------------------------------------------

    def _distances_to(self, subnet_index: int):
        cached = self._distance.get(subnet_index)
        if cached is not None:
            self._distance.move_to_end(subnet_index)
            return cached
        distances = self._bfs(subnet_index)
        self._distance[subnet_index] = distances
        if len(self._distance) > self.distance_cache_size:
            self._distance.popitem(last=False)
        return distances

    def _bfs(self, start: int):
        """Level-synchronous BFS from every router attached to ``start``.

        Returns per-router distances (-1 = unreachable).  The array and
        list variants visit nodes in different orders but assign identical
        distances: a subnet is always expanded at the minimal distance of
        its attached routers.
        """
        self.bfs_runs += 1
        if isinstance(self._r2s, tuple):
            return self._bfs_arrays(start)
        return self._bfs_lists(start)

    def _bfs_arrays(self, start: int):
        r2s_ptr, r2s_ind = self._r2s
        s2r_ptr, s2r_ind = self._s2r
        distances = _np.full(len(self._router_ids), -1, dtype=_np.int32)
        subnet_seen = _np.zeros(len(self._subnet_ids), dtype=bool)
        subnet_seen[start] = True
        frontier = s2r_ind[s2r_ptr[start]:s2r_ptr[start + 1]]
        distances[frontier] = 0
        depth = 0
        while frontier.size:
            subs = _gather(r2s_ptr, r2s_ind, frontier)
            subs = subs[~subnet_seen[subs]]
            if not subs.size:
                break
            subs = _np.unique(subs)
            subnet_seen[subs] = True
            nbrs = _gather(s2r_ptr, s2r_ind, subs)
            nbrs = nbrs[distances[nbrs] < 0]
            if not nbrs.size:
                break
            frontier = _np.unique(nbrs)
            depth += 1
            distances[frontier] = depth
        return distances

    def _bfs_lists(self, start: int) -> List[int]:
        r2s, s2r = self._r2s, self._s2r
        distances = [-1] * len(self._router_ids)
        subnet_seen = bytearray(len(self._subnet_ids))
        subnet_seen[start] = 1
        queue: deque = deque()
        for router in s2r[start]:
            distances[router] = 0
            queue.append(router)
        while queue:
            current = queue.popleft()
            depth = distances[current] + 1
            for subnet in r2s[current]:
                if subnet_seen[subnet]:
                    continue
                subnet_seen[subnet] = 1
                for neighbor in s2r[subnet]:
                    if distances[neighbor] < 0:
                        distances[neighbor] = depth
                        queue.append(neighbor)
        return distances

    # -- public API --------------------------------------------------------

    def distance(self, router_id: str, subnet_id: str) -> Optional[int]:
        """Hops from ``router_id`` to the nearest router attached to ``subnet_id``.

        0 means the router is itself attached; None means unreachable.
        """
        self._ensure_graph()
        subnet_index = self._s_index.get(subnet_id)
        if subnet_index is None:
            raise KeyError(subnet_id)
        router_index = self._r_index.get(router_id)
        if router_index is None:
            return None
        value = self._distances_to(subnet_index)[router_index]
        return None if value < 0 else int(value)

    def next_hops(self, router_id: str, subnet_id: str) -> List[NextHop]:
        """The ECMP set at ``router_id`` toward ``subnet_id`` (may be empty)."""
        self._ensure_graph()
        key = (router_id, subnet_id)
        cached = self._next_hops.get(key)
        if cached is not None:
            return cached
        subnet_index = self._s_index.get(subnet_id)
        if subnet_index is None:
            raise KeyError(subnet_id)
        distances = self._distances_to(subnet_index)
        candidates: List[NextHop] = []
        router_index = self._r_index.get(router_id)
        if router_index is not None:
            own = int(distances[router_index])
            if own > 0:
                router_ids = self._router_ids
                subnet_ids = self._subnet_ids
                for via in self._row(self._r2s, router_index):
                    via_id = subnet_ids[via]
                    for neighbor in self._row(self._s2r, via):
                        if neighbor != router_index \
                                and distances[neighbor] == own - 1:
                            candidates.append(NextHop(
                                router_id=router_ids[neighbor],
                                via_subnet_id=via_id))
        self._next_hops[key] = candidates
        return candidates

    def egress_interface_toward(self, router_id: str, subnet_id: str) -> Optional[int]:
        """Address of ``router_id``'s interface on its path toward ``subnet_id``.

        This is the address a *shortest-path interface* router stamps on its
        TTL-Exceeded replies when the reply target lives in ``subnet_id``.
        """
        router = self.topology.routers[router_id]
        attached = router.interface_on(subnet_id)
        if attached is not None:
            return attached.address
        hops = self.next_hops(router_id, subnet_id)
        if not hops:
            return None
        via = router.interface_on(hops[0].via_subnet_id)
        return via.address if via is not None else None
