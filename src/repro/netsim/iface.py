"""Interface model.

An interface is the atomic unit of the router-level Internet graph: the
paper identifies a router by the set of interfaces it hosts and a subnet by
the set of interfaces directly connected to it (Section 3).  Every interface
therefore belongs to exactly one router and exactly one subnet.
"""

from __future__ import annotations

from dataclasses import dataclass

from .addressing import format_ip


@dataclass(frozen=True)
class Interface:
    """One (router, subnet, address) binding.

    Attributes:
        address: the interface's IPv4 address as an integer.
        router_id: identifier of the hosting router.
        subnet_id: identifier of the subnet the interface attaches to.
    """

    address: int
    router_id: str
    subnet_id: str

    @property
    def ip_text(self) -> str:
        """Dotted-quad rendering of the interface address."""
        return format_ip(self.address)

    def __str__(self) -> str:
        return f"{self.ip_text}@{self.router_id}"
