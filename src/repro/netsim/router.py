"""Router model and router response configurations.

Section 3.1(iii) of the paper enumerates the five response policies observed
on the Internet: *nil*, *probed*, *incoming*, *shortest-path*, and *default*
interface routers.  Responsive routers normally act as probed-interface
routers for direct probes and as one of the other configurations for
indirect probes (a router cannot be a probed-interface router for an
indirect query — the probe never names one of its addresses).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .iface import Interface


class IndirectConfig(enum.Enum):
    """How a router sources its ICMP TTL-Exceeded replies."""

    NIL = "nil"
    INCOMING = "incoming"
    SHORTEST_PATH = "shortest-path"
    DEFAULT = "default"


class DirectConfig(enum.Enum):
    """How a router answers probes destined to one of its own addresses."""

    NIL = "nil"
    PROBED = "probed"


class IpIdMode(enum.Enum):
    """How a router fills the IP identification field of its responses.

    SHARED — one monotonically increasing counter for the whole router,
    the behaviour Ally-style alias resolution exploits.  RANDOM — a fresh
    random value per packet (modern stacks), which defeats Ally.
    """

    SHARED = "shared"
    RANDOM = "random"


@dataclass
class Router:
    """A router: a named set of interfaces plus its response behaviour.

    Attributes:
        router_id: unique identifier within a topology.
        indirect_config: source-address policy for TTL-Exceeded replies.
        direct_config: reply policy for probes to the router's own addresses.
        default_address: address reported by DEFAULT-configured routers; when
            unset, the numerically lowest interface address is used.
    """

    router_id: str
    indirect_config: IndirectConfig = IndirectConfig.INCOMING
    direct_config: DirectConfig = DirectConfig.PROBED
    default_address: Optional[int] = None
    ip_id_mode: IpIdMode = IpIdMode.SHARED
    _interfaces: Dict[int, Interface] = field(default_factory=dict, repr=False)
    # First interface per subnet, kept in step with _interfaces so
    # interface_on() is a dict probe instead of a scan (it sits on the
    # engine's per-hop forwarding path).
    _by_subnet: Dict[str, Interface] = field(default_factory=dict, repr=False)

    def attach(self, interface: Interface) -> None:
        """Register an interface on this router (one address, one slot)."""
        if interface.router_id != self.router_id:
            raise ValueError(
                f"interface {interface} belongs to {interface.router_id}, "
                f"not {self.router_id}"
            )
        if interface.address in self._interfaces:
            raise ValueError(f"duplicate address on {self.router_id}: {interface}")
        self._interfaces[interface.address] = interface
        self._by_subnet.setdefault(interface.subnet_id, interface)

    def detach(self, address: int) -> Interface:
        """Remove (and return) the interface at ``address`` (KeyError when
        absent).  ``_by_subnet`` holds the *first* interface per subnet, so
        detaching that one promotes the router's next interface on the same
        subnet (insertion order), keeping ``interface_on`` consistent."""
        interface = self._interfaces.pop(address)
        if self._by_subnet.get(interface.subnet_id) is interface:
            del self._by_subnet[interface.subnet_id]
            for other in self._interfaces.values():
                if other.subnet_id == interface.subnet_id:
                    self._by_subnet[interface.subnet_id] = other
                    break
        return interface

    @property
    def interfaces(self) -> List[Interface]:
        """All interfaces hosted by this router."""
        return list(self._interfaces.values())

    @property
    def addresses(self) -> List[int]:
        """All addresses assigned to this router's interfaces."""
        return list(self._interfaces.keys())

    @property
    def subnet_ids(self) -> List[str]:
        """Identifiers of the subnets this router attaches to."""
        return [iface.subnet_id for iface in self._interfaces.values()]

    def owns(self, address: int) -> bool:
        """True when ``address`` is assigned to one of this router's interfaces."""
        return address in self._interfaces

    def interface_for(self, address: int) -> Interface:
        """The interface carrying ``address`` (KeyError when absent)."""
        return self._interfaces[address]

    def interface_on(self, subnet_id: str) -> Optional[Interface]:
        """The router's first interface on ``subnet_id``, or None."""
        return self._by_subnet.get(subnet_id)

    def report_address(self) -> Optional[int]:
        """Address a DEFAULT-configured router stamps on replies."""
        if self.default_address is not None:
            return self.default_address
        if not self._interfaces:
            return None
        return min(self._interfaces.keys())

    def __str__(self) -> str:
        return f"Router({self.router_id}, {len(self._interfaces)} ifaces)"
