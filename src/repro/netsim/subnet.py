"""Subnet model.

A subnet is a LAN segment — point-to-point (/31, /30) or multi-access — that
interconnects the routers attached to it.  Its ground-truth identity is its
CIDR :class:`~repro.netsim.addressing.Prefix`; what tracenet *observes* of
it may be smaller (partial responsiveness) or, on inference error, larger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .addressing import Prefix
from .iface import Interface


@dataclass
class Subnet:
    """A LAN segment with its CIDR block and attached interfaces.

    Attributes:
        subnet_id: unique identifier within a topology.
        prefix: the ground-truth CIDR block.
    """

    subnet_id: str
    prefix: Prefix
    _interfaces: Dict[int, Interface] = field(default_factory=dict, repr=False)

    def attach(self, interface: Interface) -> None:
        """Register an interface on this subnet, validating its address."""
        if interface.subnet_id != self.subnet_id:
            raise ValueError(
                f"interface {interface} belongs to {interface.subnet_id}, "
                f"not {self.subnet_id}"
            )
        if interface.address not in self.prefix:
            raise ValueError(f"{interface} outside subnet block {self.prefix}")
        if self.prefix.length < 31 and interface.address in self.prefix.boundary_addresses():
            raise ValueError(f"{interface} uses a boundary address of {self.prefix}")
        if interface.address in self._interfaces:
            raise ValueError(f"duplicate address on {self.subnet_id}: {interface}")
        self._interfaces[interface.address] = interface

    def detach(self, address: int) -> Interface:
        """Remove (and return) the interface at ``address`` (KeyError when
        absent) — the link-flap / renumbering primitive."""
        return self._interfaces.pop(address)

    @property
    def interfaces(self) -> List[Interface]:
        """All interfaces attached to this subnet."""
        return list(self._interfaces.values())

    @property
    def addresses(self) -> List[int]:
        """All assigned addresses on this subnet."""
        return list(self._interfaces.keys())

    @property
    def router_ids(self) -> List[str]:
        """Identifiers of the routers attached to this subnet (deduplicated,
        first-attachment order).  ``dict.fromkeys`` keeps a 4000-member LAN
        at O(interfaces) instead of the quadratic membership scan."""
        return list(dict.fromkeys(
            iface.router_id for iface in self._interfaces.values()))

    @property
    def is_point_to_point(self) -> bool:
        """True for /31 and /30 blocks — the paper's point-to-point links."""
        return self.prefix.length >= 30

    @property
    def utilization(self) -> float:
        """Fraction of the block's total addresses that are assigned."""
        return len(self._interfaces) / self.prefix.size

    def owns(self, address: int) -> bool:
        """True when ``address`` is assigned on this subnet."""
        return address in self._interfaces

    def interface_for(self, address: int) -> Interface:
        """The interface carrying ``address`` (KeyError when absent)."""
        return self._interfaces[address]

    def __str__(self) -> str:
        return f"Subnet({self.subnet_id}, {self.prefix}, {len(self._interfaces)} ifaces)"
