"""Fluent topology construction helpers.

Hand-building a :class:`~repro.netsim.topology.Topology` interface by
interface is verbose; the builder offers the vocabulary the paper uses —
point-to-point links and multi-access LANs between named routers — plus a
CIDR block allocator for the synthetic topology generators.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Union

from .addressing import AddressError, Prefix, ip
from .router import DirectConfig, IndirectConfig, Router
from .subnet import Subnet
from .topology import Host, Topology, TopologyError


class PrefixAllocator:
    """Carves non-overlapping CIDR blocks out of a base block, in order.

    >>> alloc = PrefixAllocator("10.0.0.0/8")
    >>> str(alloc.allocate(30))
    '10.0.0.0/30'
    >>> str(alloc.allocate(29))
    '10.0.0.8/29'
    """

    def __init__(self, base: Union[str, Prefix] = "10.0.0.0/8"):
        self.base = Prefix.parse(base) if isinstance(base, str) else base
        self._cursor = self.base.network

    def allocate(self, length: int) -> Prefix:
        """Return the next free /length block inside the base block."""
        if length < self.base.length:
            raise AddressError(
                f"cannot allocate /{length} out of {self.base}"
            )
        size = 1 << (32 - length)
        aligned = (self._cursor + size - 1) & ~(size - 1)
        block = Prefix(aligned, length)
        if block.broadcast > self.base.broadcast:
            raise AddressError(f"allocator for {self.base} exhausted")
        self._cursor = aligned + size
        return block

    @property
    def remaining(self) -> int:
        """Addresses not yet handed out."""
        return self.base.broadcast - self._cursor + 1


class TopologyBuilder:
    """Builds a validated topology from links, LANs and hosts."""

    def __init__(self, name: str = "topology",
                 allocator: Optional[PrefixAllocator] = None):
        self._topology = Topology(name)
        self.allocator = allocator if allocator is not None else PrefixAllocator()
        self._subnet_counter = 0
        self._host_counter = 0

    @classmethod
    def wrap(cls, topology: Topology,
             allocator: Optional[PrefixAllocator] = None) -> "TopologyBuilder":
        """A builder extending an existing topology (e.g. adding vantages)."""
        instance = cls.__new__(cls)
        instance._topology = topology
        instance.allocator = allocator if allocator is not None else PrefixAllocator()
        instance._subnet_counter = len(topology.subnets)
        instance._host_counter = len(topology.hosts)
        return instance

    # -- routers -----------------------------------------------------------

    def router(self, router_id: str,
               indirect_config: IndirectConfig = IndirectConfig.INCOMING,
               direct_config: DirectConfig = DirectConfig.PROBED,
               default_address: Optional[int] = None) -> Router:
        """Create (or return an existing) router."""
        existing = self._topology.routers.get(router_id)
        if existing is not None:
            return existing
        return self._topology.add_router(Router(
            router_id=router_id,
            indirect_config=indirect_config,
            direct_config=direct_config,
            default_address=default_address,
        ))

    def routers(self, router_ids: Iterable[str]) -> List[Router]:
        """Create several routers with default configurations."""
        return [self.router(router_id) for router_id in router_ids]

    # -- subnets -----------------------------------------------------------

    def _next_subnet_id(self) -> str:
        while True:
            self._subnet_counter += 1
            candidate = f"s{self._subnet_counter}"
            if candidate not in self._topology.subnets:
                return candidate

    def subnet(self, prefix: Union[str, Prefix],
               subnet_id: Optional[str] = None) -> Subnet:
        """Register an empty subnet with an explicit block."""
        block = Prefix.parse(prefix) if isinstance(prefix, str) else prefix
        return self._topology.add_subnet(Subnet(
            subnet_id=subnet_id if subnet_id is not None else self._next_subnet_id(),
            prefix=block,
        ))

    def attach(self, router_id: str, subnet_id: str, address) -> None:
        """Put an interface of ``router_id`` on ``subnet_id`` at ``address``."""
        self.router(router_id)
        self._topology.connect(router_id, subnet_id, ip(address))

    def link(self, a: str, b: str,
             prefix: Optional[Union[str, Prefix]] = None,
             length: int = 30, subnet_id: Optional[str] = None) -> Subnet:
        """Point-to-point link between two routers (/31 or /30).

        When ``prefix`` is omitted a fresh /``length`` block is allocated.
        """
        if prefix is None:
            block = self.allocator.allocate(length)
        else:
            block = Prefix.parse(prefix) if isinstance(prefix, str) else prefix
        if block.length < 30:
            raise TopologyError(f"{block} is not a point-to-point block")
        subnet = self.subnet(block, subnet_id)
        addresses = list(block.host_addresses())
        self.attach(a, subnet.subnet_id, addresses[0])
        self.attach(b, subnet.subnet_id, addresses[1])
        return subnet

    def lan(self, members: Union[Sequence[str], Dict[str, object]],
            prefix: Optional[Union[str, Prefix]] = None,
            length: int = 29, subnet_id: Optional[str] = None) -> Subnet:
        """Multi-access LAN joining several routers.

        ``members`` is either a sequence of router ids (addresses assigned
        in order from the block's host range) or a mapping
        ``{router_id: address}``.
        """
        if prefix is None:
            block = self.allocator.allocate(length)
        else:
            block = Prefix.parse(prefix) if isinstance(prefix, str) else prefix
        subnet = self.subnet(block, subnet_id)
        if isinstance(members, dict):
            assignments = [(router_id, ip(addr)) for router_id, addr in members.items()]
        else:
            members = list(members)
            if len(members) > block.host_capacity:
                raise TopologyError(
                    f"{len(members)} members exceed {block} host capacity "
                    f"({block.host_capacity})"
                )
            hosts = block.host_addresses()
            assignments = [(router_id, next(hosts)) for router_id in members]
        for router_id, address in assignments:
            self.attach(router_id, subnet.subnet_id, address)
        return subnet

    # -- hosts ---------------------------------------------------------------

    def host(self, host_id: str, subnet_id: str, address,
             gateway_router_id: Optional[str] = None) -> Host:
        """Attach a host to an existing subnet."""
        return self._topology.add_host(host_id, subnet_id, ip(address),
                                       gateway_router_id)

    def edge_host(self, host_id: str, gateway_router_id: str,
                  prefix: Optional[Union[str, Prefix]] = None,
                  length: int = 30) -> Host:
        """Hang a stub subnet off a router and put a host on it.

        This models a vantage point: a machine one hop behind its gateway.
        """
        if prefix is None:
            block = self.allocator.allocate(length)
        else:
            block = Prefix.parse(prefix) if isinstance(prefix, str) else prefix
        subnet = self.subnet(block)
        addresses = list(block.host_addresses())
        self.attach(gateway_router_id, subnet.subnet_id, addresses[0])
        return self.host(host_id, subnet.subnet_id, addresses[1],
                         gateway_router_id)

    # -- finish ---------------------------------------------------------------

    @property
    def topology(self) -> Topology:
        """The topology under construction (not yet validated)."""
        return self._topology

    def build(self, validate: bool = True) -> Topology:
        """Validate and return the finished topology."""
        if validate:
            self._topology.validate()
        return self._topology
