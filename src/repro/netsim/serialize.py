"""Topology and policy (de)serialization.

Lets ground-truth networks travel: a scenario can be defined in JSON,
version-controlled next to an experiment, and reloaded bit-identically —
including router response configurations, IP-ID behaviour, and the
responsiveness policy.  Rate-limiter *configuration* is serialized (not
bucket state; a reloaded policy starts with full buckets).
"""

from __future__ import annotations

import json
from typing import Dict, IO, Union

from .addressing import format_ip, parse_ip
from .packet import Protocol
from .responsiveness import ResponsePolicy
from .router import DirectConfig, IndirectConfig, IpIdMode, Router
from .subnet import Subnet
from .topology import Topology

from .addressing import Prefix

FORMAT_VERSION = 1


# -- topology -----------------------------------------------------------------


def topology_to_dict(topology: Topology) -> Dict:
    """JSON-ready description of a topology (structure + router configs)."""
    return {
        "format_version": FORMAT_VERSION,
        "name": topology.name,
        "routers": [
            {
                "id": router.router_id,
                "indirect_config": router.indirect_config.value,
                "direct_config": router.direct_config.value,
                "ip_id_mode": router.ip_id_mode.value,
                "default_address": (format_ip(router.default_address)
                                    if router.default_address is not None
                                    else None),
            }
            for router in sorted(topology.routers.values(),
                                 key=lambda r: r.router_id)
        ],
        "subnets": [
            {"id": subnet.subnet_id, "prefix": str(subnet.prefix)}
            for subnet in sorted(topology.subnets.values(),
                                 key=lambda s: s.prefix.network)
        ],
        "interfaces": [
            {
                "router": iface.router_id,
                "subnet": iface.subnet_id,
                "address": format_ip(iface.address),
            }
            for address in sorted(topology.all_interface_addresses)
            for iface in [topology.interface_at(address)]
        ],
        "hosts": [
            {
                "id": host.host_id,
                "subnet": host.subnet_id,
                "address": host.ip_text,
                "gateway": host.gateway_router_id,
            }
            for host in sorted(topology.hosts.values(),
                               key=lambda h: h.host_id)
        ],
    }


def topology_from_dict(payload: Dict) -> Topology:
    """Rebuild a topology from :func:`topology_to_dict` output."""
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported topology format version: {version}")
    topology = Topology(payload.get("name", "topology"))
    for entry in payload.get("routers", []):
        default = entry.get("default_address")
        topology.add_router(Router(
            router_id=entry["id"],
            indirect_config=IndirectConfig(entry.get("indirect_config",
                                                     "incoming")),
            direct_config=DirectConfig(entry.get("direct_config", "probed")),
            ip_id_mode=IpIdMode(entry.get("ip_id_mode", "shared")),
            default_address=parse_ip(default) if default is not None else None,
        ))
    for entry in payload.get("subnets", []):
        topology.add_subnet(Subnet(subnet_id=entry["id"],
                                   prefix=Prefix.parse(entry["prefix"])))
    for entry in payload.get("interfaces", []):
        topology.connect(entry["router"], entry["subnet"],
                         parse_ip(entry["address"]))
    for entry in payload.get("hosts", []):
        topology.add_host(entry["id"], entry["subnet"],
                          parse_ip(entry["address"]),
                          gateway_router_id=entry.get("gateway"))
    return topology


def save_topology(destination: Union[str, IO], topology: Topology) -> None:
    """Write a topology as JSON to a path or file object."""
    payload = topology_to_dict(topology)
    if isinstance(destination, str):
        with open(destination, "w") as handle:
            json.dump(payload, handle, indent=1)
    else:
        json.dump(payload, destination, indent=1)


def load_topology(source: Union[str, IO]) -> Topology:
    """Read a topology from a path or file object and validate it."""
    if isinstance(source, str):
        with open(source) as handle:
            payload = json.load(handle)
    else:
        payload = json.load(source)
    topology = topology_from_dict(payload)
    topology.validate()
    return topology


# -- response policy ---------------------------------------------------------------


def policy_to_dict(policy: ResponsePolicy) -> Dict:
    """JSON-ready description of a policy's configuration."""
    return {
        "format_version": FORMAT_VERSION,
        "firewalled_subnets": sorted(policy.firewalled_subnet_ids),
        "silent_interfaces": sorted(
            format_ip(a) for a in policy.silent_interface_addresses),
        "silent_routers": sorted(policy._silent_routers),
        "protocol_refusals": sorted(
            [router_id, protocol.value]
            for router_id, protocol in policy._protocol_refusals
        ),
        "rate_limiters": {
            router_id: {"capacity": bucket.capacity,
                        "refill_per_tick": bucket.refill_per_tick}
            for router_id, bucket in sorted(policy._rate_limiters.items())
        },
    }


def policy_from_dict(payload: Dict, seed: int = 0) -> ResponsePolicy:
    """Rebuild a policy configuration (buckets start full)."""
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported policy format version: {version}")
    policy = ResponsePolicy(seed=seed)
    policy.firewall_subnets(payload.get("firewalled_subnets", []))
    policy.silence_interfaces(parse_ip(a)
                              for a in payload.get("silent_interfaces", []))
    for router_id in payload.get("silent_routers", []):
        policy.silence_router(router_id)
    for router_id, protocol in payload.get("protocol_refusals", []):
        policy.refuse_protocol(router_id, Protocol(protocol))
    for router_id, config in payload.get("rate_limiters", {}).items():
        policy.rate_limit_router(router_id, capacity=config["capacity"],
                                 refill_per_tick=config["refill_per_tick"])
    return policy


def save_scenario(destination: str, topology: Topology,
                  policy: ResponsePolicy) -> None:
    """Write topology + policy as one scenario document."""
    payload = {
        "format_version": FORMAT_VERSION,
        "topology": topology_to_dict(topology),
        "policy": policy_to_dict(policy),
    }
    with open(destination, "w") as handle:
        json.dump(payload, handle, indent=1)


def load_scenario(source: str, seed: int = 0):
    """Read a scenario document; returns (topology, policy)."""
    with open(source) as handle:
        payload = json.load(handle)
    topology = topology_from_dict(payload["topology"])
    topology.validate()
    policy = policy_from_dict(payload["policy"], seed=seed)
    return topology, policy
