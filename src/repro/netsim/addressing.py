"""IPv4 addressing arithmetic used throughout the simulator and tracenet.

Addresses are plain ``int`` values in ``[0, 2**32)`` everywhere in the hot
paths; this module provides the conversions and the CIDR/subnet arithmetic
the paper relies on (Section 3.2: hierarchical addressing, mate-31/mate-30
adjacency, boundary addresses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

MAX_IPV4 = 2**32 - 1
ADDRESS_BITS = 32


class AddressError(ValueError):
    """Raised for malformed IPv4 addresses or prefixes."""


def parse_ip(text: str) -> int:
    """Parse dotted-quad notation into an integer address.

    >>> parse_ip("10.0.0.1")
    167772161
    """
    parts = text.strip().split(".")
    if len(parts) != 4:
        raise AddressError(f"not a dotted quad: {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise AddressError(f"non-numeric octet in {text!r}")
        octet = int(part)
        if octet > 255:
            raise AddressError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_ip(addr: int) -> str:
    """Format an integer address as dotted-quad notation.

    >>> format_ip(167772161)
    '10.0.0.1'
    """
    if not 0 <= addr <= MAX_IPV4:
        raise AddressError(f"address out of range: {addr}")
    return ".".join(str((addr >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def ip(value) -> int:
    """Coerce a dotted quad or integer into an integer address."""
    if isinstance(value, int):
        if not 0 <= value <= MAX_IPV4:
            raise AddressError(f"address out of range: {value}")
        return value
    if isinstance(value, str):
        return parse_ip(value)
    raise AddressError(f"cannot interpret {value!r} as an IPv4 address")


def mask_for(prefix_len: int) -> int:
    """Network mask (as an integer) for a prefix length."""
    if not 0 <= prefix_len <= ADDRESS_BITS:
        raise AddressError(f"prefix length out of range: {prefix_len}")
    if prefix_len == 0:
        return 0
    return (MAX_IPV4 << (ADDRESS_BITS - prefix_len)) & MAX_IPV4


def network_of(addr: int, prefix_len: int) -> int:
    """The network (lowest) address of ``addr``'s /prefix_len block."""
    return addr & mask_for(prefix_len)


def broadcast_of(addr: int, prefix_len: int) -> int:
    """The broadcast (highest) address of ``addr``'s /prefix_len block."""
    return network_of(addr, prefix_len) | (MAX_IPV4 >> prefix_len if prefix_len else MAX_IPV4)


def mate31(addr: int) -> int:
    """The /31 mate of an address: the other address in its /31 block.

    Two addresses sharing a 31-bit prefix are "mate-31" of each other
    (paper Section 3.2(i)).
    """
    return addr ^ 0b1


def mate30(addr: int) -> int:
    """The /30 mate of an address.

    The paper uses the /30 mate as a fallback when the /31 mate is not in
    use.  Within a /30 point-to-point allocation the two *usable* host
    addresses are ``network+1`` and ``network+2``; the mate-30 of each is
    the other.  For the boundary addresses of the /30 we return the other
    boundary so that the function is a self-inverse involution on every
    /30 block.
    """
    return addr ^ 0b11


def same_prefix(a: int, b: int, prefix_len: int) -> bool:
    """True when two addresses share a common ``prefix_len``-bit prefix."""
    return network_of(a, prefix_len) == network_of(b, prefix_len)


def common_prefix_length(a: int, b: int) -> int:
    """Length of the longest common prefix of two addresses (0..32)."""
    diff = a ^ b
    if diff == 0:
        return ADDRESS_BITS
    return ADDRESS_BITS - diff.bit_length()


@dataclass(frozen=True, order=True)
class Prefix:
    """An IPv4 CIDR block: a network address plus a prefix length.

    ``Prefix`` is the unit the paper reasons about: a subnet S with a /p
    prefix is written ``Sp``.  Instances are normalized (the stored network
    address always has its host bits zeroed) and hashable, so they can be
    used as ground-truth identifiers and dictionary keys.
    """

    network: int
    length: int

    def __post_init__(self):
        if not 0 <= self.length <= ADDRESS_BITS:
            raise AddressError(f"prefix length out of range: {self.length}")
        normalized = network_of(self.network, self.length)
        if normalized != self.network:
            object.__setattr__(self, "network", normalized)

    # -- constructors ------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"a.b.c.d/len"`` notation.

        >>> Prefix.parse("10.0.0.0/30")
        Prefix('10.0.0.0/30')
        """
        try:
            addr_text, len_text = text.strip().split("/")
        except ValueError:
            raise AddressError(f"not CIDR notation: {text!r}") from None
        return cls(parse_ip(addr_text), int(len_text))

    @classmethod
    def containing(cls, addr: int, length: int) -> "Prefix":
        """The /length block that contains ``addr``."""
        return cls(network_of(addr, length), length)

    # -- block arithmetic --------------------------------------------------

    @property
    def broadcast(self) -> int:
        """Highest address in the block."""
        return broadcast_of(self.network, self.length)

    @property
    def size(self) -> int:
        """Total number of addresses in the block (2^(32-length))."""
        return 1 << (ADDRESS_BITS - self.length)

    @property
    def host_capacity(self) -> int:
        """Number of assignable host addresses.

        /31 and /32 blocks have no reserved boundary addresses (RFC 3021);
        larger blocks reserve the network and broadcast addresses.
        """
        if self.length >= 31:
            return self.size
        return self.size - 2

    def __contains__(self, addr) -> bool:
        return same_prefix(ip(addr), self.network, self.length)

    def contains_prefix(self, other: "Prefix") -> bool:
        """True when ``other`` is equal to or nested inside this block."""
        return other.length >= self.length and other.network in self

    def overlaps(self, other: "Prefix") -> bool:
        """True when the two blocks share any address."""
        return self.contains_prefix(other) or other.contains_prefix(self)

    def addresses(self) -> Iterator[int]:
        """Iterate every address in the block, lowest first."""
        return iter(range(self.network, self.network + self.size))

    def host_addresses(self) -> Iterator[int]:
        """Iterate assignable host addresses (excludes boundaries for /30 and shorter)."""
        if self.length >= 31:
            return self.addresses()
        return iter(range(self.network + 1, self.broadcast))

    def boundary_addresses(self) -> List[int]:
        """Network and broadcast addresses; empty for /31 and /32 (RFC 3021)."""
        if self.length >= 31:
            return []
        return [self.network, self.broadcast]

    def parent(self) -> "Prefix":
        """The enclosing block one prefix level up (e.g. /30 -> /29)."""
        if self.length == 0:
            raise AddressError("/0 has no parent")
        return Prefix.containing(self.network, self.length - 1)

    def halves(self) -> List["Prefix"]:
        """Split into the two /``length+1`` children (H9 uses this)."""
        if self.length >= ADDRESS_BITS:
            raise AddressError("/32 cannot be split")
        child_len = self.length + 1
        sibling = self.network | (1 << (ADDRESS_BITS - child_len))
        return [Prefix(self.network, child_len), Prefix(sibling, child_len)]

    def grow(self) -> "Prefix":
        """Alias of :meth:`parent` named for the exploration loop's intent."""
        return self.parent()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Prefix('{self}')"

    def __str__(self) -> str:
        return f"{format_ip(self.network)}/{self.length}"


def enclosing_prefix(addresses, max_length: int = ADDRESS_BITS) -> Optional[Prefix]:
    """The smallest CIDR block covering every address in ``addresses``.

    Returns ``None`` for an empty collection.  Used by the evaluation layer
    to compare collected interface sets against ground-truth blocks.
    """
    addrs = [ip(a) for a in addresses]
    if not addrs:
        return None
    lo, hi = min(addrs), max(addrs)
    length = min(common_prefix_length(lo, hi), max_length)
    return Prefix.containing(lo, length)
