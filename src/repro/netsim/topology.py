"""The router-level topology graph.

A :class:`Topology` is the bipartite router↔subnet graph of Section 3: every
interface binds one router to one subnet.  Vantage points are modelled as
:class:`Host` entries — an address on some subnet plus the gateway router
that forwards for it.  The topology is pure structure; forwarding semantics
live in :mod:`repro.netsim.engine` and path computation in
:mod:`repro.netsim.routing`.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from .addressing import Prefix, format_ip
from .iface import Interface
from .router import Router
from .subnet import Subnet


class TopologyError(ValueError):
    """Raised for structurally invalid topologies."""


@dataclass(frozen=True)
class Host:
    """An end host (vantage point or probe target) attached to a subnet."""

    host_id: str
    address: int
    subnet_id: str
    gateway_router_id: str

    @property
    def ip_text(self) -> str:
        return format_ip(self.address)


class Topology:
    """Routers, subnets, interfaces and hosts, with fast address lookup."""

    def __init__(self, name: str = "topology"):
        self.name = name
        self.routers: Dict[str, Router] = {}
        self.subnets: Dict[str, Subnet] = {}
        self.hosts: Dict[str, Host] = {}
        self._iface_by_address: Dict[int, Interface] = {}
        self._host_by_address: Dict[int, Host] = {}
        # Sorted (network, broadcast, subnet_id) interval index, maintained
        # incrementally: overlap checks and block lookups are O(log n), so
        # registering n subnets costs O(n log n) instead of the O(n^2)
        # all-pairs scan a million-interface build cannot afford.
        self._blocks: List = []
        # Structural mutation counter: bumped whenever the router↔subnet
        # graph changes, so derived caches (routing tables) can notice.
        self.version = 0

    # -- construction --------------------------------------------------

    def add_router(self, router: Router) -> Router:
        """Register a router (id must be fresh)."""
        if router.router_id in self.routers:
            raise TopologyError(f"duplicate router id {router.router_id}")
        self.routers[router.router_id] = router
        self.version += 1
        return router

    def add_subnet(self, subnet: Subnet) -> Subnet:
        """Register a subnet; its block must not overlap an existing one."""
        if subnet.subnet_id in self.subnets:
            raise TopologyError(f"duplicate subnet id {subnet.subnet_id}")
        # CIDR blocks either nest or are disjoint, so interval intersection
        # is exactly prefix overlap — checking the sorted neighbours covers
        # every existing block without an O(n) scan.
        entry = (subnet.prefix.network, subnet.prefix.broadcast,
                 subnet.subnet_id)
        position = bisect.bisect_left(self._blocks, entry)
        for neighbor in (position - 1, position):
            if 0 <= neighbor < len(self._blocks):
                network, broadcast, other_id = self._blocks[neighbor]
                if network <= entry[1] and entry[0] <= broadcast:
                    other = self.subnets[other_id]
                    raise TopologyError(
                        f"subnet {subnet.subnet_id} block {subnet.prefix} "
                        f"overlaps {other.subnet_id} block {other.prefix}"
                    )
        self._blocks.insert(position, entry)
        self.subnets[subnet.subnet_id] = subnet
        self.version += 1
        return subnet

    def connect(self, router_id: str, subnet_id: str, address: int) -> Interface:
        """Create an interface binding ``router_id`` to ``subnet_id`` at ``address``."""
        if router_id not in self.routers:
            raise TopologyError(f"unknown router {router_id}")
        if subnet_id not in self.subnets:
            raise TopologyError(f"unknown subnet {subnet_id}")
        if address in self._iface_by_address or address in self._host_by_address:
            raise TopologyError(f"address {format_ip(address)} already in use")
        interface = Interface(address=address, router_id=router_id, subnet_id=subnet_id)
        self.subnets[subnet_id].attach(interface)
        self.routers[router_id].attach(interface)
        self._iface_by_address[address] = interface
        self.version += 1
        return interface

    def add_host(self, host_id: str, subnet_id: str, address: int,
                 gateway_router_id: Optional[str] = None) -> Host:
        """Attach an end host to ``subnet_id``.

        When ``gateway_router_id`` is omitted the first router on the subnet
        serves as gateway.
        """
        if host_id in self.hosts:
            raise TopologyError(f"duplicate host id {host_id}")
        if subnet_id not in self.subnets:
            raise TopologyError(f"unknown subnet {subnet_id}")
        subnet = self.subnets[subnet_id]
        if address not in subnet.prefix:
            raise TopologyError(
                f"host address {format_ip(address)} outside {subnet.prefix}"
            )
        if address in self._iface_by_address or address in self._host_by_address:
            raise TopologyError(f"address {format_ip(address)} already in use")
        if gateway_router_id is None:
            router_ids = subnet.router_ids
            if not router_ids:
                raise TopologyError(f"subnet {subnet_id} has no routers to gateway through")
            gateway_router_id = router_ids[0]
        gateway = self.routers.get(gateway_router_id)
        if gateway is None or gateway.interface_on(subnet_id) is None:
            raise TopologyError(
                f"gateway {gateway_router_id} is not attached to {subnet_id}"
            )
        host = Host(host_id=host_id, address=address, subnet_id=subnet_id,
                    gateway_router_id=gateway_router_id)
        self.hosts[host_id] = host
        self._host_by_address[address] = host
        self.version += 1
        return host

    # -- mutation (netsim.dynamics primitives) -------------------------

    def disconnect(self, address: int) -> Interface:
        """Remove the interface at ``address`` from its router and subnet.

        The inverse of :meth:`connect` — the link-flap / renumbering
        primitive.  Returns the removed interface so a flap can restore
        the identical binding later.  Hosts are never disconnected.
        """
        interface = self._iface_by_address.pop(address, None)
        if interface is None:
            raise TopologyError(
                f"no interface at {format_ip(address)} to disconnect")
        self.subnets[interface.subnet_id].detach(address)
        self.routers[interface.router_id].detach(address)
        self.version += 1
        return interface

    def remove_subnet(self, subnet_id: str) -> Subnet:
        """Unregister an *empty* subnet (no interfaces, no hosts).

        Disconnect every interface first; a subnet with attached hosts
        cannot be removed (vantage points must survive churn).
        """
        subnet = self.subnets.get(subnet_id)
        if subnet is None:
            raise TopologyError(f"unknown subnet {subnet_id}")
        if subnet.interfaces:
            raise TopologyError(
                f"subnet {subnet_id} still has interfaces attached")
        if any(host.subnet_id == subnet_id for host in self.hosts.values()):
            raise TopologyError(f"subnet {subnet_id} still hosts end hosts")
        entry = (subnet.prefix.network, subnet.prefix.broadcast, subnet_id)
        position = bisect.bisect_left(self._blocks, entry)
        if position < len(self._blocks) and self._blocks[position] == entry:
            del self._blocks[position]
        del self.subnets[subnet_id]
        self.version += 1
        return subnet

    # -- lookups --------------------------------------------------------

    def interface_at(self, address: int) -> Optional[Interface]:
        """The interface assigned ``address``, or None."""
        return self._iface_by_address.get(address)

    def host_at(self, address: int) -> Optional[Host]:
        """The host assigned ``address``, or None."""
        return self._host_by_address.get(address)

    def subnet_containing(self, address: int) -> Optional[Subnet]:
        """The subnet whose block contains ``address``, or None."""
        iface = self._iface_by_address.get(address)
        if iface is not None:
            return self.subnets[iface.subnet_id]
        host = self._host_by_address.get(address)
        if host is not None:
            return self.subnets[host.subnet_id]
        position = bisect.bisect_right(self._blocks, (address, 2**32, "")) - 1
        if position >= 0:
            network, broadcast, subnet_id = self._blocks[position]
            if network <= address <= broadcast:
                return self.subnets[subnet_id]
        return None

    def router_hosting(self, address: int) -> Optional[Router]:
        """The router owning the interface at ``address``, or None."""
        iface = self._iface_by_address.get(address)
        if iface is None:
            return None
        return self.routers[iface.router_id]

    def neighbors(self, router_id: str) -> List[str]:
        """Router ids one subnet away from ``router_id`` (no duplicates)."""
        seen: Dict[str, None] = {}
        for subnet_id in self.routers[router_id].subnet_ids:
            for other_id in self.subnets[subnet_id].router_ids:
                if other_id != router_id:
                    seen.setdefault(other_id)
        return list(seen)

    @property
    def all_interface_addresses(self) -> List[int]:
        """Every assigned interface address in the topology."""
        return list(self._iface_by_address.keys())

    def ground_truth_prefixes(self) -> List[Prefix]:
        """Every subnet's true CIDR block (the evaluation baseline)."""
        return [subnet.prefix for subnet in self.subnets.values()]

    # -- validation -------------------------------------------------------

    def validate(self) -> None:
        """Check the structural invariants the engine relies on.

        Raises TopologyError on: routers or subnets with no interfaces,
        disconnected router graphs, or subnets whose attached routers do not
        form a single LAN broadcast domain (always true by construction, but
        revalidated after manual edits).
        """
        for router in self.routers.values():
            if not router.interfaces:
                raise TopologyError(f"router {router.router_id} has no interfaces")
        for subnet in self.subnets.values():
            if not subnet.interfaces:
                raise TopologyError(f"subnet {subnet.subnet_id} has no interfaces")
        if self.routers and not self._is_connected():
            raise TopologyError(f"topology {self.name} is not connected")

    def _is_connected(self) -> bool:
        # Bipartite flood fill: large LANs cost O(interfaces), not O(members^2).
        start = next(iter(self.routers))
        seen_routers = {start}
        seen_subnets = set()
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for subnet_id in self.routers[current].subnet_ids:
                if subnet_id in seen_subnets:
                    continue
                seen_subnets.add(subnet_id)
                for neighbor in self.subnets[subnet_id].router_ids:
                    if neighbor not in seen_routers:
                        seen_routers.add(neighbor)
                        frontier.append(neighbor)
        return len(seen_routers) == len(self.routers)

    def summary(self) -> str:
        """One-line statistics string for logs and examples."""
        return (
            f"{self.name}: {len(self.routers)} routers, {len(self.subnets)} subnets, "
            f"{len(self._iface_by_address)} interfaces, {len(self.hosts)} hosts"
        )

    def __str__(self) -> str:
        return self.summary()


def merge_names(topologies: Iterable[Topology]) -> str:
    """Helper for benches that report over several topologies at once."""
    return "+".join(t.name for t in topologies)
