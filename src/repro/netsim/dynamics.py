"""Deterministic topology churn: the network that changes under the probe.

Latapy et al.'s "A Radar for the Internet" argues the interesting object is
the *sequence* of maps — which makes mid-survey churn the normal operating
condition, not an error path.  This module provides the seeded, replayable
half of that story:

* :class:`ScheduledMutation` — one network change pinned to a probe-count
  **epoch** (the engine's virtual clock is one tick per probe, so "when"
  is deterministic across runs, platforms and replays);
* :class:`MutationSchedule` — an ordered, serializable list of mutations,
  either hand-built or sampled by :meth:`MutationSchedule.generate` from
  ``(topology, seed)``;
* :class:`NetworkDynamics` — applies due mutations to a live
  :class:`~repro.netsim.engine.Engine`, using only the version-bumping
  topology/policy/balancer primitives so every engine cache (resolved
  paths, bulk index, lazy-BFS routing) invalidates itself before the next
  probe is answered.

The schedule is the single source of truth: the event stream a run emits
(:class:`~repro.events.TopologyMutated`) derives purely from the schedule,
never from the apply outcome, so a journal replay — which has no engine to
mutate — emits the byte-identical stream.

Mutation kinds:

``link-down`` / ``link-up``
    A link flap: one interface detaches from its router and subnet, then
    (optionally) the identical binding is restored.
``router-down`` / ``router-up``
    A router reboot: every interface goes silent via the response policy,
    then responsiveness returns.  A router the policy already silenced
    stays silent after the "reboot" completes.
``renumber``
    A subnet moves wholesale to a fresh CIDR block (same prefix length)
    inside the 198.18.0.0/15 benchmarking range (RFC 2544), with every
    attached interface re-addressed in sorted order.
``resize``
    A subnet shrinks to its lower half (prefix length + 1); interfaces
    falling outside the new host range are disconnected for good.
``ecmp``
    A routing reconvergence stand-in: one router's ECMP tie-breaking mode
    changes, re-splitting flows across equal-cost paths.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .addressing import Prefix, format_ip
from .routing import LoadBalancingMode
from .subnet import Subnet
from .topology import Topology, TopologyError

#: RFC 2544 benchmarking range: renumbered subnets land here, where real
#: topogen profiles never allocate.
SCRATCH_NETWORK = 0xC6120000  # 198.18.0.0
SCRATCH_LENGTH = 15

#: The kinds :meth:`MutationSchedule.generate` samples from, in the order
#: the round-robin walks them.
DEFAULT_KINDS = ("link-flap", "router-reboot", "renumber", "resize", "ecmp")

_ECMP_ROTATION = {
    LoadBalancingMode.NONE: LoadBalancingMode.PER_FLOW,
    LoadBalancingMode.PER_FLOW: LoadBalancingMode.NONE,
    LoadBalancingMode.PER_PACKET: LoadBalancingMode.PER_FLOW,
}


@dataclass(frozen=True)
class ScheduledMutation:
    """One network change, pinned to a probe-count epoch.

    ``detail`` must hold only JSON-stable values (no tuples): it travels
    verbatim inside :class:`~repro.events.TopologyMutated` payloads and
    must round-trip through ``event_to_dict``/``event_from_dict``.
    """

    epoch: int
    sequence: int
    kind: str
    target: str
    detail: Dict = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return {"epoch": self.epoch, "sequence": self.sequence,
                "kind": self.kind, "target": self.target,
                "detail": dict(self.detail)}

    @classmethod
    def from_dict(cls, payload: Dict) -> "ScheduledMutation":
        return cls(epoch=int(payload["epoch"]),
                   sequence=int(payload["sequence"]),
                   kind=payload["kind"], target=payload["target"],
                   detail=dict(payload.get("detail") or {}))


class MutationSchedule:
    """An ordered, replayable list of :class:`ScheduledMutation`.

    Mutations fire in ``(epoch, sequence)`` order; two runs over the same
    schedule see the identical change at the identical probe count.
    """

    def __init__(self, mutations: Sequence[ScheduledMutation] = ()):
        self.mutations: List[ScheduledMutation] = sorted(
            mutations, key=lambda m: (m.epoch, m.sequence))

    def __len__(self) -> int:
        return len(self.mutations)

    def __iter__(self):
        return iter(self.mutations)

    def __bool__(self) -> bool:
        return bool(self.mutations)

    def to_dict(self) -> Dict:
        return {"mutations": [m.to_dict() for m in self.mutations]}

    @classmethod
    def from_dict(cls, payload: Dict) -> "MutationSchedule":
        return cls([ScheduledMutation.from_dict(entry)
                    for entry in payload.get("mutations", [])])

    # -- sampling ----------------------------------------------------------

    @classmethod
    def generate(cls, topology: Topology, seed: int = 0, *,
                 start: int = 100, interval: int = 100, count: int = 4,
                 recover_after: Optional[int] = None,
                 kinds: Sequence[str] = DEFAULT_KINDS) -> "MutationSchedule":
        """Sample a deterministic schedule from ``(topology, seed)``.

        One mutation fires every ``interval`` probes starting at ``start``;
        flaps and reboots schedule their recovery ``recover_after`` probes
        later (half the interval by default).  Targets are drawn without
        replacement per kind — no subnet or router is mutated twice — so
        applying the schedule can never fail mid-run.  Subnets carrying
        end hosts (vantage points, survey hosts) are never renumbered,
        resized or fully flapped.
        """
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        recover = interval // 2 if recover_after is None else recover_after
        rng = random.Random(seed ^ 0xD15EA5E)
        host_subnets = {host.subnet_id for host in topology.hosts.values()}
        gateway_ids = {host.gateway_router_id
                       for host in topology.hosts.values()}
        used_subnets: set = set(host_subnets)
        used_routers: set = set(gateway_ids)

        flappable = sorted(
            iface.address
            for subnet_id, subnet in topology.subnets.items()
            if subnet_id not in host_subnets and len(subnet.interfaces) >= 2
            for iface in subnet.interfaces)
        mutable_subnets = sorted(
            subnet_id for subnet_id, subnet in topology.subnets.items()
            if subnet_id not in host_subnets and subnet.prefix.length <= 30
            and subnet.interfaces)
        routers = sorted(set(topology.routers) - used_routers)

        mutations: List[ScheduledMutation] = []
        sequence = 0
        cursor = SCRATCH_NETWORK
        epoch = start
        kind_index = 0
        produced = 0
        attempts = 0
        while produced < count and attempts < count * len(kinds) * 2:
            attempts += 1
            kind = kinds[kind_index % len(kinds)]
            kind_index += 1
            made = None
            if kind == "link-flap":
                candidates = [a for a in flappable
                              if topology.interface_at(a) is not None
                              and topology.interface_at(a).subnet_id
                              not in used_subnets]
                if candidates:
                    address = candidates[rng.randrange(len(candidates))]
                    iface = topology.interface_at(address)
                    used_subnets.add(iface.subnet_id)
                    prefix = str(topology.subnets[iface.subnet_id].prefix)
                    made = [
                        ScheduledMutation(
                            epoch, sequence, "link-down", format_ip(address),
                            {"address": address,
                             "subnet": iface.subnet_id,
                             "router": iface.router_id,
                             "prefix": prefix}),
                        ScheduledMutation(
                            epoch + recover, sequence + 1, "link-up",
                            format_ip(address),
                            {"address": address,
                             "subnet": iface.subnet_id,
                             "router": iface.router_id,
                             "prefix": prefix}),
                    ]
            elif kind == "router-reboot":
                candidates = [r for r in routers if r not in used_routers]
                if candidates:
                    router_id = candidates[rng.randrange(len(candidates))]
                    used_routers.add(router_id)
                    attached = sorted(
                        str(topology.subnets[sid].prefix)
                        for sid in topology.routers[router_id].subnet_ids
                        if sid in topology.subnets)
                    made = [
                        ScheduledMutation(epoch, sequence, "router-down",
                                          router_id,
                                          {"prefixes": attached}),
                        ScheduledMutation(epoch + recover, sequence + 1,
                                          "router-up", router_id,
                                          {"prefixes": attached}),
                    ]
            elif kind == "renumber":
                candidates = [s for s in mutable_subnets
                              if s not in used_subnets]
                if candidates:
                    subnet_id = candidates[rng.randrange(len(candidates))]
                    used_subnets.add(subnet_id)
                    old_prefix = topology.subnets[subnet_id].prefix
                    length = old_prefix.length
                    network, cursor = _scratch_alloc(topology, length, cursor)
                    made = [ScheduledMutation(
                        epoch, sequence, "renumber", subnet_id,
                        {"new_network": network, "length": length,
                         "new_prefix": str(Prefix(network, length)),
                         "old_prefix": str(old_prefix)})]
            elif kind == "resize":
                candidates = [s for s in mutable_subnets
                              if s not in used_subnets
                              and topology.subnets[s].prefix.length <= 29]
                if candidates:
                    subnet_id = candidates[rng.randrange(len(candidates))]
                    used_subnets.add(subnet_id)
                    old_prefix = topology.subnets[subnet_id].prefix
                    made = [ScheduledMutation(
                        epoch, sequence, "resize", subnet_id,
                        {"new_length": old_prefix.length + 1,
                         "old_prefix": str(old_prefix),
                         "new_prefix": str(Prefix(old_prefix.network,
                                                  old_prefix.length + 1))})]
            elif kind == "ecmp":
                candidates = [r for r in sorted(topology.routers)
                              if r not in used_routers]
                if candidates:
                    router_id = candidates[rng.randrange(len(candidates))]
                    used_routers.add(router_id)
                    made = [ScheduledMutation(
                        epoch, sequence, "ecmp", router_id,
                        {"mode": LoadBalancingMode.PER_FLOW.value})]
            else:
                raise ValueError(f"unknown mutation kind {kind!r}")
            if made is None:
                continue
            mutations.extend(made)
            sequence += len(made)
            epoch += interval
            produced += 1
        return cls(mutations)


def _scratch_alloc(topology: Topology, length: int,
                   cursor: int) -> Tuple[int, int]:
    """Allocate a free /``length`` block from the RFC 2544 scratch range."""
    scratch = Prefix(SCRATCH_NETWORK, SCRATCH_LENGTH)
    size = Prefix(0, length).size
    network = cursor
    blocks = topology._blocks
    while network + size - 1 <= scratch.broadcast:
        candidate = Prefix(network, length)
        position = bisect.bisect_left(
            blocks, (candidate.network, candidate.broadcast, ""))
        clear = True
        for neighbor in (position - 1, position):
            if 0 <= neighbor < len(blocks):
                other_net, other_bcast, _ = blocks[neighbor]
                if other_net <= candidate.broadcast \
                        and candidate.network <= other_bcast:
                    clear = False
                    break
        if clear:
            return network, network + size
        network += size
    raise TopologyError(
        f"scratch range exhausted allocating a /{length} block")


class NetworkDynamics:
    """Applies a :class:`MutationSchedule` to a live engine, in order.

    Call :meth:`advance` with the cumulative probe count before answering
    each probe (the churn transport seam does this); every mutation whose
    epoch has been reached is applied through the version-bumping
    primitives and returned so the caller can emit
    :class:`~repro.events.TopologyMutated`.  Apply state (saved bindings
    for flaps, pre-reboot silence) is deterministic given the schedule and
    the engine's construction, so live runs reproduce exactly.
    """

    def __init__(self, engine, schedule: MutationSchedule):
        self.engine = engine
        self.schedule = schedule
        self.applied: List[ScheduledMutation] = []
        self._cursor = 0
        #: address -> saved Interface binding for link-up restores.
        self._down_links: Dict[int, Tuple[str, str]] = {}
        #: router_id -> whether the policy silenced it before the reboot.
        self._pre_reboot_silent: Dict[str, bool] = {}

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self.schedule.mutations)

    def next_epoch(self) -> Optional[int]:
        """The probe count at which the next mutation fires (None if done)."""
        if self.exhausted:
            return None
        return self.schedule.mutations[self._cursor].epoch

    def advance(self, probe_count: int) -> List[ScheduledMutation]:
        """Apply every mutation due at or before ``probe_count``."""
        fired: List[ScheduledMutation] = []
        mutations = self.schedule.mutations
        while self._cursor < len(mutations) \
                and mutations[self._cursor].epoch <= probe_count:
            mutation = mutations[self._cursor]
            self._cursor += 1
            self._apply(mutation)
            self.applied.append(mutation)
            fired.append(mutation)
        return fired

    # -- the appliers ------------------------------------------------------

    def _apply(self, mutation: ScheduledMutation) -> None:
        handler = getattr(self, "_apply_" + mutation.kind.replace("-", "_"),
                          None)
        if handler is None:
            raise ValueError(f"unknown mutation kind {mutation.kind!r}")
        handler(mutation)

    def _apply_link_down(self, mutation: ScheduledMutation) -> None:
        address = mutation.detail["address"]
        topology = self.engine.topology
        if topology.interface_at(address) is None:
            return  # already down (idempotent under replayed schedules)
        iface = topology.disconnect(address)
        self._down_links[address] = (iface.router_id, iface.subnet_id)

    def _apply_link_up(self, mutation: ScheduledMutation) -> None:
        address = mutation.detail["address"]
        binding = self._down_links.pop(address, None)
        if binding is None:
            return
        router_id, subnet_id = binding
        topology = self.engine.topology
        if subnet_id in topology.subnets \
                and topology.interface_at(address) is None:
            topology.connect(router_id, subnet_id, address)

    def _apply_router_down(self, mutation: ScheduledMutation) -> None:
        router_id = mutation.target
        policy = self.engine.policy
        self._pre_reboot_silent[router_id] = \
            router_id in policy._silent_routers
        policy.silence_router(router_id)

    def _apply_router_up(self, mutation: ScheduledMutation) -> None:
        router_id = mutation.target
        if not self._pre_reboot_silent.pop(router_id, False):
            self.engine.policy.unsilence_router(router_id)

    def _apply_renumber(self, mutation: ScheduledMutation) -> None:
        subnet_id = mutation.target
        topology = self.engine.topology
        subnet = topology.subnets.get(subnet_id)
        if subnet is None:
            return
        new_prefix = Prefix(mutation.detail["new_network"],
                            mutation.detail["length"])
        old_ifaces = sorted(subnet.interfaces, key=lambda i: i.address)
        for iface in old_ifaces:
            topology.disconnect(iface.address)
        topology.remove_subnet(subnet_id)
        topology.add_subnet(Subnet(subnet_id=subnet_id, prefix=new_prefix))
        hosts = list(new_prefix.host_addresses())
        for iface, address in zip(old_ifaces, hosts):
            topology.connect(iface.router_id, subnet_id, address)

    def _apply_resize(self, mutation: ScheduledMutation) -> None:
        subnet_id = mutation.target
        topology = self.engine.topology
        subnet = topology.subnets.get(subnet_id)
        if subnet is None:
            return
        new_length = mutation.detail["new_length"]
        new_prefix = Prefix(subnet.prefix.network, new_length)
        keep = [iface for iface in subnet.interfaces
                if iface.address in new_prefix
                and iface.address not in new_prefix.boundary_addresses()]
        for iface in sorted(subnet.interfaces, key=lambda i: i.address):
            topology.disconnect(iface.address)
        topology.remove_subnet(subnet_id)
        topology.add_subnet(Subnet(subnet_id=subnet_id, prefix=new_prefix))
        for iface in sorted(keep, key=lambda i: i.address):
            topology.connect(iface.router_id, subnet_id, iface.address)

    def _apply_ecmp(self, mutation: ScheduledMutation) -> None:
        mode = LoadBalancingMode(mutation.detail.get(
            "mode", LoadBalancingMode.PER_FLOW.value))
        balancer = self.engine.balancer
        current = balancer.mode_of(mutation.target)
        if current == mode:
            mode = _ECMP_ROTATION[current]
        balancer.set_mode(mutation.target, mode)


__all__ = [
    "DEFAULT_KINDS",
    "MutationSchedule",
    "NetworkDynamics",
    "SCRATCH_LENGTH",
    "SCRATCH_NETWORK",
    "ScheduledMutation",
]
