"""Responsiveness policies: firewalls, silent interfaces, protocol bias,
and ICMP rate limiting.

The paper's evaluation is shaped as much by what does *not* answer as by
what does: totally unresponsive subnets produce the ``miss\\unrs`` rows of
Tables 1–2, partially unresponsive subnets the ``undes\\unrs`` rows, and the
per-protocol response bias (routers answer ICMP far more readily than UDP or
TCP [9, 15]) produces Table 3.  Rate limiting (Section 4.2) makes subnets
look different from different vantage points.  This module centralizes all
of it in one deterministic, seedable policy object consulted by the engine.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, Set, Tuple

from .packet import Protocol
from .topology import Topology


@dataclass
class TokenBucket:
    """A token bucket advancing on the engine's virtual probe clock."""

    capacity: float
    refill_per_tick: float
    tokens: float = field(default=None)  # type: ignore[assignment]
    last_tick: int = 0

    def __post_init__(self):
        if self.tokens is None:
            self.tokens = self.capacity

    def try_consume(self, now: int) -> bool:
        """Advance to ``now``, then consume one token if available."""
        elapsed = max(0, now - self.last_tick)
        self.last_tick = now
        self.tokens = min(self.capacity, self.tokens + elapsed * self.refill_per_tick)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class ResponsePolicy:
    """Decides whether a given router answers a given probe.

    All sampling happens at configuration time (per router / interface /
    subnet), so two engines built from the same policy behave identically
    probe for probe.
    """

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)
        self._firewalled_subnets: Set[str] = set()
        self._silent_interfaces: Set[int] = set()
        self._silent_routers: Set[str] = set()
        # (router_id, protocol) -> False marks an explicit refusal;
        # absent means responsive.
        self._protocol_refusals: Set[Tuple[str, Protocol]] = set()
        self._rate_limiters: Dict[str, TokenBucket] = {}
        # Configuration mutation counter: response plans memoized against
        # this policy (the engine's resolved-path cache) go stale when it
        # changes mid-run — router reboots silence/unsilence routers while
        # the topology version stays put.
        self.version = 0

    # -- configuration ---------------------------------------------------

    def firewall_subnet(self, subnet_id: str) -> "ResponsePolicy":
        """Make a subnet totally unresponsive: probes *destined into its
        block* are silently dropped (the paper's firewalled edge subnets)."""
        self._firewalled_subnets.add(subnet_id)
        self.version += 1
        return self

    def silence_interface(self, address: int) -> "ResponsePolicy":
        """Make one interface ignore direct probes (partial unresponsiveness)."""
        self._silent_interfaces.add(address)
        self.version += 1
        return self

    def silence_router(self, router_id: str) -> "ResponsePolicy":
        """Make a router fully reticent (the *nil interface* configuration)."""
        self._silent_routers.add(router_id)
        self.version += 1
        return self

    def unsilence_router(self, router_id: str) -> "ResponsePolicy":
        """Undo :meth:`silence_router` — a rebooted router coming back."""
        self._silent_routers.discard(router_id)
        self.version += 1
        return self

    def unfirewall_subnet(self, subnet_id: str) -> "ResponsePolicy":
        """Undo :meth:`firewall_subnet`."""
        self._firewalled_subnets.discard(subnet_id)
        self.version += 1
        return self

    def unsilence_interface(self, address: int) -> "ResponsePolicy":
        """Undo :meth:`silence_interface`."""
        self._silent_interfaces.discard(address)
        self.version += 1
        return self

    def refuse_protocol(self, router_id: str, protocol: Protocol) -> "ResponsePolicy":
        """Make one router ignore one probe protocol entirely."""
        self._protocol_refusals.add((router_id, protocol))
        self.version += 1
        return self

    def sample_protocol_bias(self, topology: Topology,
                             response_rates: Dict[Protocol, float]) -> "ResponsePolicy":
        """Sample, per router, which protocols it answers.

        ``response_rates`` maps each protocol to the fraction of routers
        that answer it (e.g. ICMP 0.95, UDP 0.4, TCP 0.01 reproduces the
        ordering of Table 3).  Sampling is nested so a router answering TCP
        also answers UDP and ICMP whenever the rates are ordered that way.
        """
        for router_id in sorted(topology.routers):
            draw = self._rng.random()
            for protocol, rate in response_rates.items():
                if draw >= rate:
                    self._protocol_refusals.add((router_id, protocol))
        self.version += 1
        return self

    def rate_limit_router(self, router_id: str, capacity: float,
                          refill_per_tick: float) -> "ResponsePolicy":
        """Attach an ICMP-generation token bucket to a router."""
        self._rate_limiters[router_id] = TokenBucket(
            capacity=capacity, refill_per_tick=refill_per_tick
        )
        self.version += 1
        return self

    def reset_rate_limiters(self) -> "ResponsePolicy":
        """Refill every bucket and rewind its clock.

        Buckets are deliberately stateful across engines — like real
        routers, they do not reset between measurement runs — so repeated
        experiments over one policy see drained state.  Call this (or
        clone the policy via ``policy_from_dict(policy_to_dict(p))``) for
        independent runs.
        """
        for router_id, bucket in list(self._rate_limiters.items()):
            self._rate_limiters[router_id] = TokenBucket(
                capacity=bucket.capacity,
                refill_per_tick=bucket.refill_per_tick,
            )
        return self

    def firewall_subnets(self, subnet_ids: Iterable[str]) -> "ResponsePolicy":
        for subnet_id in subnet_ids:
            self.firewall_subnet(subnet_id)
        return self

    def silence_interfaces(self, addresses: Iterable[int]) -> "ResponsePolicy":
        for address in addresses:
            self.silence_interface(address)
        return self

    # -- queries (engine-facing) -----------------------------------------

    def subnet_is_firewalled(self, subnet_id: str) -> bool:
        return subnet_id in self._firewalled_subnets

    def interface_is_silent(self, address: int) -> bool:
        return address in self._silent_interfaces

    def router_responds(self, router_id: str, protocol: Protocol, now: int) -> bool:
        """True when ``router_id`` would emit any response right now.

        Checks the static configuration first and only then draws from the
        rate-limit bucket, so a silent or protocol-refusing router never
        consumes tokens.
        """
        return (self.router_statically_responds(router_id, protocol)
                and self.rate_limit_allows(router_id, now))

    def router_statically_responds(self, router_id: str, protocol: Protocol) -> bool:
        """The clock-independent half of :meth:`router_responds`: silent
        routers and protocol refusals, both fixed at configuration time."""
        return (router_id not in self._silent_routers
                and (router_id, protocol) not in self._protocol_refusals)

    def rate_limit_allows(self, router_id: str, now: int) -> bool:
        """Draw one token from ``router_id``'s bucket (the clock-dependent
        half of :meth:`router_responds`); unlimited routers always pass."""
        bucket = self._rate_limiters.get(router_id)
        return bucket is None or bucket.try_consume(now)

    @property
    def rate_limited(self) -> bool:
        """Whether any responder currently has a token bucket attached.

        When False, :meth:`rate_limit_allows` is vacuously True for every
        responder and there is no bucket state to advance, so batch fast
        paths may skip the per-probe draw entirely.
        """
        return bool(self._rate_limiters)

    # -- introspection (tests / evaluation) -------------------------------

    @property
    def firewalled_subnet_ids(self) -> Set[str]:
        return set(self._firewalled_subnets)

    @property
    def silent_interface_addresses(self) -> Set[int]:
        return set(self._silent_interfaces)

    def describe(self) -> str:
        """Short summary used in experiment logs."""
        return (
            f"ResponsePolicy(firewalled_subnets={len(self._firewalled_subnets)}, "
            f"silent_interfaces={len(self._silent_interfaces)}, "
            f"silent_routers={len(self._silent_routers)}, "
            f"protocol_refusals={len(self._protocol_refusals)}, "
            f"rate_limited={len(self._rate_limiters)})"
        )


def fully_responsive() -> ResponsePolicy:
    """The permissive default: everything answers everything."""
    return ResponsePolicy()
